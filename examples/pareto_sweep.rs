//! Sweep the error budget and print the quality/cost trade-off curve —
//! the design-space exploration an approximate-computing user actually
//! performs. Also writes the best circuit at each point to an AIGER file
//! under `target/pareto/`.
//!
//! ```text
//! cargo run --release --example pareto_sweep [circuit]
//! ```

use std::fs::File;
use std::io::BufWriter;

use dualphase_als::aig::io::write_ascii;
use dualphase_als::circuits::{benchmark, BenchmarkScale};
use dualphase_als::engine::{DualPhaseFlow, Flow, FlowConfig};
use dualphase_als::error::{reference_error, MetricKind};
use dualphase_als::map::{map_circuit, CellLibrary};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mult16".to_string());
    let original = benchmark(&name, BenchmarkScale::Reduced);
    let lib = CellLibrary::new();
    let base = map_circuit(&original, &lib);
    let r = reference_error(original.num_outputs());
    println!(
        "{name}: {} gates, area {:.1}, delay {:.3}, reference error R = {r:.1}",
        original.num_ands(),
        base.area,
        base.delay
    );
    println!(
        "{:>10} {:>9} {:>10} {:>9} {:>8} {:>7}",
        "MED bound", "gates", "area", "delay", "ADP%", "LACs"
    );

    std::fs::create_dir_all("target/pareto").expect("create output directory");
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let bound = factor * r;
        let cfg = FlowConfig::new(MetricKind::Med, bound).with_patterns(2048);
        let res = DualPhaseFlow::with_self_adaption(cfg).run(&original).expect("flow failed");
        let m = map_circuit(&res.circuit, &lib);
        println!(
            "{:>10.1} {:>9} {:>10.1} {:>9.3} {:>7.1}% {:>7}",
            bound,
            res.final_nodes(),
            m.area,
            m.delay,
            100.0 * m.adp() / base.adp(),
            res.lacs_applied()
        );
        let path = format!("target/pareto/{name}_med{factor}.aag");
        let file = BufWriter::new(File::create(&path).expect("create AIGER file"));
        write_ascii(&res.circuit, file).expect("write AIGER");
    }
    println!("approximate netlists written to target/pareto/*.aag");
}
