//! Domain example: approximate the multiplier inside an alpha-blending
//! datapath (the error-tolerant image-processing workload the paper's
//! introduction motivates) and measure end-application quality as PSNR on
//! a synthetic image.
//!
//! The blend `out = (alpha * a + (255 - alpha) * b) / 256` uses two 8×8
//! multipliers. We approximate the multiplier under increasing MED
//! budgets, then run the *whole datapath* on image data through the
//! bit-parallel simulator and report the peak signal-to-noise ratio.
//!
//! ```text
//! cargo run --release --example image_blend
//! ```

use dualphase_als::aig::Aig;
use dualphase_als::circuits::mult::mult;
use dualphase_als::engine::{DualPhaseFlow, Flow, FlowConfig};
use dualphase_als::error::MetricKind;
use dualphase_als::map::{adp_ratio, CellLibrary};
use dualphase_als::sim::{PackedBits, PatternSet, Simulator};

/// Evaluates an 8×8 multiplier circuit on (x, y) byte pairs.
fn run_multiplier(aig: &Aig, xs: &[u8], ys: &[u8]) -> Vec<u16> {
    let n = xs.len();
    let words = n.div_ceil(64);
    let mut inputs = vec![PackedBits::zeros(words); 16];
    for (p, (&x, &y)) in xs.iter().zip(ys).enumerate() {
        for bit in 0..8 {
            if x >> bit & 1 == 1 {
                inputs[bit].set(p, true);
            }
            if y >> bit & 1 == 1 {
                inputs[8 + bit].set(p, true);
            }
        }
    }
    let patterns = PatternSet::from_vectors(inputs);
    let sim = Simulator::new(aig, &patterns);
    (0..n).map(|p| sim.output_word(aig, p) as u16).collect()
}

fn main() {
    // Synthetic 64×64 gradient-with-texture image and overlay.
    let side = 64usize;
    let n = side * side;
    let image: Vec<u8> = (0..n)
        .map(|i| {
            let (x, y) = (i % side, i / side);
            ((x * 2 + y * 3) % 256) as u8 ^ ((x * y) as u8 & 0x1f)
        })
        .collect();
    let overlay: Vec<u8> = (0..n).map(|i| (255 - (i % 256)) as u8).collect();
    let alpha = 160u8;

    let original = mult(8, 8);
    let lib = CellLibrary::new();
    let alphas = vec![alpha; n];
    let inv_alphas = vec![255 - alpha; n];

    let blend = |m_ab: &[u16], m_inv: &[u16]| -> Vec<u8> {
        m_ab.iter().zip(m_inv).map(|(&a, &b)| ((a as u32 + b as u32) >> 8) as u8).collect()
    };

    // Exact reference.
    let exact_a = run_multiplier(&original, &alphas, &image);
    let exact_b = run_multiplier(&original, &inv_alphas, &overlay);
    let reference = blend(&exact_a, &exact_b);

    println!("alpha blend with approximate multipliers (64x64 synthetic image)");
    println!("{:>10} {:>8} {:>8} {:>9}", "MED bound", "gates", "ADP%", "PSNR(dB)");
    for bound in [8.0, 32.0, 128.0, 512.0] {
        let cfg = FlowConfig::new(MetricKind::Med, bound).with_patterns(4096);
        let res = DualPhaseFlow::with_self_adaption(cfg).run(&original).expect("flow failed");
        let ax = run_multiplier(&res.circuit, &alphas, &image);
        let bx = run_multiplier(&res.circuit, &inv_alphas, &overlay);
        let got = blend(&ax, &bx);
        let mse: f64 = reference
            .iter()
            .zip(&got)
            .map(|(&r, &g)| {
                let d = r as f64 - g as f64;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        let psnr = if mse == 0.0 { f64::INFINITY } else { 10.0 * (255.0f64 * 255.0 / mse).log10() };
        println!(
            "{:>10.0} {:>8} {:>7.1}% {:>9.1}",
            bound,
            res.final_nodes(),
            100.0 * adp_ratio(&res.circuit, &original, &lib),
            psnr
        );
    }
}
