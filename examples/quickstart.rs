//! Quickstart: approximate an 8×8 multiplier under a mean-error-distance
//! bound with the paper's DP-SA flow.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dualphase_als::circuits::mult::mult;
use dualphase_als::engine::{DualPhaseFlow, Flow, FlowConfig};
use dualphase_als::error::{reference_error, MetricKind};
use dualphase_als::map::{adp_ratio, CellLibrary};

fn main() {
    // 1. A circuit to approximate: an exact 8×8 array multiplier.
    let original = mult(8, 8);
    println!(
        "original: {} inputs, {} outputs, {} AND gates",
        original.num_inputs(),
        original.num_outputs(),
        original.num_ands()
    );

    // 2. An error budget: the paper's reference error R = 2^(K/3).
    let bound = reference_error(original.num_outputs());
    println!("MED bound: {bound:.1}");

    // 3. Run the dual-phase flow with self-adaption (DP-SA).
    let config = FlowConfig::new(MetricKind::Med, bound).with_patterns(4096);
    let result = DualPhaseFlow::with_self_adaption(config).run(&original).expect("flow failed");

    // 4. Inspect the outcome.
    let lib = CellLibrary::new();
    println!(
        "approximate: {} AND gates ({} LACs applied, {} comprehensive analyses)",
        result.final_nodes(),
        result.lacs_applied(),
        result.comprehensive_analyses
    );
    println!("measured MED: {:.2} (bound {bound:.1})", result.final_error);
    println!("ADP ratio: {:.1}%", 100.0 * adp_ratio(&result.circuit, &original, &lib));
    println!("runtime: {:.2?}", result.runtime);
}
