//! Compare every flow on one benchmark circuit: the conventional
//! baseline, VECBEE(l=1), AccALS, DP and DP-SA.
//!
//! ```text
//! cargo run --release --example compare_flows [circuit] [er|med|mse]
//! ```

use dualphase_als::circuits::{benchmark, BenchmarkScale};
use dualphase_als::engine::{
    AccAlsFlow, ConventionalFlow, DualPhaseFlow, Flow, FlowConfig, VecbeeDepthOneFlow,
};
use dualphase_als::error::{paper_thresholds, MetricKind};
use dualphase_als::map::{adp_ratio, CellLibrary};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "sm9x8".to_string());
    let metric = match args.next().as_deref() {
        Some("er") => MetricKind::Er,
        Some("mse") => MetricKind::Mse,
        _ => MetricKind::Med,
    };

    let original = benchmark(&name, BenchmarkScale::Reduced);
    let bound = paper_thresholds(metric, original.num_outputs())[1];
    println!("{name}: {} gates, metric {metric}, bound {bound:.3}", original.num_ands());

    let cfg = FlowConfig::new(metric, bound).with_patterns(2048);
    let flows: Vec<Box<dyn Flow>> = vec![
        Box::new(ConventionalFlow::new(cfg.clone())),
        Box::new(VecbeeDepthOneFlow::new(cfg.clone())),
        Box::new(AccAlsFlow::new(cfg.clone())),
        Box::new(DualPhaseFlow::new(cfg.clone())),
        Box::new(DualPhaseFlow::with_self_adaption(cfg)),
    ];

    let lib = CellLibrary::new();
    println!(
        "{:<20} {:>7} {:>9} {:>10} {:>7} {:>9}",
        "flow", "gates", "ADP", "error", "LACs", "runtime"
    );
    for flow in &flows {
        let res = flow.run(&original).expect("flow failed");
        println!(
            "{:<20} {:>7} {:>8.1}% {:>10.3} {:>7} {:>8.2?}",
            res.flow,
            res.final_nodes(),
            100.0 * adp_ratio(&res.circuit, &original, &lib),
            res.final_error,
            res.lacs_applied(),
            res.runtime
        );
    }
}
