//! Input-distribution sensitivity: the same circuit approximated under
//! uniform and biased input statistics yields different approximate
//! circuits — the framework optimises for the distribution it is given
//! (the paper's "any input distribution" claim in action).
//!
//! ```text
//! cargo run --release --example input_distribution
//! ```

use dualphase_als::aig::Aig;
use dualphase_als::circuits::mult::mult;
use dualphase_als::engine::{DualPhaseFlow, Flow, FlowConfig, PatternSource};
use dualphase_als::error::{unsigned_weights, ErrorState, MetricKind};
use dualphase_als::sim::{PatternSet, Simulator};

/// Measures MED of `approx` against `original` under the given stimuli.
fn med_under(original: &Aig, approx: &Aig, patterns: &PatternSet) -> f64 {
    let gold = Simulator::new(original, patterns);
    let got = Simulator::new(approx, patterns);
    let golden: Vec<_> =
        (0..original.num_outputs()).map(|o| gold.output_value(original, o)).collect();
    let outs: Vec<_> = (0..approx.num_outputs()).map(|o| got.output_value(approx, o)).collect();
    ErrorState::new(MetricKind::Med, unsigned_weights(original.num_outputs()), golden, &outs)
        .error()
}

fn main() {
    let original = mult(8, 8);
    let bound = 64.0;
    println!("8x8 multiplier, MED bound {bound} under the training distribution\n");
    println!("{:<22} {:>7} {:>14} {:>14}", "trained on", "gates", "MED(uniform)", "MED(dense)");

    let uniform_eval = PatternSet::random(16, 128, 999);
    let dense_eval = PatternSet::biased(16, 128, 999, 0.85);

    for (label, source) in [
        ("uniform inputs", PatternSource::Uniform),
        ("dense inputs (p=0.85)", PatternSource::Biased(0.85)),
    ] {
        let cfg = FlowConfig::new(MetricKind::Med, bound)
            .with_patterns(4096)
            .with_input_distribution(source);
        let res = DualPhaseFlow::with_self_adaption(cfg).run(&original).expect("flow failed");
        println!(
            "{:<22} {:>7} {:>14.1} {:>14.1}",
            label,
            res.final_nodes(),
            med_under(&original, &res.circuit, &uniform_eval),
            med_under(&original, &res.circuit, &dense_eval),
        );
    }
    println!("\neach circuit honours its bound on the distribution it was trained for;");
    println!("off-distribution error can be much larger — distribution matters.");
}
