//! Facade crate for the dual-phase iterative approximate logic synthesis
//! (ALS) workspace — a from-scratch Rust reproduction of the DATE 2025 paper
//! *"Efficient Approximate Logic Synthesis with Dual-Phase Iterative
//! Framework"*.
//!
//! Re-exports every workspace crate under a stable module path:
//!
//! * [`aig`] — AND-inverter graph substrate,
//! * [`obs`] — structured observability: spans, metrics, JSONL/Prometheus,
//! * [`par`] — shared worker pool for the parallel analysis steps,
//! * [`sim`] — bit-parallel Monte-Carlo simulation,
//! * [`error`] — ER / MSE / MED statistical error metrics,
//! * [`cuts`] — one-cuts and closest disjoint cuts with incremental update,
//! * [`cpm`] — change propagation matrix computation,
//! * [`lac`] — local approximate change candidates,
//! * [`map`] — structural technology mapping (area / delay / ADP),
//! * [`circuits`] — benchmark circuit generators,
//! * [`engine`] — the ALS flows: conventional, VECBEE(`l`), AccALS, DP and
//!   DP-SA,
//! * [`serve`] — ALS-as-a-service: the `als serve` job daemon, its wire
//!   protocol and the client behind `als job`.
//!
//! # Quickstart
//!
//! ```
//! use dualphase_als::prelude::*;
//!
//! # fn main() -> Result<(), EngineError> {
//! let aig = dualphase_als::circuits::arith::ripple_adder(8);
//! let config = FlowConfig::builder(MetricKind::Med, 100.0).patterns(1024).build()?;
//! let result = flows::by_name("dp", config)?.run(&aig)?;
//! assert!(result.final_error <= 100.0);
//! # Ok(())
//! # }
//! ```

pub use als_aig as aig;
pub use als_circuits as circuits;
pub use als_cpm as cpm;
pub use als_cuts as cuts;
pub use als_engine as engine;
pub use als_error as error;
pub use als_lac as lac;
pub use als_map as map;
pub use als_obs as obs;
pub use als_par as par;
pub use als_serve as serve;
pub use als_sim as sim;

/// The names most programs need, importable in one line.
///
/// ```
/// use dualphase_als::prelude::*;
/// ```
///
/// brings in the circuit type ([`Aig`](crate::aig::Aig)), the
/// configuration surface ([`FlowConfig`](crate::engine::FlowConfig) and
/// its builder), the [`Flow`](crate::engine::Flow) trait with the
/// [`by_name`](crate::engine::flows::by_name) registry, the result and
/// error types, and the observability handles
/// ([`Obs`](crate::obs::Obs), [`ObsConfig`](crate::obs::ObsConfig)).
pub mod prelude {
    pub use crate::aig::Aig;
    pub use crate::engine::flows;
    pub use crate::engine::{
        by_name, CancelToken, ConfigError, EngineError, Flow, FlowConfig, FlowConfigBuilder,
        FlowName, FlowResult, StepTimes, StopReason, SuperviseConfig, FLOW_NAMES,
    };
    pub use crate::error::MetricKind;
    pub use crate::obs::{Obs, ObsConfig};
    pub use crate::par::{Calibration, SchedConfig, SchedMode};
}
