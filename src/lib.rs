//! Facade crate for the dual-phase iterative approximate logic synthesis
//! (ALS) workspace — a from-scratch Rust reproduction of the DATE 2025 paper
//! *"Efficient Approximate Logic Synthesis with Dual-Phase Iterative
//! Framework"*.
//!
//! Re-exports every workspace crate under a stable module path:
//!
//! * [`aig`] — AND-inverter graph substrate,
//! * [`par`] — shared worker pool for the parallel analysis steps,
//! * [`sim`] — bit-parallel Monte-Carlo simulation,
//! * [`error`] — ER / MSE / MED statistical error metrics,
//! * [`cuts`] — one-cuts and closest disjoint cuts with incremental update,
//! * [`cpm`] — change propagation matrix computation,
//! * [`lac`] — local approximate change candidates,
//! * [`map`] — structural technology mapping (area / delay / ADP),
//! * [`circuits`] — benchmark circuit generators,
//! * [`engine`] — the ALS flows: conventional, VECBEE(`l`), AccALS, DP and
//!   DP-SA.
//!
//! # Quickstart
//!
//! ```
//! use dualphase_als::circuits::arith::ripple_adder;
//! use dualphase_als::engine::{EngineError, Flow, FlowConfig, DualPhaseFlow};
//! use dualphase_als::error::MetricKind;
//!
//! # fn main() -> Result<(), EngineError> {
//! let aig = ripple_adder(8);
//! let config = FlowConfig::new(MetricKind::Med, 100.0).with_patterns(1024);
//! let result = DualPhaseFlow::new(config).run(&aig)?;
//! assert!(result.final_error <= 100.0);
//! # Ok(())
//! # }
//! ```

pub use als_aig as aig;
pub use als_circuits as circuits;
pub use als_cpm as cpm;
pub use als_cuts as cuts;
pub use als_engine as engine;
pub use als_error as error;
pub use als_lac as lac;
pub use als_map as map;
pub use als_par as par;
pub use als_sim as sim;
