//! `als` — command-line front end for the dual-phase ALS library.
//!
//! ```text
//! als list                                  # available generated benchmarks
//! als stats  <circuit>                      # PI/PO/gates/depth/area/delay
//! als synth  <circuit> [options] -o out.aag # run a flow, write the result
//! als convert <in.aag> -o out.(aag|aig|v)   # format conversion
//! als serve  --state <dir> [--addr A]       # run the job daemon
//! als job    <submit|status|watch|cancel|list> [--addr A] ...
//! ```
//!
//! `<circuit>` is either a benchmark name (see `als list`) or a path to an
//! AIGER file. Synthesis options:
//!
//! ```text
//! --flow conventional|l1|accals|dp|dpsa   (default dpsa)
//! --metric er|med|mse                     (default med)
//! --bound X                               (default: paper reference R)
//! --patterns N   --seed S   --threads T   --full
//! --sched SPEC       scheduler spec (adaptive|off|serial|force, plus
//!                    steal=0|1, min_items=N, min_serial_us=N, chunk_us=N);
//!                    overrides the ALS_SCHED environment default
//! --strict           re-validate every commit on an independent pattern set
//! --max-retries N    rollbacks allowed per selection before giving up
//! --timeout SECS     stop gracefully after a wall-clock deadline
//! --max-iters N      stop gracefully after N applied LACs
//! --journal <path>   journal every committed iteration (dp/dpsa only)
//! --resume <path>    resume a crashed run from its journal (dp/dpsa only)
//! --trace <path>     write a JSONL span trace of the run
//! --metrics <path>   write Prometheus text metrics at exit
//! --tree             print the aggregated span tree to stderr at exit
//! ```
//!
//! `--json` makes `synth` print the machine-readable result document
//! (the same schema the job service returns) on stdout instead of the
//! human summary.
//!
//! A run stopped early — by `--timeout`, `--max-iters`, SIGINT or SIGTERM —
//! still writes its best-so-far result and exits with code 3 (a second
//! signal aborts immediately). Exit codes: 0 completed, 3 stopped early
//! with a valid result, 1 error.
//!
//! `als serve` runs the ALS-as-a-service daemon (see `dualphase_als::serve`):
//! jobs are submitted, watched and cancelled over a line-JSON TCP protocol
//! (the `als job` subcommands), with Prometheus metrics and a liveness
//! probe served as plain HTTP on the same port. SIGTERM/SIGINT drain the
//! daemon gracefully: running jobs seal their journals and resume on the
//! next start.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use dualphase_als::circuits::{benchmark, benchmark_names, BenchmarkScale};
use dualphase_als::error::reference_error;
use dualphase_als::map::{map_circuit, CellLibrary};
use dualphase_als::prelude::*;

fn load(name_or_path: &str, full: bool) -> Result<Aig, String> {
    if benchmark_names().contains(&name_or_path) {
        let scale = if full { BenchmarkScale::Paper } else { BenchmarkScale::Reduced };
        return Ok(benchmark(name_or_path, scale));
    }
    let file = File::open(name_or_path).map_err(|e| format!("{name_or_path}: {e}"))?;
    let stem = std::path::Path::new(name_or_path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    if name_or_path.ends_with(".blif") {
        dualphase_als::aig::blif::read_blif(BufReader::new(file), stem).map_err(|e| e.to_string())
    } else {
        dualphase_als::aig::io::read(BufReader::new(file), stem).map_err(|e| e.to_string())
    }
}

fn save(aig: &Aig, path: &str) -> Result<(), String> {
    let file = BufWriter::new(File::create(path).map_err(|e| format!("{path}: {e}"))?);
    let result = if path.ends_with(".v") {
        dualphase_als::aig::verilog::write_verilog(aig, file)
    } else if path.ends_with(".blif") {
        dualphase_als::aig::blif::write_blif(aig, file)
    } else if path.ends_with(".aig") {
        dualphase_als::aig::io::write_binary(aig, file)
    } else {
        dualphase_als::aig::io::write_ascii(aig, file)
    };
    result.map_err(|e| e.to_string())
}

fn stats(aig: &Aig) {
    let m = map_circuit(aig, &CellLibrary::new());
    println!("name:    {}", aig.name());
    println!("inputs:  {}", aig.num_inputs());
    println!("outputs: {}", aig.num_outputs());
    println!("gates:   {}", aig.num_ands());
    println!("depth:   {}", dualphase_als::aig::topo::depth(aig));
    println!("area:    {:.2} um2 ({} cells, {} inverters)", m.area, m.num_cells, m.num_inverters);
    println!("delay:   {:.3} ns", m.delay);
    println!("adp:     {:.2}", m.adp());
}

struct SynthOpts {
    flow: FlowName,
    metric: MetricKind,
    bound: Option<f64>,
    patterns: usize,
    seed: u64,
    threads: Option<usize>,
    sched: Option<String>,
    full: bool,
    strict: bool,
    max_retries: Option<usize>,
    timeout: Option<std::time::Duration>,
    max_iters: Option<usize>,
    journal: Option<String>,
    resume: Option<String>,
    output: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    tree: bool,
    json: bool,
}

/// How a `synth` run ended: normally, or preempted with a best-so-far
/// result that is still valid and already written out.
enum Outcome {
    Completed,
    Stopped(StopReason),
}

fn run() -> Result<Outcome, String> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| "help".to_string());
    match cmd.as_str() {
        "list" => {
            for name in benchmark_names() {
                println!("{name}");
            }
            Ok(Outcome::Completed)
        }
        "stats" => {
            let target = args.next().ok_or("usage: als stats <circuit> [--full]")?;
            if target.starts_with("--") {
                return Err(format!("unknown option {target} (expected a circuit first)"));
            }
            let mut full = false;
            for a in args {
                match a.as_str() {
                    "--full" => full = true,
                    other => return Err(format!("unknown option {other}")),
                }
            }
            stats(&load(&target, full)?);
            Ok(Outcome::Completed)
        }
        "convert" => {
            let input = args.next().ok_or("usage: als convert <in> -o <out>")?;
            if input.starts_with("--") {
                return Err(format!("unknown option {input} (expected an input file first)"));
            }
            let mut output = None;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "-o" => output = Some(args.next().ok_or("missing value for -o")?),
                    other => return Err(format!("unknown option {other}")),
                }
            }
            let output = output.ok_or("missing -o <out>")?;
            let aig = load(&input, false)?;
            save(&aig, &output)?;
            println!("wrote {output}");
            Ok(Outcome::Completed)
        }
        "synth" => {
            let target = args.next().ok_or("usage: als synth <circuit> [options]")?;
            if target.starts_with("--") {
                return Err(format!("unknown option {target} (expected a circuit first)"));
            }
            let mut o = SynthOpts {
                flow: FlowName::DpSa,
                metric: MetricKind::Med,
                bound: None,
                patterns: 8192,
                seed: 0xA15,
                threads: None,
                sched: None,
                full: false,
                strict: false,
                max_retries: None,
                timeout: None,
                max_iters: None,
                journal: None,
                resume: None,
                output: None,
                trace: None,
                metrics: None,
                tree: false,
                json: false,
            };
            while let Some(a) = args.next() {
                let mut value =
                    |name: &str| args.next().ok_or_else(|| format!("missing value for {name}"));
                match a.as_str() {
                    "--flow" => o.flow = value("--flow")?.parse().map_err(|e| format!("{e}"))?,
                    "--metric" => {
                        o.metric = value("--metric")?.parse().map_err(|e| format!("{e}"))?
                    }
                    "--bound" => {
                        o.bound = Some(value("--bound")?.parse().map_err(|_| "bad --bound")?)
                    }
                    "--patterns" => {
                        o.patterns = value("--patterns")?.parse().map_err(|_| "bad --patterns")?
                    }
                    "--seed" => o.seed = value("--seed")?.parse().map_err(|_| "bad --seed")?,
                    "--threads" => {
                        o.threads = Some(value("--threads")?.parse().map_err(|_| "bad --threads")?)
                    }
                    "--sched" => o.sched = Some(value("--sched")?.to_string()),
                    "--full" => o.full = true,
                    "--strict" => o.strict = true,
                    "--max-retries" => {
                        o.max_retries =
                            Some(value("--max-retries")?.parse().map_err(|_| "bad --max-retries")?)
                    }
                    "--timeout" => {
                        let secs: f64 = value("--timeout")?.parse().map_err(|_| "bad --timeout")?;
                        let limit = std::time::Duration::try_from_secs_f64(secs)
                            .map_err(|_| "bad --timeout (must be a non-negative duration)")?;
                        o.timeout = Some(limit);
                    }
                    "--max-iters" => {
                        o.max_iters =
                            Some(value("--max-iters")?.parse().map_err(|_| "bad --max-iters")?)
                    }
                    "--journal" => o.journal = Some(value("--journal")?.to_string()),
                    "--resume" => o.resume = Some(value("--resume")?.to_string()),
                    "--trace" => o.trace = Some(value("--trace")?.to_string()),
                    "--metrics" => o.metrics = Some(value("--metrics")?.to_string()),
                    "--tree" => o.tree = true,
                    "--json" => o.json = true,
                    "-o" => o.output = Some(value("-o")?.to_string()),
                    other => return Err(format!("unknown option {other}")),
                }
            }
            let original = load(&target, o.full)?;
            let bound = o.bound.unwrap_or_else(|| match o.metric {
                MetricKind::Er => 0.01,
                MetricKind::Med => reference_error(original.num_outputs()),
                MetricKind::Mse => {
                    let r = reference_error(original.num_outputs());
                    r * r
                }
            });
            if o.journal.is_some() && o.resume.is_some() {
                return Err("--journal and --resume are mutually exclusive (resume keeps \
                            journaling to the same file)"
                    .into());
            }
            // One observability handle for the whole run: the flow, guard,
            // journal and worker pool all report through clones of it.
            let obs = if o.trace.is_some() || o.metrics.is_some() || o.tree {
                Obs::new(ObsConfig {
                    trace: o.trace.as_ref().map(Into::into),
                    metrics: o.metrics.as_ref().map(Into::into),
                    tree: o.tree,
                })
                .map_err(|e| format!("observability setup: {e}"))?
            } else {
                Obs::disabled()
            };
            // --threads beats the ALS_THREADS environment default baked
            // into FlowConfig::new; unset, the default stands.
            let mut builder = FlowConfig::builder(o.metric, bound)
                .patterns(o.patterns)
                .seed(o.seed)
                .cancel_token(dualphase_als::engine::install_signal_handlers())
                .obs(obs.clone());
            if let Some(threads) = o.threads {
                builder = builder.threads(threads);
            }
            // --sched beats the ALS_SCHED environment default the same way.
            if let Some(spec) = &o.sched {
                builder = builder.sched(dualphase_als::par::SchedConfig::parse(spec));
            }
            if o.strict {
                builder = builder.strict();
            }
            if let Some(retries) = o.max_retries {
                builder = builder.max_retries(retries);
            }
            if let Some(limit) = o.timeout {
                builder = builder.timeout(limit);
            }
            if let Some(limit) = o.max_iters {
                builder = builder.max_iters(limit);
            }
            if let Some(path) = &o.journal {
                builder = builder.journal(path);
            }
            if let Some(path) = &o.resume {
                builder = builder.resume(path);
            }
            let cfg = builder.build().map_err(|e| e.to_string())?;
            let flow = flows::by_name(o.flow, cfg).map_err(|e| e.to_string())?;
            eprintln!(
                "running {} on {} ({} gates), {} bound {bound:.4}",
                flow.name(),
                original.name(),
                original.num_ands(),
                o.metric
            );
            let res = flow.run(&original).map_err(|e| e.to_string())?;
            obs.finish().map_err(|e| format!("observability export: {e}"))?;
            if let Some(path) = &o.metrics {
                eprintln!("wrote metrics to {path}");
            }
            let lib = CellLibrary::new();
            if o.json {
                // The shared result schema: the same document a job
                // service status response embeds for a completed job.
                println!("{}", res.to_json().render());
            } else {
                println!(
                    "gates {} -> {} | {} = {:.4} (bound {bound:.4}) | ADP ratio {:.1}% | {} LACs in {:.2?}",
                    original.num_ands(),
                    res.final_nodes(),
                    o.metric,
                    res.final_error,
                    100.0 * dualphase_als::map::adp_ratio(&res.circuit, &original, &lib),
                    res.lacs_applied(),
                    res.runtime
                );
            }
            if res.guard.rollbacks > 0 || res.guard.fallbacks > 0 {
                eprintln!(
                    "guard: {} validations, {} rollbacks, {} evictions, {} resamples, {} fallbacks",
                    res.guard.validations,
                    res.guard.rollbacks,
                    res.guard.evictions,
                    res.guard.resamples,
                    res.guard.fallbacks
                );
            }
            if let Some(path) = o.output {
                save(&res.circuit, &path)?;
                if o.json {
                    eprintln!("wrote {path}");
                } else {
                    println!("wrote {path}");
                }
            }
            if res.stop.is_preemption() {
                Ok(Outcome::Stopped(res.stop))
            } else {
                Ok(Outcome::Completed)
            }
        }
        "serve" => serve(args),
        "job" => job(args),
        _ => {
            eprintln!(
                "usage: als <list|stats|synth|convert|serve|job> …\n  \
                 als list\n  \
                 als stats <circuit> [--full]\n  \
                 als synth <circuit> [--flow dpsa] [--metric med] [--bound X] \
                 [--patterns N] [--seed S] [--threads T] [--sched SPEC] [--full] [--strict] \
                 [--max-retries N] [--timeout SECS] [--max-iters N] \
                 [--journal p|--resume p] \
                 [--trace p.jsonl] [--metrics p.prom] [--tree] [-o out.aag]\n\
                 \n  synth stops gracefully on --timeout/--max-iters/SIGINT/SIGTERM and\n  \
                 exits 3 with a valid best-so-far result (0 completed, 1 error).\n  \
                 als convert <in.aag> -o <out.aag|out.aig|out.v>\n  \
                 als serve --state <dir> [--addr 127.0.0.1:7433] [--runners N]\n           \
                 [--queue-capacity N] [--tenant-running N] [--tenant-queued N]\n  \
                 als job submit <circuit> [--addr A] [--tenant T] [--flow dpsa] \
                 [--metric med]\n           \
                 [--bound X] [--priority high|normal|low] [--patterns N] [--seed S]\n           \
                 [--threads T] [--max-iters N] [--deadline SECS] [--full] [--watch]\n  \
                 als job <status|watch|cancel> <job-id> [--addr A] [--json]\n  \
                 als job list [--addr A] [--json]"
            );
            Ok(Outcome::Completed)
        }
    }
}

/// `als serve`: run the job daemon until SIGINT/SIGTERM, then drain
/// gracefully (running jobs seal their journals and resume on the next
/// start) and exit 0.
fn serve(mut args: impl Iterator<Item = String>) -> Result<Outcome, String> {
    use dualphase_als::serve::{Daemon, DaemonConfig, TenantPolicy};
    let mut state: Option<String> = None;
    let mut addr = "127.0.0.1:7433".to_string();
    let mut runners = 8usize;
    let mut capacity: Option<usize> = None;
    let mut tenant_running: Option<usize> = None;
    let mut tenant_queued: Option<usize> = None;
    while let Some(a) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("missing value for {name}"));
        match a.as_str() {
            "--state" => state = Some(value("--state")?),
            "--addr" => addr = value("--addr")?,
            "--runners" => runners = value("--runners")?.parse().map_err(|_| "bad --runners")?,
            "--queue-capacity" => {
                capacity =
                    Some(value("--queue-capacity")?.parse().map_err(|_| "bad --queue-capacity")?)
            }
            "--tenant-running" => {
                tenant_running =
                    Some(value("--tenant-running")?.parse().map_err(|_| "bad --tenant-running")?)
            }
            "--tenant-queued" => {
                tenant_queued =
                    Some(value("--tenant-queued")?.parse().map_err(|_| "bad --tenant-queued")?)
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    let state = state.ok_or("usage: als serve --state <dir> [--addr host:port]")?;
    let mut cfg = DaemonConfig::new(state);
    cfg.addr = addr;
    cfg.runners = runners;
    if let Some(c) = capacity {
        cfg.queue.capacity = c;
    }
    let defaults = TenantPolicy::default();
    cfg.queue.default_policy = TenantPolicy {
        max_running: tenant_running.unwrap_or(defaults.max_running),
        max_queued: tenant_queued.unwrap_or(defaults.max_queued),
    };
    let stop = dualphase_als::engine::install_signal_handlers();
    let daemon = Daemon::start(cfg).map_err(|e| format!("starting daemon: {e}"))?;
    println!("serving on {} (state {})", daemon.addr(), daemon.state_dir().display());
    while !stop.is_cancelled() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("draining: sealing running jobs for resume on the next start");
    daemon.shutdown().map_err(|e| format!("draining daemon: {e}"))?;
    Ok(Outcome::Completed)
}

/// `als job`: the client side of the job service.
fn job(mut args: impl Iterator<Item = String>) -> Result<Outcome, String> {
    use dualphase_als::serve::{CircuitSource, Client, JobSpec, JobState, Priority};
    let verb = args.next().ok_or("usage: als job <submit|status|watch|cancel|list> ...")?;
    let mut positional: Vec<String> = Vec::new();
    let mut addr = "127.0.0.1:7433".to_string();
    let mut tenant = "default".to_string();
    let mut flow = FlowName::DpSa;
    let mut metric = MetricKind::Med;
    let mut bound: Option<f64> = None;
    let mut priority = Priority::Normal;
    let mut patterns: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut max_iters: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut full = false;
    let mut json = false;
    let mut follow = false;
    while let Some(a) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("missing value for {name}"));
        match a.as_str() {
            "--addr" => addr = value("--addr")?,
            "--tenant" => tenant = value("--tenant")?,
            "--flow" => flow = value("--flow")?.parse().map_err(|e| format!("{e}"))?,
            "--metric" => metric = value("--metric")?.parse().map_err(|e| format!("{e}"))?,
            "--bound" => bound = Some(value("--bound")?.parse().map_err(|_| "bad --bound")?),
            "--priority" => {
                let p = value("--priority")?;
                priority = Priority::from_token(&p)
                    .ok_or_else(|| format!("unknown priority {p} (high|normal|low)"))?;
            }
            "--patterns" => {
                patterns = Some(value("--patterns")?.parse().map_err(|_| "bad --patterns")?)
            }
            "--seed" => seed = Some(value("--seed")?.parse().map_err(|_| "bad --seed")?),
            "--threads" => {
                threads = Some(value("--threads")?.parse().map_err(|_| "bad --threads")?)
            }
            "--max-iters" => {
                max_iters = Some(value("--max-iters")?.parse().map_err(|_| "bad --max-iters")?)
            }
            "--deadline" => {
                let secs: f64 = value("--deadline")?.parse().map_err(|_| "bad --deadline")?;
                deadline_ms = Some((secs * 1000.0) as u64);
            }
            "--full" => full = true,
            "--json" => json = true,
            "--watch" => follow = true,
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            other => positional.push(other.to_string()),
        }
    }
    let client = Client::new(addr);
    let one_id = |what: &str| -> Result<String, String> {
        positional.first().cloned().ok_or_else(|| format!("usage: als job {what} <job-id>"))
    };
    match verb.as_str() {
        "submit" => {
            let target =
                positional.first().ok_or("usage: als job submit <circuit> [options]")?.clone();
            let circuit = if benchmark_names().contains(&target.as_str()) {
                let scale = if full { BenchmarkScale::Paper } else { BenchmarkScale::Reduced };
                CircuitSource::Benchmark { name: target.clone(), scale }
            } else {
                // Anything loadable locally ships as inline ASCII AIGER.
                let aig = load(&target, full)?;
                CircuitSource::Aiger { text: dualphase_als::aig::io::to_ascii_string(&aig) }
            };
            let original = load(&target, full)?;
            let bound = bound.unwrap_or_else(|| match metric {
                MetricKind::Er => 0.01,
                MetricKind::Med => reference_error(original.num_outputs()),
                MetricKind::Mse => {
                    let r = reference_error(original.num_outputs());
                    r * r
                }
            });
            let mut spec = JobSpec::new(&tenant, flow, metric, bound, circuit);
            spec.priority = priority;
            spec.patterns = patterns;
            spec.seed = seed;
            spec.threads = threads;
            spec.max_iters = max_iters;
            spec.deadline_ms = deadline_ms;
            let id = client.submit(&spec).map_err(|e| e.to_string())?;
            println!("{id}");
            if follow {
                let state =
                    client.watch(&id, |line| println!("{line}")).map_err(|e| e.to_string())?;
                eprintln!("job {id}: {}", state.token());
            }
            Ok(Outcome::Completed)
        }
        "status" => {
            let id = one_id("status")?;
            let status = client.status(&id).map_err(|e| e.to_string())?;
            if json {
                println!("{}", status.to_json().render());
            } else {
                print_status(&status);
            }
            Ok(Outcome::Completed)
        }
        "watch" => {
            let id = one_id("watch")?;
            let state = client.watch(&id, |line| println!("{line}")).map_err(|e| e.to_string())?;
            eprintln!("job {id}: {}", state.token());
            if state == JobState::Completed {
                Ok(Outcome::Completed)
            } else {
                // The stream ended without a completed result (cancelled,
                // failed, preempted by a drain): mirror synth's
                // stopped-early exit code.
                Ok(Outcome::Stopped(StopReason::Cancelled))
            }
        }
        "cancel" => {
            let id = one_id("cancel")?;
            let state = client.cancel(&id).map_err(|e| e.to_string())?;
            println!("{}", state.token());
            Ok(Outcome::Completed)
        }
        "list" => {
            let jobs = client.list().map_err(|e| e.to_string())?;
            if json {
                let arr: Vec<_> = jobs.iter().map(|s| s.to_json()).collect();
                println!("{}", dualphase_als::obs::json::Json::Arr(arr).render());
            } else {
                for status in &jobs {
                    print_status(status);
                }
            }
            Ok(Outcome::Completed)
        }
        other => Err(format!("unknown job subcommand {other}")),
    }
}

fn print_status(status: &dualphase_als::serve::JobStatus) {
    let mut line = format!(
        "{}  {:<9}  {}  tenant={}",
        status.id,
        status.state.token(),
        status.flow.token(),
        status.tenant
    );
    if let Some(result) = &status.result {
        let get = |k: &str| result.get(k).and_then(dualphase_als::obs::json::Json::as_f64);
        if let (Some(err), Some(nodes)) = (get("final_error"), get("final_nodes")) {
            line.push_str(&format!("  error={err:.4}  gates={nodes}"));
        }
    }
    if let Some(e) = &status.error {
        line.push_str(&format!("  error: {e}"));
    }
    println!("{line}");
}

fn main() -> ExitCode {
    match run() {
        Ok(Outcome::Completed) => ExitCode::SUCCESS,
        // Distinct from both success and failure: the run was preempted but
        // still produced (and wrote) a valid best-so-far circuit.
        Ok(Outcome::Stopped(reason)) => {
            eprintln!("stopped early: {reason} (result is best-so-far, still within the bound)");
            ExitCode::from(3)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
