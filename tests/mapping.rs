//! Technology-mapping integration tests: every benchmark maps to a
//! functionally verified netlist, before and after approximation.

use dualphase_als::circuits::{benchmark, benchmark_names, BenchmarkScale};
use dualphase_als::map::{map_netlist, verify_mapping, CellLibrary};

#[test]
fn whole_suite_maps_to_verified_netlists() {
    let lib = CellLibrary::new();
    for name in benchmark_names() {
        let aig = benchmark(name, BenchmarkScale::Reduced);
        let (compacted, mapping) = map_netlist(&aig, &lib);
        verify_mapping(&compacted, &mapping, 16).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(mapping.area > 0.0 && mapping.delay > 0.0, "{name}: degenerate mapping");
        // every gate is covered by exactly one cell or absorbed into an XOR
        assert!(mapping.num_cells <= compacted.num_ands(), "{name}: more cells than gates");
        // XOR-heavy arithmetic must actually use XOR cells
        if ["adder", "sm9x8", "mult16", "square"].contains(&name) {
            let xors = mapping
                .cell_counts
                .iter()
                .filter(|(k, _)| {
                    matches!(
                        k,
                        dualphase_als::map::CellKind::Xor2 | dualphase_als::map::CellKind::Xnor2
                    )
                })
                .map(|(_, c)| c)
                .sum::<usize>();
            assert!(xors > 0, "{name}: no XOR cells detected");
        }
    }
}

#[test]
fn approximate_circuits_map_and_verify() {
    use dualphase_als::engine::{DualPhaseFlow, Flow, FlowConfig};
    use dualphase_als::error::{paper_thresholds, MetricKind};
    let lib = CellLibrary::new();
    let original = benchmark("sm9x8", BenchmarkScale::Reduced);
    let bound = paper_thresholds(MetricKind::Mse, original.num_outputs())[2];
    let cfg = FlowConfig::new(MetricKind::Mse, bound).with_patterns(1024);
    let res = DualPhaseFlow::with_self_adaption(cfg).run(&original).unwrap();
    let (compacted, mapping) = map_netlist(&res.circuit, &lib);
    verify_mapping(&compacted, &mapping, 32).unwrap();
    let (oc, om) = map_netlist(&original, &lib);
    let _ = oc;
    assert!(mapping.adp() < om.adp(), "approximation did not reduce ADP");
}
