//! Integration tests of the guarded execution layer.
//!
//! Covers the two failure modes the guard exists for:
//!
//! 1. **Budget overshoot from an unrepresentative estimation sample.** With
//!    a deliberately tiny Monte-Carlo sample the estimator is exact *on its
//!    own patterns* but badly wrong on the input distribution; the strict
//!    guard must re-validate every commit on an independent larger set,
//!    roll back the overshooting candidates and keep the final circuit
//!    within budget.
//! 2. **Corrupted incremental analysis state.** When phase two's cut state
//!    is wrecked mid-run, the spot-check must catch it and fall back to a
//!    fresh comprehensive analysis instead of synthesising on garbage.

use dualphase_als::aig::Aig;
use dualphase_als::circuits::mult::mult;
use dualphase_als::engine::{ConventionalFlow, DualPhaseFlow, Flow, FlowConfig};
use dualphase_als::error::MetricKind;

/// Exact MED of `approx` against `original` over the full input space.
fn true_error(original: &Aig, approx: &Aig) -> f64 {
    let patterns = dualphase_als::sim::PatternSet::exhaustive(original.num_inputs());
    let sim_o = dualphase_als::sim::Simulator::new(original, &patterns);
    let golden: Vec<_> =
        (0..original.num_outputs()).map(|o| sim_o.output_value(original, o)).collect();
    let sim_a = dualphase_als::sim::Simulator::new(approx, &patterns);
    let outs: Vec<_> = (0..approx.num_outputs()).map(|o| sim_a.output_value(approx, o)).collect();
    dualphase_als::error::ErrorState::new(
        MetricKind::Med,
        dualphase_als::error::unsigned_weights(original.num_outputs()),
        golden,
        &outs,
    )
    .error()
}

/// An adversarially small estimation sample: 64 patterns over a 256-point
/// input space of a 4x4 multiplier.
fn adversarial_cfg(bound: f64) -> FlowConfig {
    FlowConfig::new(MetricKind::Med, bound).with_patterns(64).with_seed(1)
}

#[test]
fn strict_guard_holds_the_budget_under_adversarial_sampling() {
    let original = mult(4, 4);
    let bound = 1.0;

    // Without strict validation the tiny sample lets the flow sail far
    // past the budget — this is the failure the guard exists to stop.
    let unguarded = ConventionalFlow::new(adversarial_cfg(bound)).run(&original).unwrap();
    assert!(
        true_error(&original, &unguarded.circuit) > bound,
        "the sample is not adversarial enough to demonstrate an overshoot"
    );

    let res = ConventionalFlow::new(adversarial_cfg(bound).with_strict()).run(&original).unwrap();
    assert!(res.guard.rollbacks >= 1, "no overshoot was ever caught");
    assert!(
        res.final_error <= bound + 1e-9,
        "reported error {} exceeds the bound",
        res.final_error
    );
    assert!(
        true_error(&original, &res.circuit) <= bound + 1e-9,
        "true error escaped the budget despite strict validation"
    );
    dualphase_als::aig::check::check(&res.circuit).unwrap();

    // Stats are internally consistent: every rollback evicted its
    // candidate, every commit and rollback was preceded by a validation.
    assert_eq!(res.guard.rollbacks, res.guard.evictions);
    assert!(res.guard.validations >= res.lacs_applied() + res.guard.rollbacks);
    // Overshoots adaptively grew the validation sample.
    assert!(res.guard.resamples >= 1);
    // Rollback counts surface in the per-iteration records.
    let recorded: usize = res.iterations.iter().map(|it| it.rollbacks).sum();
    assert!(recorded <= res.guard.rollbacks);
}

// Corruption is injected through the fault plan, which is compiled in only
// with the `fault-inject` feature (the chaos build used by CI).
#[cfg(feature = "fault-inject")]
#[test]
fn corrupted_incremental_state_falls_back_to_comprehensive_analysis() {
    use dualphase_als::engine::faultplan::FaultPlan;

    let original = mult(3, 3);
    let cfg = FlowConfig::new(MetricKind::Med, 2.0).with_patterns(256).with_seed(7);
    let res =
        DualPhaseFlow::new(cfg.clone().with_faults(FaultPlan::new().corrupt_cuts_after_round(1)))
            .run(&original)
            .unwrap();
    assert!(res.guard.fallbacks >= 1, "the corruption was never detected");
    assert!(res.final_error <= 2.0 + 1e-9);
    dualphase_als::aig::check::check(&res.circuit).unwrap();

    // Despite the mid-run corruption, quality stays within tolerance of
    // the conventional (always-comprehensive) flow.
    let conv = ConventionalFlow::new(cfg).run(&original).unwrap();
    let diff = res.final_nodes() as i64 - conv.final_nodes() as i64;
    assert!(
        diff.abs() <= 2,
        "fallback run ended at {} gates vs conventional {}",
        res.final_nodes(),
        conv.final_nodes()
    );
}

#[test]
fn default_guard_does_not_change_results() {
    // The flows' estimators are exact on the estimation patterns, so the
    // non-strict guard validates but never rolls back — enabling it must
    // not change any result.
    let original = mult(3, 3);
    let cfg = FlowConfig::new(MetricKind::Med, 2.0).with_patterns(512).with_seed(3);
    let mut off = cfg.clone();
    off.guard.enabled = false;
    let guarded = DualPhaseFlow::new(cfg).run(&original).unwrap();
    let plain = DualPhaseFlow::new(off).run(&original).unwrap();
    assert_eq!(guarded.guard.rollbacks, 0);
    assert_eq!(guarded.final_nodes(), plain.final_nodes());
    assert_eq!(guarded.final_error, plain.final_error);
    assert_eq!(guarded.lacs_applied(), plain.lacs_applied());
}

#[test]
fn panic_inside_a_transaction_still_rolls_back_exactly() {
    // A worker panicking mid-edit must not poison the transaction: after
    // the panic is caught, `rollback_txn` restores the pre-transaction
    // graph exactly, so the engine's catch-and-rollback recovery is sound.
    let mut aig = mult(3, 3);
    let before = dualphase_als::aig::io::to_ascii_string(&aig);

    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        aig.begin_txn();
        let target = aig.iter_ands().next().unwrap();
        dualphase_als::aig::edit::replace(&mut aig, target, dualphase_als::aig::Lit::FALSE);
        panic!("worker died mid-edit");
    }));
    assert!(panicked.is_err());

    assert!(aig.in_txn(), "the open transaction must survive the unwind");
    aig.rollback_txn();
    assert!(!aig.in_txn());
    assert_eq!(dualphase_als::aig::io::to_ascii_string(&aig), before);
    dualphase_als::aig::check::check(&aig).unwrap();
}
