//! Adaptive scheduler invariants, end to end.
//!
//! Three properties are pinned here: cutover decisions are a pure function
//! of the configuration and the observation history (no host dependence
//! once the calibration is fixed); every flow produces byte-identical
//! results whether regions run serial, forced-parallel or with stealing
//! disabled, at every thread count; and cheap simulation regions stay on
//! the caller's thread under the adaptive floors — the guard against
//! paying 30× fan-out overhead on sub-millisecond work.

use dualphase_als::engine::{flows, journal, FlowConfig, FLOW_NAMES};
use dualphase_als::error::MetricKind;
use dualphase_als::obs::{Obs, ObsConfig};
use dualphase_als::par::{Calibration, SchedConfig, Scheduler, WorkerPool};
use dualphase_als::sim::{PatternSet, Simulator};

fn fixed_cal() -> Calibration {
    Calibration { spawn_ns: 20_000, hw_threads: 8 }
}

/// Two schedulers built from the same configuration (fixed calibration)
/// and fed the same observation sequence answer every query identically —
/// the determinism half of the cost model's contract.
#[test]
fn cutover_decisions_are_deterministic_given_identical_observations() {
    let build = || Scheduler::new(SchedConfig::with_calibration(fixed_cal()));
    let (a, b) = (build(), build());
    let observations: &[(usize, u64, u64)] =
        &[(10_000, 64, 320), (5_000, 16, 900), (100_000, 1, 4_000), (256, 128, 70)];
    let queries: &[(usize, u64, usize)] = &[
        (15, 1, 8),
        (100, 1, 8),
        (1_000, 16, 2),
        (6_500, 64, 8),
        (10_000, 64, 8),
        (100_000, 1, 4),
        (1_000_000, 8, 7),
    ];
    for region in ["sim_wave", "cpm_wave", "eval", "cuts"] {
        let (ra, rb) = (a.region(region), b.region(region));
        for &(len, weight, us) in observations {
            let span = std::time::Duration::from_micros(us);
            a.observe(&ra, len, weight, span);
            b.observe(&rb, len, weight, span);
            assert_eq!(ra.unit_ns(), rb.unit_ns(), "model state diverged in {region}");
        }
        for &(len, weight, threads) in queries {
            assert_eq!(
                a.decide(&ra, len, weight, threads),
                b.decide(&rb, len, weight, threads),
                "decision diverged: {region} len={len} weight={weight} threads={threads}"
            );
            assert_eq!(
                a.plan(&ra, len.max(1), weight, threads),
                b.plan(&rb, len.max(1), weight, threads),
                "plan diverged: {region} len={len} weight={weight} threads={threads}"
            );
        }
    }
}

/// Every registered flow, at thread counts {1, 2, 4, 7}, forced-parallel
/// with and without stealing, produces the same serialized circuit and
/// final error as the 1-thread serial run.
#[test]
fn all_flows_byte_identical_to_serial_at_every_thread_count() {
    let aig = dualphase_als::circuits::benchmark(
        "adder",
        dualphase_als::circuits::BenchmarkScale::Reduced,
    );
    let cfg = |sched: SchedConfig, threads: usize| {
        FlowConfig::new(MetricKind::Med, 4.0)
            .with_patterns(512)
            .with_threads(threads)
            .with_sched(sched)
    };
    for &name in FLOW_NAMES {
        let baseline =
            flows::by_name(name, cfg(SchedConfig::default(), 1)).unwrap().run(&aig).unwrap();
        let baseline_bytes = dualphase_als::aig::io::to_ascii_string(&baseline.circuit);
        for threads in [2, 4, 7] {
            for sched in [
                SchedConfig::forced(),
                SchedConfig { steal: false, ..SchedConfig::forced() },
                SchedConfig::with_calibration(fixed_cal()),
            ] {
                let label = format!("{name} at {threads} threads ({:?})", sched.mode);
                let res =
                    flows::by_name(name, cfg(sched.clone(), threads)).unwrap().run(&aig).unwrap();
                assert_eq!(res.final_error, baseline.final_error, "{label}");
                assert_eq!(res.lacs_applied(), baseline.lacs_applied(), "{label}");
                assert_eq!(
                    dualphase_als::aig::io::to_ascii_string(&res.circuit),
                    baseline_bytes,
                    "serialized circuit diverged: {label}"
                );
            }
        }
    }
}

/// Satellite 1: a sub-millisecond simulation never fans out under the
/// adaptive scheduler — the whole-cone decision keeps it on the caller's
/// thread (no spawn, no wave derivation), while the values stay identical
/// to the serial simulator's.
#[test]
fn adaptive_keeps_cheap_simulation_regions_serial() {
    let aig = dualphase_als::circuits::benchmark(
        "adder",
        dualphase_als::circuits::BenchmarkScale::Reduced,
    );
    let patterns = PatternSet::random(aig.num_inputs(), 4, 99);
    let serial = Simulator::new(&aig, &patterns);
    let obs = Obs::new(ObsConfig::default()).unwrap();
    let pool =
        WorkerPool::with_config(4, SchedConfig::with_calibration(fixed_cal())).with_obs(&obs);
    let par = Simulator::new_with(&aig, &patterns, &pool);
    for n in aig.iter_live() {
        assert_eq!(serial.value(n), par.value(n));
    }
    assert_eq!(
        obs.counter("als_pool_regions_total", "").get(),
        0,
        "a tiny simulation paid a parallel fan-out"
    );
}

/// Scheduling is a pure performance knob: journals written under one
/// scheduler (or thread count) resume under any other.
#[test]
fn journal_fingerprint_ignores_scheduler_and_threads() {
    let base = FlowConfig::new(MetricKind::Med, 4.0).with_patterns(512);
    let fp = journal::config_fingerprint(&base, "dpsa");
    for sched in [
        SchedConfig::forced(),
        SchedConfig::legacy(),
        SchedConfig { steal: false, min_items: 1, ..SchedConfig::default() },
        SchedConfig::with_calibration(fixed_cal()),
    ] {
        let cfg = base.clone().with_sched(sched).with_threads(7);
        assert_eq!(journal::config_fingerprint(&cfg, "dpsa"), fp);
    }
    // ...while result-affecting fields still change it.
    let other = base.clone().with_seed(1);
    assert_ne!(journal::config_fingerprint(&other, "dpsa"), fp);
}
