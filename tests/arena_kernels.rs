//! The arena-backed CPM and the fused word-skipping error kernels must be
//! byte-identical to the boxed/materialising reference implementations.
//!
//! Random circuits via proptest, checked at thread counts {1, 4}:
//!
//! * full and partial arena CPM rows vs. the brute-force flip-and-resim
//!   oracle (absent entries must be zero vectors — the arena drops
//!   annihilated entries at write time),
//! * `eval_flips_sparse` over borrowed arena slices vs. materialising the
//!   flip vectors and calling `eval_flips` — exact `f64` bit equality,
//! * the chunked (auto-vectorised/AVX2) sparse kernel vs. the scalar one,
//!   bit-identical for every metric, and the `ALS_SIMD` dispatcher agrees
//!   with both,
//! * batch LAC evaluation through the engine vs. a dense re-evaluation of
//!   every candidate, serial and parallel,
//! * structural dedup inside `evaluate_lacs` is invisible: duplicated
//!   candidate lists return per-candidate results bit-identical to the
//!   brute-force evaluation.

use proptest::prelude::*;

use dualphase_als::aig::{Aig, Lit, NodeId};
use dualphase_als::cpm::reference::{brute_force_row, rows_equivalent};
use dualphase_als::cuts::CutState;
use dualphase_als::error::{unsigned_weights, ErrorState, FlipVec, MetricKind, SparseFlip};
use dualphase_als::lac::{constant_lacs, Lac};
use dualphase_als::par::WorkerPool;
use dualphase_als::sim::{PatternSet, Simulator};

/// Operation encoding for random circuit construction (mirrors props.rs).
#[derive(Clone, Debug)]
struct Op {
    kind: u8,
    a: u16,
    b: u16,
    c: u16,
}

fn arb_ops() -> impl Strategy<Value = (usize, Vec<Op>, u8)> {
    (
        4usize..8,
        proptest::collection::vec(
            (0u8..5, any::<u16>(), any::<u16>(), any::<u16>()).prop_map(|(kind, a, b, c)| Op {
                kind,
                a,
                b,
                c,
            }),
            5..50,
        ),
        1u8..4,
    )
}

fn build_circuit(num_inputs: usize, ops: &[Op], num_outputs: u8) -> Aig {
    let mut aig = Aig::new("random");
    let mut sigs: Vec<Lit> = aig.add_inputs("x", num_inputs);
    for op in ops {
        let pick = |sel: u16, sigs: &[Lit]| {
            let lit = sigs[sel as usize % sigs.len()];
            lit.xor_complement(sel & 0x100 != 0)
        };
        let la = pick(op.a, &sigs);
        let lb = pick(op.b, &sigs);
        let lc = pick(op.c, &sigs);
        let out = match op.kind {
            0 => aig.and(la, lb),
            1 => aig.or(la, lb),
            2 => aig.xor(la, lb),
            3 => aig.mux(la, lb, lc),
            _ => aig.maj(la, lb, lc),
        };
        sigs.push(out);
    }
    let n = sigs.len();
    for (k, &lit) in sigs[n.saturating_sub(num_outputs as usize)..].iter().enumerate() {
        aig.add_output(lit.xor_complement(k % 2 == 1), format!("o{k}"));
    }
    dualphase_als::aig::edit::sweep_dangling(&mut aig);
    aig
}

const THREAD_COUNTS: [usize; 2] = [1, 4];

/// An error state with non-trivial diffs: the golden outputs against the
/// outputs of the same circuit after one constant LAC.
fn perturbed_state(
    aig: &Aig,
    sim: &Simulator,
    patterns: &PatternSet,
    kind: MetricKind,
    pick: u16,
) -> Option<ErrorState> {
    let ands: Vec<NodeId> = aig.iter_ands().collect();
    if ands.is_empty() {
        return None;
    }
    let golden: Vec<_> = (0..aig.num_outputs()).map(|o| sim.output_value(aig, o)).collect();
    let mut copy = aig.clone();
    Lac::const0(ands[pick as usize % ands.len()]).apply(&mut copy);
    let approx_sim = Simulator::new(&copy, patterns);
    let approx: Vec<_> =
        (0..copy.num_outputs()).map(|o| approx_sim.output_value(&copy, o)).collect();
    Some(ErrorState::new(kind, unsigned_weights(aig.num_outputs()), golden, &approx))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arena_full_cpm_equals_brute_force((ni, ops, no) in arb_ops()) {
        let aig = build_circuit(ni, &ops, no);
        let patterns = PatternSet::random(aig.num_inputs(), 2, 31);
        let sim = Simulator::new(&aig, &patterns);
        let cuts = CutState::compute(&aig);
        for threads in THREAD_COUNTS {
            let cpm = dualphase_als::cpm::compute_full_with(
                &aig, &sim, &cuts, &WorkerPool::new(threads),
            ).unwrap();
            for n in aig.iter_live() {
                let reference = brute_force_row(&aig, &patterns, n);
                prop_assert!(
                    rows_equivalent(cpm.row(n).unwrap(), &reference, aig.num_outputs()),
                    "row of {} at {} threads", n, threads
                );
            }
        }
    }

    #[test]
    fn arena_partial_cpm_equals_brute_force(
        (ni, ops, no) in arb_ops(),
        cand_picks in proptest::collection::vec(any::<u16>(), 1..5),
    ) {
        let aig = build_circuit(ni, &ops, no);
        let ands: Vec<NodeId> = aig.iter_ands().collect();
        if ands.is_empty() {
            return Ok(());
        }
        let s_cand: Vec<_> = cand_picks.iter().map(|&p| ands[p as usize % ands.len()]).collect();
        let patterns = PatternSet::random(aig.num_inputs(), 2, 32);
        let sim = Simulator::new(&aig, &patterns);
        let cuts = CutState::compute(&aig);
        for threads in THREAD_COUNTS {
            let (cpm, _) = dualphase_als::cpm::compute_partial_with(
                &aig, &sim, &cuts, &s_cand, &WorkerPool::new(threads),
            ).unwrap();
            for &n in &s_cand {
                let reference = brute_force_row(&aig, &patterns, n);
                prop_assert!(
                    rows_equivalent(cpm.row(n).unwrap(), &reference, aig.num_outputs()),
                    "row of {} at {} threads", n, threads
                );
            }
        }
    }

    #[test]
    fn fused_eval_is_bit_identical_to_materialised_eval(
        (ni, ops, no) in arb_ops(),
        perturb in any::<u16>(),
    ) {
        let aig = build_circuit(ni, &ops, no);
        let patterns = PatternSet::random(aig.num_inputs(), 4, 33);
        let sim = Simulator::new(&aig, &patterns);
        let cuts = CutState::compute(&aig);
        let cpm = dualphase_als::cpm::compute_full(&aig, &sim, &cuts).unwrap();
        for kind in [MetricKind::Er, MetricKind::Med, MetricKind::Mse] {
            let Some(state) = perturbed_state(&aig, &sim, &patterns, kind, perturb) else {
                return Ok(());
            };
            for lac in constant_lacs(&aig, None) {
                let Some(row) = cpm.row(lac.target) else { continue };
                let d = lac.change_vector(&sim);
                // reference: materialise d ∧ P, drop zero vectors, eval_flips
                let dense: Vec<FlipVec> = row
                    .iter()
                    .filter_map(|(o, p)| {
                        let bits = p.and(&d);
                        (!bits.is_zero()).then_some(FlipVec { output: o as usize, bits })
                    })
                    .collect();
                let sparse: Vec<SparseFlip<'_>> = row
                    .iter()
                    .map(|(o, bits)| SparseFlip { output: o as usize, bits })
                    .collect();
                let reference = state.eval_flips(&dense);
                let fused = state.eval_flips_sparse(&d, &sparse);
                prop_assert_eq!(
                    reference.to_bits(), fused.to_bits(),
                    "{} {:?}: {} vs {}", kind, lac, reference, fused
                );
            }
        }
    }

    #[test]
    fn chunked_sparse_eval_is_bit_identical_to_scalar(
        (ni, ops, no) in arb_ops(),
        perturb in any::<u16>(),
    ) {
        let aig = build_circuit(ni, &ops, no);
        let patterns = PatternSet::random(aig.num_inputs(), 4, 34);
        let sim = Simulator::new(&aig, &patterns);
        let cuts = CutState::compute(&aig);
        let cpm = dualphase_als::cpm::compute_full(&aig, &sim, &cuts).unwrap();
        for kind in [MetricKind::Er, MetricKind::Med, MetricKind::Mse] {
            let Some(state) = perturbed_state(&aig, &sim, &patterns, kind, perturb) else {
                return Ok(());
            };
            for lac in constant_lacs(&aig, None) {
                let Some(row) = cpm.row(lac.target) else { continue };
                let d = lac.change_vector(&sim);
                let sparse: Vec<SparseFlip<'_>> = row
                    .iter()
                    .map(|(o, bits)| SparseFlip { output: o as usize, bits })
                    .collect();
                let scalar = state.eval_flips_sparse_scalar(&d, &sparse);
                let chunked = state.eval_flips_sparse_chunked(&d, &sparse);
                prop_assert_eq!(
                    scalar.to_bits(), chunked.to_bits(),
                    "{} {:?}: scalar {} vs chunked {}", kind, lac, scalar, chunked
                );
                // the env-selected dispatcher must agree with both
                let dispatched = state.eval_flips_sparse(&d, &sparse);
                prop_assert_eq!(dispatched.to_bits(), scalar.to_bits());
            }
        }
    }

    #[test]
    fn batch_lac_evaluation_matches_dense_reference((ni, ops, no) in arb_ops()) {
        use dualphase_als::engine::{Ctx, FlowConfig};
        let aig = build_circuit(ni, &ops, no);
        if aig.iter_ands().next().is_none() {
            return Ok(());
        }
        let lacs = constant_lacs(&aig, None);
        let mut per_thread = Vec::new();
        for threads in THREAD_COUNTS {
            let cfg = FlowConfig::new(MetricKind::Med, 1.0)
                .with_patterns(256)
                .with_threads(threads);
            let mut ctx = Ctx::new(&aig, &cfg);
            let cuts = CutState::compute(&ctx.aig);
            let cpm = dualphase_als::cpm::compute_full(&ctx.aig, &ctx.sim, &cuts).unwrap();
            let evals = ctx.evaluate_lacs(&cpm, &lacs).unwrap();
            // dense reference: materialised flip vectors through eval_flips
            for e in &evals {
                let row = cpm.row(e.lac.target).unwrap();
                let d = e.lac.change_vector(&ctx.sim);
                let dense: Vec<FlipVec> = row
                    .iter()
                    .filter_map(|(o, p)| {
                        let bits = p.and(&d);
                        (!bits.is_zero()).then_some(FlipVec { output: o as usize, bits })
                    })
                    .collect();
                let reference = ctx.state.eval_flips(&dense);
                prop_assert_eq!(
                    reference.to_bits(), e.error_after.to_bits(),
                    "{:?} at {} threads", e.lac, threads
                );
            }
            per_thread.push(evals);
        }
        // and serial vs parallel batches are byte-identical
        let (a, b) = (&per_thread[0], &per_thread[1]);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            prop_assert_eq!(x.lac, y.lac);
            prop_assert_eq!(x.error_after.to_bits(), y.error_after.to_bits());
            prop_assert_eq!(x.saving, y.saving);
        }
    }

    /// Structural dedup inside `evaluate_lacs` must be invisible: a
    /// candidate list with literal duplicates (every LAC listed twice)
    /// yields one result per *input* candidate, each bit-identical to the
    /// brute-force per-candidate dense evaluation, with duplicate entries
    /// agreeing exactly.
    #[test]
    fn deduplicated_batch_matches_per_candidate_reference((ni, ops, no) in arb_ops()) {
        use dualphase_als::engine::{Ctx, FlowConfig};
        let aig = build_circuit(ni, &ops, no);
        if aig.iter_ands().next().is_none() {
            return Ok(());
        }
        let base = constant_lacs(&aig, None);
        // Interleave duplicates so representatives and their copies are
        // not adjacent in class order.
        let mut lacs: Vec<Lac> = base.clone();
        lacs.extend(base.iter().copied());
        for threads in THREAD_COUNTS {
            let cfg = FlowConfig::new(MetricKind::Med, 1.0)
                .with_patterns(256)
                .with_threads(threads);
            let mut ctx = Ctx::new(&aig, &cfg);
            let cuts = CutState::compute(&ctx.aig);
            let cpm = dualphase_als::cpm::compute_full(&ctx.aig, &ctx.sim, &cuts).unwrap();
            let evals = ctx.evaluate_lacs(&cpm, &lacs).unwrap();
            // one result per input candidate, in input order
            prop_assert_eq!(evals.len(), lacs.len());
            for (e, lac) in evals.iter().zip(&lacs) {
                prop_assert_eq!(&e.lac, lac);
            }
            // each result bit-identical to the brute-force dense eval
            for e in &evals {
                let row = cpm.row(e.lac.target).unwrap();
                let d = e.lac.change_vector(&ctx.sim);
                let dense: Vec<FlipVec> = row
                    .iter()
                    .filter_map(|(o, p)| {
                        let bits = p.and(&d);
                        (!bits.is_zero()).then_some(FlipVec { output: o as usize, bits })
                    })
                    .collect();
                let reference = ctx.state.eval_flips(&dense);
                prop_assert_eq!(
                    reference.to_bits(), e.error_after.to_bits(),
                    "{:?} at {} threads", e.lac, threads
                );
            }
            // duplicate entries agree exactly (error AND saving)
            let half = base.len();
            for (x, y) in evals[..half].iter().zip(&evals[half..]) {
                prop_assert_eq!(x.lac, y.lac);
                prop_assert_eq!(x.error_after.to_bits(), y.error_after.to_bits());
                prop_assert_eq!(x.saving, y.saving);
            }
        }
    }
}
