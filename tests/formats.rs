//! Cross-format integration tests: BLIF and Verilog emission for the
//! benchmark suite, and BLIF round-trips preserving function.

use dualphase_als::aig::blif::{from_blif_str, to_blif_string};
use dualphase_als::aig::verilog::to_verilog_string;
use dualphase_als::aig::Aig;
use dualphase_als::circuits::{benchmark, BenchmarkScale};
use dualphase_als::sim::{PatternSet, Simulator};

fn outputs_equal(a: &Aig, b: &Aig, words: usize, seed: u64) -> bool {
    let patterns = PatternSet::random(a.num_inputs(), words, seed);
    let sa = Simulator::new(a, &patterns);
    let sb = Simulator::new(b, &patterns);
    (0..a.num_outputs()).all(|o| sa.output_value(a, o) == sb.output_value(b, o))
}

#[test]
fn blif_round_trip_preserves_function_on_benchmarks() {
    for name in ["c880", "c1908", "sm9x8", "adder", "log2"] {
        let aig = benchmark(name, BenchmarkScale::Reduced);
        let text = to_blif_string(&aig);
        let back = from_blif_str(&text, name).unwrap();
        dualphase_als::aig::check::check(&back).unwrap();
        assert_eq!(back.num_inputs(), aig.num_inputs(), "{name}");
        assert_eq!(back.num_outputs(), aig.num_outputs(), "{name}");
        assert!(outputs_equal(&aig, &back, 4, 21), "{name}: function changed");
    }
}

#[test]
fn verilog_emission_covers_the_suite() {
    for name in ["c3540", "mult16", "sin"] {
        let aig = benchmark(name, BenchmarkScale::Reduced);
        let v = to_verilog_string(&aig);
        assert!(v.starts_with("// generated"), "{name}");
        assert_eq!(v.matches("assign n").count(), aig.num_ands(), "{name}");
        assert!(v.contains("endmodule"), "{name}");
    }
}

#[test]
fn biased_distribution_flow_is_sound() {
    use dualphase_als::engine::{DualPhaseFlow, Flow, FlowConfig, PatternSource};
    use dualphase_als::error::{unsigned_weights, ErrorState, MetricKind};

    let original = benchmark("sm9x8", BenchmarkScale::Reduced);
    let bound = 200.0;
    let cfg = FlowConfig::new(MetricKind::Med, bound)
        .with_patterns(1024)
        .with_input_distribution(PatternSource::Biased(0.8));
    let res = DualPhaseFlow::with_self_adaption(cfg.clone()).run(&original).unwrap();
    assert!(res.final_error <= bound * (1.0 + 1e-9));
    // re-measure under the same biased distribution
    let patterns = PatternSet::biased(original.num_inputs(), cfg.pattern_words(), cfg.seed, 0.8);
    let gold = Simulator::new(&original, &patterns);
    let got = Simulator::new(&res.circuit, &patterns);
    let golden: Vec<_> =
        (0..original.num_outputs()).map(|o| gold.output_value(&original, o)).collect();
    let outs: Vec<_> =
        (0..res.circuit.num_outputs()).map(|o| got.output_value(&res.circuit, o)).collect();
    let med =
        ErrorState::new(MetricKind::Med, unsigned_weights(original.num_outputs()), golden, &outs)
            .error();
    assert!((med - res.final_error).abs() < 1e-9, "{med} vs {}", res.final_error);
}
