//! End-to-end integration tests: every flow, on real generated benchmarks,
//! under every metric — verifying bound compliance, structural soundness,
//! independently re-measured error, and actual area savings.

use dualphase_als::aig::Aig;
use dualphase_als::circuits::{benchmark, BenchmarkScale};
use dualphase_als::engine::{
    AccAlsFlow, ConventionalFlow, DualPhaseFlow, Flow, FlowConfig, FlowResult, VecbeeDepthOneFlow,
};
use dualphase_als::error::{paper_thresholds, unsigned_weights, ErrorState, MetricKind};
use dualphase_als::map::{adp_ratio, CellLibrary};
use dualphase_als::sim::{PatternSet, Simulator};

/// Re-measures the error of `approx` against `original` from scratch, on
/// the same pattern configuration the flow used.
fn remeasure(original: &Aig, approx: &Aig, cfg: &FlowConfig) -> f64 {
    let patterns = PatternSet::random(original.num_inputs(), cfg.pattern_words(), cfg.seed);
    let gold_sim = Simulator::new(original, &patterns);
    let approx_sim = Simulator::new(approx, &patterns);
    let golden: Vec<_> =
        (0..original.num_outputs()).map(|o| gold_sim.output_value(original, o)).collect();
    let approx_outs: Vec<_> =
        (0..approx.num_outputs()).map(|o| approx_sim.output_value(approx, o)).collect();
    let state =
        ErrorState::new(cfg.metric, unsigned_weights(original.num_outputs()), golden, &approx_outs);
    state.error()
}

fn check_result(name: &str, flow_name: &str, original: &Aig, cfg: &FlowConfig, res: &FlowResult) {
    dualphase_als::aig::check::check(&res.circuit)
        .unwrap_or_else(|e| panic!("{name}/{flow_name}: broken circuit: {e}"));
    assert!(
        res.final_error <= cfg.error_bound * (1.0 + 1e-9),
        "{name}/{flow_name}: bound violated: {} > {}",
        res.final_error,
        cfg.error_bound
    );
    let independent = remeasure(original, &res.circuit, cfg);
    assert!(
        (independent - res.final_error).abs() <= 1e-9 * (1.0 + independent.abs()),
        "{name}/{flow_name}: reported error {} disagrees with remeasured {}",
        res.final_error,
        independent
    );
    let ratio = adp_ratio(&res.circuit, original, &CellLibrary::new());
    assert!(ratio <= 1.0 + 1e-9, "{name}/{flow_name}: ADP ratio {ratio} exceeds 1.0");
}

fn all_flows(cfg: &FlowConfig) -> Vec<Box<dyn Flow>> {
    vec![
        Box::new(ConventionalFlow::new(cfg.clone())),
        Box::new(VecbeeDepthOneFlow::new(cfg.clone())),
        Box::new(AccAlsFlow::new(cfg.clone())),
        Box::new(DualPhaseFlow::new(cfg.clone())),
        Box::new(DualPhaseFlow::with_self_adaption(cfg.clone())),
    ]
}

#[test]
fn every_flow_is_sound_on_sm9x8_under_every_metric() {
    let original = benchmark("sm9x8", BenchmarkScale::Reduced);
    for metric in MetricKind::ALL {
        let bound = paper_thresholds(metric, original.num_outputs())[1];
        let cfg = FlowConfig::new(metric, bound).with_patterns(1024);
        for flow in all_flows(&cfg) {
            let res = flow.run(&original).unwrap();
            check_result("sm9x8", flow.name(), &original, &cfg, &res);
        }
    }
}

#[test]
fn every_flow_saves_area_on_adder_under_med() {
    let original = benchmark("adder", BenchmarkScale::Reduced);
    let bound = paper_thresholds(MetricKind::Med, original.num_outputs())[1];
    let cfg = FlowConfig::new(MetricKind::Med, bound).with_patterns(1024);
    for flow in all_flows(&cfg) {
        let res = flow.run(&original).unwrap();
        check_result("adder", flow.name(), &original, &cfg, &res);
        assert!(res.final_nodes() < original.num_ands(), "{}: no area saved", flow.name());
    }
}

#[test]
fn dual_phase_matches_conventional_quality_on_suite() {
    // The paper's central quality claim: DP gives the conventional flow's
    // ADP at a fraction of the analyses.
    for name in ["c1908", "sm9x8", "adder"] {
        let original = benchmark(name, BenchmarkScale::Reduced);
        let bound = paper_thresholds(MetricKind::Mse, original.num_outputs())[1];
        let cfg = FlowConfig::new(MetricKind::Mse, bound).with_patterns(1024);
        let conv = ConventionalFlow::new(cfg.clone()).run(&original).unwrap();
        let dp = DualPhaseFlow::new(cfg.clone()).run(&original).unwrap();
        let lib = CellLibrary::new();
        let conv_adp = adp_ratio(&conv.circuit, &original, &lib);
        let dp_adp = adp_ratio(&dp.circuit, &original, &lib);
        assert!(
            dp_adp <= conv_adp + 0.05,
            "{name}: DP quality regressed: {dp_adp:.3} vs conventional {conv_adp:.3}"
        );
        assert!(
            dp.comprehensive_analyses <= conv.comprehensive_analyses,
            "{name}: DP ran more comprehensive analyses than the baseline"
        );
    }
}

#[test]
fn dual_phase_applies_most_lacs_incrementally() {
    use dualphase_als::engine::Phase;
    let original = benchmark("mult16", BenchmarkScale::Reduced);
    let bound = paper_thresholds(MetricKind::Med, original.num_outputs())[1];
    let cfg = FlowConfig::new(MetricKind::Med, bound).with_patterns(1024);
    let res = DualPhaseFlow::new(cfg).run(&original).unwrap();
    let incremental = res.iterations.iter().filter(|r| r.phase == Phase::Incremental).count();
    assert!(res.lacs_applied() >= 10, "too few LACs to be meaningful");
    assert!(
        incremental * 2 > res.lacs_applied(),
        "only {incremental}/{} LACs were incremental",
        res.lacs_applied()
    );
}

#[test]
fn zero_budget_returns_exact_circuit() {
    let original = benchmark("c1908", BenchmarkScale::Reduced);
    let cfg = FlowConfig::new(MetricKind::Er, 0.0).with_patterns(512);
    for flow in all_flows(&cfg) {
        let res = flow.run(&original).unwrap();
        assert_eq!(res.final_error, 0.0, "{}", flow.name());
        // only strictly error-free LACs may have been applied
        let remeasured = remeasure(&original, &res.circuit, &cfg);
        assert_eq!(remeasured, 0.0, "{}", flow.name());
    }
}

#[test]
fn gain_per_error_selection_is_sound() {
    use dualphase_als::engine::SelectionStrategy;
    let original = benchmark("mult16", BenchmarkScale::Reduced);
    let bound = paper_thresholds(MetricKind::Med, original.num_outputs())[1];
    let cfg = FlowConfig::new(MetricKind::Med, bound)
        .with_patterns(1024)
        .with_selection(SelectionStrategy::MaxGainPerError);
    let res = DualPhaseFlow::with_self_adaption(cfg.clone()).run(&original).unwrap();
    check_result("mult16", "DP-SA/gain", &original, &cfg, &res);
    assert!(res.final_nodes() < original.num_ands());
}

#[test]
fn tighter_bounds_never_give_worse_error() {
    let original = benchmark("sm9x8", BenchmarkScale::Reduced);
    let r = paper_thresholds(MetricKind::Med, original.num_outputs());
    let mut last_nodes = 0usize;
    for bound in [r[0], r[1], r[2]] {
        let cfg = FlowConfig::new(MetricKind::Med, bound).with_patterns(1024);
        let res = DualPhaseFlow::with_self_adaption(cfg.clone()).run(&original).unwrap();
        check_result("sm9x8", "DP-SA", &original, &cfg, &res);
        // looser bound -> at most as many remaining gates
        if last_nodes > 0 {
            assert!(res.final_nodes() <= last_nodes + 2, "non-monotone area");
        }
        last_nodes = res.final_nodes();
    }
}
