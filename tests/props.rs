//! Property-based tests over randomly generated AIGs: every incremental
//! data structure must agree with its from-scratch counterpart on
//! arbitrary circuits and arbitrary LAC sequences.

use proptest::prelude::*;

use dualphase_als::aig::{Aig, Lit, NodeId};
use dualphase_als::cuts::CutState;
use dualphase_als::lac::Lac;
use dualphase_als::sim::{PatternSet, Simulator};

/// Operation encoding for random circuit construction.
#[derive(Clone, Debug)]
struct Op {
    kind: u8,
    a: u16,
    b: u16,
    c: u16,
}

fn arb_ops() -> impl Strategy<Value = (usize, Vec<Op>, u8)> {
    (
        4usize..8,
        proptest::collection::vec(
            (0u8..5, any::<u16>(), any::<u16>(), any::<u16>()).prop_map(|(kind, a, b, c)| Op {
                kind,
                a,
                b,
                c,
            }),
            5..50,
        ),
        1u8..4,
    )
}

fn build_circuit(num_inputs: usize, ops: &[Op], num_outputs: u8) -> Aig {
    let mut aig = Aig::new("random");
    let mut sigs: Vec<Lit> = aig.add_inputs("x", num_inputs);
    for op in ops {
        let pick = |sel: u16, sigs: &[Lit]| {
            let lit = sigs[sel as usize % sigs.len()];
            lit.xor_complement(sel & 0x100 != 0)
        };
        let la = pick(op.a, &sigs);
        let lb = pick(op.b, &sigs);
        let lc = pick(op.c, &sigs);
        let out = match op.kind {
            0 => aig.and(la, lb),
            1 => aig.or(la, lb),
            2 => aig.xor(la, lb),
            3 => aig.mux(la, lb, lc),
            _ => aig.maj(la, lb, lc),
        };
        sigs.push(out);
    }
    let n = sigs.len();
    for (k, &lit) in sigs[n.saturating_sub(num_outputs as usize)..].iter().enumerate() {
        aig.add_output(lit.xor_complement(k % 2 == 1), format!("o{k}"));
    }
    dualphase_als::aig::edit::sweep_dangling(&mut aig);
    aig
}

/// A deterministic LAC choice: the `pick`-th live AND replaced by a
/// constant or by a non-TFO signal.
fn choose_lac(aig: &Aig, pick: u16, mode: u8) -> Option<Lac> {
    let ands: Vec<NodeId> = aig.iter_ands().collect();
    if ands.is_empty() {
        return None;
    }
    let target = ands[pick as usize % ands.len()];
    match mode % 3 {
        0 => Some(Lac::const0(target)),
        1 => Some(Lac::const1(target)),
        _ => {
            let tfo = dualphase_als::aig::cone::tfo_cone(aig, target);
            let sub = aig
                .iter_live()
                .find(|&n| n != target && !tfo.contains(&n) && !aig.node(n).is_const0())?;
            Some(Lac::substitute(target, sub.lit().xor_complement(pick & 1 == 1)))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_circuits_are_structurally_sound((ni, ops, no) in arb_ops()) {
        let aig = build_circuit(ni, &ops, no);
        prop_assert!(dualphase_als::aig::check::check(&aig).is_ok());
    }

    #[test]
    fn lac_application_preserves_invariants(
        (ni, ops, no) in arb_ops(),
        picks in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..6),
    ) {
        let mut aig = build_circuit(ni, &ops, no);
        for (pick, mode) in picks {
            let Some(lac) = choose_lac(&aig, pick, mode) else { break };
            lac.apply(&mut aig);
            prop_assert!(dualphase_als::aig::check::check(&aig).is_ok());
        }
    }

    #[test]
    fn incremental_resim_equals_fresh_sim(
        (ni, ops, no) in arb_ops(),
        picks in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..5),
    ) {
        let mut aig = build_circuit(ni, &ops, no);
        let patterns = PatternSet::random(aig.num_inputs(), 4, 99);
        let mut sim = Simulator::new(&aig, &patterns);
        for (pick, mode) in picks {
            let Some(lac) = choose_lac(&aig, pick, mode) else { break };
            let rec = lac.apply(&mut aig);
            sim.resimulate_fanout_cone(&aig, &[rec.replacement.node()]);
        }
        let fresh = Simulator::new(&aig, &patterns);
        for n in aig.iter_live() {
            prop_assert_eq!(sim.value(n), fresh.value(n), "node {}", n);
        }
    }

    #[test]
    fn incremental_cuts_equal_fresh_cuts(
        (ni, ops, no) in arb_ops(),
        picks in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..5),
    ) {
        let mut aig = build_circuit(ni, &ops, no);
        let mut state = CutState::compute(&aig);
        for (pick, mode) in picks {
            let Some(lac) = choose_lac(&aig, pick, mode) else { break };
            let rec = lac.apply(&mut aig);
            state.update_after(&aig, &rec);
        }
        let fresh = CutState::compute(&aig);
        for n in aig.iter_live() {
            prop_assert_eq!(state.reach().mask(n), fresh.reach().mask(n));
            prop_assert_eq!(state.cut(n), fresh.cut(n));
        }
    }

    #[test]
    fn violated_set_covers_all_changed_cuts(
        (ni, ops, no) in arb_ops(),
        pick in any::<u16>(),
        mode in any::<u8>(),
    ) {
        use dualphase_als::cuts::violated_set;
        let mut aig = build_circuit(ni, &ops, no);
        let before = CutState::compute(&aig);
        let Some(lac) = choose_lac(&aig, pick, mode) else { return Ok(()) };
        let rec = lac.apply(&mut aig);
        let sv: std::collections::HashSet<NodeId> =
            violated_set(&aig, &rec).into_iter().collect();
        let fresh = CutState::compute(&aig);
        // S_v must be a superset of every live node whose reachability mask
        // or disjoint cut actually changed — otherwise the incremental
        // refresh would leave stale state behind.
        for n in aig.iter_live() {
            let changed = before.get_cut(n) != fresh.get_cut(n)
                || before.reach().mask(n) != fresh.reach().mask(n);
            if changed {
                prop_assert!(sv.contains(&n), "changed node {} missing from S_v", n);
            }
        }
    }

    #[test]
    fn cpm_prediction_matches_application(
        (ni, ops, no) in arb_ops(),
        pick in any::<u16>(),
        mode in any::<u8>(),
    ) {
        use dualphase_als::error::{unsigned_weights, ErrorState, FlipVec, MetricKind};
        let aig = build_circuit(ni, &ops, no);
        let Some(lac) = choose_lac(&aig, pick, mode) else { return Ok(()) };
        let patterns = PatternSet::random(aig.num_inputs(), 4, 5);
        let sim = Simulator::new(&aig, &patterns);
        let cuts = CutState::compute(&aig);
        let cpm = dualphase_als::cpm::compute_full(&aig, &sim, &cuts).unwrap();
        let golden: Vec<_> =
            (0..aig.num_outputs()).map(|o| sim.output_value(&aig, o)).collect();
        let state = ErrorState::new(
            MetricKind::Med,
            unsigned_weights(aig.num_outputs()),
            golden.clone(),
            &golden,
        );
        let d = lac.change_vector(&sim);
        let flips: Vec<FlipVec> = cpm
            .row(lac.target)
            .unwrap()
            .iter()
            .map(|(o, p)| FlipVec { output: o as usize, bits: p.and(&d) })
            .collect();
        let predicted = state.eval_flips(&flips);

        let mut approx = aig.clone();
        lac.apply(&mut approx);
        let approx_sim = Simulator::new(&approx, &patterns);
        let outs: Vec<_> =
            (0..approx.num_outputs()).map(|o| approx_sim.output_value(&approx, o)).collect();
        let truth = ErrorState::new(
            MetricKind::Med,
            unsigned_weights(aig.num_outputs()),
            golden,
            &outs,
        )
        .error();
        prop_assert!((predicted - truth).abs() < 1e-9, "predicted {} vs {}", predicted, truth);
    }

    #[test]
    fn simplification_preserves_function_and_invariants(
        (ni, ops, no) in arb_ops(),
        picks in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..4),
    ) {
        let mut aig = build_circuit(ni, &ops, no);
        // rough it up with a few LACs to create foldable residue
        for (pick, mode) in picks {
            let Some(lac) = choose_lac(&aig, pick, mode % 2) else { break };
            lac.apply(&mut aig);
        }
        let patterns = PatternSet::random(aig.num_inputs(), 2, 17);
        let before = Simulator::new(&aig, &patterns);
        let before_outs: Vec<_> =
            (0..aig.num_outputs()).map(|o| before.output_value(&aig, o)).collect();
        dualphase_als::aig::simplify::simplify(&mut aig);
        prop_assert!(dualphase_als::aig::check::check(&aig).is_ok());
        let after = Simulator::new(&aig, &patterns);
        for (o, expect) in before_outs.iter().enumerate() {
            prop_assert_eq!(&after.output_value(&aig, o), expect, "output {}", o);
        }
    }

    #[test]
    fn mapping_of_random_circuits_verifies((ni, ops, no) in arb_ops()) {
        use dualphase_als::map::{map_netlist, verify_mapping, CellLibrary};
        let aig = build_circuit(ni, &ops, no);
        let (compacted, mapping) = map_netlist(&aig, &CellLibrary::new());
        prop_assert!(verify_mapping(&compacted, &mapping, 8).is_ok());
    }

    #[test]
    fn aiger_round_trip_preserves_function((ni, ops, no) in arb_ops()) {
        let aig = build_circuit(ni, &ops, no);
        let text = dualphase_als::aig::io::to_ascii_string(&aig);
        let back = dualphase_als::aig::io::from_ascii_str(&text, "rt").unwrap();
        let patterns = PatternSet::random(aig.num_inputs(), 2, 1);
        let sa = Simulator::new(&aig, &patterns);
        let sb = Simulator::new(&back, &patterns);
        for o in 0..aig.num_outputs() {
            prop_assert_eq!(sa.output_value(&aig, o), sb.output_value(&back, o));
        }
    }
}
