//! Parallel analysis must be byte-identical to serial analysis.
//!
//! The worker pool's determinism guarantee (chunk-ordered joins over pure
//! per-item computations) is checked end to end here: random circuits via
//! proptest for the three analysis steps at thread counts {1, 2, 7}, and a
//! whole dual-phase run compared at 1 vs 4 threads — same LAC sequence,
//! same final error, same serialized circuit.

use proptest::prelude::*;

use dualphase_als::aig::{Aig, Lit};
use dualphase_als::cuts::CutState;
use dualphase_als::par::{SchedConfig, WorkerPool};
use dualphase_als::sim::{PatternSet, Simulator};

/// A pool that always fans out when it can: the adaptive scheduler would
/// correctly keep these small test inputs serial (especially on few-core CI
/// hosts), which would make the byte-identity comparison vacuous.
fn forced_pool(threads: usize) -> WorkerPool {
    WorkerPool::with_config(threads, SchedConfig::forced())
}

/// Operation encoding for random circuit construction (mirrors props.rs).
#[derive(Clone, Debug)]
struct Op {
    kind: u8,
    a: u16,
    b: u16,
    c: u16,
}

fn arb_ops() -> impl Strategy<Value = (usize, Vec<Op>, u8)> {
    (
        4usize..8,
        proptest::collection::vec(
            (0u8..5, any::<u16>(), any::<u16>(), any::<u16>()).prop_map(|(kind, a, b, c)| Op {
                kind,
                a,
                b,
                c,
            }),
            5..60,
        ),
        1u8..4,
    )
}

fn build_circuit(num_inputs: usize, ops: &[Op], num_outputs: u8) -> Aig {
    let mut aig = Aig::new("random");
    let mut sigs: Vec<Lit> = aig.add_inputs("x", num_inputs);
    for op in ops {
        let pick = |sel: u16, sigs: &[Lit]| {
            let lit = sigs[sel as usize % sigs.len()];
            lit.xor_complement(sel & 0x100 != 0)
        };
        let la = pick(op.a, &sigs);
        let lb = pick(op.b, &sigs);
        let lc = pick(op.c, &sigs);
        let out = match op.kind {
            0 => aig.and(la, lb),
            1 => aig.or(la, lb),
            2 => aig.xor(la, lb),
            3 => aig.mux(la, lb, lc),
            _ => aig.maj(la, lb, lc),
        };
        sigs.push(out);
    }
    let n = sigs.len();
    for (k, &lit) in sigs[n.saturating_sub(num_outputs as usize)..].iter().enumerate() {
        aig.add_output(lit.xor_complement(k % 2 == 1), format!("o{k}"));
    }
    dualphase_als::aig::edit::sweep_dangling(&mut aig);
    aig
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_cuts_are_bit_identical((ni, ops, no) in arb_ops()) {
        let aig = build_circuit(ni, &ops, no);
        let serial = CutState::compute(&aig);
        for threads in THREAD_COUNTS {
            let par = CutState::compute_with(&aig, &forced_pool(threads)).unwrap();
            prop_assert_eq!(serial.ranks(), par.ranks(), "ranks at {} threads", threads);
            for n in aig.iter_live() {
                prop_assert_eq!(
                    serial.cut(n), par.cut(n), "cut of {} at {} threads", n, threads
                );
                prop_assert_eq!(serial.reach().mask(n), par.reach().mask(n));
            }
        }
    }

    #[test]
    fn parallel_cpm_is_bit_identical((ni, ops, no) in arb_ops()) {
        let aig = build_circuit(ni, &ops, no);
        let patterns = PatternSet::random(aig.num_inputs(), 4, 21);
        let sim = Simulator::new(&aig, &patterns);
        let cuts = CutState::compute(&aig);
        let serial = dualphase_als::cpm::compute_full(&aig, &sim, &cuts).unwrap();
        for threads in THREAD_COUNTS {
            let par = dualphase_als::cpm::compute_full_with(
                &aig, &sim, &cuts, &forced_pool(threads),
            ).unwrap();
            for n in aig.iter_live() {
                prop_assert_eq!(
                    serial.row(n), par.row(n), "row of {} at {} threads", n, threads
                );
            }
        }
    }

    #[test]
    fn parallel_partial_cpm_is_bit_identical(
        (ni, ops, no) in arb_ops(),
        cand_picks in proptest::collection::vec(any::<u16>(), 1..5),
    ) {
        let aig = build_circuit(ni, &ops, no);
        let ands: Vec<_> = aig.iter_ands().collect();
        if ands.is_empty() {
            return Ok(());
        }
        let s_cand: Vec<_> = cand_picks.iter().map(|&p| ands[p as usize % ands.len()]).collect();
        let patterns = PatternSet::random(aig.num_inputs(), 4, 22);
        let sim = Simulator::new(&aig, &patterns);
        let cuts = CutState::compute(&aig);
        let (serial, serial_closure) =
            dualphase_als::cpm::compute_partial(&aig, &sim, &cuts, &s_cand).unwrap();
        for threads in THREAD_COUNTS {
            let (par, par_closure) = dualphase_als::cpm::compute_partial_with(
                &aig, &sim, &cuts, &s_cand, &forced_pool(threads),
            ).unwrap();
            prop_assert_eq!(serial_closure, par_closure);
            for n in aig.iter_live() {
                prop_assert_eq!(serial.row(n), par.row(n), "row of {} at {} threads", n, threads);
            }
        }
    }

    #[test]
    fn parallel_simulation_is_bit_identical((ni, ops, no) in arb_ops()) {
        let aig = build_circuit(ni, &ops, no);
        let patterns = PatternSet::random(aig.num_inputs(), 4, 23);
        let serial = Simulator::new(&aig, &patterns);
        for threads in THREAD_COUNTS {
            let par = Simulator::new_with(&aig, &patterns, &forced_pool(threads));
            for n in aig.iter_live() {
                prop_assert_eq!(
                    serial.value(n), par.value(n), "value of {} at {} threads", n, threads
                );
            }
        }
    }
}

/// An entire dual-phase run is deterministic in the thread count: the same
/// LAC sequence, the same final error and the same serialized circuit.
#[test]
fn dual_phase_run_is_identical_at_any_thread_count() {
    use dualphase_als::engine::{DualPhaseFlow, Flow, FlowConfig};
    use dualphase_als::error::MetricKind;

    let aig = dualphase_als::circuits::benchmark(
        "adder",
        dualphase_als::circuits::BenchmarkScale::Reduced,
    );
    let cfg = |threads| {
        FlowConfig::new(MetricKind::Med, 4.0)
            .with_patterns(1024)
            .with_threads(threads)
            .with_sched(SchedConfig::forced())
    };
    let serial = DualPhaseFlow::with_self_adaption(cfg(1)).run(&aig).unwrap();
    let par = DualPhaseFlow::with_self_adaption(cfg(4)).run(&aig).unwrap();
    assert_eq!(serial.iterations.len(), par.iterations.len());
    for (a, b) in serial.iterations.iter().zip(&par.iterations) {
        assert_eq!(a.lac, b.lac);
        assert_eq!(a.error_after, b.error_after);
        assert_eq!(a.saving, b.saving);
    }
    assert_eq!(serial.final_error, par.final_error);
    assert_eq!(
        dualphase_als::aig::io::to_ascii_string(&serial.circuit),
        dualphase_als::aig::io::to_ascii_string(&par.circuit),
        "serialized circuits diverge between 1 and 4 threads"
    );
}
