//! AIGER round-trip tests on the real benchmark suite: writing a
//! generated circuit and reading it back must preserve function.

use dualphase_als::aig::io::{read, to_ascii_string, write_binary};
use dualphase_als::aig::Aig;
use dualphase_als::circuits::{benchmark, benchmark_names, BenchmarkScale};
use dualphase_als::sim::{PatternSet, Simulator};

fn outputs_equal(a: &Aig, b: &Aig, words: usize, seed: u64) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs());
    assert_eq!(a.num_outputs(), b.num_outputs());
    let patterns = PatternSet::random(a.num_inputs(), words, seed);
    let sa = Simulator::new(a, &patterns);
    let sb = Simulator::new(b, &patterns);
    (0..a.num_outputs()).all(|o| sa.output_value(a, o) == sb.output_value(b, o))
}

#[test]
fn ascii_round_trip_preserves_function_for_whole_suite() {
    for name in benchmark_names() {
        let aig = benchmark(name, BenchmarkScale::Reduced);
        let text = to_ascii_string(&aig);
        let back = dualphase_als::aig::io::from_ascii_str(&text, name).unwrap();
        dualphase_als::aig::check::check(&back).unwrap();
        assert!(outputs_equal(&aig, &back, 4, 7), "{name}: function changed");
    }
}

#[test]
fn binary_round_trip_preserves_function() {
    for name in ["c880", "sm9x8", "adder", "sin"] {
        let aig = benchmark(name, BenchmarkScale::Reduced);
        let mut buf = Vec::new();
        write_binary(&aig, &mut buf).unwrap();
        let back = read(&buf[..], name).unwrap();
        dualphase_als::aig::check::check(&back).unwrap();
        assert!(outputs_equal(&aig, &back, 4, 13), "{name}: function changed");
    }
}

#[test]
fn round_trip_after_approximation() {
    use dualphase_als::engine::{DualPhaseFlow, Flow, FlowConfig};
    use dualphase_als::error::{paper_thresholds, MetricKind};
    let original = benchmark("mult16", BenchmarkScale::Reduced);
    let bound = paper_thresholds(MetricKind::Med, original.num_outputs())[1];
    let cfg = FlowConfig::new(MetricKind::Med, bound).with_patterns(1024);
    let res = DualPhaseFlow::with_self_adaption(cfg).run(&original).unwrap();
    // approximate circuits have dead slots; writing must compact them away
    let text = to_ascii_string(&res.circuit);
    let back = dualphase_als::aig::io::from_ascii_str(&text, "approx").unwrap();
    assert_eq!(back.num_ands(), res.circuit.num_ands());
    assert!(outputs_equal(&res.circuit, &back, 4, 3), "approximate circuit changed");
}
