//! Crash-safety of the run journal: a DP-SA run killed at any commit and
//! resumed from its journal must reproduce the uninterrupted run
//! byte-for-byte.
//!
//! Two interruption mechanisms are exercised:
//!
//! * **In-process:** every persist writes the whole journal image
//!   atomically, so the on-disk state of a killed run is always a
//!   record-boundary prefix (under group commit, the prefix as of the
//!   last checkpoint append or flush). The prefix tests reconstruct
//!   *every* record-boundary prefix from a completed journal and resume
//!   from it — a superset of the reachable crash states, covering a kill
//!   at every iteration, not one lucky point.
//! * **Subprocess:** the `ALS_CRASH_AFTER_COMMITS` hook makes a real
//!   `als synth --journal` process `abort()` right after persisting the
//!   N-th commit; the test then resumes with `als synth --resume` and
//!   compares output files.
//!
//! Torn tails (file truncated mid-record) must silently resume from the
//! last complete record; corrupted checksums must fail with a journal
//! error instead of producing results from garbage.

use std::path::PathBuf;
use std::process::Command;

use dualphase_als::aig::Aig;
use dualphase_als::engine::journal;
use dualphase_als::engine::{DualPhaseFlow, EngineError, Flow, FlowConfig, FlowResult};
use dualphase_als::error::MetricKind;

fn adder() -> Aig {
    dualphase_als::circuits::benchmark("adder", dualphase_als::circuits::BenchmarkScale::Reduced)
}

fn cfg(threads: usize) -> FlowConfig {
    FlowConfig::new(MetricKind::Med, 4.0).with_patterns(1024).with_threads(threads)
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("als-resume-{}-{name}.alsj", std::process::id()));
    p
}

fn ascii(res: &FlowResult) -> String {
    dualphase_als::aig::io::to_ascii_string(&res.circuit)
}

fn assert_same_run(a: &FlowResult, b: &FlowResult, what: &str) {
    assert_eq!(a.iterations.len(), b.iterations.len(), "{what}: LAC counts differ");
    for (x, y) in a.iterations.iter().zip(&b.iterations) {
        assert_eq!(x.lac, y.lac, "{what}");
        assert_eq!(x.error_after.to_bits(), y.error_after.to_bits(), "{what}");
        assert_eq!(x.saving, y.saving, "{what}");
        assert_eq!(x.phase, y.phase, "{what}");
        assert_eq!(x.rollbacks, y.rollbacks, "{what}");
    }
    assert_eq!(a.final_error.to_bits(), b.final_error.to_bits(), "{what}: final error differs");
    assert_eq!(a.guard, b.guard, "{what}: guard stats differ");
    assert_eq!(ascii(a), ascii(b), "{what}: serialized circuits differ");
}

/// Runs journaled to `path`, returning the result.
fn journaled_run(aig: &Aig, threads: usize, path: &PathBuf) -> FlowResult {
    DualPhaseFlow::with_self_adaption(cfg(threads).with_journal(path)).run(aig).unwrap()
}

/// Asserts two journals record the same run. Commit records carry
/// wall-clock step times, so a re-executed suffix is compared with the
/// timing fields masked; everything else must match exactly.
fn assert_same_journal(a: &journal::LoadedJournal, b: &journal::LoadedJournal, what: &str) {
    assert_eq!(a.header.flow, b.header.flow, "{what}");
    assert_eq!(a.header.config_hash, b.header.config_hash, "{what}");
    assert_eq!(a.header.circuit_hash, b.header.circuit_hash, "{what}");
    assert_eq!(a.records.len(), b.records.len(), "{what}: record counts differ");
    for (i, (x, y)) in a.records.iter().zip(&b.records).enumerate() {
        match (x, y) {
            (journal::Record::Checkpoint(x), journal::Record::Checkpoint(y)) => {
                assert_eq!(format!("{x:?}"), format!("{y:?}"), "{what}: checkpoint {i}");
            }
            (journal::Record::Commit(x), journal::Record::Commit(y)) => {
                let (mut x, mut y) = (x.clone(), y.clone());
                x.step_nanos = [0; 4];
                y.step_nanos = [0; 4];
                assert_eq!(format!("{x:?}"), format!("{y:?}"), "{what}: commit {i}");
            }
            (journal::Record::Preempt(x), journal::Record::Preempt(y)) => {
                assert_eq!(format!("{x:?}"), format!("{y:?}"), "{what}: preempt {i}");
            }
            _ => panic!("{what}: record {i} kinds differ"),
        }
    }
}

#[test]
fn journaling_does_not_change_the_result() {
    let aig = adder();
    let path = tmp("inert");
    let plain = DualPhaseFlow::with_self_adaption(cfg(1)).run(&aig).unwrap();
    let journaled = journaled_run(&aig, 1, &path);
    assert_same_run(&plain, &journaled, "journal on vs off");
    assert!(plain.lacs_applied() >= 4, "run too short to be a meaningful crash-test subject");
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_from_every_record_boundary_is_byte_identical() {
    let aig = adder();
    let path = tmp("boundaries");
    let full = journaled_run(&aig, 1, &path);
    let loaded = journal::load(&path).unwrap();
    let n = loaded.records.len();
    assert!(n >= 6, "expected several records, got {n}");

    // A killed run's journal is some record-boundary prefix; try each one
    // (prefix of 0 records = crash before the first checkpoint).
    for cut in 0..n {
        let crash_path = tmp(&format!("cut{cut}"));
        std::fs::write(&crash_path, loaded.image_before(cut)).unwrap();
        let resumed =
            DualPhaseFlow::with_self_adaption(cfg(1).with_resume(&crash_path)).run(&aig).unwrap();
        assert_same_run(&full, &resumed, &format!("resume from {cut}-record prefix"));
        // the resumed journal must converge to the uninterrupted one
        // (modulo the wall-clock timings inside the re-run suffix)
        let rejournaled = journal::load(&crash_path).unwrap();
        assert_same_journal(&loaded, &rejournaled, &format!("journal after cut {cut}"));
        std::fs::remove_file(&crash_path).ok();
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_at_four_threads_matches_a_serial_run() {
    let aig = adder();
    let path = tmp("threads");
    let full = journaled_run(&aig, 1, &path);
    let loaded = journal::load(&path).unwrap();
    let cut = loaded.records.len() / 2;
    std::fs::write(&path, loaded.image_before(cut)).unwrap();
    // threads are excluded from the config fingerprint: a 1-thread journal
    // resumes on 4 threads and must still be byte-identical
    let resumed = DualPhaseFlow::with_self_adaption(cfg(4).with_resume(&path)).run(&aig).unwrap();
    assert_same_run(&full, &resumed, "serial journal resumed on 4 threads");
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_tail_resumes_from_the_last_complete_record() {
    let aig = adder();
    let path = tmp("torntail");
    let full = journaled_run(&aig, 1, &path);
    let bytes = std::fs::read(&path).unwrap();
    // tear the final record mid-write
    std::fs::write(&path, &bytes[..bytes.len() - 11]).unwrap();
    let resumed = DualPhaseFlow::with_self_adaption(cfg(1).with_resume(&path)).run(&aig).unwrap();
    assert_same_run(&full, &resumed, "resume after torn tail");
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_checksum_fails_with_a_journal_error() {
    let aig = adder();
    let path = tmp("badsum");
    journaled_run(&aig, 1, &path);
    let mut bytes = std::fs::read(&path).unwrap();
    // flip a byte inside some mid-file record payload
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let err = DualPhaseFlow::with_self_adaption(cfg(1).with_resume(&path)).run(&aig).unwrap_err();
    assert!(
        matches!(err, EngineError::Journal { ref detail } if detail.contains("checksum")
            || detail.contains("record")),
        "wanted a journal error, got: {err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_rejects_a_journal_from_a_different_run() {
    let aig = adder();
    let path = tmp("identity");
    journaled_run(&aig, 1, &path);
    // different seed -> different config hash
    let other_cfg = cfg(1).with_seed(7).with_resume(&path);
    let err = DualPhaseFlow::with_self_adaption(other_cfg).run(&aig).unwrap_err();
    assert!(
        matches!(err, EngineError::Journal { ref detail } if detail.contains("config")),
        "wanted a config-hash mismatch, got: {err}"
    );
    // different flow (DP vs DP-SA)
    let err = DualPhaseFlow::new(cfg(1).with_resume(&path)).run(&aig).unwrap_err();
    assert!(matches!(err, EngineError::Journal { ref detail } if detail.contains("flow")));
    std::fs::remove_file(&path).ok();
}

/// A resume whose iteration budget is already exhausted by the journaled
/// prefix is a contradiction — the run could only stop immediately and
/// pretend it converged under a limit it never honoured. It must be
/// rejected up front with the typed config error, not silently truncated.
#[test]
fn resume_rejects_an_exhausted_iteration_budget() {
    let aig = adder();
    let path = tmp("budget");
    let full = journaled_run(&aig, 1, &path);
    let journaled = full.iterations.len();
    assert!(journaled >= 2, "need a multi-LAC run to exercise the budget check");
    for limit in [1, journaled] {
        let c = cfg(1).with_max_iters(limit).with_resume(&path);
        let err = DualPhaseFlow::with_self_adaption(c).run(&aig).unwrap_err();
        assert!(
            matches!(err, EngineError::Config(ref d) if d.contains("iteration budget")),
            "limit {limit} vs {journaled} journaled: wanted the budget error, got: {err}"
        );
    }
    // A budget with headroom is fine and honours the limit on the re-run.
    let c = cfg(1).with_max_iters(journaled + 1).with_resume(&path);
    let res = DualPhaseFlow::with_self_adaption(c).run(&aig).unwrap();
    assert!(res.iterations.len() <= journaled + 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn non_dual_phase_flows_reject_journaling() {
    use dualphase_als::engine::{AccAlsFlow, ConventionalFlow, VecbeeDepthOneFlow};
    let aig = adder();
    let path = tmp("reject");
    let c = cfg(1).with_journal(&path);
    for (name, err) in [
        ("conventional", ConventionalFlow::new(c.clone()).run(&aig).unwrap_err()),
        ("l1", VecbeeDepthOneFlow::new(c.clone()).run(&aig).unwrap_err()),
        ("accals", AccAlsFlow::new(c.clone()).run(&aig).unwrap_err()),
    ] {
        assert!(
            matches!(err, EngineError::Config(ref d) if d.contains("journal")),
            "{name}: wanted a config error, got: {err}"
        );
    }
    std::fs::remove_file(&path).ok();
}

/// Kill a real `als` process mid-run with the `ALS_CRASH_AFTER_COMMITS`
/// hook and resume it; the resumed output file must be byte-identical to
/// an uninterrupted run's. CI repeats this under `ALS_THREADS=4`.
#[test]
fn killed_subprocess_resumes_to_an_identical_circuit() {
    let als = env!("CARGO_BIN_EXE_als");
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let journal_path = dir.join(format!("als-kill-{pid}.alsj"));
    let full_out = dir.join(format!("als-kill-{pid}-full.aag"));
    let resumed_out = dir.join(format!("als-kill-{pid}-resumed.aag"));
    let synth = [
        "synth",
        "adder",
        "--flow",
        "dpsa",
        "--metric",
        "med",
        "--bound",
        "4.0",
        "--patterns",
        "1024",
    ];

    // uninterrupted reference run
    let st =
        Command::new(als).args(synth).args(["-o", full_out.to_str().unwrap()]).status().unwrap();
    assert!(st.success());

    // journaled run, aborted right after the 2nd commit is on disk
    let st = Command::new(als)
        .args(synth)
        .args(["--journal", journal_path.to_str().unwrap()])
        .env("ALS_CRASH_AFTER_COMMITS", "2")
        .status()
        .unwrap();
    assert!(!st.success(), "the crash hook should have aborted the run");
    let loaded = journal::load(&journal_path).unwrap();
    assert!(!loaded.records.is_empty(), "the aborted run journaled nothing");

    // resume and finish
    let st = Command::new(als)
        .args(synth)
        .args(["--resume", journal_path.to_str().unwrap()])
        .args(["-o", resumed_out.to_str().unwrap()])
        .status()
        .unwrap();
    assert!(st.success(), "resume failed");

    let full = std::fs::read(&full_out).unwrap();
    let resumed = std::fs::read(&resumed_out).unwrap();
    assert_eq!(full, resumed, "resumed circuit differs from the uninterrupted run");

    for p in [&journal_path, &full_out, &resumed_out] {
        std::fs::remove_file(p).ok();
    }
}

/// SIGTERM a real `als` process mid-run: it must exit with the
/// stopped-early code (3), leave a cleanly sealed journal whose last
/// record is a `Preempt` on a record boundary, and `--resume` must finish
/// the run byte-identically — at 1 thread and at 4.
///
/// The `ALS_HOLD_AT_CHECKPOINT` hook parks the child right after its 2nd
/// checkpoint is durable, giving the test a deterministic window to
/// deliver the signal; the hold loop itself watches the cancel token, so
/// the wakeup and the graceful stop are the same code path as a real
/// mid-run signal.
#[test]
fn sigterm_preempts_gracefully_and_resume_is_byte_identical() {
    let als = env!("CARGO_BIN_EXE_als");
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let ref_journal = dir.join(format!("als-term-{pid}-ref.alsj"));
    let term_journal = dir.join(format!("als-term-{pid}.alsj"));
    let full_out = dir.join(format!("als-term-{pid}-full.aag"));
    let synth = [
        "synth",
        "adder",
        "--flow",
        "dpsa",
        "--metric",
        "med",
        "--bound",
        "4.0",
        "--patterns",
        "1024",
    ];

    // uninterrupted journaled reference run
    let st = Command::new(als)
        .args(synth)
        .args(["--journal", ref_journal.to_str().unwrap()])
        .args(["-o", full_out.to_str().unwrap()])
        .status()
        .unwrap();
    assert!(st.success());
    let reference = journal::load(&ref_journal).unwrap();

    // journaled run that parks itself once its 2nd checkpoint is on disk
    let mut child = Command::new(als)
        .args(synth)
        .args(["--journal", term_journal.to_str().unwrap()])
        .env("ALS_HOLD_AT_CHECKPOINT", "2")
        .spawn()
        .unwrap();

    // wait for the 2nd checkpoint to become durable, then deliver SIGTERM
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        assert!(std::time::Instant::now() < deadline, "child never reached its 2nd checkpoint");
        if let Ok(j) = journal::load(&term_journal) {
            let checkpoints =
                j.records.iter().filter(|r| matches!(r, journal::Record::Checkpoint(_))).count();
            if checkpoints >= 2 {
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let st = Command::new("kill").args(["-TERM", &child.id().to_string()]).status().unwrap();
    assert!(st.success(), "kill -TERM failed");
    let st = child.wait().unwrap();
    assert_eq!(st.code(), Some(3), "a preempted run must exit with the stopped-early code");

    // the journal is sealed on a record boundary with a trailing Preempt,
    // and everything before it is a prefix of the uninterrupted journal
    let loaded = journal::load(&term_journal).unwrap();
    assert!(!loaded.torn_tail, "a graceful stop must never tear the journal");
    assert!(
        matches!(loaded.records.last(), Some(journal::Record::Preempt(_))),
        "a preempted journal must end in a Preempt record"
    );
    let prefix = &loaded.records[..loaded.records.len() - 1];
    assert!(!prefix.is_empty() && prefix.len() <= reference.records.len());
    for (i, (got, want)) in prefix.iter().zip(&reference.records).enumerate() {
        match (got, want) {
            (journal::Record::Checkpoint(x), journal::Record::Checkpoint(y)) => {
                assert_eq!(format!("{x:?}"), format!("{y:?}"), "checkpoint {i}");
            }
            (journal::Record::Commit(x), journal::Record::Commit(y)) => {
                let (mut x, mut y) = (x.clone(), y.clone());
                x.step_nanos = [0; 4];
                y.step_nanos = [0; 4];
                assert_eq!(format!("{x:?}"), format!("{y:?}"), "commit {i}");
            }
            _ => panic!("record {i}: kinds diverge from the reference journal"),
        }
    }

    // resuming the preempted journal finishes the run byte-identically,
    // serially and on 4 threads (threads are outside the fingerprint)
    for threads in [1usize, 4] {
        let resume_journal = dir.join(format!("als-term-{pid}-resume{threads}.alsj"));
        let resumed_out = dir.join(format!("als-term-{pid}-resume{threads}.aag"));
        std::fs::copy(&term_journal, &resume_journal).unwrap();
        let st = Command::new(als)
            .args(synth)
            .args(["--resume", resume_journal.to_str().unwrap()])
            .args(["--threads", &threads.to_string()])
            .args(["-o", resumed_out.to_str().unwrap()])
            .status()
            .unwrap();
        assert!(st.success(), "resume at {threads} threads failed");
        let full = std::fs::read(&full_out).unwrap();
        let resumed = std::fs::read(&resumed_out).unwrap();
        assert_eq!(full, resumed, "resume at {threads} threads diverged from the full run");
        std::fs::remove_file(&resume_journal).ok();
        std::fs::remove_file(&resumed_out).ok();
    }

    for p in [&ref_journal, &term_journal, &full_out] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn cli_rejects_unknown_options_with_nonzero_exit() {
    let als = env!("CARGO_BIN_EXE_als");
    for args in [
        vec!["synth", "--bogus"],
        vec!["synth", "adder", "--bogus"],
        vec!["synth", "adder", "--journal"],
        vec!["stats", "adder", "--bogus"],
        vec!["stats", "--bogus"],
        vec!["convert", "--bogus"],
    ] {
        let out = Command::new(als).args(&args).output().unwrap();
        assert!(!out.status.success(), "als {args:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("unknown option") || stderr.contains("missing value"),
            "als {args:?}: unhelpful error: {stderr}"
        );
    }
}
