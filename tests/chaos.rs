//! Fault-injection ("chaos") suite, compiled only with the
//! `fault-inject` feature:
//!
//! ```text
//! cargo test --features fault-inject --test chaos
//! ```
//!
//! Each injection point of [`FaultPlan`] is driven into a live flow and
//! the test asserts the *specific* designed recovery — a typed error, a
//! rollback, a fallback re-analysis, or a resumable journal. No injected
//! fault may escape as a panic or, worse, a silently wrong result.
#![cfg(feature = "fault-inject")]

use std::path::PathBuf;

use dualphase_als::circuits::mult::mult;
use dualphase_als::engine::faultplan::FaultPlan;
use dualphase_als::engine::journal;
use dualphase_als::engine::{DualPhaseFlow, EngineError, Flow, FlowConfig};
use dualphase_als::error::MetricKind;

fn cfg() -> FlowConfig {
    FlowConfig::new(MetricKind::Med, 2.0).with_patterns(256).with_seed(7)
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("als-chaos-{}-{name}.alsj", std::process::id()));
    p
}

#[test]
fn worker_panic_in_evaluation_becomes_a_typed_error() {
    let plan = FaultPlan::new().panic_in_eval_at_item(5);
    // The parallel pool contains worker panics; the serial pool (1
    // thread) deliberately does not, so this is a 2-thread test.
    let c = cfg().with_threads(2).with_faults(plan.clone());
    let err = DualPhaseFlow::new(c).run(&mult(3, 3)).unwrap_err();
    assert!(matches!(err, EngineError::WorkerPanic(_)), "wanted WorkerPanic, got: {err}");
    assert_eq!(plan.eval_panics_fired(), 1);
}

#[test]
fn forced_overshoot_streak_is_rolled_back_and_the_bound_holds() {
    let plan = FaultPlan::new().force_overshoots(3);
    let c = cfg().with_faults(plan.clone());
    let res = DualPhaseFlow::new(c).run(&mult(3, 3)).unwrap();
    assert_eq!(plan.overshoots_fired(), 3, "the full streak never fired");
    assert!(res.guard.rollbacks >= 3, "forced overshoots were not rolled back");
    assert!(res.final_error <= 2.0 + 1e-9, "bound violated: {}", res.final_error);
    dualphase_als::aig::check::check(&res.circuit).unwrap();

    // the sabotaged run must converge to the clean run's circuit
    let clean = DualPhaseFlow::new(cfg()).run(&mult(3, 3)).unwrap();
    assert_eq!(
        dualphase_als::aig::io::to_ascii_string(&res.circuit),
        dualphase_als::aig::io::to_ascii_string(&clean.circuit),
        "rollbacks changed the result"
    );
}

#[test]
fn corrupted_incremental_analysis_triggers_the_fallback_ladder() {
    let plan = FaultPlan::new().corrupt_cuts_after_round(1);
    let res = DualPhaseFlow::new(cfg().with_faults(plan.clone())).run(&mult(3, 3)).unwrap();
    assert!(plan.corruptions_fired() >= 1, "the corruption never fired");
    assert!(res.guard.fallbacks >= 1, "the corruption was never detected");
    assert!(res.final_error <= 2.0 + 1e-9);
    dualphase_als::aig::check::check(&res.circuit).unwrap();
}

#[test]
fn corruption_surviving_fresh_analysis_is_a_typed_error() {
    // First corrupt the incremental state, then corrupt the fallback's
    // fresh analysis too: the ladder is exhausted and the flow must
    // refuse to report results rather than trust a failed spot-check.
    let plan = FaultPlan::new().corrupt_cuts_after_round(1).corrupt_fresh_analysis();
    let err = DualPhaseFlow::new(cfg().with_faults(plan.clone())).run(&mult(3, 3)).unwrap_err();
    assert!(
        matches!(err, EngineError::CorruptAnalysis { .. }),
        "wanted CorruptAnalysis, got: {err}"
    );
    assert_eq!(plan.corruptions_fired(), 2);
}

#[test]
fn journal_write_failure_is_a_typed_error_and_the_journal_stays_resumable() {
    let aig = mult(3, 3);
    let path = tmp("appendfail");
    let clean_path = tmp("appendfail-clean");

    // Reference: the same run journaled without faults.
    let clean = DualPhaseFlow::new(cfg().with_journal(&clean_path)).run(&aig).unwrap();
    let clean_journal = journal::load(&clean_path).unwrap();

    // Fail the 3rd persist (0-based index 2). Under group commit the
    // persists are the per-iteration checkpoint appends plus the final
    // flush, so the on-disk journal keeps the image of the 2nd persist —
    // a clean record-boundary prefix of the uninterrupted journal.
    let plan = FaultPlan::new().fail_journal_append(2);
    let err = DualPhaseFlow::new(cfg().with_journal(&path).with_faults(plan.clone()))
        .run(&aig)
        .unwrap_err();
    assert!(matches!(err, EngineError::Io { .. }), "wanted Io, got: {err}");
    assert_eq!(plan.journal_failures_fired(), 1);

    let loaded = journal::load(&path).unwrap();
    assert!(!loaded.torn_tail, "injected failure must never tear the journal");
    assert!(
        !loaded.records.is_empty() && loaded.records.len() < clean_journal.records.len(),
        "expected a proper nonempty prefix, got {} of {} records",
        loaded.records.len(),
        clean_journal.records.len()
    );
    // Commit records carry wall-clock step times; mask them before
    // comparing the two runs' records.
    let untimed = |r: &journal::Record| match r {
        journal::Record::Commit(c) => {
            let mut c = c.clone();
            c.step_nanos = [0; 4];
            journal::Record::Commit(c)
        }
        cp => cp.clone(),
    };
    for (i, (got, want)) in loaded.records.iter().zip(&clean_journal.records).enumerate() {
        assert_eq!(
            untimed(got),
            untimed(want),
            "record {i}: the surviving journal must be a prefix of the uninterrupted one"
        );
    }

    // Resuming from the aborted journal finishes the run exactly.
    let resumed = DualPhaseFlow::new(cfg().with_resume(&path)).run(&aig).unwrap();
    assert_eq!(resumed.final_error.to_bits(), clean.final_error.to_bits());
    assert_eq!(
        dualphase_als::aig::io::to_ascii_string(&resumed.circuit),
        dualphase_als::aig::io::to_ascii_string(&clean.circuit),
        "resume after an I/O fault diverged"
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&clean_path).ok();
}

#[test]
fn journal_dir_sync_failure_is_a_typed_error_and_the_journal_stays_resumable() {
    let aig = mult(3, 3);
    let path = tmp("dirsyncfail");

    // Fail the parent-directory fsync of the 2nd persist (0-based index
    // 1): the rename already landed, so unlike an append failure the new
    // image IS on disk — the writer must still surface the error (the
    // directory entry is not durable) and leave a loadable journal.
    let plan = FaultPlan::new().fail_journal_dir_sync(1);
    let err = DualPhaseFlow::new(cfg().with_journal(&path).with_faults(plan.clone()))
        .run(&aig)
        .unwrap_err();
    assert!(matches!(err, EngineError::Io { .. }), "wanted Io, got: {err}");
    assert_eq!(plan.dir_sync_failures_fired(), 1);

    let loaded = journal::load(&path).unwrap();
    assert!(!loaded.torn_tail, "a dir-sync failure must never tear the journal");
    assert!(!loaded.records.is_empty());

    // Resuming from the journal finishes the run exactly.
    let resumed = DualPhaseFlow::new(cfg().with_resume(&path)).run(&aig).unwrap();
    let clean = DualPhaseFlow::new(cfg()).run(&aig).unwrap();
    assert_eq!(resumed.final_error.to_bits(), clean.final_error.to_bits());
    assert_eq!(
        dualphase_als::aig::io::to_ascii_string(&resumed.circuit),
        dualphase_als::aig::io::to_ascii_string(&clean.circuit),
        "resume after a dir-sync fault diverged"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn transient_journal_failures_are_retried_through() {
    let aig = mult(3, 3);
    let path = tmp("transient");
    let clean_path = tmp("transient-clean");

    let clean = DualPhaseFlow::new(cfg().with_journal(&clean_path)).run(&aig).unwrap();

    // Two consecutive EINTR-class write failures: both inside the retry
    // budget, so the run must succeed as if nothing happened.
    let plan = FaultPlan::new().fail_journal_append_transient(2);
    let res =
        DualPhaseFlow::new(cfg().with_journal(&path).with_faults(plan.clone())).run(&aig).unwrap();
    assert_eq!(plan.transient_failures_fired(), 2, "both transient faults must fire");
    assert_eq!(res.stop, dualphase_als::engine::StopReason::Converged);
    assert_eq!(res.final_error.to_bits(), clean.final_error.to_bits());
    assert_eq!(
        dualphase_als::aig::io::to_ascii_string(&res.circuit),
        dualphase_als::aig::io::to_ascii_string(&clean.circuit),
        "retried writes changed the result"
    );

    // The journal is complete: it replays to the same final circuit.
    let loaded = journal::load(&path).unwrap();
    assert!(!loaded.torn_tail);
    let clean_journal = journal::load(&clean_path).unwrap();
    assert_eq!(loaded.records.len(), clean_journal.records.len());
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&clean_path).ok();
}

#[test]
fn tripped_deadline_stops_gracefully_mid_iteration() {
    let aig = mult(3, 3);
    let path = tmp("deadline");

    // Force the governor's deadline to expire at round 1 of phase two:
    // the run must stop gracefully with a best-so-far circuit and a
    // sealed, resumable journal — not an error.
    let plan = FaultPlan::new().trip_deadline_at_round(1);
    let res =
        DualPhaseFlow::new(cfg().with_journal(&path).with_faults(plan.clone())).run(&aig).unwrap();
    assert_eq!(plan.deadline_trips_fired(), 1, "the deadline trip never fired");
    assert!(
        matches!(res.stop, dualphase_als::engine::StopReason::Deadline { .. }),
        "wanted Deadline, got: {:?}",
        res.stop
    );
    assert!(res.final_error <= 2.0 + 1e-9, "bound violated: {}", res.final_error);
    dualphase_als::aig::check::check(&res.circuit).unwrap();

    // The journal is sealed with a Preempt record on a clean boundary.
    let loaded = journal::load(&path).unwrap();
    assert!(!loaded.torn_tail, "a graceful stop must never tear the journal");
    assert!(
        matches!(loaded.records.last(), Some(journal::Record::Preempt(_))),
        "a preempted journal must end in a Preempt record"
    );

    // Resuming without the fault finishes the run and converges to the
    // clean result.
    let resumed = DualPhaseFlow::new(cfg().with_resume(&path)).run(&aig).unwrap();
    let clean = DualPhaseFlow::new(cfg()).run(&aig).unwrap();
    assert_eq!(resumed.stop, dualphase_als::engine::StopReason::Converged);
    assert_eq!(resumed.final_error.to_bits(), clean.final_error.to_bits());
    assert_eq!(
        dualphase_als::aig::io::to_ascii_string(&resumed.circuit),
        dualphase_als::aig::io::to_ascii_string(&clean.circuit),
        "resume after a graceful preemption diverged"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn unarmed_plan_is_inert() {
    let plan = FaultPlan::new();
    let sab = DualPhaseFlow::new(cfg().with_faults(plan.clone())).run(&mult(3, 3)).unwrap();
    let clean = DualPhaseFlow::new(cfg()).run(&mult(3, 3)).unwrap();
    assert_eq!(plan.eval_panics_fired(), 0);
    assert_eq!(plan.overshoots_fired(), 0);
    assert_eq!(plan.corruptions_fired(), 0);
    assert_eq!(plan.journal_failures_fired(), 0);
    assert_eq!(plan.transient_failures_fired(), 0);
    assert_eq!(plan.deadline_trips_fired(), 0);
    assert_eq!(
        dualphase_als::aig::io::to_ascii_string(&sab.circuit),
        dualphase_als::aig::io::to_ascii_string(&clean.circuit)
    );
}
