//! The observability layer must be *invisible* to synthesis: an enabled
//! run (JSONL trace + Prometheus export) produces byte-identical circuits
//! and bit-identical errors to a disabled run, at any thread count.
//!
//! Beyond invisibility, the trace must be *honest*: the engine feeds its
//! `StepTimes` accumulators from the very `Span::finish` values that land
//! in the JSONL stream, so summing `dur_ns` per step name must reproduce
//! `StepTimes` exactly — no second clock, no drift.

use std::path::PathBuf;

use proptest::prelude::*;

use dualphase_als::aig::Aig;
use dualphase_als::obs::prom;
use dualphase_als::prelude::*;

fn adder() -> Aig {
    dualphase_als::circuits::benchmark("adder", dualphase_als::circuits::BenchmarkScale::Reduced)
}

fn cfg(threads: usize) -> FlowConfig {
    FlowConfig::builder(MetricKind::Med, 4.0).patterns(1024).threads(threads).build().unwrap()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("als-obs-it");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

fn ascii(res: &FlowResult) -> String {
    dualphase_als::aig::io::to_ascii_string(&res.circuit)
}

fn run_dpsa(cfg: FlowConfig) -> FlowResult {
    flows::by_name("dpsa", cfg).unwrap().run(&adder()).unwrap()
}

fn assert_same_synthesis(plain: &FlowResult, traced: &FlowResult, what: &str) {
    assert_eq!(ascii(plain), ascii(traced), "{what}: circuits differ");
    assert_eq!(
        plain.final_error.to_bits(),
        traced.final_error.to_bits(),
        "{what}: final error differs"
    );
    assert_eq!(plain.iterations.len(), traced.iterations.len(), "{what}: LAC counts differ");
    for (a, b) in plain.iterations.iter().zip(&traced.iterations) {
        assert_eq!(a.lac, b.lac, "{what}: LAC sequence diverged");
        assert_eq!(a.error_after.to_bits(), b.error_after.to_bits(), "{what}");
    }
    assert_eq!(plain.guard, traced.guard, "{what}: guard stats differ");
}

/// Pulls `"key":<integer>` out of a JSONL line (no serde in-tree).
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Pulls `"key":"value"` out of a JSONL line.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let at = line.find(&needle)? + needle.len();
    line[at..].split('"').next()
}

#[test]
fn enabled_runs_are_byte_identical_to_disabled_runs() {
    for threads in [1usize, 4] {
        let plain = run_dpsa(cfg(threads));
        let trace = tmp(&format!("ident-{threads}.jsonl"));
        let metrics = tmp(&format!("ident-{threads}.prom"));
        let obs = Obs::new(ObsConfig {
            trace: Some(trace.clone()),
            metrics: Some(metrics.clone()),
            tree: false,
        })
        .unwrap();
        let traced = run_dpsa(cfg(threads).with_obs(obs.clone()));
        obs.finish().unwrap();
        assert_same_synthesis(&plain, &traced, &format!("threads={threads}"));
        assert!(std::fs::metadata(&trace).unwrap().len() > 0, "empty trace");
        assert!(std::fs::metadata(&metrics).unwrap().len() > 0, "empty metrics");
    }
}

#[test]
fn jsonl_span_totals_reproduce_step_times_exactly() {
    let trace = tmp("totals.jsonl");
    let obs =
        Obs::new(ObsConfig { trace: Some(trace.clone()), metrics: None, tree: false }).unwrap();
    let res = run_dpsa(cfg(1).with_obs(obs.clone()));
    obs.finish().unwrap();

    let text = std::fs::read_to_string(&trace).unwrap();
    let mut totals = std::collections::BTreeMap::new();
    for line in text.lines() {
        let name = json_str(line, "name").expect("span event without a name");
        let dur = json_u64(line, "dur_ns").expect("span event without dur_ns");
        *totals.entry(name.to_string()).or_insert(0u64) += dur;
    }

    // One source of truth: StepTimes is accumulated from the same
    // Span::finish durations the trace records, so the sums are *equal*,
    // not merely close.
    let t = &res.step_times;
    for (span_name, step_total) in
        [("cuts", t.cuts), ("cpm", t.cpm), ("eval", t.eval), ("apply", t.apply)]
    {
        assert_eq!(
            totals.get(span_name).copied().unwrap_or(0),
            step_total.as_nanos() as u64,
            "span {span_name:?} diverged from StepTimes"
        );
    }
    // The hierarchy is present: a single flow root enclosing iterations.
    assert_eq!(totals.get("flow").map(|_| 1), Some(1));
    assert!(totals.contains_key("iteration"));
    assert!(totals.contains_key("phase1"));
}

#[test]
fn prometheus_export_passes_lint_and_covers_the_engine() {
    let metrics = tmp("lint.prom");
    let obs =
        Obs::new(ObsConfig { trace: None, metrics: Some(metrics.clone()), tree: false }).unwrap();
    let res = run_dpsa(cfg(2).with_obs(obs.clone()));
    obs.finish().unwrap();

    let text = std::fs::read_to_string(&metrics).unwrap();
    let families = prom::lint(&text).expect("promlint failed");
    assert!(families >= 10, "expected a well-populated registry, got {families} families");
    for required in [
        "als_iterations_total",
        "als_cut_recomputations_total",
        "als_cpm_rows_built_total",
        "als_cpc_violations_total",
        "als_guard_validations_total",
        "als_pool_regions_total",
        "als_s_cand_size",
    ] {
        assert!(text.contains(required), "metric {required} missing from:\n{text}");
    }
    // The exported counters reflect the run that produced them.
    let applied: u64 = res.iterations.len() as u64;
    assert!(
        text.contains(&format!("als_iterations_total {applied}")),
        "als_iterations_total should equal {applied}:\n{text}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Instrumentation stays invisible across seeds, pattern budgets and
    /// flows — not just for the one configuration pinned above.
    #[test]
    fn observability_never_changes_results(
        seed in 0u64..1000,
        patterns in 256usize..1024,
        flow_idx in 0usize..FLOW_NAMES.len(),
    ) {
        let name = FLOW_NAMES[flow_idx];
        let build = |obs: Obs| {
            let cfg = FlowConfig::builder(MetricKind::Med, 4.0)
                .patterns(patterns)
                .seed(seed)
                .build()
                .unwrap()
                .with_obs(obs);
            flows::by_name(name, cfg).unwrap().run(&adder()).unwrap()
        };
        let plain = build(Obs::disabled());
        let trace = tmp(&format!("prop-{name}-{seed}-{patterns}.jsonl"));
        let obs = Obs::new(ObsConfig { trace: Some(trace), metrics: None, tree: false }).unwrap();
        let traced = build(obs.clone());
        obs.finish().unwrap();
        prop_assert_eq!(ascii(&plain), ascii(&traced));
        prop_assert_eq!(plain.final_error.to_bits(), traced.final_error.to_bits());
    }
}
