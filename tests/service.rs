//! End-to-end tests of the job service: an in-process daemon exercised
//! through the public [`Client`], covering concurrent execution with
//! per-tenant limits, cancellation, watch streaming (byte-identical to
//! the JSONL trace), graceful preemption with journal resume across a
//! daemon restart, and the operational HTTP endpoints.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use dualphase_als::circuits::BenchmarkScale;
use dualphase_als::prelude::*;
use dualphase_als::serve::{
    CircuitSource, Client, Daemon, DaemonConfig, JobSpec, JobState, TenantPolicy,
};

fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("als-service-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn flow_spec(tenant: &str, flow: FlowName, name: &str, patterns: usize, bound: f64) -> JobSpec {
    let mut spec = JobSpec::new(
        tenant,
        flow,
        MetricKind::Med,
        bound,
        CircuitSource::Benchmark { name: name.into(), scale: BenchmarkScale::Reduced },
    );
    spec.patterns = Some(patterns);
    spec.threads = Some(1);
    spec
}

fn bench_spec(tenant: &str, name: &str, patterns: usize, bound: f64) -> JobSpec {
    flow_spec(tenant, FlowName::DpSa, name, patterns, bound)
}

/// The direct (in-process, no service) run of the same spec — the
/// reference the service result must match byte for byte.
///
/// Byte-for-byte comparisons across *different process conditions* use
/// [`FlowName::Dp`]: DP-SA's self-adaption tunes its candidate-set size
/// from the measured dominating analysis step (that is the paper's
/// algorithm), so its trajectory legitimately depends on machine load,
/// while DP's fixed parameters make it bit-reproducible anywhere.
fn direct_run(flow: FlowName, name: &str, patterns: usize, bound: f64) -> FlowResult {
    let aig = dualphase_als::circuits::benchmark(name, BenchmarkScale::Reduced);
    let cfg = FlowConfig::new(MetricKind::Med, bound).with_patterns(patterns).with_threads(1);
    by_name(flow, cfg).unwrap().run(&aig).unwrap()
}

fn wait_until(what: &str, timeout: Duration, mut f: impl FnMut() -> bool) {
    let start = Instant::now();
    while !f() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The full service lifecycle: three concurrent jobs — one watched to
/// completion (stream byte-identical to its trace file and result
/// byte-identical to a direct run), one cancelled mid-run, one preempted
/// by a graceful drain and resumed by a fresh daemon on the same state
/// directory to a byte-identical result.
#[test]
fn service_end_to_end() {
    let dir = state_dir("e2e");
    let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
    let client = Client::new(daemon.addr().to_string());

    // Job C first: the long-running preemption target. DP, not DP-SA: the
    // byte-identity assertion below compares runs under different machine
    // load (see `direct_run`).
    let preempt_id = client.submit(&flow_spec("acme", FlowName::Dp, "sm9x8", 2048, 40.0)).unwrap();
    // Job B: cancelled once it is observably running.
    let cancel_id = client.submit(&bench_spec("acme", "sm9x8", 1024, 40.0)).unwrap();
    // Job A: watched from submission to completion.
    let done_id = client.submit(&bench_spec("acme", "adder", 1024, 4.0)).unwrap();

    // --- watch A to completion; the stream is the JSONL trace, live ----
    let mut streamed: Vec<String> = Vec::new();
    let end = client.watch(&done_id, |line| streamed.push(line.to_string())).unwrap();
    assert_eq!(end, JobState::Completed);
    let job_dir = dir.join("jobs").join(&done_id);
    let trace = std::fs::read_to_string(job_dir.join("trace.jsonl")).unwrap();
    let trace_lines: Vec<&str> = trace.lines().collect();
    assert_eq!(streamed, trace_lines, "watch must stream exactly the lines the JSONL sink records");
    assert!(
        streamed.iter().any(|l| l.contains("\"iteration\"")),
        "the stream carries per-iteration progress"
    );

    // --- A's result is byte-identical to a direct Flow::run ------------
    let direct = direct_run(FlowName::DpSa, "adder", 1024, 4.0);
    let service_aag = std::fs::read_to_string(job_dir.join("result.aag")).unwrap();
    assert_eq!(
        service_aag,
        dualphase_als::aig::io::to_ascii_string(&direct.circuit),
        "service and direct runs must produce identical circuits"
    );
    let status = client.status(&done_id).unwrap();
    let result = status.result.clone().expect("completed job carries the result document");
    assert_eq!(
        result.get("final_error").and_then(|v| v.as_f64()),
        Some(direct.final_error),
        "the status document reports the run's exact final error"
    );
    assert_eq!(status.stop(), Some(StopReason::Converged));

    // --- cancel B mid-run ----------------------------------------------
    wait_until("the cancel target to start", Duration::from_secs(60), || {
        client.status(&cancel_id).unwrap().state == JobState::Running
    });
    client.cancel(&cancel_id).unwrap();
    wait_until("the cancellation to land", Duration::from_secs(60), || {
        client.status(&cancel_id).unwrap().state == JobState::Cancelled
    });

    // --- drain the daemon while C runs ----------------------------------
    let preempt_dir = dir.join("jobs").join(&preempt_id);
    wait_until("the preempt target to journal an iteration", Duration::from_secs(60), || {
        client.status(&preempt_id).unwrap().state == JobState::Running
            && preempt_dir.join("trace.jsonl").is_file()
            && std::fs::read_to_string(preempt_dir.join("trace.jsonl"))
                .unwrap_or_default()
                .contains("\"iteration\"")
    });
    daemon.shutdown().unwrap();
    let persisted = std::fs::read_to_string(preempt_dir.join("state.json")).unwrap();
    assert!(
        persisted.contains("\"preempted\""),
        "a drained running job persists as preempted, got: {persisted}"
    );
    assert!(preempt_dir.join("run.alsj").is_file(), "the sealed journal survives the drain");

    // --- a fresh daemon resumes C from its journal ----------------------
    let daemon2 = Daemon::start(DaemonConfig::new(&dir)).unwrap();
    let client2 = Client::new(daemon2.addr().to_string());
    wait_until("the resumed job to complete", Duration::from_secs(300), || {
        client2.status(&preempt_id).unwrap().state == JobState::Completed
    });
    let resumed_aag = std::fs::read_to_string(preempt_dir.join("result.aag")).unwrap();
    let uninterrupted = direct_run(FlowName::Dp, "sm9x8", 2048, 40.0);
    assert_eq!(
        resumed_aag,
        dualphase_als::aig::io::to_ascii_string(&uninterrupted.circuit),
        "a preempted-and-resumed job must reproduce the uninterrupted run byte for byte"
    );

    // --- operational endpoints are consistent with reality --------------
    assert_eq!(client2.http_get("/healthz").unwrap(), "ok\n");
    let metrics = client2.http_get("/metrics").unwrap();
    dualphase_als::obs::prom::lint(&metrics).expect("/metrics passes the exposition lint");
    assert!(
        metrics.contains("als_serve_jobs_resumed_total 1"),
        "the restart resumed exactly one journaled job:\n{metrics}"
    );
    assert!(
        metrics.contains("als_serve_jobs_completed_total 1"),
        "this daemon instance completed exactly the resumed job:\n{metrics}"
    );
    assert!(client2.http_get("/nonsense").is_err(), "unknown paths are 404s");

    // All three jobs are visible with their final states.
    let jobs = client2.list().unwrap();
    let state_of = |id: &str| jobs.iter().find(|j| j.id == *id).unwrap().state;
    assert_eq!(state_of(&done_id), JobState::Completed);
    assert_eq!(state_of(&cancel_id), JobState::Cancelled);
    assert_eq!(state_of(&preempt_id), JobState::Completed);

    daemon2.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Eight tenants, one running slot each: all eight jobs execute
/// concurrently, while a tenant's second job waits until its first
/// finishes — the per-tenant ceiling, not the runner fleet, is the
/// binding constraint.
#[test]
fn concurrency_with_per_tenant_limits() {
    let dir = state_dir("tenants");
    let mut cfg = DaemonConfig::new(&dir);
    cfg.runners = 8;
    cfg.queue.default_policy = TenantPolicy { max_running: 1, max_queued: 8 };
    let daemon = Daemon::start(cfg).unwrap();
    let client = Client::new(daemon.addr().to_string());

    let mut first_wave = Vec::new();
    for t in 0..8 {
        first_wave
            .push(client.submit(&bench_spec(&format!("tenant-{t}"), "adder", 4096, 4.0)).unwrap());
    }
    // A second job for tenant-0 must queue behind its first.
    let second = client.submit(&bench_spec("tenant-0", "adder", 1024, 4.0)).unwrap();

    wait_until("all eight tenants to run concurrently", Duration::from_secs(120), || {
        let jobs = client.list().unwrap();
        let running = jobs.iter().filter(|j| j.state == JobState::Running).count();
        let second_state = jobs.iter().find(|j| j.id == second).unwrap().state;
        assert_ne!(
            second_state,
            JobState::Running,
            "tenant-0's second job must wait for its first (max_running = 1)"
        );
        running >= 8
    });

    wait_until("every job to complete", Duration::from_secs(300), || {
        client.list().unwrap().iter().all(|j| j.state == JobState::Completed)
    });
    daemon.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control and protocol rejections are typed and immediate.
#[test]
fn typed_rejections() {
    let dir = state_dir("reject");
    let mut cfg = DaemonConfig::new(&dir);
    cfg.runners = 1;
    cfg.queue.default_policy = TenantPolicy { max_running: 1, max_queued: 1 };
    let daemon = Daemon::start(cfg).unwrap();
    let client = Client::new(daemon.addr().to_string());

    // Unknown benchmark: rejected before anything lands on disk.
    let mut spec = bench_spec("t", "warp-core", 1024, 4.0);
    assert_eq!(client.submit(&spec).unwrap_err().code, "unknown_benchmark");

    // Malformed inline AIGER: same.
    spec.circuit = CircuitSource::Aiger { text: "not an aiger file".into() };
    assert_eq!(client.submit(&spec).unwrap_err().code, "bad_aiger");

    // A contradictory engine config is a submit-time rejection, not a
    // failed job: zero iteration budget can never apply a LAC.
    let mut spec = bench_spec("t", "adder", 1024, 4.0);
    spec.max_iters = Some(0);
    assert_eq!(client.submit(&spec).unwrap_err().code, "zero_iter_limit");

    // Per-tenant queue ceiling: 1 running + 1 queued, the next is turned
    // away. A slow first job holds the runner.
    let _running = client.submit(&bench_spec("t", "sm9x8", 2048, 40.0)).unwrap();
    wait_until("the first job to occupy the runner", Duration::from_secs(60), || {
        client.list().unwrap().iter().any(|j| j.state == JobState::Running)
    });
    let _queued = client.submit(&bench_spec("t", "adder", 1024, 4.0)).unwrap();
    let over = client.submit(&bench_spec("t", "adder", 1024, 4.0)).unwrap_err();
    assert_eq!(over.code, "tenant_queue_full");

    // Unknown job ids are typed, not hangs.
    assert_eq!(client.status("j-999999").unwrap_err().code, "not_found");
    assert_eq!(client.cancel("j-999999").unwrap_err().code, "not_found");
    assert_eq!(client.watch("j-999999", |_| {}).unwrap_err().code, "not_found");

    // Cancelling a queued job is immediate; cancelling it again conflicts.
    assert_eq!(client.cancel(&_queued).unwrap(), JobState::Cancelled);
    assert_eq!(client.cancel(&_queued).unwrap_err().code, "conflict");

    daemon.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `als synth --json` and a completed job's status embed the same result
/// schema: identical documents for identical runs.
#[test]
fn cli_json_and_service_share_one_result_schema() {
    let dir = state_dir("schema");
    let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
    let client = Client::new(daemon.addr().to_string());
    let id = client.submit(&bench_spec("t", "adder", 1024, 4.0)).unwrap();
    wait_until("the job to complete", Duration::from_secs(120), || {
        client.status(&id).unwrap().state == JobState::Completed
    });
    let service_doc = client.status(&id).unwrap().result.unwrap();
    daemon.shutdown().unwrap();

    let direct_doc = direct_run(FlowName::DpSa, "adder", 1024, 4.0).to_json();
    // Runtimes differ run to run; everything else must match exactly,
    // including field order (it is one schema, not two).
    let strip = |j: &dualphase_als::obs::json::Json| {
        let mut j = j.clone();
        for k in ["runtime_us", "comprehensive_us", "incremental_us", "step_times"] {
            j.set(k, dualphase_als::obs::json::Json::Null);
        }
        j.render()
    };
    assert_eq!(strip(&service_doc), strip(&direct_doc));
    let _ = std::fs::remove_dir_all(&dir);
}
