//! Tail-lane masking: pattern counts that are not a multiple of 64.
//!
//! Word-level simulation legitimately leaves garbage in the lanes beyond
//! the logical pattern count (e.g. `NOT` sets them all). Every consumer
//! that counts bits or accumulates per-pattern error must mask the last
//! word — this suite pins that contract against a per-*bit* reference
//! that never looks past the logical count:
//!
//! * `er`/`med`/`mse` of a freshly refreshed [`ErrorState`] are
//!   bit-identical to the per-bit recomputation (the accumulation order
//!   is the same, so exact `f64` equality is required, not tolerance),
//! * the fused sparse CPM evaluation predicts the *measured* error of the
//!   applied LAC — garbage tails in `D` or in the CPM rows must not leak
//!   into the estimate.

use proptest::prelude::*;

use dualphase_als::aig::{Aig, Lit, NodeId};
use dualphase_als::cuts::CutState;
use dualphase_als::error::{unsigned_weights, ErrorState, MetricKind, SparseFlip};
use dualphase_als::lac::{constant_lacs, Lac};
use dualphase_als::sim::{PackedBits, PatternSet, Simulator};

/// Operation encoding for random circuit construction (mirrors props.rs).
#[derive(Clone, Debug)]
struct Op {
    kind: u8,
    a: u16,
    b: u16,
    c: u16,
}

fn arb_ops() -> impl Strategy<Value = (usize, Vec<Op>, u8)> {
    (
        4usize..8,
        proptest::collection::vec(
            (0u8..5, any::<u16>(), any::<u16>(), any::<u16>()).prop_map(|(kind, a, b, c)| Op {
                kind,
                a,
                b,
                c,
            }),
            5..40,
        ),
        1u8..4,
    )
}

fn build_circuit(num_inputs: usize, ops: &[Op], num_outputs: u8) -> Aig {
    let mut aig = Aig::new("random");
    let mut sigs: Vec<Lit> = aig.add_inputs("x", num_inputs);
    for op in ops {
        let pick = |sel: u16, sigs: &[Lit]| {
            let lit = sigs[sel as usize % sigs.len()];
            lit.xor_complement(sel & 0x100 != 0)
        };
        let la = pick(op.a, &sigs);
        let lb = pick(op.b, &sigs);
        let lc = pick(op.c, &sigs);
        let out = match op.kind {
            0 => aig.and(la, lb),
            1 => aig.or(la, lb),
            2 => aig.xor(la, lb),
            3 => aig.mux(la, lb, lc),
            _ => aig.maj(la, lb, lc),
        };
        sigs.push(out);
    }
    let n = sigs.len();
    for (k, &lit) in sigs[n.saturating_sub(num_outputs as usize)..].iter().enumerate() {
        aig.add_output(lit.xor_complement(k % 2 == 1), format!("o{k}"));
    }
    dualphase_als::aig::edit::sweep_dangling(&mut aig);
    aig
}

fn output_values(aig: &Aig, sim: &Simulator) -> Vec<PackedBits> {
    (0..aig.num_outputs()).map(|o| sim.output_value(aig, o)).collect()
}

/// Per-bit reference: `(wrong_count, signed_err)` per pattern, reading one
/// bit at a time and never touching lanes `>= n`. The accumulation order
/// (outputs ascending, then patterns) matches `ErrorState::refresh`, so
/// the resulting `f64`s are bit-identical.
fn per_bit_reference(
    golden: &[PackedBits],
    approx: &[PackedBits],
    weights: &[f64],
    n: usize,
) -> (Vec<usize>, Vec<f64>) {
    let mut wrong = vec![0usize; n];
    let mut err = vec![0f64; n];
    for (o, (g, a)) in golden.iter().zip(approx).enumerate() {
        let w = weights.get(o).copied().unwrap_or(0.0);
        for p in 0..n {
            let (gb, ab) = (g.get(p), a.get(p));
            if gb != ab {
                wrong[p] += 1;
                err[p] += if gb { -w } else { w };
            }
        }
    }
    (wrong, err)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn metrics_match_per_bit_reference_at_odd_pattern_counts(
        (ni, ops, no) in arb_ops(),
        words in 2usize..4,
        off in 1usize..63,
        perturb in any::<u16>(),
    ) {
        let aig = build_circuit(ni, &ops, no);
        let ands: Vec<NodeId> = aig.iter_ands().collect();
        if ands.is_empty() {
            return Ok(());
        }
        // A logical count strictly inside the last word: garbage lanes
        // exist and must be invisible.
        let n = words * 64 - off;
        let patterns =
            PatternSet::random(aig.num_inputs(), words, 35).with_pattern_count(n);
        let sim = Simulator::new(&aig, &patterns);
        prop_assert_eq!(sim.num_patterns(), n);
        let golden = output_values(&aig, &sim);

        let mut copy = aig.clone();
        Lac::const0(ands[perturb as usize % ands.len()]).apply(&mut copy);
        let approx_sim = Simulator::new(&copy, &patterns);
        let approx = output_values(&copy, &approx_sim);

        let weights = unsigned_weights(aig.num_outputs());
        let (wrong, err) = per_bit_reference(&golden, &approx, &weights, n);
        let er_ref = wrong.iter().filter(|&&c| c > 0).count() as f64 / n as f64;
        let med_ref = err.iter().map(|e| e.abs()).sum::<f64>() / n as f64;
        let mse_ref = err.iter().map(|e| e * e).sum::<f64>() / n as f64;

        for kind in [MetricKind::Er, MetricKind::Med, MetricKind::Mse] {
            let state = ErrorState::with_pattern_count(
                kind, weights.clone(), golden.clone(), &approx, n,
            );
            prop_assert_eq!(state.num_patterns(), n);
            prop_assert_eq!(state.er().to_bits(), er_ref.to_bits(), "er under {}", kind);
            prop_assert_eq!(state.med().to_bits(), med_ref.to_bits(), "med under {}", kind);
            prop_assert_eq!(state.mse().to_bits(), mse_ref.to_bits(), "mse under {}", kind);
            let tracked = match kind {
                MetricKind::Er => er_ref,
                MetricKind::Med => med_ref,
                MetricKind::Mse => mse_ref,
            };
            prop_assert_eq!(state.error().to_bits(), tracked.to_bits(), "error() under {}", kind);
        }
    }

    #[test]
    fn sparse_eval_predicts_measured_error_at_odd_pattern_counts(
        (ni, ops, no) in arb_ops(),
        words in 2usize..4,
        off in 1usize..63,
    ) {
        let aig = build_circuit(ni, &ops, no);
        if aig.iter_ands().next().is_none() {
            return Ok(());
        }
        let n = words * 64 - off;
        let patterns =
            PatternSet::random(aig.num_inputs(), words, 36).with_pattern_count(n);
        let sim = Simulator::new(&aig, &patterns);
        let golden = output_values(&aig, &sim);
        let cuts = CutState::compute(&aig);
        let cpm = dualphase_als::cpm::compute_full(&aig, &sim, &cuts).unwrap();
        let weights = unsigned_weights(aig.num_outputs());

        for kind in [MetricKind::Er, MetricKind::Med, MetricKind::Mse] {
            // Approximation-free baseline: golden vs golden.
            let state = ErrorState::with_pattern_count(
                kind, weights.clone(), golden.clone(), &golden, n,
            );
            for lac in constant_lacs(&aig, None) {
                let Some(row) = cpm.row(lac.target) else { continue };
                let d = lac.change_vector(&sim);
                let sparse: Vec<SparseFlip<'_>> = row
                    .iter()
                    .map(|(o, bits)| SparseFlip { output: o as usize, bits })
                    .collect();
                let predicted = state.eval_flips_sparse(&d, &sparse);

                // Measured: apply the LAC, resimulate, rebuild the state.
                let mut copy = aig.clone();
                lac.apply(&mut copy);
                let approx_sim = Simulator::new(&copy, &patterns);
                let approx = output_values(&copy, &approx_sim);
                let measured = ErrorState::with_pattern_count(
                    kind, weights.clone(), golden.clone(), &approx, n,
                )
                .error();
                prop_assert!(
                    (predicted - measured).abs() <= 1e-9,
                    "{} {:?}: predicted {} vs measured {}", kind, lac, predicted, measured
                );
            }
        }
    }
}
