//! Cross-crate consistency: the exact analyses (disjoint cuts → CPM →
//! error deltas) must agree with brute-force oracles on real benchmark
//! circuits, and every incremental path must agree with its from-scratch
//! counterpart.

use dualphase_als::aig::{Aig, NodeId};
use dualphase_als::circuits::{benchmark, BenchmarkScale};
use dualphase_als::cpm::reference::{brute_force_row, rows_equivalent};
use dualphase_als::cpm::{compute_full, compute_partial};
use dualphase_als::cuts::disjoint::verify_cut;
use dualphase_als::cuts::CutState;
use dualphase_als::lac::{constant_lacs, Lac};
use dualphase_als::sim::{PatternSet, Simulator};

fn mult33() -> Aig {
    dualphase_als::circuits::mult::mult(3, 3)
}

#[test]
fn all_cuts_of_benchmarks_are_valid_disjoint_cuts() {
    for name in ["c880", "c1908", "adder"] {
        let aig = benchmark(name, BenchmarkScale::Reduced);
        let cuts = CutState::compute(&aig);
        for n in aig.iter_live() {
            verify_cut(&aig, cuts.reach(), n, cuts.cut(n))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}

#[test]
fn full_cpm_equals_brute_force_on_multiplier() {
    let aig = mult33();
    let patterns = PatternSet::exhaustive(6);
    let sim = Simulator::new(&aig, &patterns);
    let cuts = CutState::compute(&aig);
    let cpm = compute_full(&aig, &sim, &cuts).unwrap();
    for n in aig.iter_live() {
        let reference = brute_force_row(&aig, &patterns, n);
        assert!(
            rows_equivalent(cpm.row(n).unwrap(), &reference, aig.num_outputs()),
            "CPM row of {n} diverges"
        );
    }
}

#[test]
fn partial_cpm_agrees_with_full_on_any_candidate_set() {
    let aig = benchmark("c1908", BenchmarkScale::Reduced);
    let patterns = PatternSet::random(aig.num_inputs(), 8, 42);
    let sim = Simulator::new(&aig, &patterns);
    let cuts = CutState::compute(&aig);
    let full = compute_full(&aig, &sim, &cuts).unwrap();
    let ands: Vec<NodeId> = aig.iter_ands().collect();
    for chunk in ands.chunks(17).take(5) {
        let (partial, _) = compute_partial(&aig, &sim, &cuts, chunk).unwrap();
        for &n in chunk {
            assert_eq!(partial.row(n), full.row(n), "row of {n}");
        }
    }
}

#[test]
fn incremental_cut_state_survives_long_lac_sequences() {
    let mut aig = benchmark("sm9x8", BenchmarkScale::Reduced);
    let mut state = CutState::compute(&aig);
    let mut applied = 0;
    // apply 25 constant LACs on arbitrary surviving gates
    for i in 0.. {
        if applied >= 25 {
            break;
        }
        let Some(target) = aig.iter_ands().nth(i % 7) else { break };
        let lac = if i % 2 == 0 { Lac::const0(target) } else { Lac::const1(target) };
        let rec = lac.apply(&mut aig);
        state.update_after(&aig, &rec);
        applied += 1;
    }
    assert!(applied >= 10, "not enough LACs applied to be meaningful");
    let fresh = CutState::compute(&aig);
    for n in aig.iter_live() {
        assert_eq!(state.reach().mask(n), fresh.reach().mask(n), "reach of {n}");
        assert_eq!(state.cut(n), fresh.cut(n), "cut of {n}");
    }
}

#[test]
fn cpm_estimates_equal_measured_errors_for_constant_lacs() {
    use dualphase_als::error::{unsigned_weights, ErrorState, FlipVec, MetricKind};
    let aig = mult33();
    let patterns = PatternSet::exhaustive(6);
    let sim = Simulator::new(&aig, &patterns);
    let cuts = CutState::compute(&aig);
    let cpm = compute_full(&aig, &sim, &cuts).unwrap();
    let golden: Vec<_> = (0..aig.num_outputs()).map(|o| sim.output_value(&aig, o)).collect();

    for metric in [MetricKind::Er, MetricKind::Med, MetricKind::Mse] {
        let state =
            ErrorState::new(metric, unsigned_weights(aig.num_outputs()), golden.clone(), &golden);
        for lac in constant_lacs(&aig, None) {
            let d = lac.change_vector(&sim);
            let flips: Vec<FlipVec> = cpm
                .row(lac.target)
                .unwrap()
                .iter()
                .map(|(o, p)| FlipVec { output: o as usize, bits: p.and(&d) })
                .collect();
            let predicted = state.eval_flips(&flips);

            // ground truth: apply the LAC to a copy and resimulate fully
            let mut copy = aig.clone();
            lac.apply(&mut copy);
            let approx_sim = Simulator::new(&copy, &patterns);
            let approx: Vec<_> =
                (0..copy.num_outputs()).map(|o| approx_sim.output_value(&copy, o)).collect();
            let truth = ErrorState::new(
                metric,
                unsigned_weights(aig.num_outputs()),
                golden.clone(),
                &approx,
            )
            .error();
            assert!(
                (predicted - truth).abs() < 1e-9,
                "{metric} {lac:?}: predicted {predicted} vs true {truth}"
            );
        }
    }
}
