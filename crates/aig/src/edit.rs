//! Destructive edits: applying a local approximate change to the graph.
//!
//! The only structural edit an iterative ALS flow needs is *replace node `b`
//! by literal `s`*: every fanout of `b` (including primary outputs) is
//! rewired to `s` with complement bits merged, after which `b` and its
//! now-dangling maximum fanout-free cone are deleted.
//!
//! [`replace`] returns an [`EditRecord`] describing exactly which nodes were
//! removed and which live nodes saw their fanout sets change — the set the
//! paper calls `S_c`, the input to the incremental disjoint-cut update of
//! phase two.

use crate::aig::Aig;
use crate::lit::{Lit, NodeId};

/// What a single [`replace`] did to the graph.
///
/// `removed ∪ fanout_changed` is the paper's `S_c`: the nodes that "either
/// change themselves (i.e., are removed or newly created) or change their
/// fanouts". LAC application never creates nodes, so `removed` covers the
/// first half.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EditRecord {
    /// The node that was replaced (also contained in `removed`).
    pub target: NodeId,
    /// The literal the target was replaced by.
    pub replacement: Lit,
    /// Nodes deleted by the edit: the target and its MFFC.
    pub removed: Vec<NodeId>,
    /// Live nodes whose fanout list changed: the replacement node (which
    /// gained the target's fanouts) and live fanins of removed nodes (which
    /// lost fanouts). Sorted and deduplicated.
    pub fanout_changed: Vec<NodeId>,
}

impl EditRecord {
    /// The paper's `S_c`: removed nodes plus fanout-changed nodes.
    pub fn changed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.removed.iter().chain(self.fanout_changed.iter()).copied()
    }
}

/// Replaces live AND node `target` by literal `replacement` and sweeps the
/// dangling cone.
///
/// All fanouts and primary-output references of `target` are rewired to
/// `replacement` (complements merged). `target` then has no references and
/// is deleted together with every gate that transitively loses its last
/// reference (its MFFC).
///
/// # Panics
///
/// Panics if `target` is not a live AND gate, if the replacement node is
/// dead, or if `replacement` refers to `target` itself. The caller must
/// ensure `replacement.node()` is not in the transitive fanout of `target`
/// (checked in debug builds), otherwise the graph would become cyclic.
pub fn replace(aig: &mut Aig, target: NodeId, replacement: Lit) -> EditRecord {
    let sub = replacement.node();
    assert!(aig.node(target).is_and(), "can only replace AND gates");
    assert!(aig.is_live(target), "target is dead");
    assert!(aig.is_live(sub), "replacement is dead");
    assert_ne!(sub, target, "cannot replace a node by itself");
    debug_assert!(
        !crate::cone::tfo_cone(aig, target).contains(&sub),
        "replacement {sub} is in the TFO of target {target}: edit would create a cycle"
    );

    aig.invalidate_strash();

    let mut fanout_changed: Vec<NodeId> = Vec::new();

    // 1. Rewire gate fanouts of the target.
    let old_fanouts = aig.take_fanouts(target);
    let gained = !old_fanouts.is_empty() || !aig.output_refs(target).is_empty();
    {
        // Fix fanin slots once per unique fanout; push one fanout entry per
        // slot to keep multiplicity consistent.
        let mut uniq = old_fanouts;
        uniq.sort();
        uniq.dedup();
        for f in uniq {
            for slot in 0..2 {
                let fin = if slot == 0 { aig.node(f).fanin0() } else { aig.node(f).fanin1() };
                if fin.node() == target {
                    aig.set_fanin(f, slot, replacement.xor_complement(fin.is_complement()));
                    aig.push_fanout(sub, f);
                }
            }
        }
    }

    // 2. Rewire primary outputs driven by the target.
    for out_idx in aig.take_po_refs(target) {
        let old = aig.output_lit(out_idx as usize);
        debug_assert_eq!(old.node(), target);
        aig.set_output_lit(out_idx as usize, replacement.xor_complement(old.is_complement()));
        aig.push_po_ref(sub, out_idx);
    }
    if gained {
        fanout_changed.push(sub);
    }

    // 3. Sweep the dangling cone rooted at the target.
    let mut removed = Vec::new();
    let mut stack = vec![target];
    while let Some(u) = stack.pop() {
        debug_assert_eq!(aig.fanout_count(u), 0);
        let fanins = aig.node(u).fanins();
        aig.mark_dead(u);
        removed.push(u);
        for fin in fanins {
            let v = fin.node();
            aig.remove_fanout_once(v, u);
            if aig.node(v).is_and() && aig.is_live(v) && aig.fanout_count(v) == 0 {
                stack.push(v);
            } else if aig.is_live(v) {
                fanout_changed.push(v);
            }
        }
    }

    fanout_changed.sort();
    fanout_changed.dedup();
    // A node that lost a fanout but was then itself removed must not appear.
    fanout_changed.retain(|&n| aig.is_live(n));

    EditRecord { target, replacement, removed, fanout_changed }
}

/// Removes gates that drive neither another gate nor a primary output.
///
/// Freshly generated circuits can contain such dangling cones (e.g. an
/// unused carry-out); the analyses in this workspace assume the
/// *no-dangling* invariant, so generators call this before handing a
/// circuit over. Returns the number of removed gates.
pub fn sweep_dangling(aig: &mut Aig) -> usize {
    let mut stack: Vec<NodeId> = aig.iter_ands().filter(|&n| aig.fanout_count(n) == 0).collect();
    let mut removed = 0;
    while let Some(u) = stack.pop() {
        if !aig.is_live(u) || aig.fanout_count(u) != 0 || !aig.node(u).is_and() {
            continue;
        }
        let fanins = aig.node(u).fanins();
        aig.mark_dead(u);
        removed += 1;
        for fin in fanins {
            let v = fin.node();
            aig.remove_fanout_once(v, u);
            if aig.node(v).is_and() && aig.is_live(v) && aig.fanout_count(v) == 0 {
                stack.push(v);
            }
        }
    }
    if removed > 0 {
        aig.invalidate_strash();
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;
    use crate::check::check;

    /// `o0 = (a&b)&(c&d)`, `o1 = c&d`.
    fn sample() -> (Aig, Lit, Lit) {
        let mut aig = Aig::new("s");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let g1 = aig.and(a, b);
        let g2 = aig.and(c, d);
        let g3 = aig.and(g1, g2);
        aig.add_output(g3, "o0");
        aig.add_output(g2, "o1");
        (aig, g1, g3)
    }

    #[test]
    fn replace_by_constant_removes_mffc() {
        let (mut aig, g1, _g3) = sample();
        let rec = replace(&mut aig, g1.node(), Lit::FALSE);
        assert_eq!(rec.removed, vec![g1.node()]);
        assert!(!aig.is_live(g1.node()));
        // g3's fanin now points at the constant, so g3 = 0 & g2.
        check(&aig).unwrap();
        assert!(rec.fanout_changed.contains(&NodeId::CONST0));
    }

    #[test]
    fn replace_root_sweeps_cone() {
        let (mut aig, g1, g3) = sample();
        // Replace g3 by input a: g1 dies (only fed g3), g2 survives (drives o1).
        let a = aig.inputs()[0].lit();
        let rec = replace(&mut aig, g3.node(), a);
        assert!(rec.removed.contains(&g3.node()));
        assert!(rec.removed.contains(&g1.node()));
        assert_eq!(rec.removed.len(), 2);
        assert_eq!(aig.output_lit(0), a);
        check(&aig).unwrap();
    }

    #[test]
    fn replace_merges_complements() {
        let mut aig = Aig::new("c");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g1 = aig.and(a, b);
        let g2 = aig.and(!g1, c);
        aig.add_output(g2, "o");
        aig.add_output(!g1, "o1");
        // Replace g1 by !c: fanin of g2 becomes !!c = c; output o1 becomes c.
        let rec = replace(&mut aig, g1.node(), !c);
        assert_eq!(aig.node(g2.node()).fanin0(), c);
        assert_eq!(aig.output_lit(1), c);
        assert_eq!(rec.replacement, !c);
        check(&aig).unwrap();
    }

    #[test]
    fn fanout_changed_is_live_and_sorted() {
        let (mut aig, g1, _) = sample();
        let rec = replace(&mut aig, g1.node(), Lit::TRUE);
        let mut sorted = rec.fanout_changed.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, rec.fanout_changed);
        for &n in &rec.fanout_changed {
            assert!(aig.is_live(n));
        }
    }

    #[test]
    fn sweep_dangling_removes_unused_cone() {
        let mut aig = Aig::new("d");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g1 = aig.and(a, b);
        let _unused = aig.and(!a, !b);
        aig.add_output(g1, "o");
        assert_eq!(sweep_dangling(&mut aig), 1);
        assert_eq!(aig.num_ands(), 1);
        check(&aig).unwrap();
        assert_eq!(sweep_dangling(&mut aig), 0);
    }

    #[test]
    #[should_panic(expected = "can only replace AND gates")]
    fn replacing_input_panics() {
        let (mut aig, _, _) = sample();
        let pi = aig.inputs()[0];
        replace(&mut aig, pi, Lit::FALSE);
    }
}
