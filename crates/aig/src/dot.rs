//! Graphviz DOT export for visual inspection of small circuits.

use std::io::{self, Write};

use crate::aig::Aig;

/// Writes `aig` as a Graphviz digraph: inputs as boxes, gates as circles,
/// outputs as double circles; complemented edges are drawn dashed.
///
/// # Errors
/// Returns any error from the underlying writer.
pub fn write_dot<W: Write>(aig: &Aig, mut w: W) -> io::Result<()> {
    writeln!(w, "digraph \"{}\" {{", aig.name().replace('"', "'"))?;
    writeln!(w, "  rankdir=LR;")?;
    for (i, &pi) in aig.inputs().iter().enumerate() {
        writeln!(w, "  n{} [shape=box,label=\"{}\"];", pi.0, aig.input_name(i))?;
    }
    for id in aig.iter_ands() {
        writeln!(w, "  n{} [shape=circle,label=\"∧\"];", id.0)?;
        let node = aig.node(id);
        for fin in node.fanins() {
            let style = if fin.is_complement() { " [style=dashed]" } else { "" };
            writeln!(w, "  n{} -> n{}{};", fin.node().0, id.0, style)?;
        }
    }
    for (o, out) in aig.outputs().iter().enumerate() {
        writeln!(w, "  o{o} [shape=doublecircle,label=\"{}\"];", out.name)?;
        let style = if out.lit.is_complement() { " [style=dashed]" } else { "" };
        if out.lit.is_const() {
            writeln!(w, "  c0 [shape=box,label=\"0\"];")?;
            writeln!(w, "  c0 -> o{o}{style};")?;
        } else {
            writeln!(w, "  n{} -> o{o}{style};", out.lit.node().0)?;
        }
    }
    writeln!(w, "}}")
}

/// Serialises `aig` to a DOT string.
pub fn to_dot_string(aig: &Aig) -> String {
    let mut buf = Vec::new();
    write_dot(aig, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("DOT output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_every_element() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g = aig.and(a, !b);
        aig.add_output(!g, "y");
        let dot = to_dot_string(&aig);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("shape=box,label=\"a\""));
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn constant_output_edge() {
        let mut aig = Aig::new("k");
        aig.add_input("a");
        aig.add_output(crate::lit::Lit::TRUE, "one");
        let dot = to_dot_string(&aig);
        assert!(dot.contains("c0 ->"));
    }
}
