//! AIGER reading and writing (ASCII `aag` and binary `aig` formats).
//!
//! The writer renumbers through [`Aig::compact`], so dead node slots never
//! leak into files. The reader accepts combinational AIGER files (no
//! latches) whose AND definitions are sorted by left-hand side, which every
//! standard generator (including this writer) produces.

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Read, Write};

use crate::aig::Aig;
use crate::lit::Lit;

/// Errors produced while parsing an AIGER file.
#[derive(Debug)]
pub enum ParseAigerError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The header line is missing or malformed.
    BadHeader(String),
    /// The file contains latches, which this combinational reader rejects.
    HasLatches,
    /// A literal or count failed to parse.
    BadLiteral(String),
    /// AND definitions are not sorted / reference undefined variables.
    BadAnd(String),
    /// The file ended before all declared sections were read.
    UnexpectedEof,
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAigerError::Io(e) => write!(f, "i/o error: {e}"),
            ParseAigerError::BadHeader(s) => write!(f, "malformed AIGER header: {s}"),
            ParseAigerError::HasLatches => write!(f, "sequential AIGER files are not supported"),
            ParseAigerError::BadLiteral(s) => write!(f, "malformed literal: {s}"),
            ParseAigerError::BadAnd(s) => write!(f, "malformed AND definition: {s}"),
            ParseAigerError::UnexpectedEof => write!(f, "unexpected end of file"),
        }
    }
}

impl Error for ParseAigerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseAigerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseAigerError {
    fn from(e: io::Error) -> Self {
        ParseAigerError::Io(e)
    }
}

/// Writes `aig` in ASCII AIGER (`aag`) format.
///
/// # Errors
/// Returns any error from the underlying writer.
pub fn write_ascii<W: Write>(aig: &Aig, mut w: W) -> io::Result<()> {
    let (c, _) = aig.compact();
    let i = c.num_inputs();
    let a = c.num_ands();
    let m = i + a;
    writeln!(w, "aag {m} {i} 0 {} {a}", c.num_outputs())?;
    for &pi in c.inputs() {
        writeln!(w, "{}", pi.lit().raw())?;
    }
    for o in c.outputs() {
        writeln!(w, "{}", o.lit.raw())?;
    }
    for id in c.iter_ands() {
        let n = c.node(id);
        writeln!(w, "{} {} {}", id.lit().raw(), n.fanin0().raw(), n.fanin1().raw())?;
    }
    write_symbols(&c, &mut w)?;
    Ok(())
}

/// Writes `aig` in binary AIGER (`aig`) format.
///
/// # Errors
/// Returns any error from the underlying writer.
pub fn write_binary<W: Write>(aig: &Aig, mut w: W) -> io::Result<()> {
    let (c, _) = aig.compact();
    let i = c.num_inputs();
    let a = c.num_ands();
    let m = i + a;
    writeln!(w, "aig {m} {i} 0 {} {a}", c.num_outputs())?;
    for o in c.outputs() {
        writeln!(w, "{}", o.lit.raw())?;
    }
    for id in c.iter_ands() {
        let n = c.node(id);
        let lhs = id.lit().raw();
        let (r0, r1) = (n.fanin0().raw(), n.fanin1().raw());
        let (hi, lo) = if r0 >= r1 { (r0, r1) } else { (r1, r0) };
        debug_assert!(lhs > hi, "binary AIGER requires topological numbering");
        write_leb(&mut w, lhs - hi)?;
        write_leb(&mut w, hi - lo)?;
    }
    write_symbols(&c, &mut w)?;
    Ok(())
}

fn write_symbols<W: Write>(aig: &Aig, w: &mut W) -> io::Result<()> {
    for (idx, _) in aig.inputs().iter().enumerate() {
        let name = aig.input_name(idx);
        if !name.is_empty() {
            writeln!(w, "i{idx} {name}")?;
        }
    }
    for (idx, o) in aig.outputs().iter().enumerate() {
        if !o.name.is_empty() {
            writeln!(w, "o{idx} {}", o.name)?;
        }
    }
    writeln!(w, "c")?;
    writeln!(w, "{}", aig.name())?;
    Ok(())
}

fn write_leb<W: Write>(w: &mut W, mut x: u32) -> io::Result<()> {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_leb<R: Read>(r: &mut R) -> Result<u32, ParseAigerError> {
    let mut x = 0u32;
    let mut shift = 0;
    loop {
        let mut byte = [0u8];
        if r.read(&mut byte)? != 1 {
            return Err(ParseAigerError::UnexpectedEof);
        }
        x |= ((byte[0] & 0x7f) as u32) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
        if shift > 28 {
            return Err(ParseAigerError::BadAnd("LEB128 literal too large".into()));
        }
    }
}

struct Header {
    m: u32,
    i: u32,
    o: u32,
    a: u32,
    binary: bool,
}

fn parse_header(line: &str) -> Result<Header, ParseAigerError> {
    let mut it = line.split_whitespace();
    let magic = it.next().ok_or_else(|| ParseAigerError::BadHeader(line.into()))?;
    let binary = match magic {
        "aag" => false,
        "aig" => true,
        _ => return Err(ParseAigerError::BadHeader(line.into())),
    };
    let nums: Vec<u32> = it
        .map(|t| t.parse::<u32>().map_err(|_| ParseAigerError::BadHeader(line.into())))
        .collect::<Result<_, _>>()?;
    if nums.len() != 5 {
        return Err(ParseAigerError::BadHeader(line.into()));
    }
    if nums[2] != 0 {
        return Err(ParseAigerError::HasLatches);
    }
    let (m, i, a) = (nums[0], nums[1], nums[4]);
    // Every input and AND gets a distinct variable <= M; a header that
    // promises otherwise would send later sections out of bounds.
    if i.checked_add(a).is_none_or(|vars| vars > m) {
        return Err(ParseAigerError::BadHeader(format!(
            "{line} (M = {m} cannot hold {i} inputs + {a} ANDs)"
        )));
    }
    Ok(Header { m, i, o: nums[3], a, binary })
}

/// Reads an AIGER file (ASCII or binary, auto-detected) into an [`Aig`].
///
/// # Errors
/// Returns a [`ParseAigerError`] when the file is malformed, sequential, or
/// truncated.
pub fn read<R: BufRead>(mut r: R, name: &str) -> Result<Aig, ParseAigerError> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(ParseAigerError::UnexpectedEof);
    }
    let h = parse_header(line.trim_end())?;
    let mut aig = Aig::new(name);
    // var -> literal of created node, index by var number
    let mut var_map: Vec<Option<Lit>> = vec![None; h.m as usize + 1];
    var_map[0] = Some(Lit::FALSE);

    let map_lit = |var_map: &[Option<Lit>], raw: u32| -> Result<Lit, ParseAigerError> {
        let var = (raw >> 1) as usize;
        let base = var_map
            .get(var)
            .copied()
            .flatten()
            .ok_or_else(|| ParseAigerError::BadLiteral(format!("undefined variable {var}")))?;
        Ok(base.xor_complement(raw & 1 == 1))
    };

    let read_line = |r: &mut R| -> Result<String, ParseAigerError> {
        let mut s = String::new();
        if r.read_line(&mut s)? == 0 {
            return Err(ParseAigerError::UnexpectedEof);
        }
        Ok(s.trim_end().to_string())
    };

    // Inputs.
    if h.binary {
        for k in 0..h.i {
            let lit = aig.add_input(format!("i{k}"));
            var_map[(k + 1) as usize] = Some(lit);
        }
    } else {
        for k in 0..h.i {
            let s = read_line(&mut r)?;
            let raw: u32 = s.parse().map_err(|_| ParseAigerError::BadLiteral(s.clone()))?;
            if raw != 2 * (k + 1) {
                return Err(ParseAigerError::BadLiteral(format!(
                    "input {k} must be literal {}, got {raw}",
                    2 * (k + 1)
                )));
            }
            let lit = aig.add_input(format!("i{k}"));
            var_map[(k + 1) as usize] = Some(lit);
        }
    }

    // Outputs (raw literals, resolved after ANDs are built).
    let mut out_raw = Vec::with_capacity(h.o as usize);
    for _ in 0..h.o {
        let s = read_line(&mut r)?;
        out_raw.push(s.parse::<u32>().map_err(|_| ParseAigerError::BadLiteral(s.clone()))?);
    }

    // ANDs.
    if h.binary {
        for k in 0..h.a {
            let lhs = 2 * (h.i + 1 + k);
            let d0 = read_leb(&mut r)?;
            let d1 = read_leb(&mut r)?;
            let rhs0 = lhs
                .checked_sub(d0)
                .ok_or_else(|| ParseAigerError::BadAnd(format!("delta underflow at {lhs}")))?;
            let rhs1 = rhs0
                .checked_sub(d1)
                .ok_or_else(|| ParseAigerError::BadAnd(format!("delta underflow at {lhs}")))?;
            let f0 = map_lit(&var_map, rhs0)?;
            let f1 = map_lit(&var_map, rhs1)?;
            var_map[(lhs >> 1) as usize] = Some(aig.and_raw(f0, f1));
        }
    } else {
        for _ in 0..h.a {
            let s = read_line(&mut r)?;
            let nums: Vec<u32> = s
                .split_whitespace()
                .map(|t| t.parse::<u32>().map_err(|_| ParseAigerError::BadAnd(s.clone())))
                .collect::<Result<_, _>>()?;
            if nums.len() != 3 || nums[0] & 1 != 0 {
                return Err(ParseAigerError::BadAnd(s));
            }
            let var = (nums[0] >> 1) as usize;
            if var > h.m as usize || var_map[var].is_some() {
                return Err(ParseAigerError::BadAnd(s));
            }
            let f0 = map_lit(&var_map, nums[1])?;
            let f1 = map_lit(&var_map, nums[2])?;
            var_map[var] = Some(aig.and_raw(f0, f1));
        }
    }

    for (idx, raw) in out_raw.into_iter().enumerate() {
        let lit = map_lit(&var_map, raw)?;
        aig.add_output(lit, format!("o{idx}"));
    }

    // Optional symbol table.
    let mut line = String::new();
    while r.read_line(&mut line)? > 0 {
        let t = line.trim_end();
        if t == "c" {
            break;
        }
        if let Some((tag, name)) = t.split_once(' ') {
            let idx = tag.get(1..).and_then(|rest| rest.parse::<usize>().ok());
            if let (Some(kind), Some(idx)) = (tag.chars().next(), idx) {
                match kind {
                    'i' if idx < aig.num_inputs() => aig.set_input_name(idx, name),
                    'o' if idx < aig.num_outputs() => aig.set_output_name(idx, name),
                    _ => {}
                }
            }
        }
        line.clear();
    }
    Ok(aig)
}

/// Serializes `aig` to an ASCII AIGER string.
pub fn to_ascii_string(aig: &Aig) -> String {
    let mut buf = Vec::new();
    write_ascii(aig, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("AIGER ASCII output is UTF-8")
}

/// Parses an ASCII AIGER string.
///
/// # Errors
/// Returns a [`ParseAigerError`] when the text is not valid AIGER.
pub fn from_ascii_str(s: &str, name: &str) -> Result<Aig, ParseAigerError> {
    read(s.as_bytes(), name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;

    fn sample() -> Aig {
        let mut aig = Aig::new("sample");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g1 = aig.and(a, b);
        let g2 = aig.and(!g1, c);
        aig.add_output(g2, "o0");
        aig.add_output(!g1, "o1");
        aig
    }

    #[test]
    fn ascii_round_trip() {
        let aig = sample();
        let text = to_ascii_string(&aig);
        let back = from_ascii_str(&text, "sample").unwrap();
        check(&back).unwrap();
        assert_eq!(back.num_inputs(), 3);
        assert_eq!(back.num_outputs(), 2);
        assert_eq!(back.num_ands(), aig.num_ands());
        assert_eq!(to_ascii_string(&back), text);
    }

    #[test]
    fn binary_round_trip() {
        let aig = sample();
        let mut buf = Vec::new();
        write_binary(&aig, &mut buf).unwrap();
        let back = read(&buf[..], "sample").unwrap();
        check(&back).unwrap();
        assert_eq!(back.num_ands(), aig.num_ands());
        assert_eq!(back.num_inputs(), aig.num_inputs());
        // binary storage orders fanins high-to-low, so compare output
        // literals rather than exact text
        let outs: Vec<_> = back.outputs().iter().map(|o| o.lit).collect();
        let expect: Vec<_> = aig.compact().0.outputs().iter().map(|o| o.lit).collect();
        assert_eq!(outs, expect);
    }

    #[test]
    fn rejects_latches() {
        let err = from_ascii_str("aag 1 0 1 0 0\n2 3\n", "x").unwrap_err();
        assert!(matches!(err, ParseAigerError::HasLatches));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_ascii_str("hello world", "x").is_err());
        assert!(from_ascii_str("aag 1 1 0 1\n", "x").is_err());
        assert!(from_ascii_str("aag 1 1 0 1 0\n7\n", "x").is_err());
    }

    #[test]
    fn rejects_inconsistent_header_counts() {
        // M = 1 cannot hold 5 inputs: every line below would index past
        // the variable map.
        let err = from_ascii_str("aag 1 5 0 0 0\n2\n4\n6\n8\n10\n", "x").unwrap_err();
        assert!(matches!(err, ParseAigerError::BadHeader(_)));
        // i + a overflows u32.
        let big = format!("aag {0} {0} 0 0 {0}\n", u32::MAX);
        assert!(matches!(from_ascii_str(&big, "x"), Err(ParseAigerError::BadHeader(_))));
    }

    #[test]
    fn rejects_and_redefinition_and_out_of_range_lhs() {
        // variable 3 > M = 2
        let err = from_ascii_str("aag 2 1 0 1 1\n2\n6\n6 2 2\n", "x").unwrap_err();
        assert!(matches!(err, ParseAigerError::BadAnd(_)));
        // AND redefines the input variable
        let err = from_ascii_str("aag 2 1 0 1 1\n2\n2\n2 2 2\n", "x").unwrap_err();
        assert!(matches!(err, ParseAigerError::BadAnd(_)));
    }

    #[test]
    fn tolerates_malformed_symbol_lines() {
        // a multi-byte first character in a symbol tag must not panic
        let text = "aag 1 1 0 1 0\n2\n2\né0 name\nc\n";
        let aig = from_ascii_str(text, "x").unwrap();
        assert_eq!(aig.num_inputs(), 1);
    }

    #[test]
    fn constant_outputs_survive() {
        let mut aig = Aig::new("k");
        aig.add_input("a");
        aig.add_output(Lit::TRUE, "one");
        aig.add_output(Lit::FALSE, "zero");
        let text = to_ascii_string(&aig);
        let back = from_ascii_str(&text, "k").unwrap();
        assert_eq!(back.output_lit(0), Lit::TRUE);
        assert_eq!(back.output_lit(1), Lit::FALSE);
    }

    #[test]
    fn leb_round_trip() {
        for x in [0u32, 1, 127, 128, 300, 16383, 16384, u32::MAX / 2] {
            let mut buf = Vec::new();
            write_leb(&mut buf, x).unwrap();
            assert_eq!(read_leb(&mut &buf[..]).unwrap(), x);
        }
    }
}
