//! Structural invariant checking.

use std::error::Error;
use std::fmt;

use crate::aig::Aig;
use crate::lit::NodeId;

/// A violated structural invariant found by [`check`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// A live node references a dead fanin.
    DeadFanin { node: NodeId, fanin: NodeId },
    /// The fanout list of `node` disagrees with actual fanin references.
    FanoutMismatch { node: NodeId, expected: usize, actual: usize },
    /// An output literal points at a dead node.
    DeadOutputDriver { output: usize, node: NodeId },
    /// The `po_refs` list of `node` disagrees with the outputs.
    OutputRefMismatch { node: NodeId },
    /// A live AND gate drives nothing (violates the no-dangling invariant).
    Dangling { node: NodeId },
    /// A cycle passes through `node`.
    Cycle { node: NodeId },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::DeadFanin { node, fanin } => {
                write!(f, "live node {node} references dead fanin {fanin}")
            }
            CheckError::FanoutMismatch { node, expected, actual } => write!(
                f,
                "fanout list of {node} has {actual} entries but {expected} fanin references exist"
            ),
            CheckError::DeadOutputDriver { output, node } => {
                write!(f, "output {output} is driven by dead node {node}")
            }
            CheckError::OutputRefMismatch { node } => {
                write!(f, "output-reference list of {node} disagrees with the outputs")
            }
            CheckError::Dangling { node } => {
                write!(f, "live AND gate {node} drives neither a gate nor an output")
            }
            CheckError::Cycle { node } => write!(f, "cycle detected through {node}"),
        }
    }
}

impl Error for CheckError {}

/// Verifies the structural invariants of `aig`.
///
/// Checked invariants:
/// 1. live nodes only reference live fanins;
/// 2. fanout lists match fanin references exactly (with multiplicity);
/// 3. output literals point at live nodes and `po_refs` mirrors them;
/// 4. every live AND gate drives at least one gate or output (no dangling);
/// 5. the graph is acyclic.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn check(aig: &Aig) -> Result<(), CheckError> {
    let n = aig.num_nodes();

    // 1 + 2: fanin liveness and fanout counts.
    let mut expected_fanouts = vec![0usize; n];
    for id in aig.iter_live() {
        let node = aig.node(id);
        if node.is_and() {
            for fin in node.fanins() {
                let v = fin.node();
                if !aig.is_live(v) {
                    return Err(CheckError::DeadFanin { node: id, fanin: v });
                }
                expected_fanouts[v.index()] += 1;
            }
        }
    }
    for id in aig.iter_live() {
        let actual = aig.fanouts(id).len();
        let expected = expected_fanouts[id.index()];
        if actual != expected {
            return Err(CheckError::FanoutMismatch { node: id, expected, actual });
        }
        // fanout entries must actually reference this node
        for &f in aig.fanouts(id) {
            let fo = aig.node(f);
            if !aig.is_live(f) || (fo.fanin0().node() != id && fo.fanin1().node() != id) {
                return Err(CheckError::FanoutMismatch { node: id, expected, actual });
            }
        }
    }

    // 3: outputs.
    let mut expected_refs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, o) in aig.outputs().iter().enumerate() {
        let d = o.lit.node();
        if !aig.is_live(d) {
            return Err(CheckError::DeadOutputDriver { output: i, node: d });
        }
        expected_refs[d.index()].push(i as u32);
    }
    for id in aig.iter_live() {
        let mut actual: Vec<u32> = aig.output_refs(id).to_vec();
        actual.sort_unstable();
        if actual != expected_refs[id.index()] {
            return Err(CheckError::OutputRefMismatch { node: id });
        }
    }

    // 4: no dangling gates.
    for id in aig.iter_ands() {
        if aig.fanout_count(id) == 0 {
            return Err(CheckError::Dangling { node: id });
        }
    }

    // 5: acyclicity — topo_order panics on cycles, so re-implement gently.
    let mut state = vec![0u8; n];
    for root in aig.iter_ands() {
        if state[root.index()] != 0 {
            continue;
        }
        let mut stack = vec![(root, 0u8)];
        state[root.index()] = 1;
        while let Some(&mut (u, ref mut phase)) = stack.last_mut() {
            if *phase < 2 {
                let fin = if *phase == 0 { aig.node(u).fanin0() } else { aig.node(u).fanin1() };
                *phase += 1;
                if aig.node(u).is_and() {
                    let v = fin.node();
                    match state[v.index()] {
                        0 => {
                            state[v.index()] = 1;
                            stack.push((v, 0));
                        }
                        1 => return Err(CheckError::Cycle { node: v }),
                        _ => {}
                    }
                }
            } else {
                state[u.index()] = 2;
                stack.pop();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;
    use crate::lit::Lit;

    #[test]
    fn clean_graph_passes() {
        let mut aig = Aig::new("ok");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g = aig.and(a, b);
        aig.add_output(g, "o");
        check(&aig).unwrap();
    }

    #[test]
    fn dangling_gate_detected() {
        let mut aig = Aig::new("bad");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let _g = aig.and(a, b);
        aig.add_output(a, "o");
        assert!(matches!(check(&aig), Err(CheckError::Dangling { .. })));
    }

    #[test]
    fn output_of_constant_is_fine() {
        let mut aig = Aig::new("c");
        aig.add_output(Lit::TRUE, "one");
        check(&aig).unwrap();
    }

    #[test]
    fn after_replace_graph_stays_consistent() {
        let mut aig = Aig::new("r");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g1 = aig.and(a, b);
        let g2 = aig.and(g1, c);
        aig.add_output(g2, "o");
        crate::edit::replace(&mut aig, g1.node(), a);
        check(&aig).unwrap();
    }
}
