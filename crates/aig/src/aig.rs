//! The mutable AND-inverter graph.

use std::fmt;

use crate::lit::{Lit, NodeId};
use crate::node::Node;
use crate::strash::StrashTable;
use crate::txn::{Savepoint, TxnLog, TxnOp};

/// A primary output: a literal plus a name.
///
/// Outputs are passive records; the driving literal is rewired by
/// [`crate::edit`] when a LAC removes the driver.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Output {
    /// Literal driving this output.
    pub lit: Lit,
    /// Human-readable output name.
    pub name: String,
}

/// A combinational AND-inverter graph.
///
/// Node 0 is always the constant-zero node. Primary inputs and AND gates are
/// appended after it. Edges carry complement bits ([`Lit`]). The graph keeps
/// full fanout information (gate fanouts with multiplicity, plus the set of
/// primary outputs each node drives) so that local approximate changes can be
/// applied and analysed incrementally.
///
/// Identifiers are stable: deleting a node marks it dead and leaves a hole;
/// [`Aig::compact`] renumbers into a fresh topologically-ordered graph.
#[derive(Clone)]
pub struct Aig {
    name: String,
    nodes: Vec<Node>,
    pis: Vec<NodeId>,
    pi_names: Vec<String>,
    outputs: Vec<Output>,
    /// Gate fanouts per node, with multiplicity (a node using the same fanin
    /// twice appears twice).
    fanouts: Vec<Vec<NodeId>>,
    /// Output indices driven by each node.
    po_refs: Vec<Vec<u32>>,
    num_dead: usize,
    strash: StrashTable,
    /// Undo journal for open transactions; empty otherwise.
    txn: TxnLog,
}

impl Aig {
    /// Creates an empty AIG containing only the constant-zero node.
    pub fn new(name: impl Into<String>) -> Aig {
        Aig {
            name: name.into(),
            nodes: vec![Node::const0()],
            pis: Vec::new(),
            pi_names: Vec::new(),
            outputs: Vec::new(),
            fanouts: vec![Vec::new()],
            po_refs: vec![Vec::new()],
            num_dead: 0,
            strash: StrashTable::new(),
            txn: TxnLog::default(),
        }
    }

    /// Name of the design.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Appends a primary input and returns its positive literal.
    ///
    /// # Panics
    /// Panics inside a transaction (see [`Aig::begin_txn`]).
    pub fn add_input(&mut self, name: impl Into<String>) -> Lit {
        self.assert_no_txn();
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::input(self.pis.len() as u32));
        self.fanouts.push(Vec::new());
        self.po_refs.push(Vec::new());
        self.pis.push(id);
        self.pi_names.push(name.into());
        id.lit()
    }

    /// Appends `n` primary inputs named `prefix0..prefix{n-1}`.
    pub fn add_inputs(&mut self, prefix: &str, n: usize) -> Vec<Lit> {
        (0..n).map(|i| self.add_input(format!("{prefix}{i}"))).collect()
    }

    /// Returns the AND of two literals.
    ///
    /// Applies constant folding and trivial-case simplification, and reuses
    /// structurally identical nodes through a structural-hashing table while
    /// the graph is under construction (the table is discarded on the first
    /// destructive edit).
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Trivial cases.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        let (a, b) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        if let Some(existing) = self.strash.lookup(a, b) {
            return existing.lit();
        }
        let id = self.new_and_node(a, b);
        self.strash.insert(a, b, id);
        id.lit()
    }

    /// Creates a fresh AND node without structural hashing or folding.
    ///
    /// Used by the AIGER reader, which must preserve node numbering.
    pub fn and_raw(&mut self, a: Lit, b: Lit) -> Lit {
        self.new_and_node(a, b).lit()
    }

    fn new_and_node(&mut self, a: Lit, b: Lit) -> NodeId {
        self.assert_no_txn();
        debug_assert!(a.node().index() < self.nodes.len(), "fanin out of range");
        debug_assert!(b.node().index() < self.nodes.len(), "fanin out of range");
        debug_assert!(!self.nodes[a.node().index()].is_dead(), "fanin is dead");
        debug_assert!(!self.nodes[b.node().index()].is_dead(), "fanin is dead");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::and(a, b));
        self.fanouts.push(Vec::new());
        self.po_refs.push(Vec::new());
        self.fanouts[a.node().index()].push(id);
        self.fanouts[b.node().index()].push(id);
        id
    }

    /// Registers `lit` as a primary output and returns the output index.
    ///
    /// # Panics
    /// Panics inside a transaction (see [`Aig::begin_txn`]).
    pub fn add_output(&mut self, lit: Lit, name: impl Into<String>) -> usize {
        self.assert_no_txn();
        debug_assert!(lit.node().index() < self.nodes.len());
        let idx = self.outputs.len();
        self.outputs.push(Output { lit, name: name.into() });
        self.po_refs[lit.node().index()].push(idx as u32);
        idx
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Total node slots, including dead nodes and the constant.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.pis.len() - self.num_dead
    }

    /// Number of dead (removed) node slots.
    pub fn num_dead(&self) -> usize {
        self.num_dead
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.pis.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Primary input nodes, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.pis
    }

    /// Name of primary input `i`.
    pub fn input_name(&self, i: usize) -> &str {
        &self.pi_names[i]
    }

    /// Renames primary input `i`.
    pub fn set_input_name(&mut self, i: usize, name: impl Into<String>) {
        self.pi_names[i] = name.into();
    }

    /// Renames primary output `idx`.
    pub fn set_output_name(&mut self, idx: usize, name: impl Into<String>) {
        self.outputs[idx].name = name.into();
    }

    /// Primary outputs, in declaration order.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Literal driving output `idx`.
    pub fn output_lit(&self, idx: usize) -> Lit {
        self.outputs[idx].lit
    }

    pub(crate) fn set_output_lit(&mut self, idx: usize, lit: Lit) {
        if self.txn.active() {
            self.txn.record(TxnOp::SetOutputLit { idx: idx as u32, old: self.outputs[idx].lit });
        }
        self.outputs[idx].lit = lit;
    }

    /// The node record for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Whether `id` refers to a live (not removed) node.
    pub fn is_live(&self, id: NodeId) -> bool {
        !self.nodes[id.index()].is_dead()
    }

    /// Gate fanouts of `id`, with multiplicity.
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        &self.fanouts[id.index()]
    }

    /// Indices of primary outputs driven by `id`.
    pub fn output_refs(&self, id: NodeId) -> &[u32] {
        &self.po_refs[id.index()]
    }

    /// Total fanout count (gate fanouts plus driven outputs).
    pub fn fanout_count(&self, id: NodeId) -> usize {
        self.fanouts[id.index()].len() + self.po_refs[id.index()].len()
    }

    /// Iterates over all live node ids (constant, inputs, gates).
    pub fn iter_live(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().enumerate().filter(|(_, n)| !n.is_dead()).map(|(i, _)| NodeId(i as u32))
    }

    /// Iterates over live AND-gate node ids.
    pub fn iter_ands(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.is_dead() && n.is_and())
            .map(|(i, _)| NodeId(i as u32))
    }

    // ------------------------------------------------------------------
    // Mutation internals shared with `edit`
    // ------------------------------------------------------------------

    pub(crate) fn set_fanin(&mut self, id: NodeId, slot: usize, lit: Lit) {
        if self.txn.active() {
            let node = &self.nodes[id.index()];
            let old = if slot == 0 { node.fanin0() } else { node.fanin1() };
            self.txn.record(TxnOp::SetFanin { node: id, slot: slot as u8, old });
        }
        self.nodes[id.index()].set_fanin(slot, lit);
    }

    pub(crate) fn push_fanout(&mut self, of: NodeId, fanout: NodeId) {
        if self.txn.active() {
            self.txn.record(TxnOp::PushFanout { of });
        }
        self.fanouts[of.index()].push(fanout);
    }

    pub(crate) fn take_fanouts(&mut self, of: NodeId) -> Vec<NodeId> {
        let old = std::mem::take(&mut self.fanouts[of.index()]);
        if self.txn.active() {
            self.txn.record(TxnOp::TakeFanouts { of, old: old.clone() });
        }
        old
    }

    pub(crate) fn take_po_refs(&mut self, of: NodeId) -> Vec<u32> {
        let old = std::mem::take(&mut self.po_refs[of.index()]);
        if self.txn.active() {
            self.txn.record(TxnOp::TakePoRefs { of, old: old.clone() });
        }
        old
    }

    pub(crate) fn push_po_ref(&mut self, of: NodeId, out_idx: u32) {
        if self.txn.active() {
            self.txn.record(TxnOp::PushPoRef { of });
        }
        self.po_refs[of.index()].push(out_idx);
    }

    /// Removes one occurrence of `fanout` from `of`'s fanout list.
    pub(crate) fn remove_fanout_once(&mut self, of: NodeId, fanout: NodeId) {
        let list = &mut self.fanouts[of.index()];
        if let Some(pos) = list.iter().position(|&f| f == fanout) {
            list.swap_remove(pos);
            if self.txn.active() {
                self.txn.record(TxnOp::RemoveFanout { of, value: fanout, pos });
            }
        } else {
            debug_assert!(false, "fanout {fanout} missing from {of}");
        }
    }

    pub(crate) fn mark_dead(&mut self, id: NodeId) {
        debug_assert!(!self.nodes[id.index()].is_dead());
        if self.txn.active() {
            self.txn.record(TxnOp::MarkDead { node: id });
        }
        self.nodes[id.index()].set_dead(true);
        self.num_dead += 1;
    }

    /// Discards the structural-hashing table (called on the first edit).
    pub(crate) fn invalidate_strash(&mut self) {
        self.strash.clear();
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Opens a transaction: every destructive edit from here on is
    /// journaled so [`Aig::rollback_txn`] can restore the graph exactly,
    /// without cloning it. Close with [`Aig::commit_txn`] or
    /// [`Aig::rollback_txn`].
    ///
    /// Transactions nest; an inner commit keeps its edits undoable by the
    /// enclosing transaction. Node creation is rejected while any
    /// transaction is open (LAC application only removes nodes), and the
    /// structural-hashing table is **not** restored by rollback — it is
    /// discarded on the first destructive edit regardless.
    pub fn begin_txn(&mut self) {
        let sp = Savepoint { journal_len: self.txn.ops.len(), num_nodes: self.nodes.len() };
        self.txn.savepoints.push(sp);
    }

    /// Closes the innermost transaction, keeping its edits.
    ///
    /// # Panics
    /// Panics if no transaction is open.
    pub fn commit_txn(&mut self) {
        self.txn.savepoints.pop().expect("commit_txn: no open transaction");
        if self.txn.savepoints.is_empty() {
            self.txn.ops.clear();
        }
    }

    /// Closes the innermost transaction, undoing every edit made since its
    /// [`Aig::begin_txn`] — in reverse order, restoring fanin literals,
    /// fanout lists (order included), output drivers and dead marks.
    ///
    /// # Panics
    /// Panics if no transaction is open.
    pub fn rollback_txn(&mut self) {
        let sp = self.txn.savepoints.pop().expect("rollback_txn: no open transaction");
        debug_assert_eq!(sp.num_nodes, self.nodes.len(), "nodes created inside a transaction");
        while self.txn.ops.len() > sp.journal_len {
            let op = self.txn.ops.pop().expect("journal shorter than savepoint");
            self.undo(op);
        }
    }

    /// Whether a transaction is currently open.
    pub fn in_txn(&self) -> bool {
        self.txn.active()
    }

    /// Applies the exact inverse of one journaled mutation.
    fn undo(&mut self, op: TxnOp) {
        match op {
            TxnOp::SetFanin { node, slot, old } => {
                self.nodes[node.index()].set_fanin(slot as usize, old);
            }
            TxnOp::PushFanout { of } => {
                self.fanouts[of.index()].pop();
            }
            TxnOp::RemoveFanout { of, value, pos } => {
                // Exact inverse of `swap_remove(pos)`: the removed value
                // came from `pos`; whatever sits there now was the tail.
                let list = &mut self.fanouts[of.index()];
                if pos == list.len() {
                    list.push(value);
                } else {
                    let displaced = list[pos];
                    list.push(displaced);
                    list[pos] = value;
                }
            }
            TxnOp::TakeFanouts { of, old } => {
                self.fanouts[of.index()] = old;
            }
            TxnOp::TakePoRefs { of, old } => {
                self.po_refs[of.index()] = old;
            }
            TxnOp::PushPoRef { of } => {
                self.po_refs[of.index()].pop();
            }
            TxnOp::SetOutputLit { idx, old } => {
                self.outputs[idx as usize].lit = old;
            }
            TxnOp::MarkDead { node } => {
                self.nodes[node.index()].set_dead(false);
                self.num_dead -= 1;
            }
        }
    }

    fn assert_no_txn(&self) {
        assert!(
            !self.txn.active(),
            "node creation inside a transaction is not supported: \
             commit or roll back first"
        );
    }

    // ------------------------------------------------------------------
    // Compaction
    // ------------------------------------------------------------------

    /// Rebuilds the graph without dead nodes, numbering nodes in
    /// topological order. Returns the new graph together with the mapping
    /// from old node id to new literal (identity polarity); dead nodes map
    /// to `None`.
    pub fn compact(&self) -> (Aig, Vec<Option<NodeId>>) {
        let order = crate::topo::topo_order(self);
        let mut out = Aig::new(self.name.clone());
        let mut map: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        map[NodeId::CONST0.index()] = Some(NodeId::CONST0);
        for (i, &pi) in self.pis.iter().enumerate() {
            let lit = out.add_input(self.pi_names[i].clone());
            map[pi.index()] = Some(lit.node());
        }
        for &id in &order {
            let node = &self.nodes[id.index()];
            if !node.is_and() {
                continue;
            }
            let f0 = node.fanin0();
            let f1 = node.fanin1();
            let m0 = map[f0.node().index()].expect("fanin precedes in topo order");
            let m1 = map[f1.node().index()].expect("fanin precedes in topo order");
            let lit = out.and_raw(
                m0.lit().xor_complement(f0.is_complement()),
                m1.lit().xor_complement(f1.is_complement()),
            );
            map[id.index()] = Some(lit.node());
        }
        for o in &self.outputs {
            let m = map[o.lit.node().index()].expect("output driver is live");
            out.add_output(m.lit().xor_complement(o.lit.is_complement()), o.name.clone());
        }
        (out, map)
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig({}: {} PIs, {} POs, {} ANDs, {} dead)",
            self.name,
            self.pis.len(),
            self.outputs.len(),
            self.num_ands(),
            self.num_dead
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let aig = Aig::new("empty");
        assert_eq!(aig.num_nodes(), 1);
        assert_eq!(aig.num_ands(), 0);
        assert!(aig.node(NodeId::CONST0).is_const0());
    }

    #[test]
    fn trivial_and_folding() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(Lit::TRUE, b), b);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn strash_reuses_nodes() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g1 = aig.and(a, b);
        let g2 = aig.and(b, a);
        assert_eq!(g1, g2);
        assert_eq!(aig.num_ands(), 1);
        let g3 = aig.and(!a, b);
        assert_ne!(g1, g3);
        assert_eq!(aig.num_ands(), 2);
    }

    #[test]
    fn fanouts_tracked_with_multiplicity() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g = aig.and(a, b);
        let h = aig.and_raw(g, !g); // artificially uses g twice
        assert_eq!(aig.fanouts(g.node()), &[h.node(), h.node()]);
        aig.add_output(h, "o");
        assert_eq!(aig.output_refs(h.node()), &[0]);
        assert_eq!(aig.fanout_count(g.node()), 2);
        assert_eq!(aig.fanout_count(h.node()), 1);
    }

    #[test]
    fn outputs_and_names() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("x");
        aig.add_output(!a, "y");
        assert_eq!(aig.num_outputs(), 1);
        assert_eq!(aig.outputs()[0].name, "y");
        assert_eq!(aig.output_lit(0), !a);
        assert_eq!(aig.input_name(0), "x");
    }

    #[test]
    fn compact_is_identity_on_clean_graph() {
        let mut aig = Aig::new("t");
        let xs = aig.add_inputs("x", 3);
        let g = aig.and(xs[0], xs[1]);
        let h = aig.and(g, !xs[2]);
        aig.add_output(h, "o0");
        aig.add_output(!g, "o1");
        let (c, map) = aig.compact();
        assert_eq!(c.num_ands(), aig.num_ands());
        assert_eq!(c.num_inputs(), 3);
        assert_eq!(c.num_outputs(), 2);
        assert!(map.iter().all(|m| m.is_some()));
    }
}
