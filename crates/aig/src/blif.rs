//! BLIF reading and writing.
//!
//! BLIF (`.model` / `.inputs` / `.outputs` / `.names`) is the interchange
//! format of SIS/ABC-era logic synthesis. The writer emits one two-input
//! `.names` table per AND gate (complements folded into the cube), and the
//! reader accepts general multi-input single-output tables, converting
//! each sum-of-cubes into AND/OR structure.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

use crate::aig::Aig;
use crate::lit::Lit;

/// Errors produced while parsing a BLIF file.
#[derive(Debug)]
pub enum ParseBlifError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or malformed `.model` / `.inputs` / `.outputs` header.
    BadHeader(String),
    /// A `.names` table is malformed.
    BadTable(String),
    /// A signal is referenced but never defined.
    Undefined(String),
    /// Signal definitions form a combinational cycle.
    Cycle(String),
    /// The file contains latches or subcircuits, which are unsupported.
    Unsupported(String),
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBlifError::Io(e) => write!(f, "i/o error: {e}"),
            ParseBlifError::BadHeader(s) => write!(f, "malformed BLIF header: {s}"),
            ParseBlifError::BadTable(s) => write!(f, "malformed .names table: {s}"),
            ParseBlifError::Undefined(s) => write!(f, "undefined signal: {s}"),
            ParseBlifError::Cycle(s) => write!(f, "combinational cycle through {s}"),
            ParseBlifError::Unsupported(s) => write!(f, "unsupported construct: {s}"),
        }
    }
}

impl Error for ParseBlifError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseBlifError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseBlifError {
    fn from(e: io::Error) -> Self {
        ParseBlifError::Io(e)
    }
}

/// Writes `aig` in BLIF format (dead nodes compacted away).
///
/// # Errors
/// Returns any error from the underlying writer.
pub fn write_blif<W: Write>(aig: &Aig, mut w: W) -> io::Result<()> {
    let (c, _) = aig.compact();
    let name = |l: Lit| -> String {
        let node = c.node(l.node());
        let base = if node.is_const0() {
            "const0".to_string()
        } else if let crate::node::NodeKind::Input(pos) = node.kind() {
            c.input_name(pos as usize).to_string()
        } else {
            format!("n{}", l.node().0)
        };
        base
    };
    writeln!(w, ".model {}", c.name().replace(' ', "_"))?;
    write!(w, ".inputs")?;
    for i in 0..c.num_inputs() {
        write!(w, " {}", c.input_name(i))?;
    }
    writeln!(w)?;
    write!(w, ".outputs")?;
    for o in c.outputs() {
        write!(w, " {}", o.name)?;
    }
    writeln!(w)?;
    // constant-zero driver, if referenced
    let const_used = c.fanout_count(crate::lit::NodeId::CONST0) > 0;
    if const_used {
        writeln!(w, ".names const0")?; // empty table = constant 0
    }
    for id in c.iter_ands() {
        let node = c.node(id);
        let (f0, f1) = (node.fanin0(), node.fanin1());
        writeln!(w, ".names {} {} n{}", name(f0), name(f1), id.0)?;
        let bit = |l: Lit| if l.is_complement() { '0' } else { '1' };
        writeln!(w, "{}{} 1", bit(f0), bit(f1))?;
    }
    for o in c.outputs() {
        // output buffers/inverters decouple names from internal wires
        if o.lit == Lit::TRUE {
            writeln!(w, ".names {}", o.name)?;
            writeln!(w, "1")?;
        } else if o.lit == Lit::FALSE {
            writeln!(w, ".names {}", o.name)?;
        } else {
            writeln!(w, ".names {} {}", name(o.lit), o.name)?;
            writeln!(w, "{} 1", if o.lit.is_complement() { '0' } else { '1' })?;
        }
    }
    writeln!(w, ".end")?;
    Ok(())
}

struct Table {
    inputs: Vec<String>,
    /// cube rows over the inputs ('0' / '1' / '-'), on-set semantics
    cubes: Vec<String>,
    /// true when rows define the off-set (`... 0` lines)
    complemented: bool,
}

/// Reads a combinational BLIF file into an [`Aig`].
///
/// Supports multi-input `.names` tables (sum of cubes, on-set or off-set),
/// in any definition order. Latches and subcircuits are rejected.
///
/// # Errors
/// Returns a [`ParseBlifError`] on malformed, sequential or cyclic input.
pub fn read_blif<R: BufRead>(r: R, fallback_name: &str) -> Result<Aig, ParseBlifError> {
    let mut model = fallback_name.to_string();
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut tables: HashMap<String, Table> = HashMap::new();

    // Join continuation lines.
    let mut logical: Vec<String> = Vec::new();
    for line in r.lines() {
        let line = line?;
        let line = line.split('#').next().unwrap_or("").trim_end().to_string();
        if line.trim().is_empty() {
            continue;
        }
        if let Some(prev) = logical.last_mut() {
            if prev.ends_with('\\') {
                prev.pop();
                prev.push_str(&line);
                continue;
            }
        }
        logical.push(line);
    }

    let mut i = 0;
    while i < logical.len() {
        let line = logical[i].clone();
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some(".model") => model = toks.next().unwrap_or(fallback_name).to_string(),
            Some(".inputs") => inputs.extend(toks.map(str::to_string)),
            Some(".outputs") => outputs.extend(toks.map(str::to_string)),
            Some(".names") => {
                let signals: Vec<String> = toks.map(str::to_string).collect();
                let Some((out, ins)) = signals.split_last() else {
                    return Err(ParseBlifError::BadTable(line));
                };
                let mut cubes = Vec::new();
                let mut complemented = None;
                while i + 1 < logical.len() && !logical[i + 1].starts_with('.') {
                    i += 1;
                    let row = logical[i].trim().to_string();
                    let (cube, value) = if ins.is_empty() {
                        (String::new(), row.as_str())
                    } else {
                        let Some((c, v)) = row.rsplit_once(char::is_whitespace) else {
                            return Err(ParseBlifError::BadTable(row));
                        };
                        (c.trim().to_string(), v)
                    };
                    if cube.len() != ins.len()
                        || !cube.chars().all(|ch| matches!(ch, '0' | '1' | '-'))
                    {
                        return Err(ParseBlifError::BadTable(row.clone()));
                    }
                    let val = match value {
                        "1" => false,
                        "0" => true,
                        _ => return Err(ParseBlifError::BadTable(row.clone())),
                    };
                    if *complemented.get_or_insert(val) != val {
                        return Err(ParseBlifError::BadTable(
                            "mixed on-set and off-set rows".into(),
                        ));
                    }
                    cubes.push(cube);
                }
                tables.insert(
                    out.clone(),
                    Table {
                        inputs: ins.to_vec(),
                        cubes,
                        complemented: complemented.unwrap_or(false),
                    },
                );
            }
            Some(".end") => break,
            Some(".latch") | Some(".subckt") | Some(".gate") => {
                return Err(ParseBlifError::Unsupported(line))
            }
            Some(other) if other.starts_with('.') => {
                // ignore unknown dot-commands (.default_input_arrival etc.)
            }
            _ => return Err(ParseBlifError::BadTable(line)),
        }
        i += 1;
    }
    if inputs.is_empty() && outputs.is_empty() {
        return Err(ParseBlifError::BadHeader("no .inputs/.outputs".into()));
    }

    let mut aig = Aig::new(model);
    let mut signal: HashMap<String, Lit> = HashMap::new();
    for name in &inputs {
        let lit = aig.add_input(name.clone());
        signal.insert(name.clone(), lit);
    }

    // Recursive resolution with cycle detection.
    fn resolve(
        name: &str,
        aig: &mut Aig,
        tables: &HashMap<String, Table>,
        signal: &mut HashMap<String, Lit>,
        visiting: &mut Vec<String>,
    ) -> Result<Lit, ParseBlifError> {
        if let Some(&lit) = signal.get(name) {
            return Ok(lit);
        }
        if visiting.iter().any(|v| v == name) {
            return Err(ParseBlifError::Cycle(name.to_string()));
        }
        // Resolution recurses once per signal on a definition chain; bound
        // the depth so a pathological chain errors instead of overflowing
        // the stack.
        if visiting.len() >= 10_000 {
            return Err(ParseBlifError::Unsupported(format!(
                "definition chain deeper than 10000 signals at {name}"
            )));
        }
        let table = tables.get(name).ok_or_else(|| ParseBlifError::Undefined(name.to_string()))?;
        visiting.push(name.to_string());
        let mut ins = Vec::with_capacity(table.inputs.len());
        for input in &table.inputs {
            ins.push(resolve(input, aig, tables, signal, visiting)?);
        }
        visiting.pop();
        let mut cube_lits = Vec::with_capacity(table.cubes.len());
        for cube in &table.cubes {
            let lits: Vec<Lit> = cube
                .chars()
                .zip(&ins)
                .filter_map(|(ch, &lit)| match ch {
                    '1' => Some(lit),
                    '0' => Some(!lit),
                    _ => None,
                })
                .collect();
            cube_lits.push(aig.and_many(&lits));
        }
        let mut lit = aig.or_many(&cube_lits);
        if table.complemented {
            lit = !lit;
        }
        signal.insert(name.to_string(), lit);
        Ok(lit)
    }

    for out in &outputs {
        let mut visiting = Vec::new();
        let lit = resolve(out, &mut aig, &tables, &mut signal, &mut visiting)?;
        aig.add_output(lit, out.clone());
    }
    crate::edit::sweep_dangling(&mut aig);
    Ok(aig)
}

/// Serialises `aig` to a BLIF string.
pub fn to_blif_string(aig: &Aig) -> String {
    let mut buf = Vec::new();
    write_blif(aig, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("BLIF output is UTF-8")
}

/// Parses a BLIF string.
///
/// # Errors
/// Returns a [`ParseBlifError`] when the text is not valid BLIF.
pub fn from_blif_str(s: &str, fallback_name: &str) -> Result<Aig, ParseBlifError> {
    read_blif(s.as_bytes(), fallback_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;

    fn eval(aig: &Aig, bits: &[bool]) -> Vec<bool> {
        let mut val = vec![false; aig.num_nodes()];
        for (i, &pi) in aig.inputs().iter().enumerate() {
            val[pi.index()] = bits[i];
        }
        for id in crate::topo::topo_order(aig) {
            let n = aig.node(id);
            if n.is_and() {
                let f = |l: Lit| val[l.node().index()] ^ l.is_complement();
                val[id.index()] = f(n.fanin0()) && f(n.fanin1());
            }
        }
        aig.outputs().iter().map(|o| val[o.lit.node().index()] ^ o.lit.is_complement()).collect()
    }

    #[test]
    fn round_trip_preserves_function() {
        let mut aig = Aig::new("rt");
        let xs = aig.add_inputs("x", 4);
        let g1 = aig.xor(xs[0], xs[1]);
        let g2 = aig.and(!g1, xs[2]);
        let g3 = aig.or(g2, !xs[3]);
        aig.add_output(g3, "y0");
        aig.add_output(!g1, "y1");
        let text = to_blif_string(&aig);
        let back = from_blif_str(&text, "rt").unwrap();
        check(&back).unwrap();
        for p in 0..16 {
            let bits: Vec<bool> = (0..4).map(|i| p >> i & 1 == 1).collect();
            assert_eq!(eval(&aig, &bits), eval(&back, &bits), "pattern {p}");
        }
    }

    #[test]
    fn reads_multi_input_tables() {
        let text = "\
.model maj
.inputs a b c
.outputs m
.names a b c m
11- 1
1-1 1
-11 1
.end
";
        let aig = from_blif_str(text, "maj").unwrap();
        check(&aig).unwrap();
        for p in 0..8 {
            let bits: Vec<bool> = (0..3).map(|i| p >> i & 1 == 1).collect();
            let expect = bits.iter().filter(|&&b| b).count() >= 2;
            assert_eq!(eval(&aig, &bits)[0], expect, "pattern {p}");
        }
    }

    #[test]
    fn reads_off_set_tables() {
        let text = "\
.model nor
.inputs a b
.outputs y
.names a b y
1- 0
-1 0
.end
";
        let aig = from_blif_str(text, "nor").unwrap();
        for p in 0..4 {
            let bits: Vec<bool> = (0..2).map(|i| p >> i & 1 == 1).collect();
            assert_eq!(eval(&aig, &bits)[0], !(bits[0] || bits[1]), "pattern {p}");
        }
    }

    #[test]
    fn handles_out_of_order_definitions_and_constants() {
        let text = "\
.model k
.inputs a
.outputs y z
.names t a y
11 1
.names t
1
.names z
.end
";
        let aig = from_blif_str(text, "k").unwrap();
        for p in 0..2 {
            let bits = vec![p == 1];
            let out = eval(&aig, &bits);
            assert_eq!(out[0], bits[0]); // y = 1 & a
            assert!(!out[1]); // z = const0
        }
    }

    #[test]
    fn rejects_latches_and_cycles() {
        assert!(matches!(
            from_blif_str(".model s\n.inputs a\n.outputs q\n.latch a q 0\n.end", "s"),
            Err(ParseBlifError::Unsupported(_))
        ));
        let cyc = "\
.model c
.inputs a
.outputs y
.names y a y
11 1
.end
";
        assert!(matches!(from_blif_str(cyc, "c"), Err(ParseBlifError::Cycle(_))));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_blif_str("hello", "x").is_err());
        assert!(
            from_blif_str(".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end", "x").is_err()
        );
    }
}
