//! Topological orders and logic levels.

use crate::aig::Aig;
use crate::lit::NodeId;

/// Returns all live nodes in a topological order: the constant node first,
/// then the primary inputs, then AND gates with every fanin preceding its
/// fanouts.
///
/// The order is valid even after destructive edits have broken the
/// id-order-equals-topo-order property of freshly built graphs.
///
/// # Panics
/// Panics if the graph contains a cycle (which would indicate a broken
/// edit upstream).
pub fn topo_order(aig: &Aig) -> Vec<NodeId> {
    let n = aig.num_nodes();
    let mut order = Vec::with_capacity(n - aig.num_dead());
    order.push(NodeId::CONST0);
    order.extend_from_slice(aig.inputs());

    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; n];
    state[NodeId::CONST0.index()] = 2;
    for &pi in aig.inputs() {
        state[pi.index()] = 2;
    }

    let mut stack: Vec<(NodeId, u8)> = Vec::new();
    for root in aig.iter_ands() {
        if state[root.index()] != 0 {
            continue;
        }
        stack.push((root, 0));
        state[root.index()] = 1;
        while let Some(&mut (u, ref mut phase)) = stack.last_mut() {
            if *phase < 2 {
                let fanin = if *phase == 0 { aig.node(u).fanin0() } else { aig.node(u).fanin1() };
                *phase += 1;
                let v = fanin.node();
                match state[v.index()] {
                    0 => {
                        state[v.index()] = 1;
                        stack.push((v, 0));
                    }
                    1 => panic!("cycle detected through {v}"),
                    _ => {}
                }
            } else {
                state[u.index()] = 2;
                order.push(u);
                stack.pop();
            }
        }
    }
    order
}

/// Logic level of every node, indexed by node id.
///
/// The constant node and primary inputs are level 0; an AND gate is one more
/// than the maximum of its fanin levels. Dead nodes keep level 0.
pub fn levels(aig: &Aig) -> Vec<u32> {
    let mut level = vec![0u32; aig.num_nodes()];
    for &id in topo_order(aig).iter() {
        let node = aig.node(id);
        if node.is_and() {
            let l0 = level[node.fanin0().node().index()];
            let l1 = level[node.fanin1().node().index()];
            level[id.index()] = l0.max(l1) + 1;
        }
    }
    level
}

/// Maximum logic level over all primary-output drivers.
pub fn depth(aig: &Aig) -> u32 {
    let level = levels(aig);
    aig.outputs().iter().map(|o| level[o.lit.node().index()]).max().unwrap_or(0)
}

/// Position of every live node in the topological order (dead nodes get
/// `u32::MAX`). Useful as a priority key for cut computations.
pub fn topo_ranks(aig: &Aig) -> Vec<u32> {
    let mut rank = vec![u32::MAX; aig.num_nodes()];
    for (i, &id) in topo_order(aig).iter().enumerate() {
        rank[id.index()] = i as u32;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;

    fn chain(n: usize) -> Aig {
        let mut aig = Aig::new("chain");
        let mut cur = aig.add_input("a");
        let b = aig.add_input("b");
        for _ in 0..n {
            cur = aig.and(cur, b);
            // prevent strash collapsing: alternate polarity
            cur = !cur;
        }
        aig.add_output(cur, "o");
        aig
    }

    #[test]
    fn order_contains_all_live_nodes() {
        let aig = chain(5);
        let order = topo_order(&aig);
        assert_eq!(order.len(), aig.num_nodes() - aig.num_dead());
        // fanins precede fanouts
        let rank = topo_ranks(&aig);
        for id in aig.iter_ands() {
            let n = aig.node(id);
            assert!(rank[n.fanin0().node().index()] < rank[id.index()]);
            assert!(rank[n.fanin1().node().index()] < rank[id.index()]);
        }
    }

    #[test]
    fn levels_of_chain() {
        let aig = chain(4);
        let lv = levels(&aig);
        assert_eq!(depth(&aig), 4);
        for &pi in aig.inputs() {
            assert_eq!(lv[pi.index()], 0);
        }
    }

    #[test]
    fn depth_of_balanced_tree() {
        let mut aig = Aig::new("tree");
        let xs = aig.add_inputs("x", 8);
        let mut layer: Vec<_> = xs;
        while layer.len() > 1 {
            layer = layer.chunks(2).map(|c| aig.and(c[0], c[1])).collect();
        }
        aig.add_output(layer[0], "o");
        assert_eq!(depth(&aig), 3);
    }
}
