//! Node representation.

use crate::lit::Lit;

/// The functional kind of an AIG node.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum NodeKind {
    /// The constant-zero node (always node 0).
    Const0,
    /// Primary input; the payload is the input's position in the PI list.
    Input(u32),
    /// Two-input AND gate over (possibly complemented) fanins.
    And,
}

/// One node of an [`crate::Aig`].
///
/// Only [`NodeKind::And`] nodes have meaningful fanins; inputs and the
/// constant store [`Lit::FALSE`] placeholders.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Node {
    kind: NodeKind,
    fanin: [Lit; 2],
    dead: bool,
}

impl Node {
    pub(crate) fn const0() -> Node {
        Node { kind: NodeKind::Const0, fanin: [Lit::FALSE; 2], dead: false }
    }

    pub(crate) fn input(pos: u32) -> Node {
        Node { kind: NodeKind::Input(pos), fanin: [Lit::FALSE; 2], dead: false }
    }

    pub(crate) fn and(f0: Lit, f1: Lit) -> Node {
        Node { kind: NodeKind::And, fanin: [f0, f1], dead: false }
    }

    /// Functional kind of the node.
    #[inline]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Whether this node is a two-input AND gate.
    #[inline]
    pub fn is_and(&self) -> bool {
        matches!(self.kind, NodeKind::And)
    }

    /// Whether this node is a primary input.
    #[inline]
    pub fn is_input(&self) -> bool {
        matches!(self.kind, NodeKind::Input(_))
    }

    /// Whether this node is the constant-zero node.
    #[inline]
    pub fn is_const0(&self) -> bool {
        matches!(self.kind, NodeKind::Const0)
    }

    /// Whether the node has been removed from the network.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    pub(crate) fn set_dead(&mut self, dead: bool) {
        self.dead = dead;
    }

    /// First fanin literal (AND nodes only; `Lit::FALSE` otherwise).
    #[inline]
    pub fn fanin0(&self) -> Lit {
        self.fanin[0]
    }

    /// Second fanin literal (AND nodes only; `Lit::FALSE` otherwise).
    #[inline]
    pub fn fanin1(&self) -> Lit {
        self.fanin[1]
    }

    /// Both fanin literals.
    #[inline]
    pub fn fanins(&self) -> [Lit; 2] {
        self.fanin
    }

    pub(crate) fn set_fanin(&mut self, which: usize, lit: Lit) {
        self.fanin[which] = lit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::NodeId;

    #[test]
    fn kinds() {
        assert!(Node::const0().is_const0());
        assert!(Node::input(3).is_input());
        let n = Node::and(NodeId(1).lit(), !NodeId(2).lit());
        assert!(n.is_and());
        assert_eq!(n.fanin0(), NodeId(1).lit());
        assert_eq!(n.fanin1(), !NodeId(2).lit());
        assert!(!n.is_dead());
    }

    #[test]
    fn death_flag() {
        let mut n = Node::and(Lit::FALSE, Lit::TRUE);
        n.set_dead(true);
        assert!(n.is_dead());
        n.set_dead(false);
        assert!(!n.is_dead());
    }
}
