//! Transactional editing: an undo journal over the graph's mutation
//! internals.
//!
//! [`crate::edit::replace`] rewires fanins, fanout lists, primary outputs
//! and dead marks through a small set of `pub(crate)` primitives on
//! [`Aig`](crate::Aig). While a transaction is open ([`Aig::begin_txn`](crate::Aig::begin_txn)),
//! every one of those primitives records its exact inverse here, so
//! [`Aig::rollback_txn`](crate::Aig::rollback_txn) can restore the pre-transaction graph — fanout
//! *order included* — without ever cloning the circuit. This is what lets a
//! flow tentatively apply a LAC, re-validate its error exactly, and back out
//! on budget overshoot at cost proportional to the edit, not the graph.
//!
//! Transactions nest: each `begin_txn` pushes a savepoint, `rollback_txn`
//! undoes back to the innermost savepoint, and `commit_txn` keeps the
//! changes while leaving enclosing transactions able to undo them.
//!
//! Deliberate limits, enforced or documented:
//!
//! * Node creation (`add_input`, `and`, `add_output`) inside a transaction
//!   is rejected — LAC application only ever removes nodes, and the journal
//!   stays minimal for it.
//! * The structural-hashing table is *not* restored by rollback; it is
//!   invalidated on the first destructive edit either way, and the flows
//!   never construct new nodes after editing begins.

use crate::lit::{Lit, NodeId};

/// One recorded inverse: applying it undoes exactly one mutation primitive.
///
/// Undo is strictly LIFO, which makes positional inverses exact: a
/// `swap_remove` at `pos` is inverted by putting the displaced tail element
/// back at the end and the removed value back at `pos`.
#[derive(Clone, Debug)]
pub(crate) enum TxnOp {
    /// `set_fanin(node, slot, _)` overwrote `old`.
    SetFanin { node: NodeId, slot: u8, old: Lit },
    /// `push_fanout(of, _)` appended one entry.
    PushFanout { of: NodeId },
    /// `remove_fanout_once(of, _)` swap-removed `value` from index `pos`.
    RemoveFanout { of: NodeId, value: NodeId, pos: usize },
    /// `take_fanouts(of)` emptied the list, which held `old`.
    TakeFanouts { of: NodeId, old: Vec<NodeId> },
    /// `take_po_refs(of)` emptied the list, which held `old`.
    TakePoRefs { of: NodeId, old: Vec<u32> },
    /// `push_po_ref(of, _)` appended one entry.
    PushPoRef { of: NodeId },
    /// `set_output_lit(idx, _)` overwrote `old`.
    SetOutputLit { idx: u32, old: Lit },
    /// `mark_dead(node)` killed a live node.
    MarkDead { node: NodeId },
}

/// A savepoint: where the enclosing transaction's journal ends.
#[derive(Clone, Debug)]
pub(crate) struct Savepoint {
    /// Journal length when the transaction opened.
    pub(crate) journal_len: usize,
    /// Node-slot count when the transaction opened (creation is forbidden
    /// inside transactions; checked on rollback).
    pub(crate) num_nodes: usize,
}

/// The undo journal plus the savepoint stack. Owned by [`crate::Aig`];
/// empty (and cost-free on the mutation paths) outside transactions.
#[derive(Clone, Debug, Default)]
pub(crate) struct TxnLog {
    pub(crate) ops: Vec<TxnOp>,
    pub(crate) savepoints: Vec<Savepoint>,
}

impl TxnLog {
    /// Whether any transaction is open (mutations must be journaled).
    #[inline]
    pub(crate) fn active(&self) -> bool {
        !self.savepoints.is_empty()
    }

    #[inline]
    pub(crate) fn record(&mut self, op: TxnOp) {
        self.ops.push(op);
    }
}

#[cfg(test)]
mod tests {
    use crate::aig::Aig;
    use crate::check::check;
    use crate::edit::{replace, EditRecord};
    use crate::lit::{Lit, NodeId};

    /// `o0 = (a&b)&(c&d)`, `o1 = c&d` — same shape as the `edit` tests.
    fn sample() -> (Aig, Lit, Lit) {
        let mut aig = Aig::new("s");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let g1 = aig.and(a, b);
        let g2 = aig.and(c, d);
        let g3 = aig.and(g1, g2);
        aig.add_output(g3, "o0");
        aig.add_output(g2, "o1");
        (aig, g1, g3)
    }

    /// Per-node record: (live, fanins, fanouts, output uses).
    type Snapshot = Vec<(bool, Vec<Lit>, Vec<NodeId>, Vec<u32>)>;

    /// Structural snapshot for exact before/after comparison.
    fn snapshot(aig: &Aig) -> Snapshot {
        (0..aig.num_nodes())
            .map(|i| {
                let id = NodeId(i as u32);
                let node = aig.node(id);
                (
                    aig.is_live(id),
                    if node.is_and() { node.fanins().to_vec() } else { Vec::new() },
                    aig.fanouts(id).to_vec(),
                    aig.output_refs(id).to_vec(),
                )
            })
            .collect()
    }

    fn outputs(aig: &Aig) -> Vec<Lit> {
        (0..aig.num_outputs()).map(|i| aig.output_lit(i)).collect()
    }

    #[test]
    fn rollback_restores_graph_exactly() {
        let (mut aig, g1, g3) = sample();
        for replacement in [Lit::FALSE, Lit::TRUE, aig.inputs()[0].lit()] {
            for target in [g1.node(), g3.node()] {
                let before = snapshot(&aig);
                let before_outs = outputs(&aig);
                let dead = aig.num_dead();
                aig.begin_txn();
                let rec = replace(&mut aig, target, replacement);
                assert!(!rec.removed.is_empty());
                aig.rollback_txn();
                assert_eq!(snapshot(&aig), before);
                assert_eq!(outputs(&aig), before_outs);
                assert_eq!(aig.num_dead(), dead);
                check(&aig).unwrap();
            }
        }
    }

    #[test]
    fn commit_keeps_the_edit() {
        let (mut aig, g1, _) = sample();
        aig.begin_txn();
        let rec = replace(&mut aig, g1.node(), Lit::FALSE);
        aig.commit_txn();
        assert!(!aig.in_txn());
        assert!(!aig.is_live(g1.node()));
        assert_eq!(rec.removed, vec![g1.node()]);
        check(&aig).unwrap();
    }

    #[test]
    fn nested_inner_commit_outer_rollback_undoes_both() {
        let (mut aig, _, g3) = sample();
        let before = snapshot(&aig);
        aig.begin_txn();
        let pi0 = aig.inputs()[0].lit();
        replace(&mut aig, g3.node(), pi0);
        aig.begin_txn();
        let survivor = aig.iter_ands().next().unwrap();
        replace(&mut aig, survivor, Lit::TRUE);
        aig.commit_txn();
        assert!(aig.in_txn());
        aig.rollback_txn();
        assert!(!aig.in_txn());
        assert_eq!(snapshot(&aig), before);
        check(&aig).unwrap();
    }

    #[test]
    fn nested_inner_rollback_preserves_outer_edit() {
        let (mut aig, g1, _) = sample();
        aig.begin_txn();
        replace(&mut aig, g1.node(), Lit::FALSE);
        let mid = snapshot(&aig);
        aig.begin_txn();
        let g2 = aig.iter_ands().find(|&n| aig.fanout_count(n) > 1).unwrap();
        replace(&mut aig, g2, Lit::TRUE);
        aig.rollback_txn();
        assert_eq!(snapshot(&aig), mid);
        aig.commit_txn();
        assert!(!aig.is_live(g1.node()));
        check(&aig).unwrap();
    }

    #[test]
    fn rollback_after_multiple_edits_in_one_txn() {
        let (mut aig, _, _) = sample();
        let before = snapshot(&aig);
        aig.begin_txn();
        let mut edits: Vec<EditRecord> = Vec::new();
        loop {
            let Some(target) = aig.iter_ands().next() else { break };
            edits.push(replace(&mut aig, target, Lit::FALSE));
        }
        assert!(edits.len() >= 2, "expected to exhaust several gates");
        assert_eq!(aig.num_ands(), 0);
        aig.rollback_txn();
        assert_eq!(snapshot(&aig), before);
        check(&aig).unwrap();
    }

    #[test]
    #[should_panic(expected = "node creation inside a transaction")]
    fn node_creation_inside_txn_is_rejected() {
        let (mut aig, _, _) = sample();
        aig.begin_txn();
        let a = aig.inputs()[0].lit();
        let b = aig.inputs()[1].lit();
        aig.and_raw(a, b);
    }

    #[test]
    #[should_panic(expected = "no open transaction")]
    fn rollback_without_begin_panics() {
        let (mut aig, _, _) = sample();
        aig.rollback_txn();
    }
}
