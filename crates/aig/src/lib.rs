//! AND-inverter graph (AIG) substrate for approximate logic synthesis.
//!
//! This crate provides the combinational-network machinery that every other
//! crate in the workspace builds on:
//!
//! * [`Lit`] / [`NodeId`] — complement-edge literals over node indices,
//! * [`Aig`] — a mutable DAG of two-input AND nodes with complemented edges,
//!   primary inputs and primary outputs, with full fanout tracking,
//! * [`cone`] — transitive fanin/fanout cones and maximum fanout-free cones
//!   (MFFC),
//! * [`edit`] — the node-replacement primitive used to apply local
//!   approximate changes (LACs), returning an [`edit::EditRecord`] that the
//!   incremental analyses of the dual-phase flow consume,
//! * [`topo`] — topological orders and logic levels,
//! * [`io`] — AIGER (ASCII and binary) reading and writing,
//! * [`check`] — structural invariant checking for tests and debugging.
//!
//! # Example
//!
//! ```
//! use als_aig::{Aig, Lit};
//!
//! let mut aig = Aig::new("toy");
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let g = aig.and(a, b);
//! aig.add_output(!g, "nand_ab");
//! assert_eq!(aig.num_ands(), 1);
//! ```

pub mod aig;
pub mod blif;
pub mod build;
pub mod check;
pub mod cone;
pub mod dot;
pub mod edit;
pub mod io;
pub mod lit;
pub mod node;
pub mod simplify;
pub mod strash;
pub mod topo;
pub mod txn;
pub mod verilog;

pub use aig::{Aig, Output};
pub use edit::EditRecord;
pub use lit::{Lit, NodeId};
pub use node::{Node, NodeKind};
