//! Node identifiers and complement-edge literals.
//!
//! An AIG edge is a [`Lit`]: a node index plus a complement bit, packed into
//! a single `u32` exactly as in the AIGER format (`2 * var + complement`).

use std::fmt;

/// Index of a node inside an [`crate::Aig`].
///
/// Node `0` is always the constant-zero node. Identifiers are stable across
/// edits: removing a node marks it dead but never shifts other identifiers
/// (use [`crate::Aig::compact`] to renumber).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The constant-zero node, present in every AIG.
    pub const CONST0: NodeId = NodeId(0);

    /// Returns the raw index as `usize` for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Positive-polarity literal for this node.
    #[inline]
    pub fn lit(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for Lit {
    fn from(n: NodeId) -> Lit {
        n.lit()
    }
}

/// A literal: a reference to a node with an optional complement.
///
/// Encoded as `2 * node + complement`, the AIGER convention, so
/// [`Lit::FALSE`] is `0` and [`Lit::TRUE`] is `1`.
///
/// ```
/// use als_aig::{Lit, NodeId};
/// let x = NodeId(7).lit();
/// assert_eq!((!x).node(), NodeId(7));
/// assert!((!x).is_complement());
/// assert_eq!(!!x, x);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// Constant false (positive literal of the constant-zero node).
    pub const FALSE: Lit = Lit(0);
    /// Constant true (complemented literal of the constant-zero node).
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node and a complement flag.
    #[inline]
    pub fn new(node: NodeId, complement: bool) -> Lit {
        Lit((node.0 << 1) | complement as u32)
    }

    /// Builds a literal from its raw AIGER encoding (`2 * var + c`).
    #[inline]
    pub fn from_raw(raw: u32) -> Lit {
        Lit(raw)
    }

    /// Raw AIGER encoding of this literal.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The node this literal refers to.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the literal is complemented.
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether this is one of the two constant literals.
    #[inline]
    pub fn is_const(self) -> bool {
        self.node() == NodeId::CONST0
    }

    /// Applies an extra complement when `c` is true.
    ///
    /// Useful when rewiring: replacing node `b` by literal `s` inside a
    /// fanin that referenced `!b` must use `s.xor_complement(true)`.
    #[inline]
    pub fn xor_complement(self, c: bool) -> Lit {
        Lit(self.0 ^ c as u32)
    }

    /// The same literal with the complement bit cleared.
    #[inline]
    pub fn abs(self) -> Lit {
        Lit(self.0 & !1)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!n{}", self.node().0)
        } else {
            write!(f, "n{}", self.node().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trip() {
        for raw in 0..64u32 {
            let l = Lit::from_raw(raw);
            assert_eq!(l.raw(), raw);
            assert_eq!(Lit::new(l.node(), l.is_complement()), l);
        }
    }

    #[test]
    fn constants() {
        assert_eq!(Lit::FALSE.node(), NodeId::CONST0);
        assert_eq!(Lit::TRUE.node(), NodeId::CONST0);
        assert!(!Lit::FALSE.is_complement());
        assert!(Lit::TRUE.is_complement());
        assert_eq!(!Lit::FALSE, Lit::TRUE);
        assert!(Lit::TRUE.is_const() && Lit::FALSE.is_const());
        assert!(!NodeId(3).lit().is_const());
    }

    #[test]
    fn complement_involution() {
        let l = Lit::new(NodeId(12), true);
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).node(), l.node());
    }

    #[test]
    fn xor_complement_matches_not() {
        let l = NodeId(5).lit();
        assert_eq!(l.xor_complement(true), !l);
        assert_eq!(l.xor_complement(false), l);
        assert_eq!((!l).abs(), l);
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", NodeId(4)), "n4");
        assert_eq!(format!("{:?}", NodeId(4).lit()), "n4");
        assert_eq!(format!("{:?}", !NodeId(4).lit()), "!n4");
    }

    #[test]
    fn ordering_follows_raw_encoding() {
        assert!(Lit::FALSE < Lit::TRUE);
        assert!(Lit::TRUE < NodeId(1).lit());
        assert!(NodeId(1).lit() < !NodeId(1).lit());
    }
}
