//! Transitive fanin/fanout cones and maximum fanout-free cones.

use std::collections::HashMap;

use crate::aig::Aig;
use crate::lit::NodeId;

/// Transitive-fanout cone of `n`: `n` itself plus every live gate reachable
/// from it through fanout edges. Order is a BFS order from `n`.
pub fn tfo_cone(aig: &Aig, n: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; aig.num_nodes()];
    let mut cone = vec![n];
    seen[n.index()] = true;
    let mut head = 0;
    while head < cone.len() {
        let u = cone[head];
        head += 1;
        for &f in aig.fanouts(u) {
            if !seen[f.index()] {
                seen[f.index()] = true;
                cone.push(f);
            }
        }
    }
    cone
}

/// Transitive-fanin cone of `n`: `n` itself plus every node (gates, inputs,
/// possibly the constant) feeding it. Order is a BFS order from `n`.
pub fn tfi_cone(aig: &Aig, n: NodeId) -> Vec<NodeId> {
    tfi_cone_union(aig, std::slice::from_ref(&n))
}

/// Union of the transitive-fanin cones of all `seeds` (each seed included).
///
/// Seeds may be dead nodes: their recorded fanins are still traversed, which
/// is exactly what the incremental cut update needs when computing `S_v`
/// from removed nodes. Non-seed dead nodes are never reached because live
/// nodes cannot have dead fanins.
pub fn tfi_cone_union(aig: &Aig, seeds: &[NodeId]) -> Vec<NodeId> {
    let mut seen = vec![false; aig.num_nodes()];
    let mut cone = Vec::new();
    for &s in seeds {
        if !seen[s.index()] {
            seen[s.index()] = true;
            cone.push(s);
        }
    }
    let mut head = 0;
    while head < cone.len() {
        let u = cone[head];
        head += 1;
        let node = aig.node(u);
        if node.is_and() {
            for f in node.fanins() {
                let v = f.node();
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    cone.push(v);
                }
            }
        }
    }
    cone
}

/// Maximum fanout-free cone of `n`: the set of gates (including `n`) that
/// would become dangling if `n` were removed, i.e. the nodes a LAC on `n`
/// deletes.
///
/// Primary inputs and the constant node are never part of an MFFC.
pub fn mffc(aig: &Aig, n: NodeId) -> Vec<NodeId> {
    debug_assert!(aig.node(n).is_and(), "MFFC is defined for gates");
    let mut remaining: HashMap<NodeId, usize> = HashMap::new();
    let mut cone = vec![n];
    let mut stack = vec![n];
    while let Some(u) = stack.pop() {
        for f in aig.node(u).fanins() {
            let v = f.node();
            if !aig.node(v).is_and() {
                continue;
            }
            let r = remaining.entry(v).or_insert_with(|| aig.fanout_count(v));
            debug_assert!(*r > 0);
            *r -= 1;
            if *r == 0 {
                cone.push(v);
                stack.push(v);
            }
        }
    }
    cone
}

/// Size of the MFFC of `n` — the number of gates a LAC targeting `n` saves.
pub fn mffc_size(aig: &Aig, n: NodeId) -> usize {
    mffc(aig, n).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;

    /// Builds the diamond `o = (a&b) & (a&c)`.
    fn diamond() -> (Aig, NodeId, NodeId, NodeId) {
        let mut aig = Aig::new("d");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g1 = aig.and(a, b);
        let g2 = aig.and(a, c);
        let g3 = aig.and(g1, g2);
        aig.add_output(g3, "o");
        (aig, g1.node(), g2.node(), g3.node())
    }

    #[test]
    fn tfo_of_inner_node() {
        let (aig, g1, _, g3) = diamond();
        let cone = tfo_cone(&aig, g1);
        assert_eq!(cone, vec![g1, g3]);
    }

    #[test]
    fn tfo_of_input_covers_everything() {
        let (aig, g1, g2, g3) = diamond();
        let a = aig.inputs()[0];
        let mut cone = tfo_cone(&aig, a);
        cone.sort();
        let mut expect = vec![a, g1, g2, g3];
        expect.sort();
        assert_eq!(cone, expect);
    }

    #[test]
    fn tfi_of_root_covers_everything() {
        let (aig, _, _, g3) = diamond();
        let cone = tfi_cone(&aig, g3);
        assert_eq!(cone.len(), 6); // g3, g1, g2, a, b, c
    }

    #[test]
    fn tfi_union_deduplicates() {
        let (aig, g1, g2, _) = diamond();
        let cone = tfi_cone_union(&aig, &[g1, g2]);
        // g1, g2, a, b, c
        assert_eq!(cone.len(), 5);
    }

    #[test]
    fn mffc_of_root_is_whole_diamond() {
        let (aig, _, _, g3) = diamond();
        let mut m = mffc(&aig, g3);
        m.sort();
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn mffc_stops_at_shared_nodes() {
        // g3 = g1 & c where g1 also feeds an output: MFFC(g3) = {g3}.
        let mut aig = Aig::new("s");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g1 = aig.and(a, b);
        let g3 = aig.and(g1, c);
        aig.add_output(g3, "o0");
        aig.add_output(g1, "o1");
        assert_eq!(mffc(&aig, g3.node()), vec![g3.node()]);
        assert_eq!(mffc_size(&aig, g3.node()), 1);
    }

    #[test]
    fn mffc_counts_double_edges_once_per_slot() {
        // h uses g on both slots; removing h must free g.
        let mut aig = Aig::new("dbl");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g = aig.and(a, b);
        let h = aig.and_raw(g, !g);
        aig.add_output(h, "o");
        let mut m = mffc(&aig, h.node());
        m.sort();
        assert_eq!(m, vec![g.node(), h.node()]);
    }
}
