//! Structural hashing table used during graph construction.

use std::collections::HashMap;

use crate::lit::{Lit, NodeId};

/// Maps ordered fanin pairs to existing AND nodes.
///
/// The table is only valid while the graph is append-only; the first
/// destructive edit clears it (stale entries could resurrect dead nodes).
#[derive(Clone, Debug, Default)]
pub struct StrashTable {
    map: HashMap<(u32, u32), NodeId>,
}

impl StrashTable {
    /// Creates an empty table.
    pub fn new() -> StrashTable {
        StrashTable::default()
    }

    /// Looks up an AND of `(a, b)`; fanins must already be ordered.
    pub fn lookup(&self, a: Lit, b: Lit) -> Option<NodeId> {
        debug_assert!(a.raw() <= b.raw());
        self.map.get(&(a.raw(), b.raw())).copied()
    }

    /// Records that `id` computes the AND of `(a, b)`.
    pub fn insert(&mut self, a: Lit, b: Lit, id: NodeId) {
        debug_assert!(a.raw() <= b.raw());
        self.map.insert((a.raw(), b.raw()), id);
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        if !self.map.is_empty() {
            self.map.clear();
        }
    }

    /// Number of hashed AND shapes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_clear() {
        let mut t = StrashTable::new();
        let a = NodeId(1).lit();
        let b = NodeId(2).lit();
        assert!(t.lookup(a, b).is_none());
        t.insert(a, b, NodeId(3));
        assert_eq!(t.lookup(a, b), Some(NodeId(3)));
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
    }
}
