//! Exact simplification passes: constant propagation and structural
//! deduplication.
//!
//! Approximate flows replace nodes by constants, which leaves foldable
//! gates (`AND(0, x)`, `AND(1, x)`, `AND(x, x)`, `AND(x, !x)`) behind.
//! These passes remove them *without changing any node's simulated value*,
//! so a flow can fold after every LAC and feed the returned
//! [`EditRecord`]s straight into its incremental cut update. The paper's
//! reference flow maps through ABC, which performs the same cleanups
//! before technology mapping.

use std::collections::HashMap;

use crate::aig::Aig;
pub use crate::edit::EditRecord;
use crate::lit::{Lit, NodeId};

/// If `id` computes a trivially foldable function, the literal it folds to.
fn folds_to(aig: &Aig, id: NodeId) -> Option<Lit> {
    let node = aig.node(id);
    if !node.is_and() {
        return None;
    }
    let (f0, f1) = (node.fanin0(), node.fanin1());
    if f0 == Lit::FALSE || f1 == Lit::FALSE || f0 == !f1 {
        Some(Lit::FALSE)
    } else if f0 == Lit::TRUE {
        Some(f1)
    } else if f1 == Lit::TRUE || f0 == f1 {
        Some(f0)
    } else {
        None
    }
}

/// Folds trivially constant/redundant gates reachable from `seeds`'
/// fanouts, transitively. Returns one edit record per fold, in application
/// order. Node values are unchanged, so simulators stay valid.
pub fn propagate_constants_from(aig: &mut Aig, seeds: &[NodeId]) -> Vec<EditRecord> {
    let mut work: Vec<NodeId> =
        seeds.iter().flat_map(|&s| aig.fanouts(s).iter().copied()).collect();
    work.extend_from_slice(seeds);
    let mut records = Vec::new();
    while let Some(id) = work.pop() {
        if !aig.is_live(id) {
            continue;
        }
        let Some(replacement) = folds_to(aig, id) else { continue };
        let rec = crate::edit::replace(aig, id, replacement);
        // newly rewired consumers may now be foldable themselves
        work.extend(aig.fanouts(replacement.node()).iter().copied());
        records.push(rec);
    }
    records
}

/// Folds every trivially constant/redundant gate in the graph.
pub fn propagate_constants(aig: &mut Aig) -> Vec<EditRecord> {
    let seeds: Vec<NodeId> = aig.iter_live().collect();
    propagate_constants_from(aig, &seeds)
}

/// Merges structurally identical AND gates (same fanin literal pair),
/// keeping the topologically earliest of each class. Returns the edit
/// records of the merges.
pub fn merge_duplicates(aig: &mut Aig) -> Vec<EditRecord> {
    let order = crate::topo::topo_order(aig);
    let mut seen: HashMap<(u32, u32), NodeId> = HashMap::new();
    let mut records = Vec::new();
    for id in order {
        if !aig.is_live(id) || !aig.node(id).is_and() {
            continue;
        }
        let (f0, f1) = (aig.node(id).fanin0(), aig.node(id).fanin1());
        let key = if f0.raw() <= f1.raw() { (f0.raw(), f1.raw()) } else { (f1.raw(), f0.raw()) };
        match seen.get(&key) {
            Some(&canonical) if aig.is_live(canonical) && canonical != id => {
                records.push(crate::edit::replace(aig, id, canonical.lit()));
            }
            _ => {
                seen.insert(key, id);
            }
        }
    }
    records
}

/// Runs constant propagation and deduplication to a fixpoint. Returns the
/// total number of removed gates.
pub fn simplify(aig: &mut Aig) -> usize {
    let before = aig.num_ands();
    loop {
        let a = propagate_constants(aig).len();
        let b = merge_duplicates(aig).len();
        if a + b == 0 {
            break;
        }
    }
    before - aig.num_ands()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;

    #[test]
    fn folds_constant_fanins() {
        let mut aig = Aig::new("k");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        // build AND(0, a) and AND(1, b) without builder folding
        let g0 = aig.and_raw(Lit::FALSE, a);
        let g1 = aig.and_raw(Lit::TRUE, b);
        let h = aig.and_raw(g0, g1);
        aig.add_output(h, "o");
        let recs = propagate_constants(&mut aig);
        assert!(!recs.is_empty());
        check(&aig).unwrap();
        assert_eq!(aig.num_ands(), 0);
        assert_eq!(aig.output_lit(0), Lit::FALSE);
    }

    #[test]
    fn folds_equal_and_complementary_fanins() {
        let mut aig = Aig::new("e");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g = aig.and(a, b);
        let dup = aig.and_raw(g, g);
        let zero = aig.and_raw(g, !g);
        let h = aig.and_raw(dup, !zero);
        aig.add_output(h, "o");
        propagate_constants(&mut aig);
        check(&aig).unwrap();
        // h = dup & !zero = g & 1 = g
        assert_eq!(aig.output_lit(0), g);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn merge_removes_structural_duplicates() {
        let mut aig = Aig::new("m");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g1 = aig.and_raw(a, b);
        let g2 = aig.and_raw(a, b); // duplicate
        let h1 = aig.and_raw(g1, c);
        let h2 = aig.and_raw(g2, c); // becomes duplicate after merge
        aig.add_output(h1, "o1");
        aig.add_output(h2, "o2");
        let removed = simplify(&mut aig);
        assert_eq!(removed, 2);
        check(&aig).unwrap();
        assert_eq!(aig.output_lit(0), aig.output_lit(1));
    }

    #[test]
    fn simplification_preserves_function() {
        // random-ish circuit with injected redundancy
        let mut aig = Aig::new("f");
        let xs = aig.add_inputs("x", 6);
        let g1 = aig.and_raw(xs[0], xs[1]);
        let g2 = aig.and_raw(xs[0], xs[1]);
        let g3 = aig.and_raw(g1, Lit::TRUE);
        let g4 = aig.and_raw(g2, xs[2]);
        let g5 = aig.and_raw(g3, g4);
        aig.add_output(g5, "o");
        let reference = crate::verilog::to_verilog_string(&aig); // pre snapshot
        let _ = reference;

        // simulate before
        let eval = |aig: &Aig, bits: &[bool]| -> bool {
            let mut val = vec![false; aig.num_nodes()];
            for (i, &pi) in aig.inputs().iter().enumerate() {
                val[pi.index()] = bits[i];
            }
            for id in crate::topo::topo_order(aig) {
                let n = aig.node(id);
                if n.is_and() {
                    let f = |l: Lit| val[l.node().index()] ^ l.is_complement();
                    val[id.index()] = f(n.fanin0()) && f(n.fanin1());
                }
            }
            let o = aig.output_lit(0);
            val[o.node().index()] ^ o.is_complement()
        };
        let before: Vec<bool> = (0..64)
            .map(|p| eval(&aig, &(0..6).map(|i| p >> i & 1 == 1).collect::<Vec<_>>()))
            .collect();
        simplify(&mut aig);
        check(&aig).unwrap();
        let after: Vec<bool> = (0..64)
            .map(|p| eval(&aig, &(0..6).map(|i| p >> i & 1 == 1).collect::<Vec<_>>()))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn clean_circuit_is_untouched() {
        let mut aig = Aig::new("c");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g = aig.and(a, !b);
        aig.add_output(g, "o");
        assert_eq!(simplify(&mut aig), 0);
        assert_eq!(aig.num_ands(), 1);
    }
}
