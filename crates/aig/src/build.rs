//! Gate-level construction helpers on top of [`Aig::and`].
//!
//! All helpers fold constants and reuse structure through the strash table,
//! so generated circuits stay compact. Word-level arithmetic (adders,
//! multipliers, …) lives in the `als-circuits` crate.

use crate::aig::Aig;
use crate::lit::Lit;

impl Aig {
    /// OR of two literals.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// NAND of two literals.
    pub fn nand(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(a, b)
    }

    /// NOR of two literals.
    pub fn nor(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(!a, !b)
    }

    /// XOR of two literals (two-AND construction).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let n0 = self.and(a, !b);
        let n1 = self.and(!a, b);
        self.or(n0, n1)
    }

    /// XNOR of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Multiplexer: `if s { t } else { e }`.
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let a = self.and(s, t);
        let b = self.and(!s, e);
        self.or(a, b)
    }

    /// Three-input majority (the carry function of a full adder).
    pub fn maj(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let t = self.or(ab, ac);
        self.or(t, bc)
    }

    /// Half adder: returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: Lit, b: Lit) -> (Lit, Lit) {
        (self.xor(a, b), self.and(a, b))
    }

    /// Full adder: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let s0 = self.xor(a, b);
        let sum = self.xor(s0, cin);
        let carry = self.maj(a, b, cin);
        (sum, carry)
    }

    /// AND over a slice of literals (balanced tree; empty slice is true).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_tree(lits, Lit::TRUE, Aig::and)
    }

    /// OR over a slice of literals (balanced tree; empty slice is false).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_tree(lits, Lit::FALSE, Aig::or)
    }

    /// XOR over a slice of literals (balanced tree; empty slice is false).
    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_tree(lits, Lit::FALSE, Aig::xor)
    }

    fn reduce_tree(&mut self, lits: &[Lit], empty: Lit, op: fn(&mut Aig, Lit, Lit) -> Lit) -> Lit {
        match lits.len() {
            0 => empty,
            1 => lits[0],
            n => {
                let (lo, hi) = lits.split_at(n / 2);
                let a = self.reduce_tree(lo, empty, op);
                let b = self.reduce_tree(hi, empty, op);
                op(self, a, b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluates the single output of `aig` on the given input assignment.
    fn eval(aig: &Aig, inputs: &[bool]) -> bool {
        let mut val = vec![false; aig.num_nodes()];
        for (i, &pi) in aig.inputs().iter().enumerate() {
            val[pi.index()] = inputs[i];
        }
        for id in crate::topo::topo_order(aig) {
            let n = aig.node(id);
            if n.is_and() {
                let f = |l: Lit| val[l.node().index()] ^ l.is_complement();
                val[id.index()] = f(n.fanin0()) && f(n.fanin1());
            }
        }
        let o = aig.output_lit(0);
        val[o.node().index()] ^ o.is_complement()
    }

    fn truth2(f: impl Fn(&mut Aig, Lit, Lit) -> Lit) -> Vec<bool> {
        let mut out = Vec::new();
        for a in [false, true] {
            for b in [false, true] {
                let mut aig = Aig::new("t");
                let x = aig.add_input("a");
                let y = aig.add_input("b");
                let g = f(&mut aig, x, y);
                aig.add_output(g, "o");
                out.push(eval(&aig, &[a, b]));
            }
        }
        out
    }

    #[test]
    fn gate_truth_tables() {
        assert_eq!(truth2(Aig::or), vec![false, true, true, true]);
        assert_eq!(truth2(Aig::nand), vec![true, true, true, false]);
        assert_eq!(truth2(Aig::nor), vec![true, false, false, false]);
        assert_eq!(truth2(Aig::xor), vec![false, true, true, false]);
        assert_eq!(truth2(Aig::xnor), vec![true, false, false, true]);
    }

    #[test]
    fn mux_selects() {
        for s in [false, true] {
            for t in [false, true] {
                for e in [false, true] {
                    let mut aig = Aig::new("m");
                    let ls = aig.add_input("s");
                    let lt = aig.add_input("t");
                    let le = aig.add_input("e");
                    let g = aig.mux(ls, lt, le);
                    aig.add_output(g, "o");
                    assert_eq!(eval(&aig, &[s, t, e]), if s { t } else { e });
                }
            }
        }
    }

    #[test]
    fn full_adder_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let mut aig = Aig::new("fa");
                    let la = aig.add_input("a");
                    let lb = aig.add_input("b");
                    let lc = aig.add_input("c");
                    let (s, co) = aig.full_adder(la, lb, lc);
                    aig.add_output(s, "s");
                    aig.add_output(co, "c");
                    let total = a as u8 + b as u8 + c as u8;
                    assert_eq!(eval(&aig, &[a, b, c]), total & 1 == 1);
                    // check carry via second output
                    let mut aig2 = Aig::new("fa2");
                    let la = aig2.add_input("a");
                    let lb = aig2.add_input("b");
                    let lc = aig2.add_input("c");
                    let (_s, co) = aig2.full_adder(la, lb, lc);
                    aig2.add_output(co, "c");
                    assert_eq!(eval(&aig2, &[a, b, c]), total >= 2);
                    let _ = co;
                }
            }
        }
    }

    #[test]
    fn reduction_trees() {
        let mut aig = Aig::new("r");
        let xs = aig.add_inputs("x", 5);
        let g = aig.xor_many(&xs);
        aig.add_output(g, "o");
        // parity of 5 bits
        for pattern in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| pattern >> i & 1 == 1).collect();
            assert_eq!(eval(&aig, &bits), pattern.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn empty_reductions() {
        let mut aig = Aig::new("e");
        assert_eq!(aig.and_many(&[]), Lit::TRUE);
        assert_eq!(aig.or_many(&[]), Lit::FALSE);
        assert_eq!(aig.xor_many(&[]), Lit::FALSE);
    }
}
