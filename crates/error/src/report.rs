//! Aggregate error reporting beyond the three bounded metrics.
//!
//! Approximate-computing papers conventionally also report normalised and
//! relative error figures; this module derives them all from one
//! [`ErrorState`] without re-simulation.

use crate::state::ErrorState;

/// A full statistical error report for the current approximate circuit.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorReport {
    /// Error rate: fraction of patterns with any wrong output.
    pub er: f64,
    /// Mean error distance.
    pub med: f64,
    /// Mean squared error.
    pub mse: f64,
    /// Worst observed error distance.
    pub max_ed: f64,
    /// MED normalised to the output range (`med / (2^K - 1)` for a
    /// `K`-output unsigned word).
    pub nmed: f64,
    /// Mean relative error distance: `mean(|approx - exact| /
    /// max(exact, 1))`.
    pub mred: f64,
    /// Log2-bucketed error-distance histogram: `histogram[k]` counts
    /// patterns with `2^(k-1) < ED <= 2^k` (`histogram[0]` counts
    /// `0 < ED <= 1`); exact patterns are not counted.
    pub histogram: Vec<usize>,
}

impl ErrorReport {
    /// Builds a report from an error state.
    pub fn from_state(state: &ErrorState) -> ErrorReport {
        let n = state.num_patterns();
        let range: f64 = state.weights().iter().sum();
        let exact = state.exact_values();
        let mut histogram = vec![0usize; 130];
        let mut mred_sum = 0.0;
        let mut top = 0usize;
        for (p, &ex) in exact.iter().enumerate().take(n) {
            let ed = state.signed_error(p).abs();
            if ed > 0.0 {
                let bucket = ed.log2().ceil().max(0.0) as usize;
                let bucket = bucket.min(histogram.len() - 1);
                histogram[bucket] += 1;
                top = top.max(bucket + 1);
            }
            mred_sum += ed / ex.max(1.0);
        }
        histogram.truncate(top);
        ErrorReport {
            er: state.er(),
            med: state.med(),
            mse: state.mse(),
            max_ed: state.max_ed(),
            nmed: if range > 0.0 { state.med() / range } else { 0.0 },
            mred: mred_sum / n as f64,
            histogram,
        }
    }
}

impl std::fmt::Display for ErrorReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "ER     {:.6}", self.er)?;
        writeln!(f, "MED    {:.4}", self.med)?;
        writeln!(f, "MSE    {:.4}", self.mse)?;
        writeln!(f, "maxED  {:.1}", self.max_ed)?;
        writeln!(f, "NMED   {:.3e}", self.nmed)?;
        write!(f, "MRED   {:.3e}", self.mred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{unsigned_weights, MetricKind};
    use als_sim::PackedBits;

    fn bits(w: u64) -> PackedBits {
        PackedBits::from_words(vec![w])
    }

    #[test]
    fn exact_circuit_reports_all_zeros() {
        let golden = vec![bits(0b1010), bits(0b0110)];
        let s = ErrorState::new(MetricKind::Med, unsigned_weights(2), golden.clone(), &golden);
        let r = ErrorReport::from_state(&s);
        assert_eq!(r.er, 0.0);
        assert_eq!(r.med, 0.0);
        assert_eq!(r.max_ed, 0.0);
        assert_eq!(r.nmed, 0.0);
        assert_eq!(r.mred, 0.0);
        assert!(r.histogram.is_empty());
    }

    #[test]
    fn single_flip_report() {
        // one pattern wrong on the weight-2 output
        let golden = vec![bits(0), bits(0)];
        let approx = vec![bits(0), bits(0b1)];
        let s = ErrorState::new(MetricKind::Med, unsigned_weights(2), golden, &approx);
        let r = ErrorReport::from_state(&s);
        assert!((r.er - 1.0 / 64.0).abs() < 1e-12);
        assert_eq!(r.max_ed, 2.0);
        assert!((r.nmed - (2.0 / 64.0) / 3.0).abs() < 1e-12);
        // ED = 2 lands in bucket ceil(log2 2) = 1
        assert_eq!(r.histogram, vec![0, 1]);
        // exact value is 0 -> relative error uses max(exact,1)
        assert!((r.mred - 2.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_all_fields() {
        let golden = vec![bits(0b1)];
        let s = ErrorState::new(MetricKind::Er, unsigned_weights(1), golden.clone(), &golden);
        let text = ErrorReport::from_state(&s).to_string();
        for key in ["ER", "MED", "MSE", "maxED", "NMED", "MRED"] {
            assert!(text.contains(key), "missing {key}");
        }
    }
}
