//! Statistical error metrics for approximate logic synthesis.
//!
//! The flows estimate circuit error on Monte-Carlo patterns under one of
//! three metrics (all supported by the paper's framework):
//!
//! * **ER** — error rate: fraction of patterns on which any output differs,
//! * **MED** — mean error distance: average `|approx − exact|` of the
//!   weighted output word,
//! * **MSE** — mean squared error of the same quantity.
//!
//! [`ErrorState`] caches everything needed to evaluate a candidate LAC's
//! error increase from its output *flip vectors* (`D ∧ P[n][o]`, produced by
//! the CPM) in time proportional to the number of actually flipped
//! patterns — with early abort once a bound is provably exceeded. This is
//! the paper's "step 3" work unit.

pub mod metric;
pub mod report;
pub mod state;

pub use metric::{paper_thresholds, reference_error, unsigned_weights, MetricKind, UnknownMetric};
pub use report::ErrorReport;
pub use state::{ErrorState, FlipVec, SparseFlip};
