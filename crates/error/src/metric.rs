//! Metric kinds, output weights and the paper's threshold conventions.

use std::fmt;

/// The statistical error metric a flow optimises under.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MetricKind {
    /// Error rate: fraction of patterns with any differing output.
    Er,
    /// Mean error distance of the weighted output word.
    Med,
    /// Mean squared error of the weighted output word.
    Mse,
}

impl MetricKind {
    /// All supported metrics.
    pub const ALL: [MetricKind; 3] = [MetricKind::Er, MetricKind::Med, MetricKind::Mse];

    /// Whether the metric uses per-output weights (ER does not).
    pub fn is_weighted(self) -> bool {
        !matches!(self, MetricKind::Er)
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MetricKind::Er => "ER",
            MetricKind::Med => "MED",
            MetricKind::Mse => "MSE",
        };
        f.write_str(s)
    }
}

/// A metric token [`MetricKind::from_str`] did not recognise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownMetric {
    /// The rejected token.
    pub got: String,
}

impl fmt::Display for UnknownMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown metric {:?} (expected one of: er, med, mse)", self.got)
    }
}

impl std::error::Error for UnknownMetric {}

impl MetricKind {
    /// The canonical lowercase token (`er`/`med`/`mse`) used by the CLI
    /// and the service wire protocol; [`MetricKind::from_str`] inverts it.
    pub fn token(self) -> &'static str {
        match self {
            MetricKind::Er => "er",
            MetricKind::Med => "med",
            MetricKind::Mse => "mse",
        }
    }
}

impl std::str::FromStr for MetricKind {
    type Err = UnknownMetric;

    /// Parses a metric token, case-insensitively, so both the CLI form
    /// (`med`) and the [`Display`](fmt::Display) form (`MED`) round-trip.
    fn from_str(s: &str) -> Result<MetricKind, UnknownMetric> {
        match s.to_ascii_lowercase().as_str() {
            "er" => Ok(MetricKind::Er),
            "med" => Ok(MetricKind::Med),
            "mse" => Ok(MetricKind::Mse),
            _ => Err(UnknownMetric { got: s.to_string() }),
        }
    }
}

/// Default output weights for an unsigned `k`-bit output word: `2^o` for
/// output `o` (LSB first).
///
/// Weights are `f64`; beyond 53 outputs the representation is no longer
/// exact but stays strictly monotone, which preserves comparisons — see
/// DESIGN.md's substitution table.
pub fn unsigned_weights(k: usize) -> Vec<f64> {
    (0..k).map(|o| (o as f64).exp2()).collect()
}

/// The paper's reference error for a circuit with `k` outputs:
/// `R = 2^(k/3)`. MED thresholds are `{0.5R, R, 2R}`, MSE thresholds
/// `{0.5R², R², 2R²}`.
pub fn reference_error(k: usize) -> f64 {
    (k as f64 / 3.0).exp2()
}

/// The paper's three thresholds for a metric on a circuit with `k` outputs
/// (ER thresholds are absolute: 0.1%, 1%, 2%).
pub fn paper_thresholds(kind: MetricKind, k: usize) -> [f64; 3] {
    let r = reference_error(k);
    match kind {
        MetricKind::Er => [0.001, 0.01, 0.02],
        MetricKind::Med => [0.5 * r, r, 2.0 * r],
        MetricKind::Mse => [0.5 * r * r, r * r, 2.0 * r * r],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_powers_of_two() {
        let w = unsigned_weights(5);
        assert_eq!(w, vec![1.0, 2.0, 4.0, 8.0, 16.0]);
    }

    #[test]
    fn weights_stay_monotone_past_53_bits() {
        let w = unsigned_weights(129);
        for i in 1..w.len() {
            assert!(w[i] > w[i - 1]);
        }
    }

    #[test]
    fn metric_tokens_round_trip_and_reject_junk() {
        for kind in MetricKind::ALL {
            assert_eq!(kind.token().parse::<MetricKind>().unwrap(), kind);
            assert_eq!(kind.to_string().parse::<MetricKind>().unwrap(), kind, "Display form");
        }
        let err = "wer".parse::<MetricKind>().unwrap_err();
        assert_eq!(err, UnknownMetric { got: "wer".into() });
        assert!(err.to_string().contains("er, med, mse"));
    }

    #[test]
    fn reference_error_matches_paper() {
        assert!((reference_error(3) - 2.0).abs() < 1e-12);
        assert!((reference_error(6) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn thresholds() {
        let [a, b, c] = paper_thresholds(MetricKind::Med, 6);
        assert_eq!((a, b, c), (2.0, 4.0, 8.0));
        let [a2, b2, c2] = paper_thresholds(MetricKind::Mse, 6);
        assert_eq!((a2, b2, c2), (8.0, 16.0, 32.0));
        assert_eq!(paper_thresholds(MetricKind::Er, 100)[1], 0.01);
    }

    #[test]
    fn display_names() {
        assert_eq!(MetricKind::Er.to_string(), "ER");
        assert_eq!(MetricKind::Med.to_string(), "MED");
        assert_eq!(MetricKind::Mse.to_string(), "MSE");
        assert!(!MetricKind::Er.is_weighted());
        assert!(MetricKind::Med.is_weighted());
    }
}
