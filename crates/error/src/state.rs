//! Cached per-pattern error state and batch flip evaluation.

use als_sim::{BitsRef, PackedBits};

use crate::metric::MetricKind;

/// The flip vector of one primary output: which patterns would see this
/// output toggle if a candidate LAC were applied. Produced by the CPM as
/// `D ∧ P[n][o]`.
#[derive(Clone, Debug)]
pub struct FlipVec {
    /// Output index.
    pub output: usize,
    /// One bit per pattern: 1 = this output toggles.
    pub bits: PackedBits,
}

/// A *deferred* flip source for the fused evaluation kernel: the CPM
/// propagation entry `P[n][o]` of one output, borrowed straight from the
/// arena. The kernel forms `D ∧ P[n][o]` word-by-word on the fly, so no
/// per-candidate flip vector is ever materialised.
#[derive(Copy, Clone, Debug)]
pub struct SparseFlip<'a> {
    /// Output index.
    pub output: usize,
    /// The propagation vector `P[n][o]` with its nonzero-word window.
    pub bits: BitsRef<'a>,
}

/// Everything needed to (a) report the current circuit error and (b)
/// evaluate the error a candidate LAC would cause, given only the LAC's
/// output flip vectors.
///
/// The state caches, per pattern, the number of wrong outputs (for ER) and
/// the signed weighted error (for MED/MSE), so a candidate evaluation only
/// touches the patterns its flips actually change. After a LAC is applied
/// and the circuit resimulated, [`ErrorState::refresh`] re-derives the
/// caches from the new output values.
#[derive(Clone, Debug)]
pub struct ErrorState {
    kind: MetricKind,
    weights: Vec<f64>,
    num_words: usize,
    /// Logical pattern count; at most `num_words * 64`.
    num_patterns: usize,
    /// Valid-lane mask of the last word (`!0` when `num_patterns` is a
    /// multiple of 64). Applied wherever word bits enter the accumulators,
    /// so garbage tail lanes (complemented edges set them) never leak into
    /// ER/MED/MSE.
    tail_mask: u64,
    /// Exact (golden) output bits, per output.
    exact: Vec<PackedBits>,
    /// approx XOR exact, per output.
    diff: Vec<PackedBits>,
    /// Per pattern: number of differing outputs.
    wrong_count: Vec<u32>,
    /// Per pattern: weighted (approx − exact).
    err: Vec<f64>,
    /// Sum over patterns of the metric contribution.
    sum: f64,
}

impl ErrorState {
    /// Builds the state from golden and current output values.
    ///
    /// `exact[o]` and `approx[o]` are the bit vectors of output `o` with
    /// output complements already applied. `weights[o]` is the numeric
    /// weight of output `o` (ignored for ER; see
    /// [`crate::metric::unsigned_weights`]).
    ///
    /// # Panics
    /// Panics if the vector counts or widths disagree, or if `weights` is
    /// shorter than the output count for a weighted metric.
    pub fn new(
        kind: MetricKind,
        weights: Vec<f64>,
        exact: Vec<PackedBits>,
        approx: &[PackedBits],
    ) -> ErrorState {
        let num_patterns = exact.first().map_or(0, PackedBits::num_bits);
        ErrorState::with_pattern_count(kind, weights, exact, approx, num_patterns)
    }

    /// Like [`ErrorState::new`], but for a logical pattern count that need
    /// not be a multiple of 64: the tail lanes of the last word beyond
    /// `num_patterns` are masked out of every accumulation and all metric
    /// denominators use the logical count. With a multiple-of-64 count this
    /// is bit-identical to [`ErrorState::new`].
    ///
    /// # Panics
    /// Panics under the same conditions as [`ErrorState::new`], or if
    /// `num_patterns` does not land in the vectors' last word.
    pub fn with_pattern_count(
        kind: MetricKind,
        weights: Vec<f64>,
        exact: Vec<PackedBits>,
        approx: &[PackedBits],
        num_patterns: usize,
    ) -> ErrorState {
        assert_eq!(exact.len(), approx.len(), "output count mismatch");
        let num_words = exact.first().map_or(0, PackedBits::num_words);
        assert!(exact.iter().chain(approx).all(|v| v.num_words() == num_words));
        if kind.is_weighted() {
            assert!(weights.len() >= exact.len(), "missing output weights");
        }
        assert!(
            num_patterns <= num_words * 64
                && (num_words == 0 || num_patterns > (num_words - 1) * 64),
            "pattern count {num_patterns} does not fit {num_words} words"
        );
        let mut state = ErrorState {
            kind,
            weights,
            num_words,
            num_patterns,
            tail_mask: als_sim::tail_mask(num_patterns),
            diff: vec![PackedBits::zeros(num_words); exact.len()],
            exact,
            wrong_count: vec![0; num_patterns],
            err: vec![0.0; num_patterns],
            sum: 0.0,
        };
        state.refresh(approx);
        state
    }

    /// Valid-lane mask of word `wi` (`!0` except possibly the last word).
    #[inline]
    fn word_mask(&self, wi: usize) -> u64 {
        if wi + 1 == self.num_words {
            self.tail_mask
        } else {
            !0
        }
    }

    /// Recomputes all caches from the current output values (after a LAC
    /// has been applied and the circuit resimulated). The diff vectors are
    /// rewritten in place — the refresh allocates nothing.
    pub fn refresh(&mut self, approx: &[PackedBits]) {
        assert_eq!(approx.len(), self.exact.len());
        self.wrong_count.iter_mut().for_each(|c| *c = 0);
        self.err.iter_mut().for_each(|e| *e = 0.0);
        for (o, a) in approx.iter().enumerate() {
            let w = self.weights.get(o).copied().unwrap_or(0.0);
            let exact = &self.exact[o];
            let diff = &mut self.diff[o];
            for wi in 0..self.num_words {
                let mask = if wi + 1 == self.num_words { self.tail_mask } else { !0 };
                let ewd = exact.words()[wi];
                let word = (a.words()[wi] ^ ewd) & mask;
                diff.words_mut()[wi] = word;
                let mut rem = word;
                while rem != 0 {
                    let b = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    let p = wi * 64 + b;
                    self.wrong_count[p] += 1;
                    // approx bit differs from exact: signed error moves by
                    // +w when exact bit is 0 (approx=1), −w when exact is 1.
                    if ewd >> b & 1 == 1 {
                        self.err[p] -= w;
                    } else {
                        self.err[p] += w;
                    }
                }
            }
        }
        self.sum = match self.kind {
            MetricKind::Er => self.wrong_count.iter().filter(|&&c| c > 0).count() as f64,
            MetricKind::Med => self.err.iter().map(|e| e.abs()).sum(),
            MetricKind::Mse => self.err.iter().map(|e| e * e).sum(),
        };
    }

    /// The metric this state tracks.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }

    /// Number of simulated patterns (the logical count — all metric
    /// denominators use this, not the padded word capacity).
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.exact.len()
    }

    /// Current circuit error under the tracked metric.
    pub fn error(&self) -> f64 {
        self.sum / self.num_patterns() as f64
    }

    /// Current error rate, regardless of the tracked metric.
    pub fn er(&self) -> f64 {
        self.wrong_count.iter().filter(|&&c| c > 0).count() as f64 / self.num_patterns() as f64
    }

    /// Current mean error distance, regardless of the tracked metric.
    pub fn med(&self) -> f64 {
        self.err.iter().map(|e| e.abs()).sum::<f64>() / self.num_patterns() as f64
    }

    /// Current mean squared error, regardless of the tracked metric.
    pub fn mse(&self) -> f64 {
        self.err.iter().map(|e| e * e).sum::<f64>() / self.num_patterns() as f64
    }

    /// Worst-case error distance observed over the pattern set (a report
    /// quantity; the paper's flows bound mean metrics, not this one).
    pub fn max_ed(&self) -> f64 {
        self.err.iter().fold(0.0f64, |m, e| m.max(e.abs()))
    }

    /// The per-output weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Signed weighted error `approx − exact` of pattern `p`.
    pub fn signed_error(&self, p: usize) -> f64 {
        self.err[p]
    }

    /// Standard error of the Monte-Carlo estimate of the tracked metric —
    /// the sample standard deviation of the per-pattern contribution
    /// divided by `sqrt(patterns)`.
    ///
    /// Useful to size the pattern count: the paper uses 100 000 patterns
    /// precisely so that threshold comparisons are well inside the noise
    /// floor; this makes the noise floor visible.
    pub fn standard_error(&self) -> f64 {
        let n = self.num_patterns() as f64;
        let mean = self.sum / n;
        let sum_sq: f64 = match self.kind {
            MetricKind::Er => self.wrong_count.iter().filter(|&&c| c > 0).count() as f64,
            MetricKind::Med => self.err.iter().map(|e| e * e).sum(),
            MetricKind::Mse => self.err.iter().map(|e| e.powi(4)).sum(),
        };
        let variance = (sum_sq / n - mean * mean).max(0.0);
        (variance / n).sqrt()
    }

    /// A symmetric ~95 % confidence interval around the metric estimate.
    pub fn confidence_interval(&self) -> (f64, f64) {
        let e = self.error();
        let half = 1.96 * self.standard_error();
        ((e - half).max(0.0), e + half)
    }

    /// The weighted golden output value of every pattern.
    pub fn exact_values(&self) -> Vec<f64> {
        let mut vals = vec![0.0f64; self.num_patterns()];
        for (o, bitsv) in self.exact.iter().enumerate() {
            let w = self.weights.get(o).copied().unwrap_or(0.0);
            // golden vectors may carry garbage tail lanes (complemented
            // output edges); positions past the logical count are skipped
            for p in bitsv.iter_ones().take_while(|&p| p < self.num_patterns) {
                vals[p] += w;
            }
        }
        vals
    }

    /// Evaluates the error the circuit would have if the given output flips
    /// were applied, without mutating any state.
    ///
    /// Cost is proportional to the number of flipped pattern bits, not to
    /// the pattern count: only patterns actually touched by `flips` are
    /// reconsidered.
    pub fn eval_flips(&self, flips: &[FlipVec]) -> f64 {
        let n = self.num_patterns() as f64;
        if flips.is_empty() {
            return self.sum / n;
        }
        let mut delta_sum = 0.0;
        for wi in 0..self.num_words {
            let mut changed = 0u64;
            for f in flips {
                changed |= f.bits.words()[wi];
            }
            changed &= self.word_mask(wi);
            while changed != 0 {
                let b = changed.trailing_zeros() as usize;
                changed &= changed - 1;
                let p = wi * 64 + b;
                let (mut cnt, mut e) = (self.wrong_count[p] as i64, self.err[p]);
                for f in flips {
                    if f.bits.words()[wi] >> b & 1 == 1 {
                        let o = f.output;
                        let was_diff = self.diff[o].words()[wi] >> b & 1 == 1;
                        cnt += if was_diff { -1 } else { 1 };
                        if self.kind.is_weighted() {
                            let w = self.weights[o];
                            // current approx bit = exact ^ diff; toggling it
                            // moves the signed error by ∓w.
                            let approx_bit = (self.exact[o].words()[wi] >> b & 1 == 1) ^ was_diff;
                            e += if approx_bit { -w } else { w };
                        }
                    }
                }
                delta_sum += match self.kind {
                    MetricKind::Er => {
                        (cnt > 0) as i64 as f64 - (self.wrong_count[p] > 0) as i64 as f64
                    }
                    MetricKind::Med => e.abs() - self.err[p].abs(),
                    MetricKind::Mse => e * e - self.err[p] * self.err[p],
                };
            }
        }
        (self.sum + delta_sum) / n
    }

    /// Error increase (possibly negative) the flips would cause.
    pub fn error_increase(&self, flips: &[FlipVec]) -> f64 {
        self.eval_flips(flips) - self.error()
    }

    /// The fused form of [`ErrorState::eval_flips`]: evaluates the error
    /// the circuit would have if the candidate with change vector `d` and
    /// CPM propagation entries `flips` were applied, forming the per-output
    /// flip vectors `d ∧ P[n][o]` word-by-word on the fly.
    ///
    /// No per-candidate temporaries are allocated; words outside the
    /// intersection of `d`'s support and each entry's nonzero window are
    /// skipped without being read, and an annihilated candidate (empty
    /// union window or all-zero `d`) exits immediately with the current
    /// error. Bit-identical to materialising the flip vectors, filtering
    /// the all-zero ones, and calling [`ErrorState::eval_flips`] — same
    /// floating-point operations in the same order.
    ///
    /// `flips` must be sorted consistently with the caller's reference
    /// ordering (CPM rows are sorted by output).
    ///
    /// Dispatches between [`ErrorState::eval_flips_sparse_scalar`] and
    /// [`ErrorState::eval_flips_sparse_chunked`] on the process-wide
    /// `ALS_SIMD` toggle (see [`als_sim::kernel::simd_enabled`]); the two
    /// kernels are `to_bits()`-identical by construction and by test.
    pub fn eval_flips_sparse(&self, d: &PackedBits, flips: &[SparseFlip<'_>]) -> f64 {
        if als_sim::kernel::simd_enabled() {
            self.eval_flips_sparse_chunked(d, flips)
        } else {
            self.eval_flips_sparse_scalar(d, flips)
        }
    }

    /// The scalar reference kernel behind [`ErrorState::eval_flips_sparse`]
    /// — one word at a time, per-flip window checks, no precomputed union.
    /// Kept compiled in as the A/B baseline for the chunked kernel.
    pub fn eval_flips_sparse_scalar(&self, d: &PackedBits, flips: &[SparseFlip<'_>]) -> f64 {
        let n = self.num_patterns() as f64;
        if flips.is_empty() {
            return self.sum / n;
        }
        assert_eq!(d.num_words(), self.num_words, "change-vector width mismatch");
        let lo = flips.iter().map(|f| f.bits.nz_begin()).min().unwrap_or(0);
        let hi = flips.iter().map(|f| f.bits.nz_end()).max().unwrap_or(0);
        // Per-word compaction: the flips whose masked word `d ∧ P` is
        // nonzero at the current word index, in row order. The per-bit loop
        // below then touches only entries that actually flip something in
        // this word — a per-word refinement of the boxed path's whole-row
        // zero filtering. Rows wider than the stack buffers fall back to
        // one heap buffer per call (still far below the boxed layout's
        // per-entry allocations).
        let mut active_stack = [(0u64, 0u32); STACK_FLIPS];
        let mut active_heap: Vec<(u64, u32)> = Vec::new();
        let active: &mut [(u64, u32)] = if flips.len() <= STACK_FLIPS {
            &mut active_stack[..flips.len()]
        } else {
            active_heap.resize(flips.len(), (0, 0));
            &mut active_heap
        };
        let mut delta_sum = 0.0;
        for wi in lo..hi {
            let dw = d.words()[wi] & self.word_mask(wi);
            if dw == 0 {
                continue;
            }
            let mut changed = 0u64;
            let mut k = 0usize;
            for f in flips.iter() {
                if wi >= f.bits.nz_begin() && wi < f.bits.nz_end() {
                    let m = dw & f.bits.words()[wi];
                    if m != 0 {
                        active[k] = (m, f.output as u32);
                        k += 1;
                        changed |= m;
                    }
                }
            }
            while changed != 0 {
                let b = changed.trailing_zeros() as usize;
                changed &= changed - 1;
                let p = wi * 64 + b;
                let (mut cnt, mut e) = (self.wrong_count[p] as i64, self.err[p]);
                for &(m, o) in active[..k].iter() {
                    if m >> b & 1 == 1 {
                        let o = o as usize;
                        let was_diff = self.diff[o].words()[wi] >> b & 1 == 1;
                        cnt += if was_diff { -1 } else { 1 };
                        if self.kind.is_weighted() {
                            let w = self.weights[o];
                            // current approx bit = exact ^ diff; toggling it
                            // moves the signed error by ∓w.
                            let approx_bit = (self.exact[o].words()[wi] >> b & 1 == 1) ^ was_diff;
                            e += if approx_bit { -w } else { w };
                        }
                    }
                }
                delta_sum += match self.kind {
                    MetricKind::Er => {
                        (cnt > 0) as i64 as f64 - (self.wrong_count[p] > 0) as i64 as f64
                    }
                    MetricKind::Med => e.abs() - self.err[p].abs(),
                    MetricKind::Mse => e * e - self.err[p] * self.err[p],
                };
            }
        }
        (self.sum + delta_sum) / n
    }

    /// The chunked kernel behind [`ErrorState::eval_flips_sparse`].
    ///
    /// Three restructurings over the scalar reference, none of which
    /// reorders a floating-point operation:
    ///
    /// 1. a vectorized union-OR pre-pass accumulates every flip's nonzero
    ///    window into one scratch vector, so each word decides "anything
    ///    flips here?" with a single AND instead of a loop over all flips;
    /// 2. the compaction loop drops the per-flip window comparisons —
    ///    words outside a `BitsRef` window are zero by contract, so the
    ///    mask test subsumes them — and gathers each active flip's diff
    ///    word, exact word and weight alongside its mask, turning the
    ///    per-bit loop's three indirect loads per flip into sequential
    ///    reads of one compact record;
    /// 3. single-active-flip words (the common case on narrow cones) take
    ///    a branch-free specialisation of the same update.
    ///
    /// The f64 accumulation order is exactly the scalar kernel's —
    /// ascending words, ascending bits, flips in row order — so results
    /// are `to_bits()`-identical, which the A/B tests assert.
    pub fn eval_flips_sparse_chunked(&self, d: &PackedBits, flips: &[SparseFlip<'_>]) -> f64 {
        let n = self.num_patterns() as f64;
        if flips.is_empty() {
            return self.sum / n;
        }
        assert_eq!(d.num_words(), self.num_words, "change-vector width mismatch");
        let lo = flips.iter().map(|f| f.bits.nz_begin()).min().unwrap_or(0);
        let hi = flips.iter().map(|f| f.bits.nz_end()).max().unwrap_or(0);
        if lo >= hi {
            return self.sum / n;
        }
        // Union-OR pre-pass over the flip windows (vectorized).
        const STACK_WORDS: usize = 256;
        let width = hi - lo;
        let mut union_stack = [0u64; STACK_WORDS];
        let mut union_heap: Vec<u64> = Vec::new();
        let union: &mut [u64] = if width <= STACK_WORDS {
            &mut union_stack[..width]
        } else {
            union_heap.resize(width, 0);
            &mut union_heap
        };
        for f in flips {
            let (b, e) = (f.bits.nz_begin(), f.bits.nz_end());
            if b < e {
                als_sim::kernel::or_assign(&mut union[b - lo..e - lo], &f.bits.words()[b..e]);
            }
        }
        // Same compaction stack size and heap spill as the scalar kernel.
        let mut active_stack = [ActiveFlip::ZERO; STACK_FLIPS];
        let mut active_heap: Vec<ActiveFlip> = Vec::new();
        let active: &mut [ActiveFlip] = if flips.len() <= STACK_FLIPS {
            &mut active_stack[..flips.len()]
        } else {
            active_heap.resize(flips.len(), ActiveFlip::ZERO);
            &mut active_heap
        };
        let weighted = self.kind.is_weighted();
        let mut delta_sum = 0.0;
        for wi in lo..hi {
            let dw = d.words()[wi] & self.word_mask(wi);
            let changed = dw & union[wi - lo];
            if changed == 0 {
                continue;
            }
            let mut k = 0usize;
            for f in flips.iter() {
                // no window check: out-of-window words are zero by the
                // BitsRef contract, so their mask is zero anyway
                let m = dw & f.bits.words()[wi];
                if m != 0 {
                    let o = f.output;
                    active[k] = ActiveFlip {
                        m,
                        diff: self.diff[o].words()[wi],
                        exact: self.exact[o].words()[wi],
                        weight: self.weights.get(o).copied().unwrap_or(0.0),
                    };
                    k += 1;
                }
            }
            if k == 1 {
                // Single active flip: every changed bit belongs to it.
                let af = active[0];
                let mut rem = changed;
                while rem != 0 {
                    let b = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    let p = wi * 64 + b;
                    let (mut cnt, mut e) = (self.wrong_count[p] as i64, self.err[p]);
                    let was_diff = af.diff >> b & 1 == 1;
                    cnt += if was_diff { -1 } else { 1 };
                    if weighted {
                        let approx_bit = (af.exact >> b & 1 == 1) ^ was_diff;
                        e += if approx_bit { -af.weight } else { af.weight };
                    }
                    delta_sum += match self.kind {
                        MetricKind::Er => {
                            (cnt > 0) as i64 as f64 - (self.wrong_count[p] > 0) as i64 as f64
                        }
                        MetricKind::Med => e.abs() - self.err[p].abs(),
                        MetricKind::Mse => e * e - self.err[p] * self.err[p],
                    };
                }
                continue;
            }
            let mut rem = changed;
            while rem != 0 {
                let b = rem.trailing_zeros() as usize;
                rem &= rem - 1;
                let p = wi * 64 + b;
                let (mut cnt, mut e) = (self.wrong_count[p] as i64, self.err[p]);
                for af in active[..k].iter() {
                    if af.m >> b & 1 == 1 {
                        let was_diff = af.diff >> b & 1 == 1;
                        cnt += if was_diff { -1 } else { 1 };
                        if weighted {
                            let approx_bit = (af.exact >> b & 1 == 1) ^ was_diff;
                            e += if approx_bit { -af.weight } else { af.weight };
                        }
                    }
                }
                delta_sum += match self.kind {
                    MetricKind::Er => {
                        (cnt > 0) as i64 as f64 - (self.wrong_count[p] > 0) as i64 as f64
                    }
                    MetricKind::Med => e.abs() - self.err[p].abs(),
                    MetricKind::Mse => e * e - self.err[p] * self.err[p],
                };
            }
        }
        (self.sum + delta_sum) / n
    }
}

/// Size of the per-word compaction stack buffer shared by both
/// `eval_flips_sparse` kernels; rows with more flips spill to one heap
/// buffer per call.
const STACK_FLIPS: usize = 128;

/// One compacted per-word flip record of the chunked kernel: the masked
/// flip word plus the diff/exact words and weight the per-bit loop needs,
/// gathered once per word so the inner loop reads sequentially.
#[derive(Copy, Clone)]
struct ActiveFlip {
    m: u64,
    diff: u64,
    exact: u64,
    weight: f64,
}

impl ActiveFlip {
    const ZERO: ActiveFlip = ActiveFlip { m: 0, diff: 0, exact: 0, weight: 0.0 };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::unsigned_weights;

    fn bits(words: Vec<u64>) -> PackedBits {
        PackedBits::from_words(words)
    }

    /// Golden: o0 = 0b1100, o1 = 0b1010 on 64 patterns (only 4 used).
    fn two_output_state(kind: MetricKind, approx0: u64, approx1: u64) -> ErrorState {
        ErrorState::new(
            kind,
            unsigned_weights(2),
            vec![bits(vec![0b1100]), bits(vec![0b1010])],
            &[bits(vec![approx0]), bits(vec![approx1])],
        )
    }

    #[test]
    fn exact_circuit_has_zero_error() {
        for kind in MetricKind::ALL {
            let s = two_output_state(kind, 0b1100, 0b1010);
            assert_eq!(s.error(), 0.0);
            assert_eq!(s.er(), 0.0);
            assert_eq!(s.med(), 0.0);
            assert_eq!(s.mse(), 0.0);
        }
    }

    #[test]
    fn er_counts_wrong_patterns() {
        // o0 wrong on patterns 0 and 1, o1 wrong on pattern 1.
        let s = two_output_state(MetricKind::Er, 0b1100 ^ 0b0011, 0b1010 ^ 0b0010);
        assert!((s.error() - 2.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn med_weights_outputs() {
        // pattern 0: o0 flips (exact 0 -> approx 1): err +1
        // pattern 1: o1 flips (exact 1 -> approx 0): err -2
        let s = two_output_state(MetricKind::Med, 0b1101, 0b1000);
        assert!((s.error() - (1.0 + 2.0) / 64.0).abs() < 1e-12);
        let mse = two_output_state(MetricKind::Mse, 0b1101, 0b1000);
        assert!((mse.error() - (1.0 + 4.0) / 64.0).abs() < 1e-12);
    }

    #[test]
    fn eval_flips_matches_refresh() {
        for kind in MetricKind::ALL {
            let s = two_output_state(kind, 0b1101, 0b1000);
            // candidate flips: o0 on patterns {0,2}, o1 on pattern {3}
            let flips = vec![
                FlipVec { output: 0, bits: bits(vec![0b0101]) },
                FlipVec { output: 1, bits: bits(vec![0b1000]) },
            ];
            let predicted = s.eval_flips(&flips);
            // apply flips manually and rebuild
            let a0 = 0b1101u64 ^ 0b0101;
            let a1 = 0b1000u64 ^ 0b1000;
            let fresh = two_output_state(kind, a0, a1);
            assert!(
                (predicted - fresh.error()).abs() < 1e-12,
                "{kind}: predicted {predicted} vs {e}",
                e = fresh.error()
            );
        }
    }

    #[test]
    fn eval_flips_sparse_is_bit_identical_to_eval_flips() {
        // Multi-word state with a zero middle word so the window skipping
        // actually engages; the fused kernel must return the *same bits*.
        let exact = vec![bits(vec![0b1100, 0, 0b1]), bits(vec![0b1010, 0, 0b10])];
        let approx = [bits(vec![0b0110, 0, 0b11]), bits(vec![0b1010, 0, 0])];
        for kind in MetricKind::ALL {
            let s = ErrorState::new(kind, unsigned_weights(2), exact.clone(), &approx);
            let d = bits(vec![0b0111, 0, 0b10]);
            let rows = [(0u32, bits(vec![0b0101, 0, 0b11])), (1u32, bits(vec![0, 0, 0b10]))];
            // reference: materialise d ∧ P, drop all-zero vectors, eval_flips
            let dense: Vec<FlipVec> = rows
                .iter()
                .map(|(o, p)| FlipVec { output: *o as usize, bits: d.and(p) })
                .filter(|f| !f.bits.is_zero())
                .collect();
            let sparse: Vec<SparseFlip<'_>> = rows
                .iter()
                .map(|(o, p)| SparseFlip { output: *o as usize, bits: p.as_bits_ref() })
                .collect();
            let a = s.eval_flips(&dense);
            let b = s.eval_flips_sparse(&d, &sparse);
            assert_eq!(a.to_bits(), b.to_bits(), "{kind}: {a} vs {b}");
        }
    }

    #[test]
    fn eval_flips_sparse_chunked_is_bit_identical_to_scalar() {
        let exact = vec![bits(vec![0b1100, 0, 0b1]), bits(vec![0b1010, 0, 0b10])];
        let approx = [bits(vec![0b0110, 0, 0b11]), bits(vec![0b1010, 0, 0])];
        for kind in MetricKind::ALL {
            let s = ErrorState::new(kind, unsigned_weights(2), exact.clone(), &approx);
            let d = bits(vec![0b0111, 0, 0b10]);
            let rows = [(0u32, bits(vec![0b0101, 0, 0b11])), (1u32, bits(vec![0, 0, 0b10]))];
            let sparse: Vec<SparseFlip<'_>> = rows
                .iter()
                .map(|(o, p)| SparseFlip { output: *o as usize, bits: p.as_bits_ref() })
                .collect();
            let a = s.eval_flips_sparse_scalar(&d, &sparse);
            let b = s.eval_flips_sparse_chunked(&d, &sparse);
            assert_eq!(a.to_bits(), b.to_bits(), "{kind}: {a} vs {b}");
        }
    }

    #[test]
    fn more_than_stack_flips_spill_to_the_heap_and_stay_identical() {
        // 130 outputs all flipping in the same word exceeds the 128-entry
        // compaction stack buffer; both kernels must take the heap spill
        // path and agree with the dense reference bit for bit.
        const OUTPUTS: usize = 130;
        let exact: Vec<PackedBits> = (0..OUTPUTS).map(|o| bits(vec![0b1 << (o % 4)])).collect();
        let approx: Vec<PackedBits> = (0..OUTPUTS).map(|o| bits(vec![0b11 << (o % 3)])).collect();
        let weights: Vec<f64> = (0..OUTPUTS).map(|o| 1.0 + (o % 7) as f64).collect();
        let rows: Vec<(usize, PackedBits)> =
            (0..OUTPUTS).map(|o| (o, bits(vec![0b1111 | 1 << (o % 8)]))).collect();
        let d = bits(vec![0b1011_0111]);
        for kind in MetricKind::ALL {
            let s = ErrorState::new(kind, weights.clone(), exact.clone(), &approx);
            let sparse: Vec<SparseFlip<'_>> = rows
                .iter()
                .map(|(o, p)| SparseFlip { output: *o, bits: p.as_bits_ref() })
                .collect();
            assert!(sparse.len() > 128, "test must exercise the spill path");
            let dense: Vec<FlipVec> = rows
                .iter()
                .map(|(o, p)| FlipVec { output: *o, bits: d.and(p) })
                .filter(|f| !f.bits.is_zero())
                .collect();
            let reference = s.eval_flips(&dense);
            let scalar = s.eval_flips_sparse_scalar(&d, &sparse);
            let chunked = s.eval_flips_sparse_chunked(&d, &sparse);
            assert_eq!(reference.to_bits(), scalar.to_bits(), "{kind} scalar spill");
            assert_eq!(reference.to_bits(), chunked.to_bits(), "{kind} chunked spill");
        }
    }

    #[test]
    fn tail_masked_state_ignores_garbage_lanes() {
        // 68 logical patterns over 2 words; lanes 4..64 of word 1 carry
        // garbage that must not reach any metric.
        let garbage = !0u64 << 4;
        for kind in MetricKind::ALL {
            let exact = vec![bits(vec![0b1100, 0b01])];
            let approx = [bits(vec![0b1100, 0b10 | garbage])];
            let s = ErrorState::with_pattern_count(kind, unsigned_weights(1), exact, &approx, 68);
            assert_eq!(s.num_patterns(), 68);
            // patterns 64 and 65 are wrong (01 vs 10), nothing else
            let expect = match kind {
                MetricKind::Er => 2.0 / 68.0,
                MetricKind::Med | MetricKind::Mse => 2.0 / 68.0,
            };
            assert!((s.error() - expect).abs() < 1e-12, "{kind}: {}", s.error());
            // a change vector full of garbage lanes is masked in eval too
            let d = bits(vec![0, garbage]);
            let p = bits(vec![0, !0]);
            let sparse = vec![SparseFlip { output: 0, bits: p.as_bits_ref() }];
            assert_eq!(s.eval_flips_sparse_scalar(&d, &sparse).to_bits(), s.error().to_bits());
            assert_eq!(s.eval_flips_sparse_chunked(&d, &sparse).to_bits(), s.error().to_bits());
        }
    }

    #[test]
    fn eval_flips_sparse_annihilated_is_identity() {
        let s = two_output_state(MetricKind::Med, 0b1101, 0b1000);
        // entries present but d ∧ P = 0 everywhere
        let d = bits(vec![0b1000_0000]);
        let p = bits(vec![0b0111]);
        let sparse = vec![SparseFlip { output: 0, bits: p.as_bits_ref() }];
        assert_eq!(s.eval_flips_sparse(&d, &sparse).to_bits(), s.error().to_bits());
        assert_eq!(s.eval_flips_sparse(&d, &[]).to_bits(), s.error().to_bits());
    }

    #[test]
    fn flips_can_reduce_error() {
        let s = two_output_state(MetricKind::Med, 0b1101, 0b1010);
        // flip o0 pattern 0 back to exact
        let flips = vec![FlipVec { output: 0, bits: bits(vec![0b0001]) }];
        assert!(s.error_increase(&flips) < 0.0);
        assert_eq!(s.eval_flips(&flips), 0.0);
    }

    #[test]
    fn empty_flips_are_identity() {
        let s = two_output_state(MetricKind::Mse, 0b1101, 0b1000);
        assert_eq!(s.eval_flips(&[]), s.error());
        assert_eq!(s.error_increase(&[]), 0.0);
    }

    #[test]
    fn standard_error_behaves_like_bernoulli_for_er() {
        // 1 wrong pattern out of 64: p = 1/64, se = sqrt(p(1-p)/64)
        let s = two_output_state(MetricKind::Er, 0b1101, 0b1010);
        let p: f64 = 1.0 / 64.0;
        let expect = (p * (1.0 - p) / 64.0).sqrt();
        assert!((s.standard_error() - expect).abs() < 1e-12);
        let (lo, hi) = s.confidence_interval();
        assert!(lo <= s.error() && s.error() <= hi);
        // exact circuit: zero-width interval
        let exact = two_output_state(MetricKind::Er, 0b1100, 0b1010);
        assert_eq!(exact.standard_error(), 0.0);
        assert_eq!(exact.confidence_interval(), (0.0, 0.0));
    }

    #[test]
    fn max_ed_tracks_worst_pattern() {
        let s = two_output_state(MetricKind::Med, 0b1101, 0b1000);
        // pattern 0: +1; pattern 1: -2 -> worst |e| = 2
        assert_eq!(s.max_ed(), 2.0);
        let clean = two_output_state(MetricKind::Med, 0b1100, 0b1010);
        assert_eq!(clean.max_ed(), 0.0);
    }

    #[test]
    fn refresh_updates_after_change() {
        let mut s = two_output_state(MetricKind::Er, 0b1100, 0b1010);
        assert_eq!(s.error(), 0.0);
        s.refresh(&[bits(vec![0b0100]), bits(vec![0b1010])]);
        assert!((s.error() - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn multi_word_patterns() {
        let exact = vec![bits(vec![0, 0])];
        let approx = vec![bits(vec![1, 1 << 63])];
        let s = ErrorState::new(MetricKind::Er, unsigned_weights(1), exact, &approx);
        assert!((s.error() - 2.0 / 128.0).abs() < 1e-12);
        let flips = vec![FlipVec { output: 0, bits: bits(vec![1, 1 << 63]) }];
        assert_eq!(s.eval_flips(&flips), 0.0);
    }
}
