//! Structural hashing primitives for candidate deduplication.
//!
//! Functionally identical LAC candidates — same change vector `D` applied
//! at nodes whose CPM rows propagate identically — produce identical error
//! estimates, so evaluating more than one per class is wasted work. This
//! module provides the word-level FNV-1a hashing used to key candidates by
//! `(hash(D), hash(row))`; the hash is a fast filter only, equality is
//! always confirmed exactly by the caller before two candidates share a
//! class (see `als_lac::dedup`).

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A running FNV-1a word hasher. Deterministic across runs and platforms —
/// dedup keys may be logged by observability counters, so the hash must not
/// depend on `RandomState`.
#[derive(Copy, Clone, Debug)]
pub struct WordHasher(u64);

impl WordHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> WordHasher {
        WordHasher(FNV_OFFSET)
    }

    /// Folds one 64-bit word into the hash, byte by byte in little-endian
    /// order (plain FNV-1a over the word's bytes).
    pub fn write_u64(&mut self, w: u64) {
        let mut h = self.0;
        for b in w.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Folds a word slice into the hash.
    pub fn write_words(&mut self, words: &[u64]) {
        for &w in words {
            self.write_u64(w);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for WordHasher {
    fn default() -> WordHasher {
        WordHasher::new()
    }
}

/// FNV-1a hash of a word slice. Trailing zero words are significant: callers
/// hashing variable-width data must normalise (or include the length) first.
pub fn hash_words(words: &[u64]) -> u64 {
    let mut h = WordHasher::new();
    h.write_words(words);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_length_sensitive() {
        let a = [0x1234_5678_9abc_def0u64, 0xffff_0000_ffff_0000];
        assert_eq!(hash_words(&a), hash_words(&a));
        assert_ne!(hash_words(&a), hash_words(&a[..1]));
        assert_ne!(hash_words(&a[..1]), hash_words(&[a[0], 0]));
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(hash_words(&[]), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn incremental_hashing_matches_one_shot() {
        let words = [7u64, 0, u64::MAX, 42];
        let mut h = WordHasher::new();
        for &w in &words {
            h.write_u64(w);
        }
        assert_eq!(h.finish(), hash_words(&words));
    }
}
