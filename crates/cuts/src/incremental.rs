//! Incremental disjoint-cut maintenance across LAC edits.
//!
//! The *cut preservation condition* (CPC) of a node `n` holds when the
//! applied LAC neither adds/removes nodes in `n`'s TFO cone nor edits edges
//! between nodes of that cone — then `n`'s previous disjoint cut is still a
//! disjoint cut and is reused. The set of nodes whose CPC may be violated is
//!
//! ```text
//! S_c = removed nodes ∪ nodes with changed fanout lists
//! S_v = (∪_{c ∈ S_c} TFI-cone(c)) \ removed
//! ```
//!
//! which [`violated_set`] computes from the [`EditRecord`] produced by
//! [`als_aig::edit::replace`]. [`CutState::update_after`] then refreshes
//! reachability masks and disjoint cuts for `S_v` only — the paper's
//! phase-two step 1.

use als_aig::{Aig, EditRecord, NodeId};

use crate::disjoint::{closest_disjoint_cut, DisjointCut};
use crate::reach::ReachMap;

/// Computes `S_v`: the live nodes whose cut preservation condition may be
/// violated by `edit`.
pub fn violated_set(aig: &Aig, edit: &EditRecord) -> Vec<NodeId> {
    let seeds: Vec<NodeId> = edit.changed_nodes().collect();
    let mut sv = als_aig::cone::tfi_cone_union(aig, &seeds);
    sv.retain(|&n| aig.is_live(n));
    sv
}

/// Reachability masks, topological ranks and disjoint cuts for every live
/// node — the complete "step 1" state of an analysis iteration, refreshable
/// either from scratch ([`CutState::compute`], phase one) or incrementally
/// ([`CutState::update_after`], phase two).
#[derive(Clone, Debug)]
pub struct CutState {
    reach: ReachMap,
    ranks: Vec<u32>,
    cuts: Vec<Option<DisjointCut>>,
    /// Number of cut recomputations performed by the last update.
    last_update_size: usize,
}

impl CutState {
    /// Full computation for all live nodes (comprehensive analysis).
    pub fn compute(aig: &Aig) -> CutState {
        let reach = ReachMap::compute(aig);
        let ranks = als_aig::topo::topo_ranks(aig);
        let mut cuts = vec![None; aig.num_nodes()];
        for id in aig.iter_live() {
            cuts[id.index()] = Some(closest_disjoint_cut(aig, &reach, &ranks, id));
        }
        let last_update_size = aig.num_nodes() - aig.num_dead();
        CutState { reach, ranks, cuts, last_update_size }
    }

    /// Incremental refresh after a LAC: recomputes reachability and cuts
    /// only for the nodes in `S_v`, reusing everything else.
    pub fn update_after(&mut self, aig: &Aig, edit: &EditRecord) {
        let sv = violated_set(aig, edit);
        // Ranks are cheap to refresh and keep the expansion heuristic exact.
        self.ranks = als_aig::topo::topo_ranks(aig);
        self.reach.recompute_for(aig, &sv);
        for &dead in &edit.removed {
            self.cuts[dead.index()] = None;
        }
        for &n in &sv {
            self.cuts[n.index()] = Some(closest_disjoint_cut(aig, &self.reach, &self.ranks, n));
        }
        self.last_update_size = sv.len();
    }

    /// The reachability map.
    pub fn reach(&self) -> &ReachMap {
        &self.reach
    }

    /// Topological ranks of the current graph.
    pub fn ranks(&self) -> &[u32] {
        &self.ranks
    }

    /// The disjoint cut of a live node.
    ///
    /// # Panics
    /// Panics if `n` has no stored cut (dead or never computed).
    pub fn cut(&self, n: NodeId) -> &DisjointCut {
        self.cuts[n.index()].as_ref().expect("cut of a live node")
    }

    /// The disjoint cut of `n`, if stored.
    pub fn get_cut(&self, n: NodeId) -> Option<&DisjointCut> {
        self.cuts[n.index()].as_ref()
    }

    /// Number of nodes the last (full or incremental) update touched —
    /// `|S_v|` for incremental updates, the live-node count after a full
    /// compute. Feeds the self-adaption runtime model.
    pub fn last_update_size(&self) -> usize {
        self.last_update_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjoint::verify_cut;
    use als_aig::edit::replace;
    use als_aig::{Aig, Lit};

    /// Builds the paper's Fig. 5-style situation: replacing c with d must
    /// invalidate cuts of exactly the TFIs of the changed nodes.
    fn sample() -> (Aig, Vec<Lit>) {
        let mut aig = Aig::new("fig5");
        let x = aig.add_inputs("x", 4);
        let a = aig.and(x[0], x[1]);
        let b = aig.and(a, x[2]);
        let c = aig.and(a, !x[2]);
        let d = aig.and(x[2], x[3]);
        let f = aig.and(c, x[3]);
        let g = aig.and(b, d);
        let h = aig.and(f, !d);
        aig.add_output(g, "o0");
        aig.add_output(h, "o1");
        (aig, vec![a, b, c, d, f, g, h])
    }

    #[test]
    fn sv_contains_tfi_of_changed() {
        let (mut aig, n) = sample();
        let (a, c, d) = (n[0], n[2], n[3]);
        let rec = replace(&mut aig, c.node(), d);
        let sv = violated_set(&aig, &rec);
        // c removed; d gained fanout f; a lost fanout c; x2 lost a fanout.
        assert!(!sv.contains(&c.node()), "removed node excluded");
        assert!(sv.contains(&d.node()), "replacement in S_v");
        assert!(sv.contains(&a.node()), "TFI of removed node in S_v");
        // Inputs feeding a and d are in S_v as well.
        assert!(sv.contains(&aig.inputs()[0]));
        assert!(sv.contains(&aig.inputs()[3]));
    }

    #[test]
    fn incremental_update_matches_fresh_compute() {
        let (mut aig, n) = sample();
        let mut state = CutState::compute(&aig);
        let rec = replace(&mut aig, n[2].node(), n[3]);
        state.update_after(&aig, &rec);
        let fresh = CutState::compute(&aig);
        for id in aig.iter_live() {
            assert_eq!(state.reach().mask(id), fresh.reach().mask(id), "reach of {id}");
            assert_eq!(state.cut(id), fresh.cut(id), "cut of {id}");
            verify_cut(&aig, state.reach(), id, state.cut(id)).unwrap();
        }
        assert!(state.last_update_size() < aig.iter_live().count());
    }

    #[test]
    fn repeated_edits_stay_consistent() {
        let (mut aig, n) = sample();
        let mut state = CutState::compute(&aig);
        // First replace c by d, then replace g by constant 1.
        let rec1 = replace(&mut aig, n[2].node(), n[3]);
        state.update_after(&aig, &rec1);
        let rec2 = replace(&mut aig, n[5].node(), Lit::TRUE);
        state.update_after(&aig, &rec2);
        let fresh = CutState::compute(&aig);
        for id in aig.iter_live() {
            assert_eq!(state.cut(id), fresh.cut(id), "cut of {id}");
        }
    }

    #[test]
    fn constant_replacement_updates_constant_node_cut() {
        let (mut aig, n) = sample();
        let mut state = CutState::compute(&aig);
        let rec = replace(&mut aig, n[4].node(), Lit::FALSE); // f := 0
        state.update_after(&aig, &rec);
        let fresh = CutState::compute(&aig);
        assert_eq!(state.cut(NodeId::CONST0), fresh.cut(NodeId::CONST0));
    }
}
