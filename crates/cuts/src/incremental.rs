//! Incremental disjoint-cut maintenance across LAC edits.
//!
//! The *cut preservation condition* (CPC) of a node `n` holds when the
//! applied LAC neither adds/removes nodes in `n`'s TFO cone nor edits edges
//! between nodes of that cone — then `n`'s previous disjoint cut is still a
//! disjoint cut and is reused. The set of nodes whose CPC may be violated is
//!
//! ```text
//! S_c = removed nodes ∪ nodes with changed fanout lists
//! S_v = (∪_{c ∈ S_c} TFI-cone(c)) \ removed
//! ```
//!
//! which [`violated_set`] computes from the [`EditRecord`] produced by
//! [`als_aig::edit::replace`]. [`CutState::update_after`] then refreshes
//! reachability masks and disjoint cuts for `S_v` only — the paper's
//! phase-two step 1.

use std::sync::{Arc, Mutex};

use als_aig::{Aig, EditRecord, NodeId};
use als_par::{WorkerPanic, WorkerPool};

use crate::disjoint::{closest_disjoint_cut, verify_cut, DisjointCut};
use crate::reach::ReachMap;

/// Wave value of a node with no CPM wave (dead, or no stored cut).
const NO_WAVE: u32 = u32::MAX;

/// A persistent full-sweep CPM schedule: the live nodes partitioned into
/// level-synchronous waves (`wave(n) = 1 + max(wave(t))` over the node
/// members `t` of `n`'s disjoint cut; 0 with none), each wave ordered by
/// rank descending (reverse topological). All rows of a wave depend only
/// on rows from strictly earlier waves, so a CPM sweep can fill the plan
/// wave by wave — serially or fanned out — without re-deriving the
/// partition from the cut DAG on every iteration.
#[derive(Clone, Debug, Default)]
pub struct CpmPlan {
    waves: Vec<Vec<NodeId>>,
    nodes: usize,
}

impl CpmPlan {
    /// The waves in dependency order (earlier waves feed later ones).
    pub fn waves(&self) -> &[Vec<NodeId>] {
        &self.waves
    }

    /// Total nodes across all waves.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }
}

/// Interior-mutable cache slot for the full-sweep [`CpmPlan`], so a
/// `&CutState` borrow (the CPM sweep's view) can build and reuse the plan.
/// The cached plan itself is immutable behind an `Arc`; invalidation just
/// drops the reference.
#[derive(Debug, Default)]
struct PlanCell {
    inner: Mutex<PlanInner>,
}

#[derive(Debug, Default)]
struct PlanInner {
    plan: Option<Arc<CpmPlan>>,
    hits: u64,
    rebuilds: u64,
}

impl Clone for PlanCell {
    fn clone(&self) -> PlanCell {
        // The clone may share the (immutable) plan; hit accounting
        // restarts so stats stay per-state.
        let plan = self.inner.lock().unwrap_or_else(|e| e.into_inner()).plan.clone();
        PlanCell { inner: Mutex::new(PlanInner { plan, hits: 0, rebuilds: 0 }) }
    }
}

impl PlanCell {
    fn invalidate(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).plan = None;
    }
}

/// Computes `S_v`: the live nodes whose cut preservation condition may be
/// violated by `edit`.
pub fn violated_set(aig: &Aig, edit: &EditRecord) -> Vec<NodeId> {
    let seeds: Vec<NodeId> = edit.changed_nodes().collect();
    let mut sv = als_aig::cone::tfi_cone_union(aig, &seeds);
    sv.retain(|&n| aig.is_live(n));
    sv
}

/// Reachability masks, topological ranks and disjoint cuts for every live
/// node — the complete "step 1" state of an analysis iteration, refreshable
/// either from scratch ([`CutState::compute`], phase one) or incrementally
/// ([`CutState::update_after`], phase two).
#[derive(Clone, Debug)]
pub struct CutState {
    reach: ReachMap,
    ranks: Vec<u32>,
    cuts: Vec<Option<DisjointCut>>,
    /// Per-node CPM wave (`NO_WAVE` when none), maintained alongside the
    /// cuts: fully derived by [`CutState::compute_with`], incrementally
    /// refreshed for `S_v` by [`CutState::update_after`].
    cpm_wave: Vec<u32>,
    /// Cached full-sweep schedule, dropped whenever an update changes any
    /// wave or invalidates the stored ranks.
    plan: PlanCell,
    /// Number of cut recomputations performed by the last update.
    last_update_size: usize,
    /// Rank entries refreshed by the last update (see
    /// [`CutState::last_rank_work`]).
    last_rank_work: usize,
}

/// Wave of one node from its stored cut: `1 + max(wave(t))` over node
/// members (0 with none). Members without a wave are skipped — the CPM
/// sweep surfaces that inconsistency as its missing-member-row error.
fn wave_of(cut: &DisjointCut, waves: &[u32]) -> u32 {
    let mut w = 0u32;
    for t in cut.node_members() {
        let tw = waves[t.index()];
        if tw != NO_WAVE {
            w = w.max(tw.saturating_add(1));
        }
    }
    w
}

impl CutState {
    /// Full computation for all live nodes (comprehensive analysis).
    pub fn compute(aig: &Aig) -> CutState {
        match CutState::compute_with(aig, &WorkerPool::new(1)) {
            Ok(state) => state,
            // unreachable on a serial pool: the closure runs on this thread
            Err(p) => p.resume(),
        }
    }

    /// Full computation with the disjoint cuts of independent nodes
    /// computed in parallel on `pool` — the analysis step-1
    /// parallelisation.
    ///
    /// The reach map and topological ranks are computed once up front and
    /// are read-only inputs to every [`closest_disjoint_cut`] call, so the
    /// per-node cut computations are independent; chunk-ordered joins make
    /// the result identical to [`CutState::compute`] at any thread count.
    pub fn compute_with(aig: &Aig, pool: &WorkerPool) -> Result<CutState, WorkerPanic> {
        let reach = ReachMap::compute(aig);
        let ranks = als_aig::topo::topo_ranks(aig);
        let live: Vec<NodeId> = aig.iter_live().collect();
        let computed =
            pool.map_in("cuts", &live, |&id| closest_disjoint_cut(aig, &reach, &ranks, id))?;
        let mut cuts = vec![None; aig.num_nodes()];
        for (&id, cut) in live.iter().zip(computed) {
            cuts[id.index()] = Some(cut);
        }
        // Derive CPM waves in reverse topological order (rank descending):
        // a cut's node members lie in the node's TFO, hence rank higher
        // and are assigned first.
        let mut cpm_wave = vec![NO_WAVE; aig.num_nodes()];
        let mut ranked: Vec<(u32, NodeId)> = live.iter().map(|&n| (ranks[n.index()], n)).collect();
        ranked.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
        for &(_, n) in &ranked {
            if let Some(cut) = &cuts[n.index()] {
                cpm_wave[n.index()] = wave_of(cut, &cpm_wave);
            }
        }
        let last_update_size = live.len();
        Ok(CutState {
            reach,
            ranks,
            cuts,
            cpm_wave,
            plan: PlanCell::default(),
            last_update_size,
            last_rank_work: aig.num_nodes(),
        })
    }

    /// Incremental refresh after a LAC: recomputes reachability and cuts
    /// only for the nodes in `S_v`, reusing everything else.
    ///
    /// Topological ranks are *kept* rather than recomputed whenever the
    /// edit provably preserves their validity, which makes the whole update
    /// O(|S_v|)-ish instead of O(V+E) per LAC (the point of the paper's
    /// phase-two step 1). The argument: `replace(target, rep)` only adds
    /// fanin edges `rep → u` for `u` in `target`'s former fanout list (all
    /// other edges are deletions, which never invalidate a topological
    /// order). So the stored ranks remain a valid order iff
    /// `rank(rep) < rank(u)` for every current fanout `u` of `rep` — an
    /// O(fanout(rep)) check. Constant and input replacements always pass
    /// (rank 0-ish); a substitution by a topologically late node falls back
    /// to a full rank refresh, recorded in [`CutState::last_rank_work`].
    pub fn update_after(&mut self, aig: &Aig, edit: &EditRecord) {
        let sv = violated_set(aig, edit);
        let rep = edit.replacement.node();
        let still_valid = self.ranks.len() == aig.num_nodes() && {
            let rep_rank = self.ranks[rep.index()];
            aig.fanouts(rep).iter().all(|&u| rep_rank < self.ranks[u.index()])
        };
        if still_valid {
            // Removed nodes keep no rank: nothing may sort against them.
            for &dead in &edit.removed {
                self.ranks[dead.index()] = u32::MAX;
            }
            self.last_rank_work = edit.removed.len() + aig.fanouts(rep).len();
        } else {
            self.ranks = als_aig::topo::topo_ranks(aig);
            self.last_rank_work = aig.num_nodes();
        }
        self.reach.recompute_for_ranked(aig, &sv, &self.ranks);
        for &dead in &edit.removed {
            self.cuts[dead.index()] = None;
        }
        for &n in &sv {
            self.cuts[n.index()] = Some(closest_disjoint_cut(aig, &self.reach, &self.ranks, n));
        }
        // Incremental wave maintenance, confined to S_v. Soundness: if a
        // node n outside S_v had a cut member t inside S_v, then n lies in
        // t's TFI; S_v is a union of TFI cones, so n would be in S_v too —
        // contradiction. Hence waves outside S_v cannot change, and
        // refreshing S_v in rank-descending order (members first) restores
        // the full invariant.
        let mut wave_changed = false;
        for &dead in &edit.removed {
            if self.cpm_wave[dead.index()] != NO_WAVE {
                self.cpm_wave[dead.index()] = NO_WAVE;
                wave_changed = true;
            }
        }
        let mut sv_ranked: Vec<(u32, NodeId)> =
            sv.iter().map(|&n| (self.ranks[n.index()], n)).collect();
        sv_ranked.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
        for &(_, n) in &sv_ranked {
            let new_wave =
                self.cuts[n.index()].as_ref().map_or(NO_WAVE, |cut| wave_of(cut, &self.cpm_wave));
            if self.cpm_wave[n.index()] != new_wave {
                self.cpm_wave[n.index()] = new_wave;
                wave_changed = true;
            }
        }
        // The cached plan survives an update only when nothing it encodes
        // moved: no wave changed (covers removals and revived nodes, whose
        // waves flip to/from NO_WAVE) and the stored ranks — its
        // within-wave order — were kept.
        if wave_changed || !still_valid {
            self.plan.invalidate();
        }
        self.last_update_size = sv.len();
    }

    /// The CPM wave of `n`, if it has one.
    pub fn cpm_wave(&self, n: NodeId) -> Option<u32> {
        match self.cpm_wave.get(n.index()) {
            Some(&w) if w != NO_WAVE => Some(w),
            _ => None,
        }
    }

    /// The cached full-sweep CPM schedule, built on first use and reused
    /// until an update changes a wave or the rank order. `Err` carries a
    /// live node with no stored cut (the CPM sweep's missing-cut case).
    pub fn full_plan(&self, aig: &Aig) -> Result<Arc<CpmPlan>, NodeId> {
        let mut inner = self.plan.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(plan) = inner.plan.clone() {
            inner.hits += 1;
            return Ok(plan);
        }
        let mut ranked: Vec<(u32, NodeId)> =
            aig.iter_live().map(|n| (self.ranks[n.index()], n)).collect();
        ranked.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
        let mut waves: Vec<Vec<NodeId>> = Vec::new();
        let mut nodes = 0usize;
        for &(_, n) in &ranked {
            if self.cuts[n.index()].is_none() || self.cpm_wave[n.index()] == NO_WAVE {
                return Err(n);
            }
            let slot = self.cpm_wave[n.index()] as usize;
            if waves.len() <= slot {
                waves.resize_with(slot + 1, Vec::new);
            }
            waves[slot].push(n);
            nodes += 1;
        }
        let plan = Arc::new(CpmPlan { waves, nodes });
        inner.rebuilds += 1;
        inner.plan = Some(Arc::clone(&plan));
        Ok(plan)
    }

    /// `(hits, rebuilds)` of the full-sweep plan cache since this state
    /// was computed (or cloned).
    pub fn plan_stats(&self) -> (u64, u64) {
        let inner = self.plan.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.hits, inner.rebuilds)
    }

    /// The reachability map.
    pub fn reach(&self) -> &ReachMap {
        &self.reach
    }

    /// Topological ranks of the current graph.
    pub fn ranks(&self) -> &[u32] {
        &self.ranks
    }

    /// The disjoint cut of a live node.
    ///
    /// # Panics
    /// Panics if `n` has no stored cut (dead or never computed).
    pub fn cut(&self, n: NodeId) -> &DisjointCut {
        self.cuts[n.index()].as_ref().expect("cut of a live node")
    }

    /// The disjoint cut of `n`, if stored.
    pub fn get_cut(&self, n: NodeId) -> Option<&DisjointCut> {
        self.cuts[n.index()].as_ref()
    }

    /// Number of nodes the last (full or incremental) update touched —
    /// `|S_v|` for incremental updates, the live-node count after a full
    /// compute. Feeds the self-adaption runtime model.
    pub fn last_update_size(&self) -> usize {
        self.last_update_size
    }

    /// Number of rank entries the last update wrote: `|removed| +
    /// |fanout(replacement)|` when the stored topological ranks could be
    /// kept, the full node count when a fallback recompute (or a full
    /// [`CutState::compute`]) ran. The regression tests use this to pin the
    /// incremental update's cost to `|S_v|` rather than `|V|`.
    pub fn last_rank_work(&self) -> usize {
        self.last_rank_work
    }

    /// Cheap cross-validation of the incrementally maintained state
    /// against ground truth, on up to `sample` live nodes drawn
    /// deterministically from `salt`.
    ///
    /// For each sampled node the check requires that
    ///
    /// 1. its reachability mask satisfies the local relation a from-scratch
    ///    [`ReachMap::compute`] establishes (own output references ∪
    ///    fanouts' masks),
    /// 2. a disjoint cut is stored for it,
    /// 3. the stored cut verifies against the reachability map
    ///    ([`verify_cut`]: member disjointness, exact cover, one-cut paths),
    /// 4. the stored cut equals a from-scratch recompute
    ///    ([`closest_disjoint_cut`] on the current graph).
    ///
    /// Any violation means the incremental bookkeeping (CPC reuse plus
    /// `S_v`-restricted refresh) has drifted from the circuit; the caller
    /// should discard this state and fall back to a full
    /// [`CutState::compute`]. A `sample` of zero checks nothing.
    pub fn spot_check(&self, aig: &Aig, sample: usize, salt: u64) -> Result<(), String> {
        if sample == 0 {
            return Ok(());
        }
        if self.cuts.len() != aig.num_nodes() || self.ranks.len() != aig.num_nodes() {
            return Err(format!(
                "cut state sized for {} nodes but the circuit has {}",
                self.cuts.len(),
                aig.num_nodes()
            ));
        }
        let mut live: Vec<NodeId> = aig.iter_live().collect();
        if live.is_empty() {
            return Ok(());
        }
        // SplitMix64 keeps the sample deterministic without a rand
        // dependency; distinct salts probe distinct node subsets. A partial
        // Fisher-Yates shuffle draws `sample` *distinct* nodes, so a sample
        // at least the size of the live set checks every live node.
        let mut s = salt;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let picks = sample.min(live.len());
        for i in 0..picks {
            let j = i + (next() % (live.len() - i) as u64) as usize;
            live.swap(i, j);
            let id = live[i];
            if &self.reach.fresh_mask(aig, id) != self.reach.mask(id) {
                return Err(format!("stale reachability mask of {id}"));
            }
            let Some(cut) = self.get_cut(id) else {
                return Err(format!("missing disjoint cut of live node {id}"));
            };
            verify_cut(aig, &self.reach, id, cut)
                .map_err(|e| format!("invalid cut of {id}: {e}"))?;
            if &closest_disjoint_cut(aig, &self.reach, &self.ranks, id) != cut {
                return Err(format!("cut of {id} diverged from a fresh recompute"));
            }
        }
        Ok(())
    }

    /// Wrecks every stored cut. Test hook for exercising corruption
    /// fallback paths; never called by the flows themselves.
    #[doc(hidden)]
    pub fn debug_corrupt_cuts(&mut self) {
        for slot in self.cuts.iter_mut().flatten() {
            *slot = DisjointCut::from_members(Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjoint::verify_cut;
    use als_aig::edit::replace;
    use als_aig::{Aig, Lit};

    /// Builds the paper's Fig. 5-style situation: replacing c with d must
    /// invalidate cuts of exactly the TFIs of the changed nodes.
    fn sample() -> (Aig, Vec<Lit>) {
        let mut aig = Aig::new("fig5");
        let x = aig.add_inputs("x", 4);
        let a = aig.and(x[0], x[1]);
        let b = aig.and(a, x[2]);
        let c = aig.and(a, !x[2]);
        let d = aig.and(x[2], x[3]);
        let f = aig.and(c, x[3]);
        let g = aig.and(b, d);
        let h = aig.and(f, !d);
        aig.add_output(g, "o0");
        aig.add_output(h, "o1");
        (aig, vec![a, b, c, d, f, g, h])
    }

    #[test]
    fn sv_contains_tfi_of_changed() {
        let (mut aig, n) = sample();
        let (a, c, d) = (n[0], n[2], n[3]);
        let rec = replace(&mut aig, c.node(), d);
        let sv = violated_set(&aig, &rec);
        // c removed; d gained fanout f; a lost fanout c; x2 lost a fanout.
        assert!(!sv.contains(&c.node()), "removed node excluded");
        assert!(sv.contains(&d.node()), "replacement in S_v");
        assert!(sv.contains(&a.node()), "TFI of removed node in S_v");
        // Inputs feeding a and d are in S_v as well.
        assert!(sv.contains(&aig.inputs()[0]));
        assert!(sv.contains(&aig.inputs()[3]));
    }

    #[test]
    fn incremental_update_matches_fresh_compute() {
        let (mut aig, n) = sample();
        let mut state = CutState::compute(&aig);
        let rec = replace(&mut aig, n[2].node(), n[3]);
        state.update_after(&aig, &rec);
        let fresh = CutState::compute(&aig);
        for id in aig.iter_live() {
            assert_eq!(state.reach().mask(id), fresh.reach().mask(id), "reach of {id}");
            assert_eq!(state.cut(id), fresh.cut(id), "cut of {id}");
            verify_cut(&aig, state.reach(), id, state.cut(id)).unwrap();
        }
        assert!(state.last_update_size() < aig.iter_live().count());
    }

    #[test]
    fn repeated_edits_stay_consistent() {
        let (mut aig, n) = sample();
        let mut state = CutState::compute(&aig);
        // First replace c by d, then replace g by constant 1.
        let rec1 = replace(&mut aig, n[2].node(), n[3]);
        state.update_after(&aig, &rec1);
        let rec2 = replace(&mut aig, n[5].node(), Lit::TRUE);
        state.update_after(&aig, &rec2);
        let fresh = CutState::compute(&aig);
        for id in aig.iter_live() {
            assert_eq!(state.cut(id), fresh.cut(id), "cut of {id}");
        }
    }

    #[test]
    fn spot_check_accepts_fresh_and_incremental_state() {
        let (mut aig, n) = sample();
        let mut state = CutState::compute(&aig);
        state.spot_check(&aig, 64, 1).unwrap();
        let rec = replace(&mut aig, n[2].node(), n[3]);
        state.update_after(&aig, &rec);
        for salt in 0..8 {
            state.spot_check(&aig, 64, salt).unwrap();
        }
    }

    #[test]
    fn spot_check_detects_stale_state() {
        let (mut aig, n) = sample();
        let state = CutState::compute(&aig);
        // Edit the circuit without telling the state: masks and cuts of the
        // changed region are now stale.
        let _ = replace(&mut aig, n[2].node(), n[3]);
        assert!(state.spot_check(&aig, 64, 7).is_err());
    }

    #[test]
    fn spot_check_detects_corrupted_cuts() {
        let (aig, _) = sample();
        let mut state = CutState::compute(&aig);
        state.debug_corrupt_cuts();
        assert!(state.spot_check(&aig, 64, 3).is_err());
    }

    #[test]
    fn spot_check_zero_sample_is_a_noop() {
        let (aig, _) = sample();
        let mut state = CutState::compute(&aig);
        state.debug_corrupt_cuts();
        state.spot_check(&aig, 0, 0).unwrap();
    }

    #[test]
    fn update_work_scales_with_sv_not_circuit_size() {
        // A wide circuit of K independent AND pairs: editing one pair must
        // touch O(|S_v|) state, not O(|V|). The rank-work counter is the
        // regression guard — before the fix, every update recomputed
        // topological ranks for the whole graph.
        const K: usize = 200;
        let mut aig = Aig::new("wide");
        let mut gates = Vec::new();
        for i in 0..K {
            let a = aig.add_input(format!("a{i}"));
            let b = aig.add_input(format!("b{i}"));
            let g = aig.and(a, b);
            aig.add_output(g, format!("o{i}"));
            gates.push(g);
        }
        let mut state = CutState::compute(&aig);
        let rec = replace(&mut aig, gates[0].node(), Lit::FALSE);
        state.update_after(&aig, &rec);
        let live = aig.iter_live().count();
        assert!(live > 2 * K, "circuit should be large, got {live} live nodes");
        assert!(
            state.last_update_size() <= 4,
            "|S_v| should be tiny, touched {}",
            state.last_update_size()
        );
        assert!(
            state.last_rank_work() <= 8,
            "rank refresh must scale with the edit, wrote {} entries for {} nodes",
            state.last_rank_work(),
            aig.num_nodes()
        );
        let fresh = CutState::compute(&aig);
        for id in aig.iter_live() {
            assert_eq!(state.cut(id), fresh.cut(id), "cut of {id}");
        }
    }

    #[test]
    fn late_substitution_falls_back_to_full_rank_refresh() {
        // Substituting a topologically *late* node into an early gate's
        // fanouts adds an edge the stored ranks cannot order; the update
        // must detect this and recompute ranks rather than keep an invalid
        // order (and the result must still match a fresh compute).
        let mut aig = Aig::new("back");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let t = aig.and(a, b);
        let u = aig.and(t, c);
        aig.add_output(u, "o0");
        // A chain created after u: its tail ranks above u in the DFS order.
        let mut s = aig.and(c, d);
        for _ in 0..4 {
            s = aig.and(s, d);
        }
        aig.add_output(s, "o1");
        let mut state = CutState::compute(&aig);
        let rank_before = state.ranks()[s.node().index()];
        assert!(rank_before > state.ranks()[u.node().index()], "test premise: s ranks late");
        let rec = replace(&mut aig, t.node(), s);
        state.update_after(&aig, &rec);
        assert_eq!(
            state.last_rank_work(),
            aig.num_nodes(),
            "invalidated ranks must trigger the full fallback"
        );
        // The refreshed ranks are a valid topological order of s -> u.
        assert!(state.ranks()[s.node().index()] < state.ranks()[u.node().index()]);
        let fresh = CutState::compute(&aig);
        for id in aig.iter_live() {
            assert_eq!(state.reach().mask(id), fresh.reach().mask(id), "reach of {id}");
            assert_eq!(state.cut(id), fresh.cut(id), "cut of {id}");
        }
        state.spot_check(&aig, 64, 11).unwrap();
    }

    #[test]
    fn parallel_compute_matches_serial() {
        let (aig, _) = sample();
        let serial = CutState::compute(&aig);
        for threads in [2, 7] {
            let par = CutState::compute_with(&aig, &WorkerPool::new(threads)).unwrap();
            for id in aig.iter_live() {
                assert_eq!(serial.cut(id), par.cut(id), "cut of {id} at {threads} threads");
                assert_eq!(serial.reach().mask(id), par.reach().mask(id));
            }
            assert_eq!(serial.ranks(), par.ranks());
        }
    }

    /// Reference waves derived from scratch, for cross-checking the
    /// incrementally maintained `cpm_wave` vector.
    fn fresh_waves(aig: &Aig, state: &CutState) -> Vec<Option<u32>> {
        let fresh = CutState::compute(aig);
        let mut waves = vec![None; aig.num_nodes()];
        for n in aig.iter_live() {
            waves[n.index()] = fresh.cpm_wave(n);
            assert_eq!(state.cpm_wave(n), fresh.cpm_wave(n), "wave of {n}");
        }
        waves
    }

    #[test]
    fn incremental_waves_match_fresh_derivation() {
        let (mut aig, n) = sample();
        let mut state = CutState::compute(&aig);
        // Waves are defined by the cut DAG alone, so the incremental
        // refresh (S_v only) must land exactly where a fresh derivation
        // does — after every edit of a chain of edits.
        let rec1 = replace(&mut aig, n[2].node(), n[3]);
        state.update_after(&aig, &rec1);
        fresh_waves(&aig, &state);
        let rec2 = replace(&mut aig, n[5].node(), Lit::TRUE);
        state.update_after(&aig, &rec2);
        fresh_waves(&aig, &state);
        // Removed nodes carry no wave.
        assert_eq!(state.cpm_wave(n[2].node()), None);
    }

    #[test]
    fn full_plan_is_cached_until_an_update_invalidates_it() {
        let (mut aig, n) = sample();
        let mut state = CutState::compute(&aig);
        let p1 = state.full_plan(&aig).unwrap();
        let p2 = state.full_plan(&aig).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "second call must hit the cache");
        assert_eq!(state.plan_stats(), (1, 1));
        assert_eq!(p1.num_nodes(), aig.iter_live().count());
        // Every node appears exactly once, in a wave after all its cut's
        // node members.
        let mut wave_of_node = vec![None; aig.num_nodes()];
        for (w, nodes) in p1.waves().iter().enumerate() {
            for &m in nodes {
                assert!(wave_of_node[m.index()].is_none(), "{m} scheduled twice");
                wave_of_node[m.index()] = Some(w);
            }
        }
        for id in aig.iter_live() {
            let w = wave_of_node[id.index()].expect("live node scheduled");
            for t in state.cut(id).node_members() {
                assert!(wave_of_node[t.index()].unwrap() < w, "member {t} not before {id}");
            }
        }
        // An edit that changes waves drops the cached plan...
        let rec = replace(&mut aig, n[2].node(), n[3]);
        state.update_after(&aig, &rec);
        let p3 = state.full_plan(&aig).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3), "edit must invalidate the plan");
        assert_eq!(state.plan_stats(), (1, 2));
        // ...and the rebuilt plan covers exactly the new live set.
        assert_eq!(p3.num_nodes(), aig.iter_live().count());
    }

    #[test]
    fn constant_replacement_updates_constant_node_cut() {
        let (mut aig, n) = sample();
        let mut state = CutState::compute(&aig);
        let rec = replace(&mut aig, n[4].node(), Lit::FALSE); // f := 0
        state.update_after(&aig, &rec);
        let fresh = CutState::compute(&aig);
        assert_eq!(state.cut(NodeId::CONST0), fresh.cut(NodeId::CONST0));
    }
}
