//! One-cuts and closest disjoint cuts, with incremental update.
//!
//! The CPM-based batch error estimation of VECBEE-style flows propagates
//! Boolean differences through *cuts*: a **one-cut** of node `n` and output
//! `o` is a node through which every `n → o` path passes; a **disjoint cut**
//! (SEALS) selects one one-cut per reachable output such that the transitive
//! fanouts of the selected cut nodes are pairwise disjoint — then a single
//! flip simulation of the cone between `n` and its cut yields the Boolean
//! differences to *all* cut members at once.
//!
//! The dual-phase paper's phase-two acceleration rests on the *cut
//! preservation condition* (CPC): after a LAC, only nodes whose TFO cone
//! structure changed can lose their disjoint cut. [`incremental`] computes
//! that set (`S_v`) from the [`als_aig::EditRecord`] and refreshes exactly
//! those entries of the [`CutState`].
//!
//! * [`reach`] — per-node reachable-output bitsets; under the no-dangling
//!   invariant two TFO cones intersect **iff** their reachable-output sets
//!   intersect, which makes disjointness tests cheap,
//! * [`disjoint`] — the closest-disjoint-cut construction,
//! * [`incremental`] — `S_c` / `S_v` computation and in-place cut refresh,
//! * [`strash`] — deterministic word-level hashing used to key functionally
//!   identical LAC candidates for structural deduplication.

// Hot-path analysis code must surface failures as values, not panics: a
// stray `unwrap()` here aborts a whole synthesis run.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod disjoint;
pub mod incremental;
pub mod reach;
pub mod strash;

pub use disjoint::{closest_disjoint_cut, CutMember, DisjointCut};
pub use incremental::{violated_set, CpmPlan, CutState};
pub use reach::ReachMap;
pub use strash::{hash_words, WordHasher};
