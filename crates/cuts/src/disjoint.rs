//! Closest disjoint cuts (SEALS-style).

use als_aig::{Aig, NodeId};
use als_sim::PackedBits;

use crate::reach::{masks_intersect, ReachMap};

/// One member of a disjoint cut: an internal node, or a primary output
/// treated as a virtual sink node.
///
/// Output members arise when the node under analysis drives an output
/// directly, or when reconvergence forces the frontier all the way to a
/// sink.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CutMember {
    /// An internal gate (or input) node.
    Node(NodeId),
    /// The virtual sink of primary output `o`.
    Output(u32),
}

/// A disjoint cut of some node `n`: a set of one-cuts, exactly one per
/// output reachable from `n`, whose transitive-fanout cones are pairwise
/// disjoint.
///
/// Each member *covers* the outputs reachable from it; the members' covered
/// sets partition the outputs reachable from `n`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DisjointCut {
    members: Vec<CutMember>,
}

impl DisjointCut {
    /// Builds a cut from explicit members (sorted and deduplicated).
    ///
    /// The caller is responsible for the disjoint-cut property; use
    /// [`verify_cut`] in tests. The always-valid trivial cut is the set of
    /// reachable output sinks.
    pub fn from_members(mut members: Vec<CutMember>) -> DisjointCut {
        members.sort();
        members.dedup();
        DisjointCut { members }
    }

    /// The cut members, sorted.
    pub fn members(&self) -> &[CutMember] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cut is empty (node reaches no output).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Internal-node members only.
    pub fn node_members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().filter_map(|m| match m {
            CutMember::Node(n) => Some(*n),
            CutMember::Output(_) => None,
        })
    }

    /// Output-sink members only.
    pub fn output_members(&self) -> impl Iterator<Item = u32> + '_ {
        self.members.iter().filter_map(|m| match m {
            CutMember::Node(_) => None,
            CutMember::Output(o) => Some(*o),
        })
    }

    /// The outputs covered by `member`: for a node member, its reachable
    /// set; for an output member, that single output.
    pub fn covered_outputs(member: CutMember, reach: &ReachMap) -> Vec<usize> {
        match member {
            CutMember::Node(t) => reach.reachable_outputs(t),
            CutMember::Output(o) => vec![o as usize],
        }
    }
}

/// Mask of a member over output indices.
fn member_mask(member: CutMember, reach: &ReachMap) -> PackedBits {
    match member {
        CutMember::Node(t) => reach.mask(t).clone(),
        CutMember::Output(o) => {
            let mut m = PackedBits::zeros(reach.mask_words());
            m.set(o as usize, true);
            m
        }
    }
}

/// Expansion priority: topological rank for nodes, maximal for sinks.
fn member_rank(member: CutMember, rank: &[u32]) -> u64 {
    match member {
        CutMember::Node(t) => rank[t.index()] as u64,
        CutMember::Output(o) => u64::from(u32::MAX) + 1 + o as u64,
    }
}

/// Computes the closest disjoint cut of `n` by frontier expansion.
///
/// The frontier starts at `n`'s direct fanouts (plus sinks for directly
/// driven outputs). While two frontier members' covered-output masks
/// intersect — i.e. their TFO cones reconverge — the topologically earliest
/// conflicting member is expanded into *its* fanouts. Expansion always moves
/// toward the sinks, where distinct outputs are trivially disjoint, so the
/// loop terminates; expanding the earliest conflict keeps the cut as close
/// to `n` as the reconvergence structure allows.
///
/// `rank` must be [`als_aig::topo::topo_ranks`] for the current graph.
/// An unused node (empty reachable set) gets an empty cut.
pub fn closest_disjoint_cut(aig: &Aig, reach: &ReachMap, rank: &[u32], n: NodeId) -> DisjointCut {
    struct Entry {
        member: CutMember,
        mask: PackedBits,
        rank: u64,
    }

    let mut entries: Vec<Entry> = Vec::new();
    let push = |entries: &mut Vec<Entry>, member: CutMember| {
        if entries.iter().all(|e| e.member != member) {
            entries.push(Entry {
                member,
                mask: member_mask(member, reach),
                rank: member_rank(member, rank),
            });
        }
    };

    for &f in aig.fanouts(n) {
        push(&mut entries, CutMember::Node(f));
    }
    for &o in aig.output_refs(n) {
        push(&mut entries, CutMember::Output(o));
    }

    loop {
        entries.sort_by_key(|e| e.rank);
        // Find the first member whose mask intersects an earlier member's.
        let mut conflict: Option<usize> = None;
        'outer: for j in 1..entries.len() {
            for i in 0..j {
                if masks_intersect(&entries[i].mask, &entries[j].mask) {
                    conflict = Some(i); // expand the earlier (lower-rank) one
                    break 'outer;
                }
            }
        }
        let Some(i) = conflict else { break };
        let Entry { member, .. } = entries.remove(i);
        let CutMember::Node(t) = member else {
            unreachable!("two output sinks never conflict, so the earlier member is a node");
        };
        for &f in aig.fanouts(t) {
            push(&mut entries, CutMember::Node(f));
        }
        for &o in aig.output_refs(t) {
            push(&mut entries, CutMember::Output(o));
        }
    }

    let mut members: Vec<CutMember> = entries.into_iter().map(|e| e.member).collect();
    members.sort();
    DisjointCut { members }
}

/// Validates that `cut` is a disjoint cut of `n`: covered sets are pairwise
/// disjoint, partition `reach(n)`, and every member is a one-cut for the
/// outputs it covers. Intended for tests and debug assertions.
pub fn verify_cut(aig: &Aig, reach: &ReachMap, n: NodeId, cut: &DisjointCut) -> Result<(), String> {
    let mut union = PackedBits::zeros(reach.mask_words());
    for &m in cut.members() {
        let mask = member_mask(m, reach);
        if masks_intersect(&union, &mask) {
            return Err(format!("members of cut of {n} overlap at {m:?}"));
        }
        union.or_assign(&mask);
    }
    if &union != reach.mask(n) {
        return Err(format!("cut of {n} does not cover exactly its reachable outputs"));
    }
    // One-cut property: no path from n to a covered output avoids the member.
    for &m in cut.members() {
        let blocked = match m {
            CutMember::Node(t) => Some(t),
            CutMember::Output(_) => None, // sink trivially on all its paths
        };
        let Some(t) = blocked else { continue };
        // DFS from n through fanouts, never entering t.
        let mut seen = vec![false; aig.num_nodes()];
        let mut stack = vec![n];
        seen[n.index()] = true;
        let covered = member_mask(m, reach);
        while let Some(u) = stack.pop() {
            // Any covered output driven without passing through t is a
            // violating path.
            for &o in aig.output_refs(u) {
                if covered.get(o as usize) {
                    return Err(format!("path from {n} to output {o} avoids cut member {t}"));
                }
            }
            for &f in aig.fanouts(u) {
                if f != t && !seen[f.index()] {
                    seen[f.index()] = true;
                    stack.push(f);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_aig::Aig;

    fn ranks(aig: &Aig) -> Vec<u32> {
        als_aig::topo::topo_ranks(aig)
    }

    /// The paper's Fig. 2-style circuit: a feeds b and c, which reconverge
    /// at e; d covers O1, e covers O2 and O3 via f/g.
    fn fig2() -> (Aig, NodeId) {
        let mut aig = Aig::new("fig2");
        let x = aig.add_input("x");
        let y = aig.add_input("y");
        let z = aig.add_input("z");
        let a = aig.and(x, y); // node a
        let b = aig.and(a, z);
        let c = aig.and(a, !z);
        let d = aig.and(b, x);
        let e = aig.and(b, c);
        aig.add_output(d, "O1");
        aig.add_output(e, "O2");
        aig.add_output(!e, "O3");
        (aig, a.node())
    }

    #[test]
    fn reconvergence_is_resolved() {
        let (aig, a) = fig2();
        let reach = ReachMap::compute(&aig);
        let cut = closest_disjoint_cut(&aig, &reach, &ranks(&aig), a);
        verify_cut(&aig, &reach, a, &cut).unwrap();
        // b covers O1 via d... but b also reaches e; reconvergence of b and c
        // at e forces expansion. The exact members depend on structure, but
        // validity is what matters, plus: must cover all three outputs.
        let mut covered: Vec<usize> =
            cut.members().iter().flat_map(|&m| DisjointCut::covered_outputs(m, &reach)).collect();
        covered.sort();
        assert_eq!(covered, vec![0, 1, 2]);
    }

    #[test]
    fn single_fanout_gives_singleton_cut() {
        let mut aig = Aig::new("chain");
        let x = aig.add_input("x");
        let y = aig.add_input("y");
        let g1 = aig.and(x, y);
        let g2 = aig.and(g1, x);
        aig.add_output(g2, "o");
        let reach = ReachMap::compute(&aig);
        let cut = closest_disjoint_cut(&aig, &reach, &ranks(&aig), g1.node());
        assert_eq!(cut.members(), &[CutMember::Node(g2.node())]);
        verify_cut(&aig, &reach, g1.node(), &cut).unwrap();
    }

    #[test]
    fn direct_output_gives_sink_member() {
        let mut aig = Aig::new("po");
        let x = aig.add_input("x");
        let y = aig.add_input("y");
        let g = aig.and(x, y);
        aig.add_output(g, "o0");
        let reach = ReachMap::compute(&aig);
        let cut = closest_disjoint_cut(&aig, &reach, &ranks(&aig), g.node());
        assert_eq!(cut.members(), &[CutMember::Output(0)]);
        verify_cut(&aig, &reach, g.node(), &cut).unwrap();
    }

    #[test]
    fn fanout_to_independent_outputs_stays_close() {
        // g feeds h0 -> o0 and h1 -> o1 with no reconvergence: cut = {h0, h1}.
        let mut aig = Aig::new("split");
        let x = aig.add_input("x");
        let y = aig.add_input("y");
        let z = aig.add_input("z");
        let g = aig.and(x, y);
        let h0 = aig.and(g, z);
        let h1 = aig.and(g, !z);
        aig.add_output(h0, "o0");
        aig.add_output(h1, "o1");
        let reach = ReachMap::compute(&aig);
        let cut = closest_disjoint_cut(&aig, &reach, &ranks(&aig), g.node());
        let mut expect = vec![CutMember::Node(h0.node()), CutMember::Node(h1.node())];
        expect.sort();
        assert_eq!(cut.members(), expect.as_slice());
        verify_cut(&aig, &reach, g.node(), &cut).unwrap();
    }

    #[test]
    fn node_driving_output_and_gate_reconverging() {
        // g drives o0 directly and feeds h which also drives o0? Impossible —
        // one output has one driver. Instead: g -> o0 and g -> h -> o1.
        let mut aig = Aig::new("mix");
        let x = aig.add_input("x");
        let y = aig.add_input("y");
        let g = aig.and(x, y);
        let h = aig.and(g, x);
        aig.add_output(g, "o0");
        aig.add_output(h, "o1");
        let reach = ReachMap::compute(&aig);
        let cut = closest_disjoint_cut(&aig, &reach, &ranks(&aig), g.node());
        verify_cut(&aig, &reach, g.node(), &cut).unwrap();
        let mut expect = vec![CutMember::Node(h.node()), CutMember::Output(0)];
        expect.sort();
        assert_eq!(cut.members(), expect.as_slice());
    }

    #[test]
    fn every_node_of_fig2_gets_valid_cut() {
        let (aig, _) = fig2();
        let reach = ReachMap::compute(&aig);
        let rk = ranks(&aig);
        for id in aig.iter_live() {
            let cut = closest_disjoint_cut(&aig, &reach, &rk, id);
            verify_cut(&aig, &reach, id, &cut).unwrap();
        }
    }

    #[test]
    fn unused_input_gets_empty_cut() {
        let mut aig = Aig::new("u");
        let x = aig.add_input("x");
        let _unused = aig.add_input("dead");
        aig.add_output(x, "o");
        let reach = ReachMap::compute(&aig);
        let cut = closest_disjoint_cut(&aig, &reach, &ranks(&aig), aig.inputs()[1]);
        assert!(cut.is_empty());
    }
}
