//! Reachable-primary-output bitsets.

use als_aig::{Aig, NodeId};
use als_sim::PackedBits;

/// For every node, the set of primary outputs reachable from it, as a
/// packed bitset over output indices.
///
/// Under the no-dangling invariant (every live gate reaches some output),
/// the transitive-fanout cones of two nodes intersect **iff** their
/// reachable-output sets intersect — the key fact that makes disjoint-cut
/// construction cheap. See the crate docs for the argument.
#[derive(Clone, Debug)]
pub struct ReachMap {
    num_outputs: usize,
    words: usize,
    masks: Vec<PackedBits>,
}

impl ReachMap {
    /// Computes reachability for every live node of `aig`.
    pub fn compute(aig: &Aig) -> ReachMap {
        let num_outputs = aig.num_outputs();
        let words = num_outputs.div_ceil(64);
        let mut map =
            ReachMap { num_outputs, words, masks: vec![PackedBits::zeros(words); aig.num_nodes()] };
        let order = als_aig::topo::topo_order(aig);
        for &id in order.iter().rev() {
            map.recompute_node(aig, id);
        }
        map
    }

    /// Recomputes the mask of a single node from its own output references
    /// and its fanouts' masks (which must already be up to date).
    pub fn recompute_node(&mut self, aig: &Aig, id: NodeId) {
        self.masks[id.index()] = self.fresh_mask(aig, id);
    }

    /// Computes what `id`'s mask should be — its own output references
    /// ORed with its fanouts' stored masks — without storing it. This is
    /// the local consistency relation a from-scratch [`ReachMap::compute`]
    /// establishes at every node, which makes it the ground truth for
    /// spot-checking incrementally maintained state.
    pub fn fresh_mask(&self, aig: &Aig, id: NodeId) -> PackedBits {
        let mut mask = PackedBits::zeros(self.words);
        for &o in aig.output_refs(id) {
            mask.set(o as usize, true);
        }
        for &f in aig.fanouts(id) {
            mask.or_assign(&self.masks[f.index()]);
        }
        mask
    }

    /// Recomputes the masks of `nodes` only.
    ///
    /// `nodes` must be closed under the property "my mask can change only
    /// if a fanout's mask changed or my own edges changed" — the `S_v` set
    /// of the incremental update satisfies this. Nodes are processed in
    /// reverse topological order internally.
    pub fn recompute_for(&mut self, aig: &Aig, nodes: &[NodeId]) {
        if nodes.is_empty() {
            return;
        }
        let rank = als_aig::topo::topo_ranks(aig);
        self.recompute_for_ranked(aig, nodes, &rank);
    }

    /// [`ReachMap::recompute_for`] with caller-supplied topological ranks,
    /// so an incremental maintainer that already holds current ranks (e.g.
    /// [`crate::CutState`]) does not pay an O(V+E) rank recomputation per
    /// edit — the update then costs O(|nodes| log |nodes|) plus the
    /// touched masks.
    pub fn recompute_for_ranked(&mut self, aig: &Aig, nodes: &[NodeId], rank: &[u32]) {
        let mut sorted: Vec<NodeId> = nodes.to_vec();
        sorted.sort_by_key(|n| std::cmp::Reverse(rank[n.index()]));
        for id in sorted {
            debug_assert!(aig.is_live(id));
            self.recompute_node(aig, id);
        }
    }

    /// Number of primary outputs covered by each mask.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Words per mask.
    pub fn mask_words(&self) -> usize {
        self.words
    }

    /// The reachable-output mask of `id`.
    pub fn mask(&self, id: NodeId) -> &PackedBits {
        &self.masks[id.index()]
    }

    /// Whether output `o` is reachable from `id`.
    pub fn reaches(&self, id: NodeId, o: usize) -> bool {
        self.masks[id.index()].get(o)
    }

    /// Whether the reachable sets of `a` and `b` intersect (equivalently,
    /// whether their TFO cones intersect, under no-dangling).
    pub fn intersects(&self, a: NodeId, b: NodeId) -> bool {
        masks_intersect(&self.masks[a.index()], &self.masks[b.index()])
    }

    /// Outputs reachable from `id`, as indices.
    pub fn reachable_outputs(&self, id: NodeId) -> Vec<usize> {
        self.masks[id.index()].iter_ones().collect()
    }
}

/// Whether two masks share a set bit.
pub fn masks_intersect(a: &PackedBits, b: &PackedBits) -> bool {
    a.words().iter().zip(b.words()).any(|(x, y)| x & y != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_aig::Aig;

    /// o0 = a & b; o1 = (a & b) & c.
    fn sample() -> (Aig, NodeId, NodeId) {
        let mut aig = Aig::new("s");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g1 = aig.and(a, b);
        let g2 = aig.and(g1, c);
        aig.add_output(g1, "o0");
        aig.add_output(g2, "o1");
        (aig, g1.node(), g2.node())
    }

    #[test]
    fn masks_follow_structure() {
        let (aig, g1, g2) = sample();
        let r = ReachMap::compute(&aig);
        assert_eq!(r.reachable_outputs(g1), vec![0, 1]);
        assert_eq!(r.reachable_outputs(g2), vec![1]);
        let a = aig.inputs()[0];
        let c = aig.inputs()[2];
        assert_eq!(r.reachable_outputs(a), vec![0, 1]);
        assert_eq!(r.reachable_outputs(c), vec![1]);
        assert!(r.reaches(g1, 0) && !r.reaches(g2, 0));
    }

    #[test]
    fn intersection_matches_cone_overlap() {
        let (aig, g1, g2) = sample();
        let r = ReachMap::compute(&aig);
        assert!(r.intersects(g1, g2));
        let b = aig.inputs()[1];
        let c = aig.inputs()[2];
        assert!(r.intersects(b, c)); // both reach o1
    }

    #[test]
    fn recompute_after_edit_matches_fresh() {
        use als_aig::edit::replace;
        let (mut aig, g1, _g2) = sample();
        let mut r = ReachMap::compute(&aig);
        let sub = aig.inputs()[0].lit();
        let rec = replace(&mut aig, g1, sub);
        // S_v superset: just recompute everything live through recompute_for
        let all: Vec<NodeId> = aig.iter_live().collect();
        r.recompute_for(&aig, &all);
        let fresh = ReachMap::compute(&aig);
        for id in aig.iter_live() {
            assert_eq!(r.mask(id), fresh.mask(id), "node {id}");
        }
        let _ = rec;
    }

    #[test]
    fn many_outputs_cross_word_boundary() {
        let mut aig = Aig::new("wide");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g = aig.and(a, b);
        for i in 0..70 {
            aig.add_output(g.xor_complement(i % 2 == 1), format!("o{i}"));
        }
        let r = ReachMap::compute(&aig);
        assert_eq!(r.mask_words(), 2);
        assert_eq!(r.reachable_outputs(g.node()).len(), 70);
    }
}
