//! Input stimuli for Monte-Carlo simulation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bitvec::PackedBits;

/// One 64-lane word whose bits are independently 1 with probability
/// `threshold / 2³²` (`threshold` saturated to `2³²` = all ones).
///
/// Classic bit-sliced Bernoulli synthesis: walking the threshold's binary
/// expansion from the least significant *set* bit upward and folding one
/// uniform word per position with OR (bit set) or AND (bit clear) leaves
/// every lane 1 with probability `(threshold mod 2^(k+1)) / 2^(k+1)` after
/// position `k` — after the top bit, exactly `threshold / 2³²`.
fn biased_word(rng: &mut StdRng, threshold: u64) -> u64 {
    if threshold == 0 {
        return 0;
    }
    if threshold >= 1 << 32 {
        return !0;
    }
    let start = threshold.trailing_zeros(); // below: acc stays all-zero
    let mut acc = rng.next_u64();
    for k in start + 1..32 {
        let r = rng.next_u64();
        acc = if (threshold >> k) & 1 == 1 { r | acc } else { r & acc };
    }
    acc
}

/// A set of input patterns: one packed bit vector per primary input.
///
/// The paper assumes uniformly distributed inputs; [`PatternSet::random`]
/// reproduces that, while any other distribution can be injected through
/// [`PatternSet::from_vectors`]. For small circuits,
/// [`PatternSet::exhaustive`] enumerates the complete truth table, which the
/// test-suite uses to validate the Monte-Carlo machinery against exact
/// results.
#[derive(Clone, Debug)]
pub struct PatternSet {
    inputs: Vec<PackedBits>,
    num_words: usize,
    num_patterns: usize,
}

impl PatternSet {
    /// Uniform random patterns: `num_words * 64` patterns for `num_inputs`
    /// inputs, deterministic in `seed`.
    pub fn random(num_inputs: usize, num_words: usize, seed: u64) -> PatternSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs = (0..num_inputs)
            .map(|_| PackedBits::from_words((0..num_words).map(|_| rng.next_u64()).collect()))
            .collect();
        PatternSet { inputs, num_words, num_patterns: num_words * 64 }
    }

    /// Independent biased random patterns: every input bit is 1 with
    /// probability `density` (0.5 reproduces [`PatternSet::random`]'s
    /// distribution). Models non-uniform input distributions, which the
    /// dual-phase framework supports unchanged.
    ///
    /// The density is realised bit-parallel with 2⁻³² resolution: the
    /// saturating fixed-point threshold `T = round(density · 2³²)` is
    /// synthesised one threshold-bit at a time, so a whole 64-pattern word
    /// costs at most 32 RNG draws (exactly one for `density = 0.5`, zero
    /// for 0.0 and 1.0) instead of one draw per pattern. Every bit is set
    /// with probability exactly `T / 2³²` — strict comparison semantics, so
    /// `density = 0.0` yields all-zero words and `density = 1.0` all-one
    /// words with certainty, not merely with high probability.
    ///
    /// # Panics
    /// Panics unless `0.0 <= density <= 1.0`.
    pub fn biased(num_inputs: usize, num_words: usize, seed: u64, density: f64) -> PatternSet {
        assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
        let mut rng = StdRng::seed_from_u64(seed);
        const ONE: u64 = 1 << 32;
        let threshold = ((density * ONE as f64).round() as u64).min(ONE);
        let inputs = (0..num_inputs)
            .map(|_| {
                let words = (0..num_words).map(|_| biased_word(&mut rng, threshold)).collect();
                PackedBits::from_words(words)
            })
            .collect();
        PatternSet { inputs, num_words, num_patterns: num_words * 64 }
    }

    /// All `2^num_inputs` patterns.
    ///
    /// Requires `num_inputs >= 6` so the pattern count is a multiple of 64
    /// (the packing granularity), and caps at 20 inputs — 2²⁰ patterns is
    /// already 128 KiB per input vector, and every simulated node costs the
    /// same again, so larger truth tables belong to Monte-Carlo sampling.
    ///
    /// # Panics
    /// Panics if `num_inputs < 6` or `num_inputs > 20`.
    pub fn exhaustive(num_inputs: usize) -> PatternSet {
        assert!(
            (6..=20).contains(&num_inputs),
            "exhaustive patterns need 6..=20 inputs, got {num_inputs}"
        );
        let num_words = 1usize << (num_inputs - 6);
        let inputs = (0..num_inputs)
            .map(|i| {
                let mut v = PackedBits::zeros(num_words);
                if i < 6 {
                    // bit b of every word is (b >> i) & 1
                    let mut pat = 0u64;
                    for b in 0..64u64 {
                        if (b >> i) & 1 == 1 {
                            pat |= 1 << b;
                        }
                    }
                    for w in v.words_mut() {
                        *w = pat;
                    }
                } else {
                    for (wi, w) in v.words_mut().iter_mut().enumerate() {
                        if (wi >> (i - 6)) & 1 == 1 {
                            *w = !0;
                        }
                    }
                }
                v
            })
            .collect();
        PatternSet { inputs, num_words, num_patterns: num_words * 64 }
    }

    /// Builds a pattern set from explicit per-input bit vectors.
    ///
    /// # Panics
    /// Panics if the vectors have differing word counts.
    pub fn from_vectors(inputs: Vec<PackedBits>) -> PatternSet {
        let num_words = inputs.first().map_or(0, PackedBits::num_words);
        assert!(inputs.iter().all(|v| v.num_words() == num_words));
        PatternSet { inputs, num_words, num_patterns: num_words * 64 }
    }

    /// Restricts the set to a logical pattern count that need not be a
    /// multiple of 64, zeroing the unused tail lanes of every input's last
    /// word. This is the masking boundary: downstream word kernels may
    /// fill tail lanes with garbage (complemented edges set them), but the
    /// error state re-masks at accumulation, so stimuli starting clean here
    /// keep every metric exact for the logical count.
    ///
    /// # Panics
    /// Panics unless `num_patterns` lands in the last word, i.e.
    /// `num_words() * 64 - 63 <= num_patterns <= num_words() * 64`.
    pub fn with_pattern_count(mut self, num_patterns: usize) -> PatternSet {
        assert!(
            num_patterns <= self.num_words * 64
                && (self.num_words == 0 || num_patterns > (self.num_words - 1) * 64),
            "pattern count {num_patterns} does not fit {} words",
            self.num_words
        );
        self.num_patterns = num_patterns;
        let mask = crate::kernel::tail_mask(num_patterns);
        for v in &mut self.inputs {
            if let Some(last) = v.words_mut().last_mut() {
                *last &= mask;
            }
        }
        self
    }

    /// Number of primary inputs covered.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of 64-bit words per input vector.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// Number of patterns (the logical count — less than `num_words * 64`
    /// after [`PatternSet::with_pattern_count`]).
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// The stimulus vector for input `i`.
    pub fn input(&self, i: usize) -> &PackedBits {
        &self.inputs[i]
    }

    /// The value assignment of pattern `p` as a vector of bools.
    pub fn pattern(&self, p: usize) -> Vec<bool> {
        self.inputs.iter().map(|v| v.get(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic() {
        let a = PatternSet::random(4, 2, 42);
        let b = PatternSet::random(4, 2, 42);
        for i in 0..4 {
            assert_eq!(a.input(i), b.input(i));
        }
        let c = PatternSet::random(4, 2, 43);
        assert!((0..4).any(|i| a.input(i) != c.input(i)));
    }

    #[test]
    fn random_density_is_roughly_half() {
        let p = PatternSet::random(1, 256, 7);
        let d = p.input(0).density();
        assert!((0.45..0.55).contains(&d), "density {d} suspicious");
    }

    #[test]
    fn biased_density_is_respected() {
        for density in [0.1, 0.25, 0.5, 0.9] {
            let p = PatternSet::biased(2, 64, 3, density);
            for i in 0..2 {
                let d = p.input(i).density();
                assert!((d - density).abs() < 0.05, "want {density}, got {d}");
            }
        }
    }

    #[test]
    fn biased_extremes_are_exact() {
        // Exactness must hold for every bit of every word, not just with
        // high probability: a density of 0.0 may never set a bit and 1.0
        // may never clear one, across many words, inputs and seeds.
        for seed in 0..32 {
            let zero = PatternSet::biased(4, 64, seed, 0.0);
            let one = PatternSet::biased(4, 64, seed, 1.0);
            for i in 0..4 {
                assert!(zero.input(i).is_zero(), "seed {seed} input {i} set a bit at density 0");
                assert_eq!(
                    one.input(i).count_ones(),
                    one.input(i).num_bits(),
                    "seed {seed} input {i} cleared a bit at density 1"
                );
            }
        }
    }

    #[test]
    fn biased_half_matches_word_granularity() {
        // density 0.5 has a one-bit threshold expansion: exactly one RNG
        // word per pattern word, so the stream is deterministic per seed
        // and distinct across seeds.
        let a = PatternSet::biased(3, 16, 9, 0.5);
        let b = PatternSet::biased(3, 16, 9, 0.5);
        let c = PatternSet::biased(3, 16, 10, 0.5);
        for i in 0..3 {
            assert_eq!(a.input(i), b.input(i));
        }
        assert!((0..3).any(|i| a.input(i) != c.input(i)));
    }

    #[test]
    fn exhaustive_covers_all_patterns() {
        let p = PatternSet::exhaustive(8);
        assert_eq!(p.num_patterns(), 256);
        let mut seen = vec![false; 256];
        for i in 0..256 {
            let bits = p.pattern(i);
            let mut v = 0usize;
            for (k, &b) in bits.iter().enumerate() {
                if b {
                    v |= 1 << k;
                }
            }
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exhaustive_input_density_is_exactly_half() {
        let p = PatternSet::exhaustive(7);
        for i in 0..7 {
            assert_eq!(p.input(i).count_ones(), 64);
        }
    }

    #[test]
    #[should_panic(expected = "exhaustive patterns need")]
    fn exhaustive_too_small_panics() {
        PatternSet::exhaustive(3);
    }

    #[test]
    #[should_panic(expected = "exhaustive patterns need")]
    fn exhaustive_too_large_panics() {
        PatternSet::exhaustive(21);
    }

    #[test]
    fn exhaustive_accepts_documented_bounds() {
        assert_eq!(PatternSet::exhaustive(6).num_patterns(), 64);
        // the high edge must match the documented 6..=20 range
        assert_eq!(PatternSet::exhaustive(20).num_patterns(), 1 << 20);
    }

    #[test]
    fn with_pattern_count_masks_input_tails() {
        let p = PatternSet::from_vectors(vec![PackedBits::ones(2)]).with_pattern_count(100);
        assert_eq!(p.num_patterns(), 100);
        assert_eq!(p.num_words(), 2);
        assert_eq!(p.input(0).words()[0], !0);
        assert_eq!(p.input(0).words()[1], (1u64 << 36) - 1);
        // multiples of 64 keep every lane
        let q = PatternSet::from_vectors(vec![PackedBits::ones(2)]).with_pattern_count(128);
        assert_eq!(q.input(0).count_ones(), 128);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn with_pattern_count_rejects_counts_outside_the_last_word() {
        let _ = PatternSet::from_vectors(vec![PackedBits::ones(2)]).with_pattern_count(64);
    }

    #[test]
    fn from_vectors() {
        let v = vec![PackedBits::zeros(3), PackedBits::ones(3)];
        let p = PatternSet::from_vectors(v);
        assert_eq!(p.num_inputs(), 2);
        assert_eq!(p.num_patterns(), 192);
        assert_eq!(p.pattern(100), vec![false, true]);
    }
}
