//! Fixed-width packed bit vectors.

use std::fmt;

/// A packed bit vector holding one bit per simulation pattern, 64 patterns
/// per `u64` word.
///
/// All vectors participating in an operation must have the same word count;
/// this is asserted. The vector itself always spans whole words; when the
/// logical pattern count is not a multiple of 64, the unused tail lanes of
/// the last word are masked at the [`crate::PatternSet`] boundary (inputs)
/// and in the error state (accumulation) — word-level ops here, notably
/// [`PackedBits::not_assign`], are free to fill tail lanes with garbage.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PackedBits {
    words: Vec<u64>,
}

impl PackedBits {
    /// An all-zero vector of `num_words` words.
    pub fn zeros(num_words: usize) -> PackedBits {
        PackedBits { words: vec![0; num_words] }
    }

    /// An all-one vector of `num_words` words.
    pub fn ones(num_words: usize) -> PackedBits {
        PackedBits { words: vec![!0; num_words] }
    }

    /// Builds a vector from raw words.
    pub fn from_words(words: Vec<u64>) -> PackedBits {
        PackedBits { words }
    }

    /// Number of 64-bit words.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Number of patterns (bits).
    #[inline]
    pub fn num_bits(&self) -> usize {
        self.words.len() * 64
    }

    /// Raw word slice.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw word slice.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Bit for pattern `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets the bit for pattern `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ^= other`.
    pub fn xor_assign(&mut self, other: &PackedBits) {
        assert_eq!(self.words.len(), other.words.len());
        crate::kernel::xor_assign(&mut self.words, &other.words);
    }

    /// `self &= other`.
    pub fn and_assign(&mut self, other: &PackedBits) {
        assert_eq!(self.words.len(), other.words.len());
        crate::kernel::and_assign(&mut self.words, &other.words);
    }

    /// `self |= other`.
    pub fn or_assign(&mut self, other: &PackedBits) {
        assert_eq!(self.words.len(), other.words.len());
        crate::kernel::or_assign(&mut self.words, &other.words);
    }

    /// Flips every bit in place (including tail lanes beyond a logical
    /// pattern count — consumers mask at their accumulation boundary).
    pub fn not_assign(&mut self) {
        crate::kernel::not_assign(&mut self.words);
    }

    /// Returns `self & other` as a new vector.
    pub fn and(&self, other: &PackedBits) -> PackedBits {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Returns `self ^ other` as a new vector.
    pub fn xor(&self, other: &PackedBits) -> PackedBits {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Returns the complement as a new vector.
    pub fn not(&self) -> PackedBits {
        let mut out = self.clone();
        out.not_assign();
        out
    }

    /// Fraction of set bits, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.words.is_empty() {
            return 0.0;
        }
        self.count_ones() as f64 / self.num_bits() as f64
    }

    /// Overwrites `self` with `other`'s bits.
    pub fn copy_from(&mut self, other: &PackedBits) {
        assert_eq!(self.words.len(), other.words.len());
        self.words.copy_from_slice(&other.words);
    }

    /// A borrowed view of this vector covering its full word range.
    pub fn as_bits_ref(&self) -> BitsRef<'_> {
        BitsRef::with_window(&self.words, 0, self.words.len())
    }

    /// Number of positions at which `self` and `other` differ.
    pub fn hamming_distance(&self, other: &PackedBits) -> usize {
        assert_eq!(self.words.len(), other.words.len());
        self.words.iter().zip(&other.words).map(|(a, b)| (a ^ b).count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rem = w;
            std::iter::from_fn(move || {
                if rem == 0 {
                    None
                } else {
                    let b = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// A borrowed packed bit vector: a word slice in some arena, annotated with
/// the window `[nz_begin, nz_end)` of words that may be nonzero.
///
/// The window is the sparsity metadata the CPM arena and the fused error
/// kernels share: kernels skip every word outside it without reading the
/// slice. Words inside the window are *allowed* to be zero; words outside it
/// must be zero.
#[derive(Copy, Clone)]
pub struct BitsRef<'a> {
    words: &'a [u64],
    nz_begin: u32,
    nz_end: u32,
}

impl<'a> BitsRef<'a> {
    /// A view over `words` with the nonzero window computed by scanning.
    pub fn new(words: &'a [u64]) -> BitsRef<'a> {
        let nz_begin = words.iter().position(|&w| w != 0).unwrap_or(words.len());
        let nz_end = if nz_begin == words.len() {
            nz_begin
        } else {
            words.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1)
        };
        BitsRef::with_window(words, nz_begin, nz_end)
    }

    /// A view with a precomputed window (words outside it must be zero).
    pub fn with_window(words: &'a [u64], nz_begin: usize, nz_end: usize) -> BitsRef<'a> {
        debug_assert!(nz_begin <= nz_end && nz_end <= words.len());
        BitsRef { words, nz_begin: nz_begin as u32, nz_end: nz_end as u32 }
    }

    /// The full word slice.
    #[inline]
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Number of 64-bit words.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// First word index that may be nonzero.
    #[inline]
    pub fn nz_begin(&self) -> usize {
        self.nz_begin as usize
    }

    /// One past the last word index that may be nonzero.
    #[inline]
    pub fn nz_end(&self) -> usize {
        self.nz_end as usize
    }

    /// Whether no bit is set (empty nonzero window or all-zero window).
    pub fn is_zero(&self) -> bool {
        self.words[self.nz_begin()..self.nz_end()].iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words[self.nz_begin()..self.nz_end()].iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bit for pattern `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Materialises the view as an owned vector.
    pub fn to_packed(&self) -> PackedBits {
        PackedBits { words: self.words.to_vec() }
    }

    /// Returns `self & other` as an owned vector, touching only the
    /// nonzero window.
    pub fn and(&self, other: &PackedBits) -> PackedBits {
        assert_eq!(self.words.len(), other.words.len());
        let mut out = PackedBits::zeros(self.words.len());
        for w in self.nz_begin()..self.nz_end() {
            out.words[w] = self.words[w] & other.words[w];
        }
        out
    }
}

impl PartialEq for BitsRef<'_> {
    fn eq(&self, other: &BitsRef<'_>) -> bool {
        self.words == other.words
    }
}

impl Eq for BitsRef<'_> {}

impl PartialEq<PackedBits> for BitsRef<'_> {
    fn eq(&self, other: &PackedBits) -> bool {
        self.words == &other.words[..]
    }
}

impl PartialEq<BitsRef<'_>> for PackedBits {
    fn eq(&self, other: &BitsRef<'_>) -> bool {
        &self.words[..] == other.words
    }
}

impl fmt::Debug for BitsRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitsRef[{} bits, {} ones]", self.words.len() * 64, self.count_ones())
    }
}

impl fmt::Debug for PackedBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackedBits[{} bits, {} ones]", self.num_bits(), self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let z = PackedBits::zeros(2);
        assert_eq!(z.num_bits(), 128);
        assert!(z.is_zero());
        let o = PackedBits::ones(2);
        assert_eq!(o.count_ones(), 128);
        assert!((o.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn get_set() {
        let mut b = PackedBits::zeros(2);
        b.set(0, true);
        b.set(63, true);
        b.set(64, true);
        assert!(b.get(0) && b.get(63) && b.get(64));
        assert!(!b.get(1) && !b.get(127));
        b.set(63, false);
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn boolean_ops() {
        let mut a = PackedBits::from_words(vec![0b1100]);
        let b = PackedBits::from_words(vec![0b1010]);
        assert_eq!(a.and(&b).words()[0], 0b1000);
        assert_eq!(a.xor(&b).words()[0], 0b0110);
        a.or_assign(&b);
        assert_eq!(a.words()[0], 0b1110);
        a.not_assign();
        assert_eq!(a.words()[0], !0b1110u64);
    }

    #[test]
    fn hamming_and_iter() {
        let a = PackedBits::from_words(vec![0b101, 0b1]);
        let b = PackedBits::from_words(vec![0b011, 0b0]);
        assert_eq!(a.hamming_distance(&b), 3);
        let ones: Vec<usize> = a.iter_ones().collect();
        assert_eq!(ones, vec![0, 2, 64]);
    }

    #[test]
    #[should_panic]
    fn mismatched_widths_panic() {
        let mut a = PackedBits::zeros(1);
        let b = PackedBits::zeros(2);
        a.xor_assign(&b);
    }
}
