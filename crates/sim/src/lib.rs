//! Bit-parallel Monte-Carlo simulation of AND-inverter graphs.
//!
//! Error estimation for approximate logic synthesis is Monte-Carlo based:
//! the circuit is simulated on a large set of random input patterns packed
//! 64 per machine word, so one `u64` AND evaluates a gate on 64 patterns at
//! once.
//!
//! * [`PackedBits`] — a fixed-width packed bit vector with the word-level
//!   operations the analyses need,
//! * [`BitsRef`] — a borrowed word-slice view with a nonzero-word window,
//!   the zero-copy currency between the CPM arena and the error kernels,
//! * [`PatternSet`] — input stimuli (uniform random or exhaustive),
//! * [`Simulator`] — node values for a whole AIG with full and incremental
//!   (cone-restricted) resimulation,
//! * [`kernel`] — the fixed-width chunked word kernels every bitwise hot
//!   loop funnels through, with an `ALS_SIMD` runtime toggle between the
//!   scalar reference path and the vectorized path (always bit-identical).

pub mod bitvec;
pub mod kernel;
pub mod patterns;
pub mod simulator;

pub use bitvec::{BitsRef, PackedBits};
pub use kernel::tail_mask;
pub use patterns::PatternSet;
pub use simulator::Simulator;
