//! Bit-parallel Monte-Carlo simulation of AND-inverter graphs.
//!
//! Error estimation for approximate logic synthesis is Monte-Carlo based:
//! the circuit is simulated on a large set of random input patterns packed
//! 64 per machine word, so one `u64` AND evaluates a gate on 64 patterns at
//! once.
//!
//! * [`PackedBits`] — a fixed-width packed bit vector with the word-level
//!   operations the analyses need,
//! * [`PatternSet`] — input stimuli (uniform random or exhaustive),
//! * [`Simulator`] — node values for a whole AIG with full and incremental
//!   (cone-restricted) resimulation.

pub mod bitvec;
pub mod patterns;
pub mod simulator;

pub use bitvec::PackedBits;
pub use patterns::PatternSet;
pub use simulator::Simulator;
