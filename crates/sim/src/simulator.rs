//! Full and incremental bit-parallel simulation.

use als_aig::{Aig, Lit, NodeId};
use als_par::{RegionSpec, WorkerPool};

use crate::bitvec::PackedBits;
use crate::patterns::PatternSet;

/// Simulated values for every node of an AIG under a fixed pattern set.
///
/// Values are indexed by [`NodeId`] and stay valid across LAC edits as long
/// as the affected cone is refreshed with
/// [`Simulator::resimulate_fanout_cone`] — exactly what the flows do after
/// applying a change. Dead nodes keep stale values that are never read.
#[derive(Clone, Debug)]
pub struct Simulator {
    num_words: usize,
    num_patterns: usize,
    values: Vec<PackedBits>,
}

impl Simulator {
    /// Simulates `aig` on `patterns` and captures all node values.
    ///
    /// # Panics
    /// Panics if the pattern set does not cover all primary inputs.
    pub fn new(aig: &Aig, patterns: &PatternSet) -> Simulator {
        Simulator::new_with(aig, patterns, &WorkerPool::new(1))
    }

    /// Like [`Simulator::new`], but evaluates each topological level's AND
    /// gates in parallel on `pool` — the analysis step-3 parallelisation.
    ///
    /// Nodes of one level have all fanins in strictly earlier levels, so a
    /// level can fan out across workers with no synchronisation beyond the
    /// level barrier; results are bit-identical to the serial evaluation at
    /// any thread count. A worker panic is re-raised on the caller's thread
    /// (the closures are pure bit operations, so this cannot trigger short
    /// of memory corruption).
    ///
    /// # Panics
    /// Panics if the pattern set does not cover all primary inputs.
    pub fn new_with(aig: &Aig, patterns: &PatternSet, pool: &WorkerPool) -> Simulator {
        assert!(
            patterns.num_inputs() >= aig.num_inputs(),
            "pattern set covers {} inputs, circuit has {}",
            patterns.num_inputs(),
            aig.num_inputs()
        );
        let num_words = patterns.num_words();
        let mut values = vec![PackedBits::zeros(num_words); aig.num_nodes()];
        for (i, &pi) in aig.inputs().iter().enumerate() {
            values[pi.index()] = patterns.input(i).clone();
        }
        let mut sim = Simulator { num_words, num_patterns: patterns.num_patterns(), values };
        let order = als_aig::topo::topo_order(aig);
        sim.eval_in_waves(aig, &order, pool);
        sim
    }

    /// Number of 64-bit words per value vector.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// Number of simulated patterns (the pattern set's logical count,
    /// which may be less than `num_words() * 64`).
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Value vector of node `id` (positive polarity).
    pub fn value(&self, id: NodeId) -> &PackedBits {
        &self.values[id.index()]
    }

    /// Value vector of a literal, materialising the complement.
    pub fn lit_value(&self, lit: Lit) -> PackedBits {
        let v = &self.values[lit.node().index()];
        if lit.is_complement() {
            v.not()
        } else {
            v.clone()
        }
    }

    /// Writes the value of `lit` into `out` without allocating.
    pub fn lit_value_into(&self, lit: Lit, out: &mut PackedBits) {
        let v = &self.values[lit.node().index()];
        out.words_mut().copy_from_slice(v.words());
        if lit.is_complement() {
            out.not_assign();
        }
    }

    /// Value vector of primary output `idx` (complement applied).
    pub fn output_value(&self, aig: &Aig, idx: usize) -> PackedBits {
        self.lit_value(aig.output_lit(idx))
    }

    /// Writes the value of primary output `idx` into `out` without
    /// allocating.
    pub fn output_value_into(&self, aig: &Aig, idx: usize, out: &mut PackedBits) {
        self.lit_value_into(aig.output_lit(idx), out);
    }

    fn eval_and(&mut self, aig: &Aig, id: NodeId) {
        let node = aig.node(id);
        let (f0, f1) = (node.fanin0(), node.fanin1());
        let (i0, i1, ii) = (f0.node().index(), f1.node().index(), id.index());
        let (m0, m1) = (
            if f0.is_complement() { !0u64 } else { 0 },
            if f1.is_complement() { !0u64 } else { 0 },
        );
        // A node is never its own fanin (acyclicity), so the destination
        // buffer can be moved out while the fanin values stay borrowed;
        // the swap is pointer-sized, no words are copied.
        let mut dst = std::mem::replace(&mut self.values[ii], PackedBits::zeros(0));
        crate::kernel::and2_masked(
            dst.words_mut(),
            self.values[i0].words(),
            self.values[i1].words(),
            m0,
            m1,
        );
        self.values[ii] = dst;
    }

    /// The value an AND gate takes under the current `values`, computed
    /// into a fresh buffer (the read-only form of [`Simulator::eval_and`]
    /// that parallel waves use: workers share `values` immutably and the
    /// caller installs the results after the join).
    fn and_value(values: &[PackedBits], num_words: usize, aig: &Aig, id: NodeId) -> PackedBits {
        let node = aig.node(id);
        let (f0, f1) = (node.fanin0(), node.fanin1());
        let (a, b) = (&values[f0.node().index()], &values[f1.node().index()]);
        let (m0, m1) = (
            if f0.is_complement() { !0u64 } else { 0 },
            if f1.is_complement() { !0u64 } else { 0 },
        );
        let mut out = PackedBits::zeros(num_words);
        crate::kernel::and2_masked(out.words_mut(), a.words(), b.words(), m0, m1);
        out
    }

    /// Evaluates the AND gates of `order` (a topological order, possibly
    /// restricted to a cone) grouped into level-synchronous waves, fanning
    /// each sufficiently large wave out across `pool`.
    ///
    /// Two cutover decisions guard the fan-out. The whole-cone decision
    /// (`"sim"` region) keeps small resimulation cones — which gate
    /// evaluation makes sub-millisecond — on the caller's thread without
    /// even deriving levels; per-wave decisions (`"sim_wave"`) then keep
    /// narrow waves inline. Both are driven by the pool's measured cost
    /// model (weighted by the word count), so a simulation region never
    /// pays spawn overhead its work cannot amortise.
    fn eval_in_waves(&mut self, aig: &Aig, order: &[NodeId], pool: &WorkerPool) {
        let cone = RegionSpec::weighted("sim", self.num_words as u64);
        if pool.is_serial() || !pool.decide(cone, order.len()) {
            let t0 = pool.should_learn(cone, order.len()).then(std::time::Instant::now);
            for &id in order {
                if aig.node(id).is_and() {
                    self.eval_and(aig, id);
                }
            }
            if let Some(t0) = t0 {
                pool.observe_serial(cone, order.len(), t0.elapsed());
            }
            return;
        }
        // Logic level per node: fanins always sit in strictly lower levels,
        // so the nodes of one level are mutually independent. `order` being
        // topological guarantees fanin levels are known when needed; nodes
        // outside `order` (outside the cone) keep level 0, which is safe
        // because their values are already current by contract.
        let mut level = vec![0u32; aig.num_nodes()];
        let mut waves: Vec<Vec<NodeId>> = Vec::new();
        for &id in order {
            let node = aig.node(id);
            if !node.is_and() {
                continue;
            }
            let l0 = level[node.fanin0().node().index()];
            let l1 = level[node.fanin1().node().index()];
            let l = l0.max(l1) + 1;
            level[id.index()] = l;
            let slot = (l - 1) as usize;
            if waves.len() <= slot {
                waves.resize_with(slot + 1, Vec::new);
            }
            waves[slot].push(id);
        }
        let per_wave = pool.region(RegionSpec::weighted("sim_wave", self.num_words as u64));
        for wave in &waves {
            if !pool.decide_region(&per_wave, wave.len()) {
                let t0 =
                    pool.should_learn_region(&per_wave, wave.len()).then(std::time::Instant::now);
                for &id in wave {
                    self.eval_and(aig, id);
                }
                if let Some(t0) = t0 {
                    pool.observe_serial_region(&per_wave, wave.len(), t0.elapsed());
                }
                continue;
            }
            let (values, num_words) = (&self.values, self.num_words);
            let results = pool
                .map_parallel_in(per_wave.spec(), wave, |&id| {
                    Simulator::and_value(values, num_words, aig, id)
                })
                .unwrap_or_else(|p| p.resume());
            for (&id, v) in wave.iter().zip(results) {
                self.values[id.index()] = v;
            }
        }
    }

    /// Recomputes the values of every node in the transitive fanout of
    /// `seeds` (the seeds' own values are assumed current). Returns the
    /// nodes that were re-evaluated, in topological order.
    ///
    /// After `edit::replace(aig, target, sub)`, passing
    /// `seeds = [sub.node()]` refreshes exactly the affected cone.
    pub fn resimulate_fanout_cone(&mut self, aig: &Aig, seeds: &[NodeId]) -> Vec<NodeId> {
        self.resimulate_fanout_cone_with(aig, seeds, &WorkerPool::new(1))
    }

    /// Like [`Simulator::resimulate_fanout_cone`], but evaluates each
    /// level of the affected cone in parallel on `pool` (bit-identical to
    /// the serial refresh at any thread count).
    pub fn resimulate_fanout_cone_with(
        &mut self,
        aig: &Aig,
        seeds: &[NodeId],
        pool: &WorkerPool,
    ) -> Vec<NodeId> {
        // Collect the union of TFO cones excluding the seeds themselves.
        let mut in_cone = vec![false; aig.num_nodes()];
        let mut queue: Vec<NodeId> = Vec::new();
        for &s in seeds {
            for &f in aig.fanouts(s) {
                if !in_cone[f.index()] {
                    in_cone[f.index()] = true;
                    queue.push(f);
                }
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &f in aig.fanouts(u) {
                if !in_cone[f.index()] {
                    in_cone[f.index()] = true;
                    queue.push(f);
                }
            }
        }
        // Evaluate in topological order restricted to the cone.
        let mut order: Vec<NodeId> =
            als_aig::topo::topo_order(aig).into_iter().filter(|n| in_cone[n.index()]).collect();
        self.eval_in_waves(aig, &order, pool);
        order.retain(|n| aig.node(*n).is_and());
        order
    }

    /// Interprets the primary outputs as a weighted integer per pattern and
    /// returns the value of pattern `p` (LSB-first output ordering).
    pub fn output_word(&self, aig: &Aig, p: usize) -> u128 {
        let mut v = 0u128;
        for (k, o) in aig.outputs().iter().enumerate().take(128) {
            let bit = self.values[o.lit.node().index()].get(p) ^ o.lit.is_complement();
            if bit {
                v |= 1 << k;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_aig::Aig;

    /// 2-bit adder: s = a + b (3 outputs).
    fn adder2() -> Aig {
        let mut aig = Aig::new("add2");
        let a = aig.add_inputs("a", 2);
        let b = aig.add_inputs("b", 2);
        let (s0, c0) = aig.half_adder(a[0], b[0]);
        let (s1, c1) = aig.full_adder(a[1], b[1], c0);
        aig.add_output(s0, "s0");
        aig.add_output(s1, "s1");
        aig.add_output(c1, "s2");
        aig
    }

    #[test]
    fn exhaustive_adder_matches_arithmetic() {
        let aig = adder2();
        // pad inputs to 6 with unused inputs
        let mut padded = adder2();
        padded.add_inputs("pad", 2);
        let patterns = PatternSet::exhaustive(6);
        let sim = Simulator::new(&padded, &patterns);
        for p in 0..64 {
            let bits = patterns.pattern(p);
            let a = bits[0] as u32 | (bits[1] as u32) << 1;
            let b = bits[2] as u32 | (bits[3] as u32) << 1;
            assert_eq!(sim.output_word(&padded, p) as u32, a + b, "pattern {p}");
        }
        let _ = aig;
    }

    #[test]
    fn lit_value_applies_complement() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        aig.add_output(!a, "o");
        let patterns = PatternSet::random(1, 4, 1);
        let sim = Simulator::new(&aig, &patterns);
        let v = sim.lit_value(a);
        let nv = sim.lit_value(!a);
        assert_eq!(v.not(), nv);
        assert_eq!(sim.output_value(&aig, 0), nv);
    }

    #[test]
    fn resimulate_after_replace_matches_full_resim() {
        use als_aig::edit::replace;
        let mut aig = Aig::new("r");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g1 = aig.and(a, b);
        let g2 = aig.and(g1, c);
        let g3 = aig.and(g2, !a);
        aig.add_output(g3, "o");
        aig.add_output(g2, "o1");
        let patterns = PatternSet::random(3, 8, 3);
        let mut sim = Simulator::new(&aig, &patterns);

        // replace g1 by input a
        let rec = replace(&mut aig, g1.node(), a);
        sim.resimulate_fanout_cone(&aig, &[rec.replacement.node()]);

        let fresh = Simulator::new(&aig, &patterns);
        for id in aig.iter_live() {
            assert_eq!(sim.value(id), fresh.value(id), "node {id}");
        }
    }

    #[test]
    fn constant_node_is_zero() {
        let mut aig = Aig::new("k");
        let a = aig.add_input("a");
        aig.add_output(a, "o");
        let sim = Simulator::new(&aig, &PatternSet::random(1, 2, 0));
        assert!(sim.value(NodeId::CONST0).is_zero());
    }
}
