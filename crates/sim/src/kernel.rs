//! Fixed-width chunked word kernels behind a runtime SIMD toggle.
//!
//! Every bitwise operation on packed simulation words funnels through this
//! module. Each kernel exists in two semantically identical forms:
//!
//! * `*_scalar` — the straightforward one-word-at-a-time loop, always
//!   compiled in and used as the A/B reference,
//! * `*_chunked` — the same loop restructured over [`CHUNK`]-word blocks so
//!   the autovectorizer emits SIMD stores, with a stable `std::arch` AVX2
//!   body on x86_64 when the CPU supports it (no nightly features).
//!
//! The public un-suffixed functions dispatch on [`simd_enabled`], which
//! reads the `ALS_SIMD` environment variable once per process (`"0"` forces
//! the scalar path; anything else, or unset, selects the chunked path).
//! All kernels are pure integer bit operations, so the two forms are
//! exactly equal — not merely close — and the dispatch can never change a
//! result bit. The A/B tests in this module and the `ALS_SIMD={0,1}` CI
//! matrix assert this.

use std::sync::OnceLock;

/// Words per chunk in the autovectorization-friendly loops (256 bits — one
/// AVX2 register, two SSE2/NEON registers).
pub const CHUNK: usize = 4;

/// Whether the chunked kernels are selected for this process. Reads
/// `ALS_SIMD` once: `"0"` forces the scalar reference path, anything else
/// (or unset) enables the chunked path. Cached, so per-test toggling is
/// impossible by design — A/B tests call the suffixed variants directly.
pub fn simd_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("ALS_SIMD").map_or(true, |v| v != "0"))
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Mask selecting the valid lanes of the *last* word of a vector holding
/// `num_bits` bits: all-ones when `num_bits` is a multiple of 64, otherwise
/// ones in the low `num_bits % 64` lanes. The tail lanes above `num_bits`
/// are where garbage leaks from complemented edges (`!x` sets them) unless
/// masked at the pattern-set and error-state boundaries.
#[inline]
pub fn tail_mask(num_bits: usize) -> u64 {
    match num_bits % 64 {
        0 => !0,
        r => (1u64 << r) - 1,
    }
}

// ---------------------------------------------------------------------------
// Binary assign kernels: dst[i] op= src[i]

macro_rules! binary_kernel {
    ($name:ident, $scalar:ident, $chunked:ident, $avx2:ident, $op:tt, $doc:literal) => {
        #[doc = $doc]
        #[doc = " Dispatches on [`simd_enabled`]; both paths are exact."]
        #[inline]
        pub fn $name(dst: &mut [u64], src: &[u64]) {
            if simd_enabled() {
                $chunked(dst, src);
            } else {
                $scalar(dst, src);
            }
        }

        #[doc = $doc]
        #[doc = " Scalar reference loop."]
        pub fn $scalar(dst: &mut [u64], src: &[u64]) {
            assert_eq!(dst.len(), src.len());
            for (a, b) in dst.iter_mut().zip(src) {
                *a $op b;
            }
        }

        #[doc = $doc]
        #[doc = " Chunked loop (AVX2 on x86_64 when available)."]
        pub fn $chunked(dst: &mut [u64], src: &[u64]) {
            assert_eq!(dst.len(), src.len());
            #[cfg(target_arch = "x86_64")]
            if avx2_available() {
                // SAFETY: guarded by the runtime AVX2 check above.
                unsafe { avx2::$avx2(dst, src) };
                return;
            }
            let mut d = dst.chunks_exact_mut(CHUNK);
            let mut s = src.chunks_exact(CHUNK);
            for (dc, sc) in (&mut d).zip(&mut s) {
                for i in 0..CHUNK {
                    dc[i] $op sc[i];
                }
            }
            for (a, b) in d.into_remainder().iter_mut().zip(s.remainder()) {
                *a $op b;
            }
        }
    };
}

binary_kernel!(xor_assign, xor_assign_scalar, xor_assign_chunked, xor_assign_avx2, ^=,
    "`dst[i] ^= src[i]` over equal-length word slices.");
binary_kernel!(and_assign, and_assign_scalar, and_assign_chunked, and_assign_avx2, &=,
    "`dst[i] &= src[i]` over equal-length word slices.");
binary_kernel!(or_assign, or_assign_scalar, or_assign_chunked, or_assign_avx2, |=,
    "`dst[i] |= src[i]` over equal-length word slices.");

// ---------------------------------------------------------------------------
// Unary complement: dst[i] = !dst[i]

/// `dst[i] = !dst[i]`. Dispatches on [`simd_enabled`]; both paths are exact.
#[inline]
pub fn not_assign(dst: &mut [u64]) {
    if simd_enabled() {
        not_assign_chunked(dst);
    } else {
        not_assign_scalar(dst);
    }
}

/// `dst[i] = !dst[i]`. Scalar reference loop.
pub fn not_assign_scalar(dst: &mut [u64]) {
    for w in dst {
        *w = !*w;
    }
}

/// `dst[i] = !dst[i]`. Chunked loop.
pub fn not_assign_chunked(dst: &mut [u64]) {
    let mut d = dst.chunks_exact_mut(CHUNK);
    for dc in &mut d {
        for w in dc {
            *w = !*w;
        }
    }
    for w in d.into_remainder() {
        *w = !*w;
    }
}

// ---------------------------------------------------------------------------
// Fused masked AND2: dst[i] = (a[i] ^ m0) & (b[i] ^ m1)
//
// The AIG simulation kernel: one AND node over two fanins whose edge
// complements are expressed as whole-word XOR masks (0 or !0).

/// `dst[i] = (a[i] ^ m0) & (b[i] ^ m1)`. Dispatches on [`simd_enabled`];
/// both paths are exact.
#[inline]
pub fn and2_masked(dst: &mut [u64], a: &[u64], b: &[u64], m0: u64, m1: u64) {
    if simd_enabled() {
        and2_masked_chunked(dst, a, b, m0, m1);
    } else {
        and2_masked_scalar(dst, a, b, m0, m1);
    }
}

/// `dst[i] = (a[i] ^ m0) & (b[i] ^ m1)`. Scalar reference loop.
pub fn and2_masked_scalar(dst: &mut [u64], a: &[u64], b: &[u64], m0: u64, m1: u64) {
    assert!(a.len() == dst.len() && b.len() == dst.len());
    for i in 0..dst.len() {
        dst[i] = (a[i] ^ m0) & (b[i] ^ m1);
    }
}

/// `dst[i] = (a[i] ^ m0) & (b[i] ^ m1)`. Chunked loop (AVX2 on x86_64
/// when available).
pub fn and2_masked_chunked(dst: &mut [u64], a: &[u64], b: &[u64], m0: u64, m1: u64) {
    assert!(a.len() == dst.len() && b.len() == dst.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: guarded by the runtime AVX2 check above.
        unsafe { avx2::and2_masked_avx2(dst, a, b, m0, m1) };
        return;
    }
    let mut d = dst.chunks_exact_mut(CHUNK);
    let mut ac = a.chunks_exact(CHUNK);
    let mut bc = b.chunks_exact(CHUNK);
    for ((dc, av), bv) in (&mut d).zip(&mut ac).zip(&mut bc) {
        for i in 0..CHUNK {
            dc[i] = (av[i] ^ m0) & (bv[i] ^ m1);
        }
    }
    let (dr, ar, br) = (d.into_remainder(), ac.remainder(), bc.remainder());
    for i in 0..dr.len() {
        dr[i] = (ar[i] ^ m0) & (br[i] ^ m1);
    }
}

// ---------------------------------------------------------------------------
// Stable std::arch AVX2 bodies (x86_64 only, runtime-detected).

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    macro_rules! avx2_binary {
        ($name:ident, $intr:ident, $op:tt) => {
            /// # Safety
            /// The caller must have verified AVX2 support at runtime.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(dst: &mut [u64], src: &[u64]) {
                let n = dst.len();
                let mut i = 0;
                while i + 4 <= n {
                    let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
                    let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
                    let r = $intr(d, s);
                    _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, r);
                    i += 4;
                }
                while i < n {
                    dst[i] $op src[i];
                    i += 1;
                }
            }
        };
    }

    avx2_binary!(xor_assign_avx2, _mm256_xor_si256, ^=);
    avx2_binary!(and_assign_avx2, _mm256_and_si256, &=);
    avx2_binary!(or_assign_avx2, _mm256_or_si256, |=);

    /// # Safety
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and2_masked_avx2(dst: &mut [u64], a: &[u64], b: &[u64], m0: u64, m1: u64) {
        let n = dst.len();
        let vm0 = _mm256_set1_epi64x(m0 as i64);
        let vm1 = _mm256_set1_epi64x(m1 as i64);
        let mut i = 0;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            let r = _mm256_and_si256(_mm256_xor_si256(va, vm0), _mm256_xor_si256(vb, vm1));
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, r);
            i += 4;
        }
        while i < n {
            dst[i] = (a[i] ^ m0) & (b[i] ^ m1);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64, len: usize) -> Vec<u64> {
        // splitmix64: deterministic, fills every lane pattern class
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn chunked_binary_ops_equal_scalar_at_all_lengths() {
        for len in [0, 1, 3, 4, 5, 7, 8, 13, 64, 65] {
            type BinOp = for<'a, 'b> fn(&'a mut [u64], &'b [u64]);
            let src = words(7, len);
            for (scalar, chunked) in [
                (xor_assign_scalar as BinOp, xor_assign_chunked as BinOp),
                (and_assign_scalar as BinOp, and_assign_chunked as BinOp),
                (or_assign_scalar as BinOp, or_assign_chunked as BinOp),
            ] {
                let mut a = words(11, len);
                let mut b = a.clone();
                scalar(&mut a, &src);
                chunked(&mut b, &src);
                assert_eq!(a, b, "len {len}");
            }
            let mut a = words(13, len);
            let mut b = a.clone();
            not_assign_scalar(&mut a);
            not_assign_chunked(&mut b);
            assert_eq!(a, b, "not, len {len}");
        }
    }

    #[test]
    fn chunked_and2_masked_equals_scalar_at_all_lengths() {
        for len in [0, 1, 3, 4, 5, 7, 8, 13, 64, 65] {
            let a = words(3, len);
            let b = words(5, len);
            for (m0, m1) in [(0, 0), (!0, 0), (0, !0), (!0, !0)] {
                let mut d0 = vec![0u64; len];
                let mut d1 = vec![0u64; len];
                and2_masked_scalar(&mut d0, &a, &b, m0, m1);
                and2_masked_chunked(&mut d1, &a, &b, m0, m1);
                assert_eq!(d0, d1, "len {len}, masks ({m0:x}, {m1:x})");
            }
        }
    }

    #[test]
    fn tail_mask_covers_all_residues() {
        assert_eq!(tail_mask(64), !0);
        assert_eq!(tail_mask(128), !0);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(65), 1);
        assert_eq!(tail_mask(63), (1u64 << 63) - 1);
        assert_eq!(tail_mask(100), (1u64 << 36) - 1);
    }
}
