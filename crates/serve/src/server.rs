//! The `als serve` daemon: a TCP job service wrapping the synthesis
//! engine.
//!
//! # Architecture
//!
//! One accept thread hands each connection to a short-lived handler
//! thread speaking the line protocol of [`crate::api`]; a fixed fleet of
//! runner threads drains the [`JobQueue`]. Every job gets its own state
//! directory under `<state>/jobs/<id>/`:
//!
//! ```text
//! spec.json     the submitted JobSpec (plus the assigned id)
//! state.json    current lifecycle state (atomically replaced)
//! input.aag     the circuit, as submitted
//! run.alsj      the engine's crash-safe journal (journaling flows only)
//! trace.jsonl   the run's span event stream
//! metrics.prom  the run's Prometheus dump (written at run end)
//! result.json   the shared FlowResult document (completed jobs)
//! result.aag    the approximate circuit (completed jobs)
//! ```
//!
//! # Crash recovery and graceful drain
//!
//! The daemon never trusts its memory: every state transition is
//! persisted before it is announced. On startup the jobs directory is
//! scanned and every non-terminal job is re-enqueued — jobs that were
//! *running* when the previous daemon died resume from their sealed
//! journal (`run.alsj`), which the engine replays to a byte-identical
//! continuation. A graceful shutdown (SIGTERM in the CLI) closes the
//! queue, cancels every running job's token — the engine seals each
//! journal with a preempt record — and persists those jobs as
//! `preempted`, so the next start picks them up exactly where they
//! stopped.
//!
//! # Observability
//!
//! Each run writes its own trace/metrics files through a per-job
//! [`Obs`]; a [`SpanListener`] on that handle fans every rendered event
//! line out to `watch` subscribers, so a watching client receives *the
//! same bytes* the trace file records. The daemon additionally keeps a
//! service-level metrics registry (jobs submitted/completed/failed,
//! queue depth, ...) exposed in Prometheus text form at `GET /metrics`
//! (plain HTTP on the same port — the handler sniffs the first bytes of
//! each connection), with a liveness probe at `GET /healthz`.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use als_aig::Aig;
use als_engine::{by_name, CancelToken, FlowConfig, StopReason};
use als_obs::json::Json;
use als_obs::{Obs, ObsConfig, SpanListener};

use crate::api::{
    err_response, ok_response, watch_end, CircuitSource, ErrorBody, JobSpec, JobState, JobStatus,
    Request,
};
use crate::queue::{JobQueue, QueueConfig, QueuedJob};

/// How the daemon is wired up.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Root of the persistent state (job directories live under
    /// `<state_dir>/jobs/`). Created if missing.
    pub state_dir: PathBuf,
    /// Bind address; use port 0 to let the OS pick (the bound address is
    /// available from [`Daemon::addr`]).
    pub addr: String,
    /// Runner threads — the number of jobs that execute concurrently.
    pub runners: usize,
    /// Queue capacity and per-tenant admission limits.
    pub queue: QueueConfig,
}

impl DaemonConfig {
    /// A daemon rooted at `state_dir` on an OS-assigned loopback port
    /// with the default queue limits and 8 runners.
    pub fn new(state_dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            state_dir: state_dir.into(),
            addr: "127.0.0.1:0".to_string(),
            runners: 8,
            queue: QueueConfig::default(),
        }
    }
}

/// Service-level metrics, all registered on the daemon's own [`Obs`].
struct ServiceMetrics {
    obs: Obs,
    submitted: als_obs::Counter,
    rejected: als_obs::Counter,
    completed: als_obs::Counter,
    failed: als_obs::Counter,
    cancelled: als_obs::Counter,
    preempted: als_obs::Counter,
    resumed: als_obs::Counter,
    queue_depth: als_obs::Gauge,
    running: als_obs::Gauge,
}

impl ServiceMetrics {
    fn new() -> std::io::Result<ServiceMetrics> {
        // No file sinks: this handle exists for its registry, rendered
        // live on every GET /metrics.
        let obs = Obs::new(ObsConfig::default())?;
        Ok(ServiceMetrics {
            submitted: obs.counter("als_serve_jobs_submitted_total", "Jobs admitted to the queue"),
            rejected: obs.counter(
                "als_serve_jobs_rejected_total",
                "Submissions refused by admission control",
            ),
            completed: obs.counter("als_serve_jobs_completed_total", "Jobs finished within bound"),
            failed: obs
                .counter("als_serve_jobs_failed_total", "Jobs that ended in an engine error"),
            cancelled: obs.counter("als_serve_jobs_cancelled_total", "Jobs cancelled by a client"),
            preempted: obs
                .counter("als_serve_jobs_preempted_total", "Jobs preempted by a daemon drain"),
            resumed: obs
                .counter("als_serve_jobs_resumed_total", "Recovered jobs resumed from a journal"),
            queue_depth: obs.gauge("als_serve_queue_depth", "Jobs waiting in the queue"),
            running: obs.gauge("als_serve_jobs_running", "Jobs currently executing"),
            obs,
        })
    }
}

/// Message fanned out to `watch` subscribers.
enum WatchMsg {
    /// One rendered span-event line (the JSONL trace bytes).
    Line(String),
    /// The job reached `state`; the stream ends.
    End(JobState),
}

/// Everything the daemon knows about one job.
struct JobEntry {
    id: String,
    spec: JobSpec,
    dir: PathBuf,
    state: Mutex<JobState>,
    /// Cancelling stops the run at its next supervision check.
    cancel: CancelToken,
    /// Set when the *client* asked for the cancellation (as opposed to a
    /// daemon drain, which preempts for later resumption).
    cancel_requested: AtomicBool,
    /// Every span line produced so far, for replay to late watchers.
    events: Mutex<Vec<String>>,
    watchers: Mutex<Vec<mpsc::Sender<WatchMsg>>>,
    result: Mutex<Option<Json>>,
    error: Mutex<Option<ErrorBody>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl JobEntry {
    fn status(&self) -> JobStatus {
        JobStatus {
            id: self.id.clone(),
            tenant: self.spec.tenant.clone(),
            state: *lock(&self.state),
            flow: self.spec.flow,
            result: lock(&self.result).clone(),
            error: lock(&self.error).clone(),
        }
    }

    /// Persists `state.json`; atomically, so a crash between write and
    /// rename leaves the previous state intact.
    fn persist_state(&self) -> std::io::Result<()> {
        let j = Json::obj()
            .with("state", lock(&self.state).token())
            .with("error", lock(&self.error).as_ref().map(ErrorBody::to_json));
        write_atomic(&self.dir.join("state.json"), j.render().as_bytes())
    }

    fn set_state(&self, state: JobState) {
        *lock(&self.state) = state;
        let _ = self.persist_state();
    }

    /// Appends a span line and fans it out to live watchers.
    fn publish(&self, line: &str) {
        lock(&self.events).push(line.to_string());
        lock(&self.watchers).retain(|w| w.send(WatchMsg::Line(line.to_string())).is_ok());
    }

    /// Ends every watch stream with the job's final (or drained) state.
    fn end_watches(&self, state: JobState) {
        for w in lock(&self.watchers).drain(..) {
            let _ = w.send(WatchMsg::End(state));
        }
    }

    /// Registers a watcher and returns the receiver plus a replay of
    /// everything that already happened. Registration happens under the
    /// events lock, so no line can fall between the replay and the live
    /// stream.
    fn subscribe(&self) -> (Vec<String>, mpsc::Receiver<WatchMsg>) {
        let events = lock(&self.events);
        let replay = events.clone();
        let (tx, rx) = mpsc::channel();
        let state = *lock(&self.state);
        if state.is_terminal() {
            let _ = tx.send(WatchMsg::End(state));
        } else {
            lock(&self.watchers).push(tx);
        }
        drop(events);
        (replay, rx)
    }
}

type Registry = Arc<Mutex<BTreeMap<String, Arc<JobEntry>>>>;

/// The running daemon. Dropping it without [`Daemon::shutdown`] aborts
/// ungracefully (threads are detached); call `shutdown` to drain.
pub struct Daemon {
    addr: SocketAddr,
    cfg: DaemonConfig,
    queue: Arc<JobQueue>,
    registry: Registry,
    metrics: Arc<ServiceMetrics>,
    stop: CancelToken,
    threads: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Daemon {
    /// Creates the state directory, recovers persisted jobs, binds the
    /// listener and starts the runner fleet.
    pub fn start(cfg: DaemonConfig) -> std::io::Result<Daemon> {
        let jobs_dir = cfg.state_dir.join("jobs");
        std::fs::create_dir_all(&jobs_dir)?;
        let queue = Arc::new(JobQueue::new(cfg.queue.clone()));
        let registry: Registry = Arc::new(Mutex::new(BTreeMap::new()));
        let metrics = Arc::new(ServiceMetrics::new()?);
        let stop = CancelToken::new();

        let max_recovered = recover(&jobs_dir, &registry, &queue, &metrics)?;
        let next_id = Arc::new(Mutex::new(max_recovered + 1));

        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();

        // Runner fleet.
        for i in 0..cfg.runners.max(1) {
            let queue = queue.clone();
            let registry = registry.clone();
            let metrics = metrics.clone();
            let stop = stop.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("als-runner-{i}"))
                    .spawn(move || runner_loop(&queue, &registry, &metrics, &stop))?,
            );
        }

        // Accept loop.
        {
            let queue = queue.clone();
            let registry = registry.clone();
            let metrics = metrics.clone();
            let stop = stop.clone();
            let conn_threads = conn_threads.clone();
            let next_id = next_id.clone();
            let jobs_dir = jobs_dir.clone();
            threads.push(std::thread::Builder::new().name("als-accept".into()).spawn(
                move || {
                    while !stop.is_cancelled() {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                let ctx = ConnCtx {
                                    queue: queue.clone(),
                                    registry: registry.clone(),
                                    metrics: metrics.clone(),
                                    stop: stop.clone(),
                                    next_id: next_id.clone(),
                                    jobs_dir: jobs_dir.clone(),
                                };
                                let handle = std::thread::spawn(move || {
                                    let _ = handle_connection(stream, &ctx);
                                });
                                lock(&conn_threads).push(handle);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(20));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(20)),
                        }
                    }
                },
            )?);
        }

        Ok(Daemon { addr, cfg, queue, registry, metrics, stop, threads, conn_threads })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's root state directory.
    pub fn state_dir(&self) -> &Path {
        &self.cfg.state_dir
    }

    /// Current status of every known job, submission order.
    pub fn jobs(&self) -> Vec<JobStatus> {
        lock(&self.registry).values().map(|e| e.status()).collect()
    }

    /// The service-level Prometheus exposition (what `GET /metrics`
    /// serves).
    pub fn metrics_text(&self) -> String {
        self.metrics.queue_depth.set(self.queue.depth() as u64);
        self.metrics.running.set(self.queue.running() as u64);
        self.metrics.obs.prometheus_text()
    }

    /// Drains gracefully: stops admitting, cancels running jobs (their
    /// journals seal with a preempt record and the jobs persist as
    /// `preempted`), waits for every thread, and returns. A subsequent
    /// [`Daemon::start`] on the same state directory resumes the
    /// preempted jobs.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.queue.close();
        self.stop.cancel();
        // Cancel every non-terminal job; runners observe the token at the
        // next supervision check and seal their journals.
        for entry in lock(&self.registry).values() {
            if !lock(&entry.state).is_terminal() {
                entry.cancel.cancel();
            }
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        for t in lock(&self.conn_threads).drain(..) {
            let _ = t.join();
        }
        // Runners are quiesced: anything still queued (never popped)
        // stays `queued` on disk and is re-admitted on the next start.
        Ok(())
    }
}

/// Scans the jobs directory, loads every persisted job into the registry
/// and re-enqueues the non-terminal ones. Returns the highest recovered
/// numeric job id.
fn recover(
    jobs_dir: &Path,
    registry: &Registry,
    queue: &Arc<JobQueue>,
    metrics: &Arc<ServiceMetrics>,
) -> std::io::Result<u64> {
    let mut max_id = 0u64;
    let mut recovered: Vec<Arc<JobEntry>> = Vec::new();
    if jobs_dir.is_dir() {
        for dent in std::fs::read_dir(jobs_dir)? {
            let dir = dent?.path();
            if !dir.is_dir() {
                continue;
            }
            let Some(entry) = load_job(&dir) else { continue };
            if let Some(n) = entry.id.strip_prefix("j-").and_then(|s| s.parse::<u64>().ok()) {
                max_id = max_id.max(n);
            }
            recovered.push(entry);
        }
    }
    // Submission order == id order; re-enqueue in that order so recovery
    // preserves FIFO fairness within each priority class.
    recovered.sort_by(|a, b| a.id.cmp(&b.id));
    for entry in recovered {
        let state = *lock(&entry.state);
        if !state.is_terminal() {
            let resume = entry.spec.flow.supports_journal() && entry.dir.join("run.alsj").is_file();
            if resume {
                metrics.resumed.inc();
            }
            entry.set_state(JobState::Queued);
            let job = QueuedJob { id: entry.id.clone(), spec: entry.spec.clone(), resume };
            // Recovery happens before the queue has any clients; the only
            // way this fails is a recovered backlog beyond capacity, in
            // which case the job stays `queued` on disk for a later
            // daemon with more room.
            let _ = queue.push(job);
        }
        lock(registry).insert(entry.id.clone(), entry);
    }
    Ok(max_id)
}

/// Loads one persisted job directory; `None` when it is unreadable or
/// incomplete (a submit that crashed before `spec.json` landed).
fn load_job(dir: &Path) -> Option<Arc<JobEntry>> {
    let spec_doc =
        als_obs::json::parse(&std::fs::read_to_string(dir.join("spec.json")).ok()?).ok()?;
    let id = spec_doc.get("id")?.as_str()?.to_string();
    let spec = JobSpec::from_json(spec_doc.get("spec")?).ok()?;
    let (state, error) = match std::fs::read_to_string(dir.join("state.json")) {
        Ok(text) => {
            let v = als_obs::json::parse(&text).ok()?;
            let state = v
                .get("state")
                .and_then(Json::as_str)
                .and_then(JobState::from_token)
                .unwrap_or(JobState::Queued);
            let error = v.get("error").filter(|e| !e.is_null()).and_then(ErrorBody::from_json);
            (state, error)
        }
        Err(_) => (JobState::Queued, None),
    };
    let result = std::fs::read_to_string(dir.join("result.json"))
        .ok()
        .and_then(|t| als_obs::json::parse(&t).ok());
    Some(Arc::new(JobEntry {
        id,
        spec,
        dir: dir.to_path_buf(),
        state: Mutex::new(state),
        cancel: CancelToken::new(),
        cancel_requested: AtomicBool::new(false),
        events: Mutex::new(Vec::new()),
        watchers: Mutex::new(Vec::new()),
        result: Mutex::new(result),
        error: Mutex::new(error),
    }))
}

/// Atomically replaces `path` (write to a sibling temp file, rename).
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------
// Runners
// ---------------------------------------------------------------------

fn runner_loop(
    queue: &Arc<JobQueue>,
    registry: &Registry,
    metrics: &Arc<ServiceMetrics>,
    stop: &CancelToken,
) {
    loop {
        match queue.pop(Duration::from_millis(200)) {
            Some(job) => {
                let entry = lock(registry).get(&job.id).cloned();
                if let Some(entry) = entry {
                    run_job(&entry, job.resume, metrics);
                }
                queue.finished(&job.spec.tenant);
            }
            None => {
                if stop.is_cancelled() {
                    return;
                }
            }
        }
    }
}

/// Builds the circuit a spec names. The benchmark name was validated at
/// submit time, but the registry may still reject (e.g. state recovered
/// from a newer daemon), so this guards rather than panics.
fn build_circuit(spec: &JobSpec, dir: &Path) -> Result<Aig, ErrorBody> {
    match &spec.circuit {
        CircuitSource::Benchmark { name, scale } => {
            if !als_circuits::benchmark_names().contains(&name.as_str()) {
                return Err(ErrorBody::new(
                    "unknown_benchmark",
                    format!("unknown benchmark {name:?}"),
                ));
            }
            Ok(als_circuits::benchmark(name, *scale))
        }
        CircuitSource::Aiger { .. } => {
            let text = std::fs::read_to_string(dir.join("input.aag"))
                .map_err(|e| ErrorBody::new("io", format!("reading input.aag: {e}")))?;
            als_aig::io::from_ascii_str(&text, "input")
                .map_err(|e| ErrorBody::new("bad_aiger", format!("{e}")))
        }
    }
}

/// Derives the engine configuration from a spec. `attach_run_state`
/// additionally wires in the per-job observability and journal — submit
/// validation calls this with it off to keep validation side-effect-free.
fn flow_config(
    spec: &JobSpec,
    dir: &Path,
    resume: bool,
    cancel: CancelToken,
    listener: Option<SpanListener>,
) -> Result<FlowConfig, ErrorBody> {
    let mut cfg = FlowConfig::new(spec.metric, spec.error_bound);
    if let Some(p) = spec.patterns {
        cfg = cfg.with_patterns(p);
    }
    if let Some(s) = spec.seed {
        cfg = cfg.with_seed(s);
    }
    cfg = cfg.with_threads(spec.threads.unwrap_or(1));
    if let Some(m) = spec.max_iters {
        cfg = cfg.with_max_iters(m);
    }
    if let Some(ms) = spec.deadline_ms {
        cfg = cfg.with_timeout(Duration::from_millis(ms));
    }
    cfg = cfg.with_cancel_token(cancel);
    if let Some(listener) = listener {
        let obs = Obs::with_listener(
            ObsConfig {
                trace: Some(dir.join("trace.jsonl")),
                metrics: Some(dir.join("metrics.prom")),
                tree: false,
            },
            Some(listener),
        )
        .map_err(|e| ErrorBody::new("io", format!("creating trace sink: {e}")))?;
        cfg = cfg.with_obs(obs);
    }
    if spec.flow.supports_journal() {
        let journal = dir.join("run.alsj");
        cfg = if resume { cfg.with_resume(&journal) } else { cfg.with_journal(&journal) };
    }
    cfg.validate().map_err(|e| ErrorBody::new(e.code(), e.to_string()))?;
    Ok(cfg)
}

/// Executes one job end to end: state transitions, run, persistence,
/// watcher notification.
fn run_job(entry: &Arc<JobEntry>, resume: bool, metrics: &Arc<ServiceMetrics>) {
    entry.set_state(JobState::Running);
    let publisher = entry.clone();
    let listener: SpanListener = Arc::new(move |line: &str| publisher.publish(line));
    let outcome = build_circuit(&entry.spec, &entry.dir).and_then(|aig| {
        let cfg =
            flow_config(&entry.spec, &entry.dir, resume, entry.cancel.clone(), Some(listener))?;
        let obs = cfg.obs.clone();
        let run = by_name(entry.spec.flow, cfg)
            .and_then(|flow| flow.run(&aig))
            .map_err(|e| ErrorBody::new("engine", e.to_string()));
        let _ = obs.finish();
        run
    });
    let final_state = match outcome {
        Ok(result) => {
            if result.stop == StopReason::Cancelled {
                if entry.cancel_requested.load(Ordering::SeqCst) {
                    metrics.cancelled.inc();
                    JobState::Cancelled
                } else {
                    // A drain preemption: the journal is sealed; the next
                    // daemon start resumes it.
                    metrics.preempted.inc();
                    JobState::Preempted
                }
            } else {
                let doc = result.to_json();
                let _ = write_atomic(&entry.dir.join("result.json"), doc.render().as_bytes());
                let _ = write_atomic(
                    &entry.dir.join("result.aag"),
                    als_aig::io::to_ascii_string(&result.circuit).as_bytes(),
                );
                *lock(&entry.result) = Some(doc);
                metrics.completed.inc();
                JobState::Completed
            }
        }
        Err(err) => {
            // A cancellation can surface as an engine error if it lands
            // outside a supervised section; classify it like a trip.
            if entry.cancel.is_cancelled() && !entry.cancel_requested.load(Ordering::SeqCst) {
                metrics.preempted.inc();
                JobState::Preempted
            } else if entry.cancel_requested.load(Ordering::SeqCst) {
                metrics.cancelled.inc();
                JobState::Cancelled
            } else {
                *lock(&entry.error) = Some(err);
                metrics.failed.inc();
                JobState::Failed
            }
        }
    };
    entry.set_state(final_state);
    entry.end_watches(final_state);
}

// ---------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------

struct ConnCtx {
    queue: Arc<JobQueue>,
    registry: Registry,
    metrics: Arc<ServiceMetrics>,
    stop: CancelToken,
    next_id: Arc<Mutex<u64>>,
    jobs_dir: PathBuf,
}

fn handle_connection(stream: TcpStream, ctx: &ConnCtx) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    // Sniff the transport: a plain-HTTP probe starts with a method verb,
    // the native protocol with `{`.
    let first = loop {
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if ctx.stop.is_cancelled() {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok(()); // closed without a byte
        }
        break buf[0];
    };
    if first != b'{' {
        return handle_http(reader, stream, ctx);
    }
    line_protocol(reader, stream, ctx)
}

/// Minimal HTTP/1.1 for the two operational endpoints.
fn handle_http(
    mut reader: BufReader<TcpStream>,
    mut stream: TcpStream,
    ctx: &ConnCtx,
) -> std::io::Result<()> {
    let request_line = read_line_blocking(&mut reader, &ctx.stop)?.unwrap_or_default();
    // Drain headers until the blank line; their content is irrelevant.
    while let Some(line) = read_line_blocking(&mut reader, &ctx.stop)? {
        if line.is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = match (method, path) {
        ("GET", "/healthz") => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        ("GET", "/metrics") => {
            ctx.metrics.queue_depth.set(ctx.queue.depth() as u64);
            ctx.metrics.running.set(ctx.queue.running() as u64);
            ("200 OK", "text/plain; version=0.0.4", ctx.metrics.obs.prometheus_text())
        }
        ("GET", _) => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
        _ => ("405 Method Not Allowed", "text/plain; charset=utf-8", "line-JSON or GET\n".into()),
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Reads one `\n`-terminated line, tolerating the read timeout so the
/// daemon's stop token stays responsive. `None` on a clean EOF.
fn read_line_blocking(
    reader: &mut BufReader<TcpStream>,
    stop: &CancelToken,
) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => {
                return Ok(if line.is_empty() { None } else { Some(trim_newline(line)) });
            }
            Ok(_) => {
                if line.ends_with('\n') {
                    return Ok(Some(trim_newline(line)));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.is_cancelled() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn trim_newline(mut line: String) -> String {
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    line
}

fn line_protocol(
    mut reader: BufReader<TcpStream>,
    mut stream: TcpStream,
    ctx: &ConnCtx,
) -> std::io::Result<()> {
    while let Some(line) = read_line_blocking(&mut reader, &ctx.stop)? {
        if line.is_empty() {
            continue;
        }
        let reply = match Request::parse(&line) {
            Err(e) => err_response(&e),
            Ok(Request::Submit(spec)) => match submit(spec, ctx) {
                Ok(id) => ok_response(Json::obj().with("id", id.as_str())),
                Err(e) => {
                    ctx.metrics.rejected.inc();
                    err_response(&e)
                }
            },
            Ok(Request::Status(id)) => match lock(&ctx.registry).get(&id) {
                Some(entry) => ok_response(Json::obj().with("status", entry.status().to_json())),
                None => err_response(&ErrorBody::new("not_found", format!("no job {id:?}"))),
            },
            Ok(Request::List) => {
                let jobs: Vec<Json> =
                    lock(&ctx.registry).values().map(|e| e.status().to_json()).collect();
                ok_response(Json::obj().with("jobs", jobs))
            }
            Ok(Request::Cancel(id)) => match cancel(&id, ctx) {
                Ok(state) => ok_response(Json::obj().with("state", state.token())),
                Err(e) => err_response(&e),
            },
            Ok(Request::Watch(id)) => {
                let entry = lock(&ctx.registry).get(&id).cloned();
                match entry {
                    None => err_response(&ErrorBody::new("not_found", format!("no job {id:?}"))),
                    Some(entry) => {
                        writeln!(
                            stream,
                            "{}",
                            ok_response(Json::obj().with("watching", id.as_str()))
                        )?;
                        stream_watch(&mut stream, &entry, &ctx.stop)?;
                        continue;
                    }
                }
            }
        };
        writeln!(stream, "{reply}")?;
    }
    Ok(())
}

/// Replays and then follows a job's span events until it ends (or the
/// daemon drains, which ends the stream with the job's current state).
fn stream_watch(
    stream: &mut TcpStream,
    entry: &Arc<JobEntry>,
    stop: &CancelToken,
) -> std::io::Result<()> {
    let (replay, rx) = entry.subscribe();
    for line in replay {
        writeln!(stream, "{line}")?;
    }
    loop {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(WatchMsg::Line(line)) => writeln!(stream, "{line}")?,
            Ok(WatchMsg::End(state)) => {
                writeln!(stream, "{}", watch_end(state))?;
                return Ok(());
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if stop.is_cancelled() {
                    writeln!(stream, "{}", watch_end(*lock(&entry.state)))?;
                    return Ok(());
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                writeln!(stream, "{}", watch_end(*lock(&entry.state)))?;
                return Ok(());
            }
        }
    }
}

/// Validates a submission end to end (spec, circuit, derived engine
/// config), persists the job directory and admits it to the queue.
fn submit(spec: JobSpec, ctx: &ConnCtx) -> Result<String, ErrorBody> {
    // Validate the circuit source before anything lands on disk.
    match &spec.circuit {
        CircuitSource::Benchmark { name, .. } => {
            if !als_circuits::benchmark_names().contains(&name.as_str()) {
                return Err(ErrorBody::new(
                    "unknown_benchmark",
                    format!(
                        "unknown benchmark {name:?} (expected one of: {})",
                        als_circuits::benchmark_names().join(", ")
                    ),
                ));
            }
        }
        CircuitSource::Aiger { text } => {
            als_aig::io::from_ascii_str(text, "input")
                .map_err(|e| ErrorBody::new("bad_aiger", format!("{e}")))?;
        }
    }
    // Validate the derived engine config without run-state side effects,
    // so contradictions come back on submit, not as a failed job.
    let probe_dir = ctx.jobs_dir.join(".probe");
    flow_config(&spec, &probe_dir, false, CancelToken::new(), None)?;

    let id = {
        let mut next = lock(&ctx.next_id);
        let id = format!("j-{:06}", *next);
        *next += 1;
        id
    };
    let dir = ctx.jobs_dir.join(&id);
    let io_err = |e: std::io::Error| ErrorBody::new("io", format!("persisting job: {e}"));
    std::fs::create_dir_all(&dir).map_err(io_err)?;
    if let CircuitSource::Aiger { text } = &spec.circuit {
        std::fs::write(dir.join("input.aag"), text).map_err(io_err)?;
    }
    let entry = Arc::new(JobEntry {
        id: id.clone(),
        spec: spec.clone(),
        dir: dir.clone(),
        state: Mutex::new(JobState::Queued),
        cancel: CancelToken::new(),
        cancel_requested: AtomicBool::new(false),
        events: Mutex::new(Vec::new()),
        watchers: Mutex::new(Vec::new()),
        result: Mutex::new(None),
        error: Mutex::new(None),
    });
    let spec_doc = Json::obj().with("id", id.as_str()).with("spec", spec.to_json());
    write_atomic(&dir.join("spec.json"), spec_doc.render().as_bytes()).map_err(io_err)?;
    entry.persist_state().map_err(io_err)?;
    // Registry before queue: a runner popping the job must find it.
    lock(&ctx.registry).insert(id.clone(), entry.clone());
    if let Err(e) = ctx.queue.push(QueuedJob { id: id.clone(), spec, resume: false }) {
        lock(&ctx.registry).remove(&id);
        let _ = std::fs::remove_dir_all(&dir);
        return Err(e);
    }
    ctx.metrics.submitted.inc();
    Ok(id)
}

/// Cancels a queued or running job; terminal jobs come back as a typed
/// conflict.
fn cancel(id: &str, ctx: &ConnCtx) -> Result<JobState, ErrorBody> {
    let entry = lock(&ctx.registry)
        .get(id)
        .cloned()
        .ok_or_else(|| ErrorBody::new("not_found", format!("no job {id:?}")))?;
    let state = *lock(&entry.state);
    if state.is_terminal() {
        return Err(ErrorBody::new("conflict", format!("job is already {}", state.token())));
    }
    entry.cancel_requested.store(true, Ordering::SeqCst);
    if ctx.queue.remove(id) {
        // Never ran: no runner will finalize it, so do it here.
        ctx.metrics.cancelled.inc();
        entry.set_state(JobState::Cancelled);
        entry.end_watches(JobState::Cancelled);
        return Ok(JobState::Cancelled);
    }
    // Running: the token trips the engine's next supervision check and
    // the runner finalizes to `cancelled`.
    entry.cancel.cancel();
    let state = *lock(&entry.state);
    Ok(state)
}
