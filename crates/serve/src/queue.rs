//! The daemon's bounded, priority-aware job queue with per-tenant
//! admission control.
//!
//! Admission is enforced at two points:
//!
//! * **push** — the queue has a global capacity and every tenant has a
//!   queued-job ceiling; a submit over either limit is rejected
//!   immediately with a typed error instead of blocking the socket.
//! * **pop** — a tenant also has a running-job ceiling. A runner asking
//!   for work skips jobs whose tenant is saturated, so one tenant
//!   flooding the queue cannot monopolise the runner fleet: jobs from
//!   other tenants overtake it the moment their tenant has headroom.
//!
//! Within one priority class jobs leave in submission order; a higher
//! class always leaves first (subject to tenant headroom). The queue is a
//! plain mutex + condvar — runner threads block in [`JobQueue::pop`] and
//! are woken by pushes, finished jobs (which free tenant headroom) and
//! [`JobQueue::close`].

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::api::{ErrorBody, JobSpec, Priority};

/// Per-tenant admission limits.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Jobs of this tenant that may execute concurrently.
    pub max_running: usize,
    /// Jobs of this tenant that may wait in the queue.
    pub max_queued: usize,
}

impl Default for TenantPolicy {
    fn default() -> TenantPolicy {
        TenantPolicy { max_running: 4, max_queued: 64 }
    }
}

/// Queue-wide configuration.
#[derive(Clone, Debug)]
pub struct QueueConfig {
    /// Total jobs (all tenants, all priorities) the queue holds.
    pub capacity: usize,
    /// Limits applied to tenants without an explicit entry.
    pub default_policy: TenantPolicy,
    /// Per-tenant overrides.
    pub tenants: BTreeMap<String, TenantPolicy>,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig {
            capacity: 256,
            default_policy: TenantPolicy::default(),
            tenants: BTreeMap::new(),
        }
    }
}

impl QueueConfig {
    /// The policy that applies to `tenant`.
    pub fn policy(&self, tenant: &str) -> TenantPolicy {
        self.tenants.get(tenant).copied().unwrap_or(self.default_policy)
    }
}

/// One queued unit of work.
#[derive(Clone, Debug)]
pub struct QueuedJob {
    /// Daemon-assigned job id.
    pub id: String,
    /// The validated spec.
    pub spec: JobSpec,
    /// Whether the runner should resume from the job's sealed journal
    /// (recovered preempted jobs) instead of starting fresh.
    pub resume: bool,
}

#[derive(Default)]
struct Inner {
    /// One FIFO per priority class, indexed by [`Priority::ALL`] order.
    lanes: [VecDeque<QueuedJob>; 3],
    /// Jobs currently queued, per tenant.
    queued: BTreeMap<String, usize>,
    /// Jobs currently running, per tenant.
    running: BTreeMap<String, usize>,
    closed: bool,
}

impl Inner {
    fn depth(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }
}

/// The bounded priority queue. See the module docs for the admission
/// rules.
pub struct JobQueue {
    cfg: QueueConfig,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl JobQueue {
    /// An empty queue with the given limits.
    pub fn new(cfg: QueueConfig) -> JobQueue {
        JobQueue { cfg, inner: Mutex::new(Inner::default()), cv: Condvar::new() }
    }

    /// Jobs currently waiting (all lanes).
    pub fn depth(&self) -> usize {
        self.lock().depth()
    }

    /// Jobs currently marked running (all tenants).
    pub fn running(&self) -> usize {
        self.lock().running.values().sum()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Admits a job or rejects it with a typed error (`"queue_full"` /
    /// `"tenant_queue_full"` / `"draining"`).
    pub fn push(&self, job: QueuedJob) -> Result<(), ErrorBody> {
        let mut g = self.lock();
        if g.closed {
            return Err(ErrorBody::new("draining", "the daemon is shutting down"));
        }
        if g.depth() >= self.cfg.capacity {
            return Err(ErrorBody::new(
                "queue_full",
                format!("the queue is at capacity ({})", self.cfg.capacity),
            ));
        }
        let tenant = job.spec.tenant.clone();
        let policy = self.cfg.policy(&tenant);
        let queued = g.queued.entry(tenant.clone()).or_insert(0);
        if *queued >= policy.max_queued {
            return Err(ErrorBody::new(
                "tenant_queue_full",
                format!("tenant {tenant:?} already has {queued} jobs queued"),
            ));
        }
        *queued += 1;
        let lane = Priority::ALL.iter().position(|p| *p == job.spec.priority).unwrap_or(1);
        g.lanes[lane].push_back(job);
        drop(g);
        self.cv.notify_all();
        Ok(())
    }

    /// Blocks until a job whose tenant has running headroom is available,
    /// marks it running and returns it. `None` once the queue is closed
    /// and nothing eligible remains, or transiently after `patience` with
    /// an empty (or fully saturated) queue — callers loop.
    pub fn pop(&self, patience: Duration) -> Option<QueuedJob> {
        let mut g = self.lock();
        loop {
            // Highest lane first; within a lane, submission order. A job
            // whose tenant is saturated is skipped, not dequeued — it
            // keeps its position for when headroom frees up.
            for lane in 0..g.lanes.len() {
                let eligible = g.lanes[lane].iter().position(|job| {
                    let running = g.running.get(&job.spec.tenant).copied().unwrap_or(0);
                    running < self.cfg.policy(&job.spec.tenant).max_running
                });
                if let Some(idx) = eligible {
                    let job = g.lanes[lane].remove(idx).expect("position came from this lane");
                    let tenant = job.spec.tenant.clone();
                    *g.running.entry(tenant.clone()).or_insert(0) += 1;
                    if let Some(q) = g.queued.get_mut(&tenant) {
                        *q = q.saturating_sub(1);
                    }
                    return Some(job);
                }
            }
            if g.closed {
                return None;
            }
            let (next, timeout) = match self.cv.wait_timeout(g, patience) {
                Ok(v) => v,
                Err(poisoned) => {
                    let v = poisoned.into_inner();
                    (v.0, v.1)
                }
            };
            g = next;
            if timeout.timed_out() {
                return None;
            }
        }
    }

    /// Releases a tenant's running slot after its job finished (in any
    /// way) and wakes runners that may now have eligible work.
    pub fn finished(&self, tenant: &str) {
        let mut g = self.lock();
        if let Some(r) = g.running.get_mut(tenant) {
            *r = r.saturating_sub(1);
        }
        drop(g);
        self.cv.notify_all();
    }

    /// Removes a queued job by id (client cancellation before it ran).
    /// `false` when the job is not in the queue (already running or done).
    pub fn remove(&self, id: &str) -> bool {
        let mut g = self.lock();
        for lane in 0..g.lanes.len() {
            if let Some(idx) = g.lanes[lane].iter().position(|j| j.id == id) {
                let job = g.lanes[lane].remove(idx).expect("position came from this lane");
                if let Some(q) = g.queued.get_mut(&job.spec.tenant) {
                    *q = q.saturating_sub(1);
                }
                return true;
            }
        }
        false
    }

    /// Stops admitting work and wakes every blocked runner; queued jobs
    /// that were not popped stay queued (the daemon persists them as
    /// queued so the next start re-admits them).
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_circuits::BenchmarkScale;
    use als_engine::FlowName;
    use als_error::MetricKind;

    use crate::api::CircuitSource;

    fn job(id: &str, tenant: &str, priority: Priority) -> QueuedJob {
        let mut spec = JobSpec::new(
            tenant,
            FlowName::Dp,
            MetricKind::Er,
            0.1,
            CircuitSource::Benchmark { name: "adder".into(), scale: BenchmarkScale::Reduced },
        );
        spec.priority = priority;
        QueuedJob { id: id.into(), spec, resume: false }
    }

    fn queue(capacity: usize, policy: TenantPolicy) -> JobQueue {
        JobQueue::new(QueueConfig { capacity, default_policy: policy, tenants: BTreeMap::new() })
    }

    const NOW: Duration = Duration::from_millis(0);

    #[test]
    fn priorities_overtake_and_fifo_within_a_class() {
        let q = queue(16, TenantPolicy::default());
        q.push(job("a", "t", Priority::Low)).unwrap();
        q.push(job("b", "t", Priority::Normal)).unwrap();
        q.push(job("c", "t", Priority::High)).unwrap();
        q.push(job("d", "t", Priority::High)).unwrap();
        let order: Vec<String> = std::iter::from_fn(|| q.pop(NOW)).map(|j| j.id).collect();
        assert_eq!(order, ["c", "d", "b", "a"]);
    }

    #[test]
    fn capacity_and_tenant_queue_limits_reject_typed() {
        let q = queue(2, TenantPolicy { max_running: 8, max_queued: 8 });
        q.push(job("a", "t1", Priority::Normal)).unwrap();
        q.push(job("b", "t2", Priority::Normal)).unwrap();
        assert_eq!(q.push(job("c", "t3", Priority::Normal)).unwrap_err().code, "queue_full");

        let q = queue(16, TenantPolicy { max_running: 8, max_queued: 1 });
        q.push(job("a", "t", Priority::Normal)).unwrap();
        assert_eq!(q.push(job("b", "t", Priority::Normal)).unwrap_err().code, "tenant_queue_full");
        // Another tenant is unaffected.
        q.push(job("c", "u", Priority::Normal)).unwrap();
    }

    #[test]
    fn saturated_tenants_are_overtaken_not_head_of_line_blocking() {
        let q = queue(16, TenantPolicy { max_running: 1, max_queued: 16 });
        q.push(job("t1-a", "t1", Priority::Normal)).unwrap();
        q.push(job("t1-b", "t1", Priority::Normal)).unwrap();
        q.push(job("t2-a", "t2", Priority::Normal)).unwrap();
        assert_eq!(q.pop(NOW).unwrap().id, "t1-a");
        // t1 is now saturated: its next job is skipped in favour of t2's.
        assert_eq!(q.pop(NOW).unwrap().id, "t2-a");
        assert_eq!(q.pop(NOW).map(|j| j.id), None, "everything eligible is running");
        // Finishing t1's job frees its slot; t1-b becomes eligible again.
        q.finished("t1");
        assert_eq!(q.pop(NOW).unwrap().id, "t1-b");
    }

    #[test]
    fn remove_cancels_only_queued_jobs() {
        let q = queue(16, TenantPolicy::default());
        q.push(job("a", "t", Priority::Normal)).unwrap();
        assert!(q.remove("a"));
        assert!(!q.remove("a"), "a removed job is gone");
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn close_rejects_pushes_and_wakes_poppers() {
        let q = std::sync::Arc::new(queue(16, TenantPolicy::default()));
        let q2 = q.clone();
        let popper = std::thread::spawn(move || q2.pop(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap().map(|j| j.id), None);
        assert_eq!(q.push(job("a", "t", Priority::Normal)).unwrap_err().code, "draining");
    }
}
