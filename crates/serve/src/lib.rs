//! ALS-as-a-service: a job daemon and client for running synthesis flows
//! behind a socket instead of a process boundary.
//!
//! Three layers, one schema:
//!
//! * [`api`] — the versioned wire protocol: [`JobSpec`](api::JobSpec),
//!   [`JobState`](api::JobState), [`JobStatus`](api::JobStatus),
//!   [`ErrorBody`](api::ErrorBody) and the request/response envelope.
//!   Server and client both convert through these types, so the two ends
//!   cannot drift. Completed jobs embed the engine's shared
//!   [`FlowResult::to_json`](als_engine::FlowResult::to_json) document —
//!   the same object `als synth --json` prints.
//! * [`queue`] — bounded priority queue with per-tenant admission
//!   control (queued and running ceilings per tenant).
//! * [`server`] / [`client`] — the [`Daemon`](server::Daemon) (TCP line
//!   protocol, plus plain-HTTP `GET /metrics` and `GET /healthz` on the
//!   same port) and the [`Client`](client::Client) the `als job`
//!   subcommands use.
//!
//! Jobs are crash-safe: every lifecycle transition persists to the job's
//! state directory before it is announced, journaling flows run under
//! the engine's append-only journal, and a daemon restart re-enqueues
//! non-terminal jobs — resuming journaled ones to a byte-identical
//! continuation of the interrupted run.

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod api;
pub mod client;
pub mod queue;
pub mod server;

pub use api::{CircuitSource, ErrorBody, JobSpec, JobState, JobStatus, Priority};
pub use client::Client;
pub use queue::{QueueConfig, TenantPolicy};
pub use server::{Daemon, DaemonConfig};
