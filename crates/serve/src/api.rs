//! The versioned wire protocol shared by the daemon, the `als job` client
//! and any third-party caller.
//!
//! Everything on the wire is line-delimited JSON: one request object per
//! line from the client, one response object per line from the server
//! (`watch` additionally streams raw span-event lines between its
//! acknowledgement and its end marker). Every request carries the
//! protocol version in `"v"`; the daemon rejects versions it does not
//! speak with a typed [`ErrorBody`] instead of guessing.
//!
//! The types here are deliberately plain data: no handles, no sockets.
//! [`Daemon`](crate::server::Daemon) and [`Client`](crate::client::Client)
//! both convert through this module, so the two ends agree by
//! construction — there is no second schema to drift.

use als_circuits::BenchmarkScale;
use als_engine::{FlowName, StopReason};
use als_error::MetricKind;
use als_obs::json::Json;

/// Version of the request/response envelope. Bumped on any incompatible
/// change to the shapes in this module.
pub const PROTOCOL_VERSION: u64 = 1;

/// A typed wire error: a stable machine-readable `code` plus a
/// human-readable `message`. Mirrors the shape of
/// [`ConfigError::to_json`](als_engine::ConfigError::to_json) so clients
/// handle configuration rejections and service rejections identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorBody {
    /// Stable machine-readable tag (`"bad_request"`, `"queue_full"`, ...).
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl ErrorBody {
    /// Builds an error body.
    pub fn new(code: &str, message: impl Into<String>) -> ErrorBody {
        ErrorBody { code: code.to_string(), message: message.into() }
    }

    /// A malformed or unparseable request.
    pub fn bad_request(message: impl Into<String>) -> ErrorBody {
        ErrorBody::new("bad_request", message)
    }

    /// The wire form: `{"code": ..., "message": ...}`.
    pub fn to_json(&self) -> Json {
        Json::obj().with("code", self.code.as_str()).with("message", self.message.as_str())
    }

    /// Parses the wire form back.
    pub fn from_json(v: &Json) -> Option<ErrorBody> {
        Some(ErrorBody {
            code: v.get("code")?.as_str()?.to_string(),
            message: v.get("message")?.as_str()?.to_string(),
        })
    }
}

impl std::fmt::Display for ErrorBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ErrorBody {}

/// Scheduling priority of a job. Within one priority class jobs run in
/// submission order; a higher class always runs before a lower one.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Priority {
    /// Ahead of everything else.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Behind everything else (batch/backfill work).
    Low,
}

impl Priority {
    /// All priorities, highest first — also the queue scan order.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Stable wire token.
    pub fn token(&self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a wire token.
    pub fn from_token(s: &str) -> Option<Priority> {
        Priority::ALL.into_iter().find(|p| p.token() == s)
    }
}

/// Where the circuit to synthesize comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitSource {
    /// A named circuit of the built-in benchmark suite.
    Benchmark {
        /// Name from [`als_circuits::benchmark_names`].
        name: String,
        /// Generation scale.
        scale: BenchmarkScale,
    },
    /// An ASCII AIGER (`.aag`) document supplied inline.
    Aiger {
        /// The full `.aag` text.
        text: String,
    },
}

impl CircuitSource {
    fn to_json(&self) -> Json {
        match self {
            CircuitSource::Benchmark { name, scale } => Json::obj()
                .with("benchmark", name.as_str())
                .with("scale", if *scale == BenchmarkScale::Paper { "paper" } else { "reduced" }),
            CircuitSource::Aiger { text } => Json::obj().with("aiger", text.as_str()),
        }
    }

    fn from_json(v: &Json) -> Result<CircuitSource, ErrorBody> {
        if let Some(name) = v.get("benchmark").and_then(Json::as_str) {
            let scale = match v.get("scale").and_then(Json::as_str) {
                None | Some("reduced") => BenchmarkScale::Reduced,
                Some("paper") => BenchmarkScale::Paper,
                Some(other) => {
                    return Err(ErrorBody::bad_request(format!(
                        "unknown benchmark scale {other:?} (expected \"paper\" or \"reduced\")"
                    )))
                }
            };
            return Ok(CircuitSource::Benchmark { name: name.to_string(), scale });
        }
        if let Some(text) = v.get("aiger").and_then(Json::as_str) {
            return Ok(CircuitSource::Aiger { text: text.to_string() });
        }
        Err(ErrorBody::bad_request("circuit needs a \"benchmark\" name or inline \"aiger\" text"))
    }
}

/// Everything the daemon needs to run one synthesis job. The submitting
/// client builds this; the daemon validates it, persists it to the job's
/// state directory and derives the engine's `FlowConfig` from it.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Accounting identity the queue's per-tenant limits apply to.
    pub tenant: String,
    /// Which flow to run.
    pub flow: FlowName,
    /// Error metric of the bound.
    pub metric: MetricKind,
    /// Error bound the run must honour.
    pub error_bound: f64,
    /// The circuit to synthesize.
    pub circuit: CircuitSource,
    /// Scheduling priority.
    pub priority: Priority,
    /// Monte-Carlo pattern count (engine default when absent).
    pub patterns: Option<usize>,
    /// Simulation seed (engine default when absent).
    pub seed: Option<u64>,
    /// Worker threads for this job (1 when absent).
    pub threads: Option<usize>,
    /// Supervision: iteration (applied-LAC) budget.
    pub max_iters: Option<usize>,
    /// Supervision: wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// A spec with every optional knob left at its default.
    pub fn new(
        tenant: &str,
        flow: FlowName,
        metric: MetricKind,
        error_bound: f64,
        circuit: CircuitSource,
    ) -> JobSpec {
        JobSpec {
            tenant: tenant.to_string(),
            flow,
            metric,
            error_bound,
            circuit,
            priority: Priority::default(),
            patterns: None,
            seed: None,
            threads: None,
            max_iters: None,
            deadline_ms: None,
        }
    }

    /// The wire form.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("tenant", self.tenant.as_str())
            .with("flow", self.flow.token())
            .with("metric", self.metric.token())
            .with("error_bound", self.error_bound)
            .with("circuit", self.circuit.to_json())
            .with("priority", self.priority.token())
            .with("patterns", self.patterns.map(|v| v as u64))
            .with("seed", self.seed)
            .with("threads", self.threads.map(|v| v as u64))
            .with("max_iters", self.max_iters.map(|v| v as u64))
            .with("deadline_ms", self.deadline_ms)
    }

    /// Parses and validates the wire form. Every rejection is a typed
    /// [`ErrorBody`] naming the offending field.
    pub fn from_json(v: &Json) -> Result<JobSpec, ErrorBody> {
        let field = |key: &str| {
            v.get(key).ok_or_else(|| ErrorBody::bad_request(format!("missing field {key:?}")))
        };
        let tenant = field("tenant")?
            .as_str()
            .filter(|t| !t.is_empty())
            .ok_or_else(|| ErrorBody::bad_request("\"tenant\" must be a non-empty string"))?
            .to_string();
        let flow: FlowName = field("flow")?
            .as_str()
            .ok_or_else(|| ErrorBody::bad_request("\"flow\" must be a string"))?
            .parse()
            .map_err(|e| ErrorBody::new("unknown_flow", format!("{e}")))?;
        let metric: MetricKind = field("metric")?
            .as_str()
            .ok_or_else(|| ErrorBody::bad_request("\"metric\" must be a string"))?
            .parse()
            .map_err(|e| ErrorBody::new("unknown_metric", format!("{e}")))?;
        let error_bound = field("error_bound")?
            .as_f64()
            .ok_or_else(|| ErrorBody::bad_request("\"error_bound\" must be a number"))?;
        let circuit = CircuitSource::from_json(field("circuit")?)?;
        let priority = match v.get("priority") {
            None => Priority::default(),
            Some(p) => p.as_str().and_then(Priority::from_token).ok_or_else(|| {
                ErrorBody::bad_request("\"priority\" must be \"high\", \"normal\" or \"low\"")
            })?,
        };
        let opt_u64 = |key: &str| -> Result<Option<u64>, ErrorBody> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(j) => j.as_u64().map(Some).ok_or_else(|| {
                    ErrorBody::bad_request(format!("{key:?} must be a non-negative integer"))
                }),
            }
        };
        Ok(JobSpec {
            tenant,
            flow,
            metric,
            error_bound,
            circuit,
            priority,
            patterns: opt_u64("patterns")?.map(|v| v as usize),
            seed: opt_u64("seed")?,
            threads: opt_u64("threads")?.map(|v| v as usize),
            max_iters: opt_u64("max_iters")?.map(|v| v as usize),
            deadline_ms: opt_u64("deadline_ms")?,
        })
    }
}

/// Lifecycle of a job inside the daemon.
///
/// ```text
/// Queued -> Running -> Completed | Failed | Cancelled
///              |
///              v (daemon drained while the job ran)
///          Preempted  -> Queued (on the next daemon start, resuming
///                        from the sealed journal when the flow has one)
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting for a runner slot.
    Queued,
    /// Executing on a runner.
    Running,
    /// The daemon drained while the job ran; its journal is sealed and the
    /// next daemon start re-enqueues it with `--resume` semantics.
    Preempted,
    /// Finished within its bound; the result document is available.
    Completed,
    /// The engine rejected or aborted the run; the error body says why.
    Failed,
    /// Cancelled on a client's request.
    Cancelled,
}

impl JobState {
    /// Stable wire token.
    pub fn token(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Preempted => "preempted",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses a wire token.
    pub fn from_token(s: &str) -> Option<JobState> {
        [
            JobState::Queued,
            JobState::Running,
            JobState::Preempted,
            JobState::Completed,
            JobState::Failed,
            JobState::Cancelled,
        ]
        .into_iter()
        .find(|j| j.token() == s)
    }

    /// Whether the job can still change state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Completed | JobState::Failed | JobState::Cancelled)
    }
}

/// A job's externally visible status: state plus, when terminal, the
/// result document (the exact [`FlowResult::to_json`]
/// (als_engine::FlowResult::to_json) shape `als synth --json` prints) or
/// the error body.
#[derive(Clone, Debug, PartialEq)]
pub struct JobStatus {
    /// Daemon-assigned job id.
    pub id: String,
    /// Submitting tenant.
    pub tenant: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Flow name (handy for `job list` output).
    pub flow: FlowName,
    /// The shared result document, present once [`JobState::Completed`].
    pub result: Option<Json>,
    /// Why the job failed, present once [`JobState::Failed`].
    pub error: Option<ErrorBody>,
}

impl JobStatus {
    /// The wire form.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("id", self.id.as_str())
            .with("tenant", self.tenant.as_str())
            .with("state", self.state.token())
            .with("flow", self.flow.token())
            .with("result", self.result.clone())
            .with("error", self.error.as_ref().map(ErrorBody::to_json))
    }

    /// Parses the wire form back.
    pub fn from_json(v: &Json) -> Result<JobStatus, ErrorBody> {
        let s = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| ErrorBody::bad_request(format!("status is missing {key:?}")))
        };
        Ok(JobStatus {
            id: s("id")?.to_string(),
            tenant: s("tenant")?.to_string(),
            state: JobState::from_token(s("state")?)
                .ok_or_else(|| ErrorBody::bad_request("unknown job state"))?,
            flow: s("flow")?
                .parse()
                .map_err(|e| ErrorBody::bad_request(format!("bad flow in status: {e}")))?,
            result: v.get("result").filter(|r| !r.is_null()).cloned(),
            error: v.get("error").filter(|e| !e.is_null()).and_then(ErrorBody::from_json),
        })
    }

    /// The stop reason of a completed job, parsed from the result document.
    pub fn stop(&self) -> Option<StopReason> {
        self.result.as_ref().and_then(|r| r.get("stop")).and_then(StopReason::from_json)
    }
}

/// A client request. One JSON object per line on the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a job; the response carries the assigned id.
    Submit(JobSpec),
    /// One job's status.
    Status(String),
    /// Every job's status, submission order.
    List,
    /// Stream the job's span events: replay what already happened, then
    /// follow live until the job reaches a terminal (or preempted) state.
    Watch(String),
    /// Cancel a queued or running job.
    Cancel(String),
}

impl Request {
    /// Operation token (the `"op"` field).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Submit(_) => "submit",
            Request::Status(_) => "status",
            Request::List => "list",
            Request::Watch(_) => "watch",
            Request::Cancel(_) => "cancel",
        }
    }

    /// The wire form, including the protocol version.
    pub fn to_json(&self) -> Json {
        let j = Json::obj().with("v", PROTOCOL_VERSION).with("op", self.op());
        match self {
            Request::Submit(spec) => j.with("spec", spec.to_json()),
            Request::Status(id) | Request::Watch(id) | Request::Cancel(id) => {
                j.with("job", id.as_str())
            }
            Request::List => j,
        }
    }

    /// Parses one request line. Version and shape violations come back as
    /// typed [`ErrorBody`] values ready to send to the client.
    pub fn parse(line: &str) -> Result<Request, ErrorBody> {
        let v = als_obs::json::parse(line)
            .map_err(|e| ErrorBody::bad_request(format!("request is not JSON: {e}")))?;
        match v.get("v").and_then(Json::as_u64) {
            Some(PROTOCOL_VERSION) => {}
            Some(got) => {
                return Err(ErrorBody::new(
                    "unsupported_version",
                    format!("protocol version {got} (this daemon speaks {PROTOCOL_VERSION})"),
                ))
            }
            None => return Err(ErrorBody::bad_request("missing protocol version \"v\"")),
        }
        let job = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ErrorBody::bad_request("missing job id"))
        };
        match v.get("op").and_then(Json::as_str) {
            Some("submit") => {
                let spec = v
                    .get("spec")
                    .ok_or_else(|| ErrorBody::bad_request("submit needs a \"spec\""))?;
                Ok(Request::Submit(JobSpec::from_json(spec)?))
            }
            Some("status") => Ok(Request::Status(job("job")?)),
            Some("list") => Ok(Request::List),
            Some("watch") => Ok(Request::Watch(job("job")?)),
            Some("cancel") => Ok(Request::Cancel(job("job")?)),
            Some(other) => {
                Err(ErrorBody::new("unknown_op", format!("unknown operation {other:?}")))
            }
            None => Err(ErrorBody::bad_request("missing \"op\"")),
        }
    }
}

/// Renders a success response line: `{"ok": true, ...body}`.
pub fn ok_response(body: Json) -> String {
    match body {
        Json::Obj(fields) => {
            let mut j = Json::obj().with("ok", true);
            for (k, v) in fields {
                j.set(&k, v);
            }
            j.render()
        }
        other => Json::obj().with("ok", true).with("value", other).render(),
    }
}

/// Renders an error response line: `{"ok": false, "error": {...}}`.
pub fn err_response(err: &ErrorBody) -> String {
    Json::obj().with("ok", false).with("error", err.to_json()).render()
}

/// Splits a response line into `Ok(body)` / `Err(error body)`.
pub fn parse_response(line: &str) -> Result<Json, ErrorBody> {
    let v = als_obs::json::parse(line)
        .map_err(|e| ErrorBody::new("bad_response", format!("response is not JSON: {e}")))?;
    match v.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(v),
        Some(false) => Err(v
            .get("error")
            .and_then(ErrorBody::from_json)
            .unwrap_or_else(|| ErrorBody::new("bad_response", "error response without a body"))),
        None => Err(ErrorBody::new("bad_response", "response without an \"ok\" field")),
    }
}

/// The end-of-stream marker a `watch` emits after its last span event:
/// `{"watch_end": true, "state": <token>}`. Span-event lines never carry a
/// `watch_end` key, so clients can split the stream without heuristics.
pub fn watch_end(state: JobState) -> String {
    Json::obj().with("watch_end", true).with("state", state.token()).render()
}

/// Parses a watch stream line: `Some(state)` for the end marker, `None`
/// for a span-event line to hand to the caller.
pub fn parse_watch_line(line: &str) -> Option<JobState> {
    let v = als_obs::json::parse(line).ok()?;
    if v.get("watch_end").and_then(Json::as_bool) != Some(true) {
        return None;
    }
    v.get("state").and_then(Json::as_str).and_then(JobState::from_token)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        let mut s = JobSpec::new(
            "acme",
            FlowName::DpSa,
            MetricKind::Med,
            4.0,
            CircuitSource::Benchmark { name: "adder".into(), scale: BenchmarkScale::Reduced },
        );
        s.priority = Priority::High;
        s.patterns = Some(1024);
        s.seed = Some(u64::MAX);
        s.threads = Some(2);
        s
    }

    #[test]
    fn spec_round_trips_with_full_seed_precision() {
        let s = spec();
        let back = JobSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.seed, Some(u64::MAX), "64-bit seeds must not pass through f64");
    }

    #[test]
    fn spec_rejections_are_typed() {
        let missing = Json::obj().with("tenant", "t");
        assert_eq!(JobSpec::from_json(&missing).unwrap_err().code, "bad_request");
        let bad_flow = spec().to_json().with("flow", "warp");
        assert_eq!(JobSpec::from_json(&bad_flow).unwrap_err().code, "unknown_flow");
        let bad_metric = spec().to_json().with("metric", "parsecs");
        assert_eq!(JobSpec::from_json(&bad_metric).unwrap_err().code, "unknown_metric");
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Submit(spec()),
            Request::Status("j-7".into()),
            Request::List,
            Request::Watch("j-7".into()),
            Request::Cancel("j-7".into()),
        ] {
            let line = req.to_json().render();
            assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let line = Request::List.to_json().with("v", 99u64).render();
        assert_eq!(Request::parse(&line).unwrap_err().code, "unsupported_version");
        let line = r#"{"op":"list"}"#;
        assert_eq!(Request::parse(line).unwrap_err().code, "bad_request");
    }

    #[test]
    fn responses_split_ok_from_error() {
        let ok = ok_response(Json::obj().with("id", "j-1"));
        assert_eq!(parse_response(&ok).unwrap().get("id").and_then(Json::as_str), Some("j-1"));
        let err = err_response(&ErrorBody::new("queue_full", "try later"));
        assert_eq!(parse_response(&err).unwrap_err().code, "queue_full");
    }

    #[test]
    fn watch_end_marker_is_unambiguous() {
        assert_eq!(parse_watch_line(&watch_end(JobState::Completed)), Some(JobState::Completed));
        // A span event line parses as "not the end".
        let span = r#"{"span":"iteration","dur_ns":5}"#;
        assert_eq!(parse_watch_line(span), None);
    }

    #[test]
    fn job_states_round_trip_and_classify() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Preempted,
            JobState::Completed,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::from_token(s.token()), Some(s));
        }
        assert!(!JobState::Preempted.is_terminal(), "preempted jobs resume on restart");
        assert!(JobState::Cancelled.is_terminal());
    }
}
