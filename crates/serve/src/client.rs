//! The client side of the job service: a thin, dependency-free wrapper
//! over the line protocol of [`crate::api`], used by the `als job`
//! subcommands and the end-to-end service tests.
//!
//! Every call opens a fresh connection — the daemon is cheap to connect
//! to, and a stateless client cannot be wedged by a half-closed stream.
//! `watch` keeps its connection open for the lifetime of the stream.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use als_obs::json::Json;

use crate::api::{
    parse_response, parse_watch_line, ErrorBody, JobSpec, JobState, JobStatus, Request,
};

/// A client-side failure: transport errors become `"io"` error bodies, so
/// callers handle one error type.
pub type ClientResult<T> = Result<T, ErrorBody>;

fn io_err(what: &str, e: std::io::Error) -> ErrorBody {
    ErrorBody::new("io", format!("{what}: {e}"))
}

/// Handle to a daemon, addressed by `host:port`.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for the daemon at `addr` (e.g. `"127.0.0.1:7433"`). No
    /// connection is made until the first call.
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    fn roundtrip(&self, req: &Request) -> ClientResult<Json> {
        let mut stream = TcpStream::connect(&self.addr).map_err(|e| io_err("connecting", e))?;
        writeln!(stream, "{}", req.to_json().render()).map_err(|e| io_err("sending", e))?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| io_err("reading response", e))?;
        if line.is_empty() {
            return Err(ErrorBody::new("io", "the daemon closed the connection"));
        }
        parse_response(line.trim_end())
    }

    /// Submits a job; returns the daemon-assigned id.
    pub fn submit(&self, spec: &JobSpec) -> ClientResult<String> {
        let body = self.roundtrip(&Request::Submit(spec.clone()))?;
        body.get("id")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ErrorBody::new("bad_response", "submit response without an id"))
    }

    /// One job's status.
    pub fn status(&self, id: &str) -> ClientResult<JobStatus> {
        let body = self.roundtrip(&Request::Status(id.to_string()))?;
        let status = body
            .get("status")
            .ok_or_else(|| ErrorBody::new("bad_response", "status response without a body"))?;
        JobStatus::from_json(status)
    }

    /// Every job the daemon knows, submission order.
    pub fn list(&self) -> ClientResult<Vec<JobStatus>> {
        let body = self.roundtrip(&Request::List)?;
        let jobs = body
            .get("jobs")
            .and_then(Json::as_array)
            .ok_or_else(|| ErrorBody::new("bad_response", "list response without jobs"))?;
        jobs.iter().map(JobStatus::from_json).collect()
    }

    /// Cancels a queued or running job; returns the state right after the
    /// request (`cancelled` for queued jobs; `running` until a running
    /// job's engine observes its token).
    pub fn cancel(&self, id: &str) -> ClientResult<JobState> {
        let body = self.roundtrip(&Request::Cancel(id.to_string()))?;
        body.get("state")
            .and_then(Json::as_str)
            .and_then(JobState::from_token)
            .ok_or_else(|| ErrorBody::new("bad_response", "cancel response without a state"))
    }

    /// Streams a job's span events — first a replay of everything that
    /// already happened, then live until the job ends. `on_line` receives
    /// each raw event line (the same bytes the job's `trace.jsonl`
    /// records); the return value is the job's state when the stream
    /// ended.
    pub fn watch(&self, id: &str, mut on_line: impl FnMut(&str)) -> ClientResult<JobState> {
        let mut stream = TcpStream::connect(&self.addr).map_err(|e| io_err("connecting", e))?;
        writeln!(stream, "{}", Request::Watch(id.to_string()).to_json().render())
            .map_err(|e| io_err("sending", e))?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| io_err("reading response", e))?;
        parse_response(line.trim_end())?; // the acknowledgement (or a typed error)
        loop {
            line.clear();
            let n = reader.read_line(&mut line).map_err(|e| io_err("reading stream", e))?;
            if n == 0 {
                return Err(ErrorBody::new("io", "the stream ended without a watch_end marker"));
            }
            let line = line.trim_end();
            match parse_watch_line(line) {
                Some(state) => return Ok(state),
                None => on_line(line),
            }
        }
    }

    /// Issues a plain-HTTP `GET` against the daemon's operational
    /// endpoints (`/metrics`, `/healthz`); returns the response body.
    pub fn http_get(&self, path: &str) -> ClientResult<String> {
        let mut stream = TcpStream::connect(&self.addr).map_err(|e| io_err("connecting", e))?;
        write!(stream, "GET {path} HTTP/1.1\r\nHost: als\r\nConnection: close\r\n\r\n")
            .map_err(|e| io_err("sending", e))?;
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .map_err(|e| io_err("reading response", e))?;
        let (head, body) = response
            .split_once("\r\n\r\n")
            .ok_or_else(|| ErrorBody::new("bad_response", "malformed HTTP response"))?;
        let status = head.lines().next().unwrap_or("");
        if !status.contains("200") {
            return Err(ErrorBody::new("http", format!("GET {path}: {status}")));
        }
        Ok(body.to_string())
    }
}
