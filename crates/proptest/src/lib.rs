//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! miniature property-testing framework with the exact API surface its test
//! suite consumes: [`strategy::Strategy`] with `prop_map`, integer-range and
//! tuple strategies, [`arbitrary::any`], [`collection::vec`], the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its seed and the generated
//!   inputs (`Debug`-formatted) instead of a minimized counterexample.
//! * **Deterministic seeds.** Case `i` of test `t` always draws from a seed
//!   derived from `(t, i)`, so failures reproduce without a persistence
//!   file.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Runs each `#[test] fn name(pat in strategy, ...) { body }` item as a
/// property: `ProptestConfig::cases` deterministic cases, each generating
/// every argument from its strategy and executing the body. The body may
/// `return Ok(())` to accept a case early; `prop_assert!` family failures
/// abort the case with a diagnostic that includes the generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let __seed = $crate::test_runner::derive_seed(stringify!($name), __case as u64);
                    let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                    let mut __inputs = ::std::string::String::new();
                    $(
                        let __value = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                        __inputs.push_str(&::std::format!(
                            "  {} = {:?}\n", stringify!($arg), __value,
                        ));
                        let $arg = __value;
                    )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__err) = __outcome {
                        ::std::panic!(
                            "proptest `{}` failed at case {}/{} (seed {:#018x}): {}\ninputs:\n{}",
                            stringify!($name), __case, __cfg.cases, __seed, __err, __inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` for property bodies: evaluates to an early `Err` return (a
/// failed [`test_runner::TestCaseError`]) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

/// `assert_eq!` for property bodies; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left), stringify!($right), __l, __r,
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                            stringify!($left), stringify!($right),
                            ::std::format!($($fmt)+), __l, __r,
                        ),
                    ));
                }
            }
        }
    };
}

/// `assert_ne!` for property bodies; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l,
                        ),
                    ));
                }
            }
        }
    };
}
