//! The [`Strategy`] trait plus range, tuple and mapped strategies.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream there is no value tree or shrinking: `generate` draws one
/// concrete value from the given deterministic generator.
pub trait Strategy {
    /// The generated type. `Debug` so failing cases can print their inputs.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(v)` for every `v` this strategy produces.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() - *self.start()) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                *self.start() + rng.below(span + 1) as $t
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..128 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (4usize..=7).generate(&mut rng);
            assert!((4..=7).contains(&w));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strat = (0u8..4, 10u16..20).prop_map(|(a, b)| a as u32 + b as u32);
        let mut rng = TestRng::from_seed(5);
        for _ in 0..64 {
            let v = strat.generate(&mut rng);
            assert!((10..24).contains(&v));
        }
    }
}
