//! Deterministic case generation and failure reporting.

use std::fmt;

/// Per-test configuration; only the case count is honored by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case: carries the rendered assertion message.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given diagnostic.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }

    /// Upstream-compatible alias of [`TestCaseError::fail`].
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64 generator driving all strategies. Deterministic in its seed.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for one test case.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Stable seed for case `case` of the test named `name` (FNV-1a over the
/// name, mixed with the case index) so failures reproduce across runs.
pub fn derive_seed(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(derive_seed("t", 0), derive_seed("t", 0));
        assert_ne!(derive_seed("t", 0), derive_seed("t", 1));
        assert_ne!(derive_seed("t", 0), derive_seed("u", 0));
    }

    #[test]
    fn rng_below_respects_bound() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..64 {
            assert!(rng.below(7) < 7);
        }
    }
}
