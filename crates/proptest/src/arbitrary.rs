//! [`any`] — full-domain strategies for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws a uniformly distributed value over the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_the_domain() {
        let mut rng = TestRng::from_seed(9);
        let mut seen_high_u16 = false;
        let mut seen_true = false;
        let mut seen_false = false;
        for _ in 0..256 {
            seen_high_u16 |= any::<u16>().generate(&mut rng) > u16::MAX / 2;
            match any::<bool>().generate(&mut rng) {
                true => seen_true = true,
                false => seen_false = true,
            }
        }
        assert!(seen_high_u16 && seen_true && seen_false);
    }
}
