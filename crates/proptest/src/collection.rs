//! Collection strategies: [`vec()`].

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A half-open length range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s whose length lies in `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_the_range() {
        let strat = vec(0u8..10, 2..5);
        let mut rng = TestRng::from_seed(21);
        for _ in 0..64 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0u8..10, 3usize).generate(&mut rng);
        assert_eq!(exact.len(), 3);
    }
}
