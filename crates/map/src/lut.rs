//! K-feasible cut enumeration and depth-oriented LUT mapping.
//!
//! A complement to the standard-cell mapper: covering the AIG with
//! `K`-input lookup tables gives the FPGA-style cost view (LUT count and
//! LUT depth). The implementation is the classic priority-cuts scheme:
//! bottom-up cut enumeration with a bounded cut set per node, best cut
//! selected by mapping depth (ties by cut size), and a top-down cover from
//! the outputs.

use std::collections::HashSet;

use als_aig::{Aig, NodeId};

/// A cut: a small sorted set of leaf nodes covering one node.
type Cut = Vec<NodeId>;

/// Result of LUT mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LutMapping {
    /// Number of LUTs in the cover.
    pub num_luts: usize,
    /// Depth of the mapped network in LUT levels.
    pub depth: u32,
    /// Histogram of used cut sizes: `sizes[i]` counts LUTs with `i+1`
    /// inputs.
    pub sizes: Vec<usize>,
}

fn merge_cuts(a: &Cut, b: &Cut, k: usize) -> Option<Cut> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x == y {
                    i += 1;
                    j += 1;
                    x
                } else if x < y {
                    i += 1;
                    x
                } else {
                    j += 1;
                    y
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => break,
        };
        out.push(next);
        if out.len() > k {
            return None;
        }
    }
    Some(out)
}

/// Maps `aig` onto `k`-input LUTs (`2 <= k <= 8`) and reports the cover.
///
/// Dead nodes are compacted away first. Inputs and constants cost nothing;
/// every remaining gate is covered by exactly one selected cut.
///
/// # Panics
/// Panics if `k` is outside `2..=8`.
pub fn map_luts(aig: &Aig, k: usize) -> LutMapping {
    assert!((2..=8).contains(&k), "LUT size must be in 2..=8");
    const CUT_LIMIT: usize = 8;
    let (c, _) = aig.compact();
    let n = c.num_nodes();
    let order = als_aig::topo::topo_order(&c);

    // Per node: candidate cuts and their mapping depths.
    let mut cuts: Vec<Vec<(Cut, u32)>> = vec![Vec::new(); n];
    let mut best_depth = vec![0u32; n];
    for &id in &order {
        let node = c.node(id);
        if !node.is_and() {
            cuts[id.index()] = vec![(vec![id], 0)];
            best_depth[id.index()] = 0;
            continue;
        }
        let (f0, f1) = (node.fanin0().node(), node.fanin1().node());
        let mut cand: Vec<(Cut, u32)> = Vec::new();
        for (c0, _) in &cuts[f0.index()] {
            for (c1, _) in &cuts[f1.index()] {
                if let Some(m) = merge_cuts(c0, c1, k) {
                    let depth = m.iter().map(|l| best_depth[l.index()]).max().unwrap_or(0) + 1;
                    if !cand.iter().any(|(existing, _)| *existing == m) {
                        cand.push((m, depth));
                    }
                }
            }
        }
        cand.sort_by(|(ca, da), (cb, db)| da.cmp(db).then(ca.len().cmp(&cb.len())));
        cand.truncate(CUT_LIMIT);
        best_depth[id.index()] = cand.first().map(|(_, d)| *d).unwrap_or(0);
        // the trivial cut keeps deeper nodes reachable as leaves
        cand.push((vec![id], best_depth[id.index()]));
        cuts[id.index()] = cand;
    }

    // Top-down cover from the outputs.
    let mut needed: Vec<NodeId> =
        c.outputs().iter().map(|o| o.lit.node()).filter(|&d| c.node(d).is_and()).collect();
    needed.sort();
    needed.dedup();
    let mut visited: HashSet<NodeId> = HashSet::new();
    let mut num_luts = 0usize;
    let mut sizes = vec![0usize; k];
    let mut depth = 0u32;
    while let Some(id) = needed.pop() {
        if !visited.insert(id) {
            continue;
        }
        let (cut, d) = cuts[id.index()]
            .iter()
            .find(|(cut, _)| cut.as_slice() != [id])
            .or_else(|| cuts[id.index()].first())
            .expect("every gate has a cut");
        num_luts += 1;
        sizes[cut.len() - 1] += 1;
        depth = depth.max(*d);
        for &leaf in cut {
            if c.node(leaf).is_and() && leaf != id {
                needed.push(leaf);
            }
        }
    }
    LutMapping { num_luts, depth, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder(width: usize) -> Aig {
        let mut aig = Aig::new("add");
        let a = aig.add_inputs("a", width);
        let b = aig.add_inputs("b", width);
        let mut carry = als_aig::Lit::FALSE;
        for i in 0..width {
            let (s, c) = aig.full_adder(a[i], b[i], carry);
            aig.add_output(s, format!("s{i}"));
            carry = c;
        }
        aig.add_output(carry, "cout");
        aig
    }

    #[test]
    fn bigger_luts_need_fewer_of_them() {
        let aig = adder(8);
        let m2 = map_luts(&aig, 2);
        let m4 = map_luts(&aig, 4);
        let m6 = map_luts(&aig, 6);
        assert!(m4.num_luts < m2.num_luts, "{} !< {}", m4.num_luts, m2.num_luts);
        assert!(m6.num_luts <= m4.num_luts);
        assert!(m4.depth <= m2.depth);
        assert!(m6.depth <= m4.depth);
    }

    #[test]
    fn lut_count_is_bounded_by_gate_count() {
        let aig = adder(4);
        let m = map_luts(&aig, 2);
        // a k=2 LUT can still cover a small reconvergent cone (e.g.
        // g = (a & b) & a), so the cover may be smaller than the gate
        // count — but never larger, and never empty here
        assert!(m.num_luts <= aig.num_ands());
        assert!(m.num_luts > 0);
    }

    #[test]
    fn lut4_depth_of_full_adder_chain_is_reasonable() {
        let aig = adder(8);
        let m = map_luts(&aig, 4);
        // a k=4 cover of a ripple adder manages ~1 level per 1-2 stages
        assert!(m.depth <= 9, "depth {}", m.depth);
        assert!(m.depth >= 3);
    }

    #[test]
    fn sizes_histogram_sums_to_lut_count() {
        let aig = adder(6);
        let m = map_luts(&aig, 5);
        assert_eq!(m.sizes.iter().sum::<usize>(), m.num_luts);
        assert_eq!(m.sizes.len(), 5);
    }

    #[test]
    fn constant_only_circuit_needs_no_luts() {
        let mut aig = Aig::new("k");
        aig.add_input("a");
        aig.add_output(als_aig::Lit::TRUE, "one");
        let m = map_luts(&aig, 4);
        assert_eq!(m.num_luts, 0);
        assert_eq!(m.depth, 0);
    }

    #[test]
    #[should_panic(expected = "LUT size must be")]
    fn k_out_of_range_panics() {
        map_luts(&adder(2), 9);
    }
}
