//! Structural technology mapping and the area-delay product (ADP).
//!
//! The paper evaluates synthesis quality as the *ADP ratio* — the
//! area-delay product of the approximate circuit over the original's —
//! using ABC plus a proprietary standard-cell library. This crate
//! substitutes both with a small open cell library and a deterministic
//! structural mapper:
//!
//! * AND gates map to AND2 / NAND-NOR-style cells chosen by fanin
//!   polarities,
//! * the two-AND XOR/XNOR shape (single-fanout inner nodes) is detected and
//!   merged into one XOR2/XNOR2 cell,
//! * complemented signals shared by several consumers pay for a single
//!   inverter.
//!
//! Because the same mapper is applied to both the original and the
//! approximate circuit, ratios remain meaningful even though absolute
//! areas differ from the paper's library.

pub mod adp;
pub mod library;
pub mod lut;
pub mod mapper;

pub use adp::{adp, adp_ratio};
pub use library::{Cell, CellKind, CellLibrary};
pub use lut::{map_luts, LutMapping};
pub use mapper::{map_circuit, map_netlist, verify_mapping, MappedCell, Mapping};
