//! Deterministic structural mapping of an AIG onto the cell library.

use std::collections::BTreeMap;

use als_aig::{Aig, Lit, NodeId};

use crate::library::{CellKind, CellLibrary};

/// One instantiated cell of the mapped netlist.
///
/// Pins are literals into the *compacted* graph returned by
/// [`map_netlist`]; a complemented pin is fed through a (shared) inverter.
/// The cell computes the function of `output`'s node, complemented when
/// `inverted_output` is set (output-phase optimisation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MappedCell {
    /// Library cell kind.
    pub kind: CellKind,
    /// Consumed input literals.
    pub pins: Vec<Lit>,
    /// The AIG node whose function this cell realises.
    pub output: NodeId,
    /// Whether the cell produces the complement of the node's function.
    pub inverted_output: bool,
}

impl MappedCell {
    /// Evaluates the cell on boolean pin values.
    ///
    /// # Panics
    /// Panics if the pin count does not match the cell kind.
    pub fn eval(&self, pin_values: &[bool]) -> bool {
        match (self.kind, pin_values) {
            (CellKind::Inv, [a]) => !a,
            (CellKind::And2, [a, b]) => a & b,
            (CellKind::Nand2, [a, b]) => !(a & b),
            (CellKind::Nor2, [a, b]) => !(a | b),
            (CellKind::Or2, [a, b]) => a | b,
            (CellKind::Xor2, [a, b]) => a ^ b,
            (CellKind::Xnor2, [a, b]) => !(a ^ b),
            _ => panic!("pin count mismatch for {:?}", self.kind),
        }
    }
}

/// Result of mapping a circuit: totals plus a per-kind cell census.
#[derive(Clone, Debug, PartialEq)]
pub struct Mapping {
    /// Total cell area (µm²), inverters included.
    pub area: f64,
    /// Critical-path delay (ns).
    pub delay: f64,
    /// Number of non-inverter cells.
    pub num_cells: usize,
    /// Number of inverters inserted for complemented signals.
    pub num_inverters: usize,
    /// Census of non-inverter cells.
    pub cell_counts: BTreeMap<CellKind, usize>,
    /// The instantiated cells (inverters excluded; they are implicit in
    /// complemented pins), in topological order.
    pub cells: Vec<MappedCell>,
}

impl Mapping {
    /// Area-delay product.
    pub fn adp(&self) -> f64 {
        self.area * self.delay
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum NodeMap {
    /// Not a mapped cell output (input, constant, or absorbed into XOR).
    None,
    /// Mapped as a cell; `true` = the cell produces the complemented value.
    Cell(CellKind, bool),
}

/// Maps `aig` (dead nodes are compacted away first) onto `lib`.
///
/// The mapper is structural and deterministic: two-level XOR/XNOR shapes
/// with single-fanout inner ANDs merge into one cell; remaining ANDs map by
/// fanin polarity (AND2 / NOR2, with output phase flipped to NAND2 / OR2
/// when every consumer wants the complement); complemented signals with
/// multiple consumers share one inverter.
pub fn map_circuit(aig: &Aig, lib: &CellLibrary) -> Mapping {
    map_netlist(aig, lib).1
}

/// Like [`map_circuit`], but also returns the compacted graph the
/// netlist's node ids refer to, so the mapping can be simulated and
/// verified against the original function.
pub fn map_netlist(aig: &Aig, lib: &CellLibrary) -> (Aig, Mapping) {
    let (c, _) = aig.compact();
    let n = c.num_nodes();
    let order = als_aig::topo::topo_order(&c);

    // ------------------------------------------------------------------
    // 1. XOR/XNOR pattern detection (reverse topological, roots first).
    // ------------------------------------------------------------------
    let mut absorbed = vec![false; n];
    // xor_inputs[g] = Some((a, b, kind)) when g roots a merged XOR cell.
    let mut xor_root: Vec<Option<(NodeId, NodeId, CellKind)>> = vec![None; n];
    for &g in order.iter().rev() {
        if absorbed[g.index()] || !c.node(g).is_and() {
            continue;
        }
        let (l0, l1) = (c.node(g).fanin0(), c.node(g).fanin1());
        if !(l0.is_complement() && l1.is_complement()) {
            continue;
        }
        let (u, v) = (l0.node(), l1.node());
        if u == v
            || !c.node(u).is_and()
            || !c.node(v).is_and()
            || absorbed[u.index()]
            || absorbed[v.index()]
            || c.fanout_count(u) != 1
            || c.fanout_count(v) != 1
        {
            continue;
        }
        let (ua, ub) = (c.node(u).fanin0(), c.node(u).fanin1());
        let (va, vb) = (c.node(v).fanin0(), c.node(v).fanin1());
        // Align v's fanins with u's by node.
        let aligned = if va.node() == ua.node() && vb.node() == ub.node() {
            Some((va, vb))
        } else if va.node() == ub.node() && vb.node() == ua.node() {
            Some((vb, va))
        } else {
            None
        };
        let Some((va, vb)) = aligned else { continue };
        if ua.node() == ub.node() {
            continue;
        }
        if va.is_complement() == ua.is_complement() || vb.is_complement() == ub.is_complement() {
            continue; // not the opposite-polarity pair
        }
        let kind =
            if ua.is_complement() == ub.is_complement() { CellKind::Xor2 } else { CellKind::Xnor2 };
        absorbed[u.index()] = true;
        absorbed[v.index()] = true;
        xor_root[g.index()] = Some((ua.node(), ub.node(), kind));
    }

    // ------------------------------------------------------------------
    // 2. Polarity usage analysis.
    // ------------------------------------------------------------------
    // needed[node] = (positive needed, negative needed)
    let mut need_pos = vec![false; n];
    let mut need_neg = vec![false; n];
    let mark = |lit: Lit, need_pos: &mut Vec<bool>, need_neg: &mut Vec<bool>| {
        if lit.is_complement() {
            need_neg[lit.node().index()] = true;
        } else {
            need_pos[lit.node().index()] = true;
        }
    };
    for &g in &order {
        if !c.node(g).is_and() || absorbed[g.index()] {
            continue;
        }
        if let Some((a, b, _)) = xor_root[g.index()] {
            // XOR cells take positive pins; polarity folds into the kind.
            mark(a.lit(), &mut need_pos, &mut need_neg);
            mark(b.lit(), &mut need_pos, &mut need_neg);
        } else {
            let (l0, l1) = (c.node(g).fanin0(), c.node(g).fanin1());
            if l0.is_complement() && l1.is_complement() {
                // NOR2: polarity folds into the cell, pins are positive.
                mark(l0.node().lit(), &mut need_pos, &mut need_neg);
                mark(l1.node().lit(), &mut need_pos, &mut need_neg);
            } else {
                mark(l0, &mut need_pos, &mut need_neg);
                mark(l1, &mut need_pos, &mut need_neg);
            }
        }
    }
    for o in c.outputs() {
        mark(o.lit, &mut need_pos, &mut need_neg);
    }

    // ------------------------------------------------------------------
    // 3. Cell selection with output-phase optimisation.
    // ------------------------------------------------------------------
    let mut node_map = vec![NodeMap::None; n];
    let mut cell_counts: BTreeMap<CellKind, usize> = BTreeMap::new();
    let mut cells: Vec<MappedCell> = Vec::new();
    let mut num_cells = 0usize;
    for &g in &order {
        if !c.node(g).is_and() || absorbed[g.index()] {
            continue;
        }
        let flip = need_neg[g.index()] && !need_pos[g.index()];
        let (base, pins) = if let Some((a, b, kind)) = xor_root[g.index()] {
            (kind, vec![a.lit(), b.lit()])
        } else {
            let (l0, l1) = (c.node(g).fanin0(), c.node(g).fanin1());
            match (l0.is_complement(), l1.is_complement()) {
                (true, true) => (CellKind::Nor2, vec![l0.node().lit(), l1.node().lit()]),
                _ => (CellKind::And2, vec![l0, l1]),
            }
        };
        let kind = if flip {
            match base {
                CellKind::And2 => CellKind::Nand2,
                CellKind::Nor2 => CellKind::Or2,
                CellKind::Xor2 => CellKind::Xnor2,
                CellKind::Xnor2 => CellKind::Xor2,
                other => other,
            }
        } else {
            base
        };
        node_map[g.index()] = NodeMap::Cell(kind, flip);
        *cell_counts.entry(kind).or_insert(0) += 1;
        cells.push(MappedCell { kind, pins, output: g, inverted_output: flip });
        num_cells += 1;
    }

    // ------------------------------------------------------------------
    // 4. Inverter accounting and timing.
    // ------------------------------------------------------------------
    let inv = lib.cell(CellKind::Inv);
    let mut num_inverters = 0usize;
    let mut area = 0.0;
    for (&kind, &count) in &cell_counts {
        area += lib.cell(kind).area * count as f64;
    }
    // arrival[pos], arrival[neg] per node
    let mut arr_pos = vec![0.0f64; n];
    let mut arr_neg = vec![0.0f64; n];
    // Constants and inputs: positive at t=0, negative via inverter.
    for &g in &order {
        let produced_phase; // false = cell output is positive polarity
        let cell_arrival;
        match node_map[g.index()] {
            NodeMap::None => {
                // input or constant (absorbed nodes are skipped by never
                // being read)
                produced_phase = false;
                cell_arrival = 0.0;
            }
            NodeMap::Cell(kind, flip) => {
                let inputs: Vec<Lit> = if let Some((a, b, _)) = xor_root[g.index()] {
                    vec![a.lit(), b.lit()]
                } else {
                    vec![c.node(g).fanin0(), c.node(g).fanin1()]
                };
                let mut worst: f64 = 0.0;
                for lit in inputs {
                    let i = lit.node().index();
                    // XOR cells take positive inputs; polarity folded into
                    // the cell kind. AND-family cells fold fanin polarity
                    // into the kind as well (NOR for both-negative), except
                    // the mixed case which needs the negative literal.
                    let t = match node_map[g.index()] {
                        NodeMap::Cell(CellKind::Xor2 | CellKind::Xnor2, _) => arr_pos[i],
                        _ => {
                            let both_neg = c.node(g).fanin0().is_complement()
                                && c.node(g).fanin1().is_complement();
                            if both_neg || !lit.is_complement() {
                                arr_pos[i]
                            } else {
                                arr_neg[i]
                            }
                        }
                    };
                    worst = worst.max(t);
                }
                produced_phase = flip;
                cell_arrival = worst + lib.cell(kind).delay;
            }
        }
        if c.node(g).is_const0() {
            // constants are tie cells: free in both polarities
            arr_pos[g.index()] = 0.0;
            arr_neg[g.index()] = 0.0;
        } else if produced_phase {
            arr_neg[g.index()] = cell_arrival;
            arr_pos[g.index()] = cell_arrival + inv.delay;
        } else {
            arr_pos[g.index()] = cell_arrival;
            arr_neg[g.index()] = cell_arrival + inv.delay;
        }
        // Inverter needed when the non-produced phase is consumed.
        let needs_other = if produced_phase { need_pos[g.index()] } else { need_neg[g.index()] };
        // Mixed-polarity AND cells consume negative literals directly from
        // the shared inverter accounted here, so the check is uniform.
        let is_real_signal = !c.node(g).is_const0();
        if needs_other && is_real_signal {
            num_inverters += 1;
            area += inv.area;
        }
    }

    let mut delay = 0.0f64;
    for o in c.outputs() {
        let i = o.lit.node().index();
        let t = if o.lit.is_complement() { arr_neg[i] } else { arr_pos[i] };
        delay = delay.max(t);
    }

    (c, Mapping { area, delay, num_cells, num_inverters, cell_counts, cells })
}

/// Verifies that every cell of `mapping` realises its node's function on
/// the given compacted graph, by exhaustive-style evaluation on
/// pseudo-random input assignments. Intended for tests.
///
/// # Errors
/// Returns a description of the first mismatching cell.
pub fn verify_mapping(compacted: &Aig, mapping: &Mapping, rounds: usize) -> Result<(), String> {
    let mut seed = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for _ in 0..rounds {
        // random input assignment
        let mut value = vec![false; compacted.num_nodes()];
        for &pi in compacted.inputs() {
            value[pi.index()] = next() & 1 == 1;
        }
        for id in als_aig::topo::topo_order(compacted) {
            let node = compacted.node(id);
            if node.is_and() {
                let f = |l: Lit| value[l.node().index()] ^ l.is_complement();
                value[id.index()] = f(node.fanin0()) && f(node.fanin1());
            }
        }
        for cell in &mapping.cells {
            let pins: Vec<bool> =
                cell.pins.iter().map(|l| value[l.node().index()] ^ l.is_complement()).collect();
            let got = cell.eval(&pins);
            let expect = value[cell.output.index()] ^ cell.inverted_output;
            if got != expect {
                return Err(format!(
                    "cell {:?} at {} computes {got}, node function is {expect}",
                    cell.kind, cell.output
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_aig::Aig;

    fn lib() -> CellLibrary {
        CellLibrary::new()
    }

    #[test]
    fn single_and_maps_to_and2() {
        let mut aig = Aig::new("a");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g = aig.and(a, b);
        aig.add_output(g, "o");
        let m = map_circuit(&aig, &lib());
        assert_eq!(m.num_cells, 1);
        assert_eq!(m.cell_counts[&CellKind::And2], 1);
        assert_eq!(m.num_inverters, 0);
        assert!((m.area - 1.06).abs() < 1e-9);
        assert!((m.delay - 0.041).abs() < 1e-9);
    }

    #[test]
    fn nand_phase_optimisation() {
        // only !g is used -> NAND2, no inverter
        let mut aig = Aig::new("n");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g = aig.and(a, b);
        aig.add_output(!g, "o");
        let m = map_circuit(&aig, &lib());
        assert_eq!(m.cell_counts[&CellKind::Nand2], 1);
        assert_eq!(m.num_inverters, 0);
    }

    #[test]
    fn nor_for_negative_fanins() {
        let mut aig = Aig::new("nor");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g = aig.and(!a, !b);
        aig.add_output(g, "o");
        let m = map_circuit(&aig, &lib());
        assert_eq!(m.cell_counts[&CellKind::Nor2], 1);
        assert_eq!(m.num_inverters, 0);
    }

    #[test]
    fn xor_shape_is_merged() {
        let mut aig = Aig::new("x");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g = aig.xor(a, b);
        aig.add_output(g, "o");
        let m = map_circuit(&aig, &lib());
        // one XOR cell (possibly phase-flipped to XNOR), nothing else
        let xors = m.cell_counts.get(&CellKind::Xor2).copied().unwrap_or(0)
            + m.cell_counts.get(&CellKind::Xnor2).copied().unwrap_or(0);
        assert_eq!(xors, 1);
        assert_eq!(m.num_cells, 1);
    }

    #[test]
    fn shared_inverter_counted_once() {
        // !g used by two consumers and an output: one inverter
        let mut aig = Aig::new("sh");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let cc = aig.add_input("c");
        let d = aig.add_input("d");
        let g = aig.and(a, b);
        let h1 = aig.and(!g, cc);
        let h2 = aig.and(!g, d);
        aig.add_output(h1, "o1");
        aig.add_output(h2, "o2");
        aig.add_output(g, "o3"); // forces positive phase
        let m = map_circuit(&aig, &lib());
        assert_eq!(m.num_inverters, 1);
    }

    #[test]
    fn smaller_circuit_smaller_adp() {
        let mut big = Aig::new("big");
        let xs = big.add_inputs("x", 8);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = big.xor(acc, x);
        }
        big.add_output(acc, "o");
        let mut small = Aig::new("small");
        let ys = small.add_inputs("y", 8);
        let g = small.and(ys[0], ys[1]);
        small.add_output(g, "o");
        let mb = map_circuit(&big, &lib());
        let ms = map_circuit(&small, &lib());
        assert!(mb.adp() > ms.adp());
        assert!(mb.delay > ms.delay);
    }

    #[test]
    fn mapping_is_functionally_verified() {
        // XOR tree + mixed polarities + shared nodes
        let mut aig = Aig::new("v");
        let xs = aig.add_inputs("x", 6);
        let g1 = aig.xor(xs[0], xs[1]);
        let g2 = aig.and(!xs[2], !xs[3]);
        let g3 = aig.and(g1, !g2);
        let g4 = aig.and(g2, xs[4]);
        let g5 = aig.xor(g3, g4);
        aig.add_output(g5, "o0");
        aig.add_output(!g3, "o1");
        aig.add_output(g2, "o2");
        let (compacted, mapping) = map_netlist(&aig, &lib());
        verify_mapping(&compacted, &mapping, 64).unwrap();
        assert_eq!(mapping.cells.len(), mapping.num_cells);
    }

    #[test]
    fn mapping_of_benchmark_sized_circuit_verifies() {
        // an adder-like structure with carry chains
        let mut aig = Aig::new("add");
        let a = aig.add_inputs("a", 8);
        let b = aig.add_inputs("b", 8);
        let mut carry = als_aig::Lit::FALSE;
        for i in 0..8 {
            let (s, c) = aig.full_adder(a[i], b[i], carry);
            aig.add_output(s, format!("s{i}"));
            carry = c;
        }
        aig.add_output(carry, "cout");
        let (compacted, mapping) = map_netlist(&aig, &lib());
        verify_mapping(&compacted, &mapping, 128).unwrap();
    }

    #[test]
    fn constant_output_costs_nothing() {
        let mut aig = Aig::new("k");
        aig.add_input("a");
        aig.add_output(als_aig::Lit::TRUE, "one");
        let m = map_circuit(&aig, &lib());
        assert_eq!(m.num_cells, 0);
        assert_eq!(m.area, 0.0);
        assert_eq!(m.delay, 0.0);
    }
}
