//! Area-delay product helpers.

use als_aig::Aig;

use crate::library::CellLibrary;
use crate::mapper::{map_circuit, Mapping};

/// Maps `aig` and returns its area-delay product.
pub fn adp(aig: &Aig, lib: &CellLibrary) -> f64 {
    map_circuit(aig, lib).adp()
}

/// The paper's quality measure: ADP of the approximate circuit over the
/// ADP of the original circuit (1.0 = no saving; smaller is better).
///
/// A degenerate original with zero ADP yields a ratio of 1.0.
pub fn adp_ratio(approx: &Aig, original: &Aig, lib: &CellLibrary) -> f64 {
    let orig = adp(original, lib);
    if orig == 0.0 {
        return 1.0;
    }
    adp(approx, lib) / orig
}

/// Maps both circuits and returns `(approx, original)` mappings — useful
/// when a report needs area and delay separately.
pub fn map_pair(approx: &Aig, original: &Aig, lib: &CellLibrary) -> (Mapping, Mapping) {
    (map_circuit(approx, lib), map_circuit(original, lib))
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_aig::{Aig, Lit};

    #[test]
    fn identical_circuits_have_ratio_one() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g = aig.and(a, b);
        aig.add_output(g, "o");
        let lib = CellLibrary::new();
        assert!((adp_ratio(&aig, &aig, &lib) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn approximation_lowers_ratio() {
        let mut orig = Aig::new("orig");
        let xs = orig.add_inputs("x", 4);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = orig.xor(acc, x);
        }
        orig.add_output(acc, "o");
        // approximate: replace the whole parity by one input
        let mut approx = Aig::new("approx");
        let ys = approx.add_inputs("x", 4);
        approx.add_output(ys[0], "o");
        let lib = CellLibrary::new();
        let r = adp_ratio(&approx, &orig, &lib);
        assert!(r < 0.2, "ratio {r}");
    }

    #[test]
    fn zero_adp_original_defined() {
        let mut orig = Aig::new("z");
        orig.add_output(Lit::FALSE, "o");
        let lib = CellLibrary::new();
        assert_eq!(adp_ratio(&orig, &orig, &lib), 1.0);
    }
}
