//! The standard-cell library.

use std::fmt;

/// Functional kind of a library cell.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Two-input AND.
    And2,
    /// Two-input NAND.
    Nand2,
    /// Two-input NOR.
    Nor2,
    /// Two-input OR.
    Or2,
    /// Two-input XOR.
    Xor2,
    /// Two-input XNOR.
    Xnor2,
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Inv => "INV",
            CellKind::And2 => "AND2",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
        };
        f.write_str(s)
    }
}

/// One library cell: area in µm² and pin-to-pin delay in ns.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Cell {
    /// Functional kind.
    pub kind: CellKind,
    /// Cell area (µm²).
    pub area: f64,
    /// Worst-case propagation delay (ns).
    pub delay: f64,
}

/// A tiny standard-cell library.
///
/// The default numbers are loosely modelled on a generic 45 nm educational
/// library; what matters for the experiments is only that the numbers are
/// consistent between the original and approximate circuits.
#[derive(Clone, Debug)]
pub struct CellLibrary {
    cells: Vec<Cell>,
}

impl Default for CellLibrary {
    fn default() -> CellLibrary {
        CellLibrary {
            cells: vec![
                Cell { kind: CellKind::Inv, area: 0.53, delay: 0.016 },
                Cell { kind: CellKind::And2, area: 1.06, delay: 0.041 },
                Cell { kind: CellKind::Nand2, area: 0.80, delay: 0.026 },
                Cell { kind: CellKind::Nor2, area: 0.80, delay: 0.031 },
                Cell { kind: CellKind::Or2, area: 1.06, delay: 0.046 },
                Cell { kind: CellKind::Xor2, area: 1.60, delay: 0.058 },
                Cell { kind: CellKind::Xnor2, area: 1.60, delay: 0.058 },
            ],
        }
    }
}

impl CellLibrary {
    /// The default library.
    pub fn new() -> CellLibrary {
        CellLibrary::default()
    }

    /// The cell of the given kind.
    ///
    /// # Panics
    /// Panics if the library lacks the kind (the default never does).
    pub fn cell(&self, kind: CellKind) -> Cell {
        self.cells
            .iter()
            .copied()
            .find(|c| c.kind == kind)
            .unwrap_or_else(|| panic!("library has no {kind} cell"))
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Replaces a cell's parameters (for library-sensitivity experiments).
    pub fn set_cell(&mut self, cell: Cell) {
        match self.cells.iter_mut().find(|c| c.kind == cell.kind) {
            Some(slot) => *slot = cell,
            None => self.cells.push(cell),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_library_is_complete() {
        let lib = CellLibrary::new();
        for kind in [
            CellKind::Inv,
            CellKind::And2,
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::Or2,
            CellKind::Xor2,
            CellKind::Xnor2,
        ] {
            let c = lib.cell(kind);
            assert!(c.area > 0.0 && c.delay > 0.0);
        }
    }

    #[test]
    fn set_cell_overrides() {
        let mut lib = CellLibrary::new();
        lib.set_cell(Cell { kind: CellKind::Inv, area: 9.0, delay: 1.0 });
        assert_eq!(lib.cell(CellKind::Inv).area, 9.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(CellKind::Nand2.to_string(), "NAND2");
        assert_eq!(CellKind::Xnor2.to_string(), "XNOR2");
    }
}
