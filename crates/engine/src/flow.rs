//! The flow trait.

use als_aig::Aig;

use crate::error::EngineError;
use crate::report::FlowResult;

/// A complete ALS flow: takes the original circuit, returns the final
/// approximate circuit plus run statistics.
///
/// Implementations are stateless configuration holders; [`Flow::run`]
/// borrows them immutably so one configured flow can synthesise many
/// circuits.
pub trait Flow {
    /// Human-readable flow name used in reports (e.g. `"DP-SA"`).
    fn name(&self) -> &str;

    /// Runs the flow on `original` and returns the result, or a
    /// structured [`EngineError`] explaining why the run aborted.
    fn run(&self, original: &Aig) -> Result<FlowResult, EngineError>;

    /// Whether the flow can journal its run for crash recovery. Flows
    /// whose loop structure has no checkpoint boundaries keep the default
    /// `false`; a journaling configuration is then rejected up front by
    /// [`crate::journal::reject_unsupported`] instead of silently ignored.
    fn supports_journal(&self) -> bool {
        false
    }
}
