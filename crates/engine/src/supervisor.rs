//! Run supervision: deadlines, iteration budgets and cooperative
//! cancellation.
//!
//! Every flow is an *anytime* optimizer — each committed LAC leaves a
//! valid approximate circuit — so stopping early must return the
//! best-so-far result, not an error. The supervision layer makes that a
//! first-class outcome:
//!
//! * a [`CancelToken`] lets an external party (another thread, a signal
//!   handler, a job queue) request a graceful stop;
//! * a [`RunGovernor`] combines the token with the wall-clock deadline
//!   and iteration budget of a [`SuperviseConfig`] and is polled
//!   cooperatively at iteration, round and eval-batch boundaries;
//! * a tripped governor makes the flow break out of its loop, flush the
//!   journal (appending a `Preempt` record so `--resume` can continue
//!   byte-identically) and return a [`FlowResult`](crate::FlowResult)
//!   whose [`StopReason`] says why the run ended.
//!
//! Polling is cheap — one relaxed atomic load plus, when a deadline is
//! armed, one monotonic clock read — so the checks sit directly on the
//! hot loop boundaries without measurable cost.
//!
//! Supervision limits are deliberately **excluded** from the journal's
//! [`config_fingerprint`](crate::journal::config_fingerprint), exactly
//! like the thread count: a run preempted by a deadline may be resumed
//! without the deadline (or with a longer one) and converges to the same
//! bytes as an uninterrupted run.
//!
//! [`install_signal_handlers`] wires the token to SIGINT/SIGTERM through
//! a minimal `sigaction` shim (no external dependencies): the first
//! signal requests a graceful stop, a second one exits immediately with
//! the conventional `128 + signo` status.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variable holding a 1-based checkpoint index: a dual-phase
/// run pauses right after appending that checkpoint and busy-waits (with
/// a 60 s safety cap) until its cancel token fires. Exists solely so the
/// SIGTERM integration test can deliver a real signal inside a wide,
/// deterministic window; unset in any normal run.
pub const HOLD_AT_CHECKPOINT_ENV: &str = "ALS_HOLD_AT_CHECKPOINT";

/// Why a flow run ended. `Converged` is the natural end (no admissible
/// candidate left); every other reason means the run was cut short and
/// the reported circuit is the best one found so far — still valid and
/// still within the error bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// No admissible candidate remained — the natural end of a run.
    Converged,
    /// The [`FlowConfig::max_lacs`](crate::FlowConfig::max_lacs) safety
    /// cap was reached. Part of the run's semantic configuration (it is
    /// fingerprinted into journals), so not a preemption: a resume hits
    /// the same cap at the same point.
    LacLimit {
        /// The configured cap.
        limit: usize,
    },
    /// The supervision iteration budget
    /// ([`SuperviseConfig::max_iters`]) was exhausted.
    IterLimit {
        /// The configured budget.
        limit: usize,
    },
    /// The wall-clock deadline ([`SuperviseConfig::deadline`]) passed.
    Deadline {
        /// The configured deadline.
        limit: Duration,
    },
    /// The run's [`CancelToken`] was cancelled (API call or signal).
    Cancelled,
}

impl StopReason {
    /// Whether the run was preempted by the supervision layer (deadline,
    /// iteration budget or cancellation) rather than ending on its own.
    /// Preempted journaled runs get a `Preempt` journal record; preempted
    /// CLI runs exit with the distinct "stopped early" status.
    pub fn is_preemption(&self) -> bool {
        matches!(
            self,
            StopReason::IterLimit { .. } | StopReason::Deadline { .. } | StopReason::Cancelled
        )
    }

    /// Stable machine-readable tag for the wire schema (the `kind` field
    /// of [`StopReason::to_json`]).
    pub fn token(&self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::LacLimit { .. } => "lac_limit",
            StopReason::IterLimit { .. } => "iter_limit",
            StopReason::Deadline { .. } => "deadline",
            StopReason::Cancelled => "cancelled",
        }
    }

    /// The wire form shared by `als synth --json` and the job service:
    /// `{"kind": token}` plus the tripped limit (`limit` for counted
    /// limits, `limit_us` for the deadline).
    pub fn to_json(&self) -> als_obs::json::Json {
        use als_obs::json::Json;
        let j = Json::obj().with("kind", self.token());
        match self {
            StopReason::LacLimit { limit } | StopReason::IterLimit { limit } => {
                j.with("limit", *limit)
            }
            StopReason::Deadline { limit } => j.with("limit_us", limit.as_micros() as u64),
            StopReason::Converged | StopReason::Cancelled => j,
        }
    }

    /// Parses the [`StopReason::to_json`] form back; `None` for anything
    /// that is not a valid stop-reason document.
    pub fn from_json(v: &als_obs::json::Json) -> Option<StopReason> {
        let limit = |key: &str| v.get(key).and_then(als_obs::json::Json::as_u64);
        match v.get("kind")?.as_str()? {
            "converged" => Some(StopReason::Converged),
            "lac_limit" => Some(StopReason::LacLimit { limit: limit("limit")? as usize }),
            "iter_limit" => Some(StopReason::IterLimit { limit: limit("limit")? as usize }),
            "deadline" => {
                Some(StopReason::Deadline { limit: Duration::from_micros(limit("limit_us")?) })
            }
            "cancelled" => Some(StopReason::Cancelled),
            _ => None,
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Converged => write!(f, "converged (no admissible candidate left)"),
            StopReason::LacLimit { limit } => write!(f, "reached the max_lacs cap ({limit})"),
            StopReason::IterLimit { limit } => {
                write!(f, "reached the iteration budget ({limit})")
            }
            StopReason::Deadline { limit } => {
                write!(f, "hit the wall-clock deadline ({limit:.2?})")
            }
            StopReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Process-wide flag the signal handler sets; see
/// [`install_signal_handlers`]. Tokens created by that function read this
/// flag instead of an `Arc`'d one, because an async-signal-safe handler
/// cannot touch reference-counted state.
static SIGNAL_CANCEL: AtomicBool = AtomicBool::new(false);

#[derive(Clone, Debug)]
enum TokenInner {
    /// Ordinary token: clones share one heap flag.
    Shared(Arc<AtomicBool>),
    /// Signal-backed token: reads the process-wide [`SIGNAL_CANCEL`] flag.
    Signal,
}

/// A cheap, clonable handle for requesting a graceful stop. Clones share
/// state: cancelling any clone cancels them all. The token is level-
/// triggered and one-way — once cancelled it stays cancelled.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: TokenInner,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken { inner: TokenInner::Shared(Arc::new(AtomicBool::new(false))) }
    }

    /// The token backed by the process-wide signal flag (what
    /// [`install_signal_handlers`] hands out).
    fn signal_backed() -> CancelToken {
        CancelToken { inner: TokenInner::Signal }
    }

    /// Requests a graceful stop. Safe to call from any thread; the run
    /// notices at its next supervision check.
    pub fn cancel(&self) {
        match &self.inner {
            TokenInner::Shared(flag) => flag.store(true, Ordering::SeqCst),
            TokenInner::Signal => SIGNAL_CANCEL.store(true, Ordering::SeqCst),
        }
    }

    /// Whether a stop has been requested.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            TokenInner::Shared(flag) => flag.load(Ordering::SeqCst),
            TokenInner::Signal => SIGNAL_CANCEL.load(Ordering::SeqCst),
        }
    }
}

/// Supervision limits of one run, carried in
/// [`FlowConfig::supervise`](crate::FlowConfig::supervise). The default
/// imposes nothing: no deadline, no iteration budget, a token nobody
/// cancels.
#[derive(Clone, Debug, Default)]
pub struct SuperviseConfig {
    /// Wall-clock budget for the whole run, measured from `Flow::run`
    /// entry. `None` = unlimited.
    pub deadline: Option<Duration>,
    /// Maximum applied LACs before the run stops early (distinct from
    /// [`FlowConfig::max_lacs`](crate::FlowConfig::max_lacs): this one is
    /// a supervision limit, excluded from journal fingerprints, so a
    /// budgeted run can be resumed without it). `None` = unlimited.
    pub max_iters: Option<usize>,
    /// External cancellation handle.
    pub cancel: CancelToken,
}

/// The per-run supervision state: the configured limits plus the clock
/// they are measured against. Built once at `Flow::run` entry and polled
/// at loop boundaries via [`RunGovernor::check`].
#[derive(Debug)]
pub struct RunGovernor {
    deadline: Option<Instant>,
    deadline_limit: Duration,
    max_iters: Option<usize>,
    cancel: CancelToken,
    started: Instant,
}

impl RunGovernor {
    /// Starts governing a run under `cfg`, with the clock starting now.
    pub fn new(cfg: &SuperviseConfig) -> RunGovernor {
        let started = Instant::now();
        RunGovernor {
            deadline: cfg.deadline.map(|d| started + d),
            deadline_limit: cfg.deadline.unwrap_or(Duration::ZERO),
            max_iters: cfg.max_iters,
            cancel: cfg.cancel.clone(),
            started,
        }
    }

    /// Polls every limit; `iterations` is the number of LACs applied so
    /// far. Returns the first tripped limit (cancellation wins over the
    /// deadline, the deadline over the iteration budget), or `None` while
    /// the run may continue.
    pub fn check(&self, iterations: usize) -> Option<StopReason> {
        if self.cancel.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopReason::Deadline { limit: self.deadline_limit });
            }
        }
        if let Some(limit) = self.max_iters {
            if iterations >= limit {
                return Some(StopReason::IterLimit { limit });
            }
        }
        None
    }

    /// Whether a cancellation (only) has been requested — used by the
    /// test-only checkpoint hold, which must keep waiting under a
    /// deadline but wake on a signal.
    pub fn cancel_requested(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Forces the deadline to trip at the next [`RunGovernor::check`]
    /// (fault injection: exercises the graceful-deadline path without
    /// wall-clock dependence).
    pub fn force_deadline(&mut self) {
        self.deadline = Some(self.started);
    }

    /// Time elapsed since the governor (and thus the run) started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

/// Derives the final [`StopReason`] of a loop that ended without a
/// governor trip: the `max_lacs` cap if the iteration count reached it,
/// natural convergence otherwise.
pub(crate) fn natural_stop(iterations: usize, max_lacs: usize) -> StopReason {
    if iterations >= max_lacs {
        StopReason::LacLimit { limit: max_lacs }
    } else {
        StopReason::Converged
    }
}

/// The 1-based checkpoint index to hold at, from
/// [`HOLD_AT_CHECKPOINT_ENV`] (tests only; `None` in normal runs).
pub(crate) fn hold_at_checkpoint() -> Option<usize> {
    std::env::var(HOLD_AT_CHECKPOINT_ENV).ok().and_then(|v| v.trim().parse::<usize>().ok())
}

// ---------------------------------------------------------------------------
// signal wiring (CLI): minimal sigaction shim, no external dependencies
// ---------------------------------------------------------------------------

/// Installs SIGINT/SIGTERM handlers and returns the cancel token they
/// trip. The handler is async-signal-safe (one atomic swap): the first
/// signal requests a graceful stop through the returned token; a second
/// signal exits the process immediately with status `128 + signo`.
/// Installation is best-effort — on unsupported platforms (or if the
/// `sigaction` call fails) the returned token simply never fires from a
/// signal, and can still be cancelled programmatically.
pub fn install_signal_handlers() -> CancelToken {
    platform::install();
    CancelToken::signal_backed()
}

/// The handler body shared by every platform shim.
extern "C" fn on_signal(signo: i32) {
    if SIGNAL_CANCEL.swap(true, Ordering::SeqCst) {
        // Second signal: the user insists. `_exit` is async-signal-safe
        // (no atexit handlers, no unwinding through arbitrary frames).
        extern "C" {
            fn _exit(status: i32) -> !;
        }
        unsafe { _exit(128 + signo) }
    }
}

#[cfg(target_os = "linux")]
mod platform {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    /// Restart interrupted syscalls so a graceful stop does not turn
    /// in-flight journal writes into spurious EINTR failures.
    const SA_RESTART: i32 = 0x1000_0000;

    /// glibc's `struct sigaction` on Linux: handler pointer, a 1024-bit
    /// signal mask, flags, restorer. `repr(C)` reproduces the 4-byte
    /// padding between `flags` and `restorer`.
    #[repr(C)]
    struct SigAction {
        handler: usize,
        mask: [u64; 16],
        flags: i32,
        restorer: usize,
    }

    extern "C" {
        fn sigaction(signum: i32, act: *const SigAction, oldact: *mut SigAction) -> i32;
    }

    pub(super) fn install() {
        let act = SigAction {
            handler: super::on_signal as *const () as usize,
            mask: [0; 16],
            flags: SA_RESTART,
            restorer: 0,
        };
        for sig in [SIGINT, SIGTERM] {
            // Best-effort: a failure leaves the default disposition.
            unsafe {
                sigaction(sig, &act, std::ptr::null_mut());
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod platform {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub(super) fn install() {
        for sig in [SIGINT, SIGTERM] {
            unsafe {
                signal(sig, super::on_signal as *const () as usize);
            }
        }
    }
}

#[cfg(not(unix))]
mod platform {
    pub(super) fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled(), "cancelling a clone cancels the original");
    }

    #[test]
    fn stop_reason_json_round_trips() {
        let reasons = [
            StopReason::Converged,
            StopReason::LacLimit { limit: 7 },
            StopReason::IterLimit { limit: 42 },
            StopReason::Deadline { limit: Duration::from_millis(1500) },
            StopReason::Cancelled,
        ];
        for r in &reasons {
            let j = r.to_json();
            assert_eq!(j.get("kind").and_then(|k| k.as_str()), Some(r.token()));
            assert_eq!(StopReason::from_json(&j).as_ref(), Some(r), "{r:?} survives the wire");
        }
        let junk = als_obs::json::Json::obj().with("kind", "martian");
        assert_eq!(StopReason::from_json(&junk), None);
        // A counted limit without its limit field is malformed, not zero.
        let partial = als_obs::json::Json::obj().with("kind", "lac_limit");
        assert_eq!(StopReason::from_json(&partial), None);
    }

    #[test]
    fn governor_imposes_nothing_by_default() {
        let gov = RunGovernor::new(&SuperviseConfig::default());
        assert_eq!(gov.check(0), None);
        assert_eq!(gov.check(1_000_000), None);
    }

    #[test]
    fn iteration_budget_trips_at_the_limit() {
        let cfg = SuperviseConfig { max_iters: Some(3), ..SuperviseConfig::default() };
        let gov = RunGovernor::new(&cfg);
        assert_eq!(gov.check(2), None);
        assert_eq!(gov.check(3), Some(StopReason::IterLimit { limit: 3 }));
        assert_eq!(gov.check(4), Some(StopReason::IterLimit { limit: 3 }));
    }

    #[test]
    fn cancellation_wins_over_other_limits() {
        let cfg = SuperviseConfig { max_iters: Some(0), ..SuperviseConfig::default() };
        cfg.cancel.cancel();
        let gov = RunGovernor::new(&cfg);
        assert_eq!(gov.check(10), Some(StopReason::Cancelled));
    }

    #[test]
    fn elapsed_deadline_trips() {
        let cfg = SuperviseConfig { deadline: Some(Duration::ZERO), ..SuperviseConfig::default() };
        let gov = RunGovernor::new(&cfg);
        assert_eq!(gov.check(0), Some(StopReason::Deadline { limit: Duration::ZERO }));
    }

    #[test]
    fn forced_deadline_trips_without_waiting() {
        let cfg = SuperviseConfig {
            deadline: Some(Duration::from_secs(3600)),
            ..SuperviseConfig::default()
        };
        let mut gov = RunGovernor::new(&cfg);
        assert_eq!(gov.check(0), None);
        gov.force_deadline();
        assert!(matches!(gov.check(0), Some(StopReason::Deadline { .. })));
    }

    #[test]
    fn natural_stop_distinguishes_cap_from_convergence() {
        assert_eq!(natural_stop(5, 100), StopReason::Converged);
        assert_eq!(natural_stop(100, 100), StopReason::LacLimit { limit: 100 });
    }

    #[test]
    fn preemption_classification() {
        assert!(!StopReason::Converged.is_preemption());
        assert!(!StopReason::LacLimit { limit: 1 }.is_preemption());
        assert!(StopReason::IterLimit { limit: 1 }.is_preemption());
        assert!(StopReason::Deadline { limit: Duration::from_secs(1) }.is_preemption());
        assert!(StopReason::Cancelled.is_preemption());
    }

    #[test]
    fn stop_reasons_display_helpfully() {
        assert!(StopReason::Converged.to_string().contains("converged"));
        assert!(StopReason::Deadline { limit: Duration::from_secs(2) }
            .to_string()
            .contains("deadline"));
        assert!(StopReason::IterLimit { limit: 7 }.to_string().contains("7"));
        assert!(StopReason::LacLimit { limit: 9 }.to_string().contains("9"));
        assert!(StopReason::Cancelled.to_string().contains("cancelled"));
    }
}
