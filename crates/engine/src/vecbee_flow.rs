//! VECBEE with depth limit `l = 1`.

use als_aig::Aig;

use crate::config::FlowConfig;
use crate::context::Ctx;
use crate::error::EngineError;
use crate::flow::Flow;
use crate::guard::BudgetGuard;
use crate::report::{FlowResult, IterationRecord, Phase};
use crate::supervisor::{self, RunGovernor, StopReason};

/// The fastest, least accurate VECBEE configuration: the CPM is built from
/// direct fanouts only (no cut computation at all), so step 1 vanishes and
/// step 2 is cheap — but estimates are wrong under reconvergence.
///
/// Candidates are *ranked* by the approximate estimate; before committing,
/// each candidate is validated exactly (one fanout-cone resimulation), in
/// rank order, and the first one that truly fits the bound is applied.
/// This keeps the bound sound while reproducing the quality loss the paper
/// reports for `l = 1` (mis-ranked candidates).
#[derive(Clone, Debug)]
pub struct VecbeeDepthOneFlow {
    cfg: FlowConfig,
    /// How many top-ranked candidates to validate before giving up.
    validate_limit: usize,
}

impl VecbeeDepthOneFlow {
    /// Creates the flow with the default validation budget.
    pub fn new(cfg: FlowConfig) -> VecbeeDepthOneFlow {
        VecbeeDepthOneFlow { cfg, validate_limit: 32 }
    }

    /// Overrides how many top-ranked candidates may be exactly validated
    /// per iteration before the flow declares itself stuck.
    pub fn with_validation_limit(mut self, limit: usize) -> VecbeeDepthOneFlow {
        self.validate_limit = limit.max(1);
        self
    }
}

impl Flow for VecbeeDepthOneFlow {
    fn name(&self) -> &str {
        "VECBEE(l=1)"
    }

    fn run(&self, original: &Aig) -> Result<FlowResult, EngineError> {
        als_aig::check::check(original).map_err(EngineError::InvalidInput)?;
        let cfg = &self.cfg;
        crate::journal::reject_unsupported(cfg, self)?;
        let mut ctx = Ctx::new(original, cfg);
        let _flow_span = ctx.obs().span("flow");
        let mut guard = BudgetGuard::new(original, cfg);
        let mut iterations = Vec::new();
        let mut first_ranking = Vec::new();
        let mut analyses = 0usize;
        let gov = RunGovernor::new(&cfg.supervise);
        let mut tripped: Option<StopReason> = None;

        'outer: while iterations.len() < cfg.max_lacs {
            if let Some(reason) = gov.check(iterations.len()) {
                tripped = Some(reason);
                break 'outer;
            }
            let _iter_span = ctx.obs().span("iteration");
            let _phase_span = ctx.obs().span("phase1");
            // Step 2 (no step 1): depth-one CPM.
            let mut span = ctx.obs().span("cpm");
            let cpm = als_cpm::compute_depth_one(&ctx.aig, &ctx.sim);
            span.count("rows", cpm.num_rows() as u64);
            ctx.times.cpm += span.finish();
            ctx.metrics.cpm_rows_built.add(cpm.num_rows() as u64);

            // Step 3: evaluate everything approximately.
            let span = ctx.obs().span("eval");
            let lacs = als_lac::generate(&ctx.aig, &ctx.sim, &cfg.lac, None);
            ctx.times.eval += span.finish();
            if let Some(reason) = gov.check(iterations.len()) {
                tripped = Some(reason);
                break 'outer;
            }
            let mut evals = ctx.evaluate_lacs(&cpm, &lacs)?;
            analyses += 1;
            if first_ranking.is_empty() {
                first_ranking = Ctx::rank_targets(&evals);
            }
            evals.sort_by(|a, b| {
                a.error_after
                    .total_cmp(&b.error_after)
                    .then(b.saving.cmp(&a.saving))
                    .then(a.lac.target.cmp(&b.lac.target))
            });
            let evals = guard.admissible(&evals);

            // Validate candidates in rank order with exact cone
            // resimulation; the first sound one goes through the guard,
            // which re-measures after the (transactional) application and
            // rolls back if the estimate-validated candidate still lands
            // over budget.
            let mut applied = false;
            let mut rollbacks = 0;
            for cand in evals.iter().take(self.validate_limit) {
                if let Some(reason) = gov.check(iterations.len()) {
                    tripped = Some(reason);
                    break 'outer;
                }
                let span = ctx.obs().span("eval");
                let exact = ctx.exact_error_of(&cand.lac);
                ctx.times.eval += span.finish();
                if exact <= cfg.error_bound {
                    if guard.try_apply(&mut ctx, cand)?.is_none() {
                        rollbacks += 1;
                        continue;
                    }
                    ctx.metrics.iterations.inc();
                    iterations.push(IterationRecord {
                        lac: cand.lac,
                        error_after: exact,
                        saving: cand.saving,
                        nodes_after: ctx.aig.num_ands(),
                        phase: Phase::Comprehensive,
                        rollbacks,
                    });
                    applied = true;
                    break;
                }
            }
            if !applied {
                break 'outer;
            }
        }

        let stop = match tripped {
            Some(reason) => reason,
            None => supervisor::natural_stop(iterations.len(), cfg.max_lacs),
        };
        ctx.metrics.note_stop(&stop, gov.elapsed());
        Ok(FlowResult {
            flow: self.name().to_string(),
            final_error: guard.final_error(&ctx),
            error_bound: cfg.error_bound,
            iterations,
            runtime: ctx.elapsed(),
            step_times: ctx.times,
            comprehensive_analyses: analyses,
            first_ranking,
            error_report: ctx.report(),
            comprehensive_time: ctx.elapsed(),
            incremental_time: std::time::Duration::ZERO,
            guard: guard.stats(),
            stop,
            circuit: ctx.aig,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_error::MetricKind;

    fn parity_tree() -> Aig {
        let mut aig = Aig::new("par");
        let xs = aig.add_inputs("x", 6);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = aig.xor(acc, x);
        }
        aig.add_output(acc, "p");
        let g = aig.and(xs[0], xs[1]);
        aig.add_output(g, "q");
        aig
    }

    #[test]
    fn bound_is_respected_despite_approximation() {
        let aig = parity_tree();
        let cfg = FlowConfig::new(MetricKind::Er, 0.3).with_patterns(512);
        let res = VecbeeDepthOneFlow::new(cfg).run(&aig).unwrap();
        assert!(res.final_error <= 0.3 + 1e-9, "error {}", res.final_error);
        als_aig::check::check(&res.circuit).unwrap();
    }

    #[test]
    fn no_cut_time_is_spent() {
        let aig = parity_tree();
        let cfg = FlowConfig::new(MetricKind::Er, 0.2).with_patterns(512);
        let res = VecbeeDepthOneFlow::new(cfg).run(&aig).unwrap();
        assert!(res.step_times.cuts.is_zero());
    }

    #[test]
    fn validation_limit_is_honoured() {
        let aig = parity_tree();
        let cfg = FlowConfig::new(MetricKind::Er, 0.5).with_patterns(512);
        let res = VecbeeDepthOneFlow::new(cfg).with_validation_limit(1).run(&aig).unwrap();
        assert!(res.final_error <= 0.5 + 1e-9);
    }
}
