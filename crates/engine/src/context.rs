//! Shared per-run state and the evaluation/selection/application kernel
//! used by every flow.

use std::time::{Duration, Instant};

use als_aig::{Aig, EditRecord, NodeId};
use als_cpm::{Cpm, FlipSim};
use als_error::{unsigned_weights, ErrorState, FlipVec, SparseFlip};
use als_lac::Lac;
use als_obs::{Counter, Histogram, Obs};
use als_par::{RegionSpec, SchedConfig, WorkerPool, WorkerScratch};
use als_sim::{PackedBits, PatternSet, Simulator};

use crate::config::FlowConfig;
use crate::report::StepTimes;

/// A candidate LAC with its evaluated error and area gain.
#[derive(Clone, Debug)]
pub struct Evaluated {
    /// The candidate change.
    pub lac: Lac,
    /// Estimated total error after applying it.
    pub error_after: f64,
    /// Gates its application removes.
    pub saving: usize,
}

/// Pre-registered metric handles of one flow run. All handles are no-ops
/// when the run's [`Obs`] is disabled; flows update them inline on the hot
/// path without re-consulting the registry.
#[derive(Clone, Debug, Default)]
pub struct EngineMetrics {
    /// Full (comprehensive) disjoint-cut recomputations.
    pub cut_recomputes: Counter,
    /// CPC-violating nodes (`|S_v|`) repaired by incremental cut updates.
    pub cpc_violations: Counter,
    /// Per-update `|S_v|` distribution.
    pub s_v_size: Histogram,
    /// Per-round `|S_cand|` distribution.
    pub s_cand_size: Histogram,
    /// Candidate LACs evaluated per analysis (`|S_c|`).
    pub lacs_evaluated: Histogram,
    /// CPM rows built (full and partial computations).
    pub cpm_rows_built: Counter,
    /// Rows a partial CPM avoided rebuilding (live nodes minus closure).
    pub cpm_rows_reused: Counter,
    /// Journal append latency (checkpoints and commits), microseconds.
    pub journal_append_us: Histogram,
    /// Applied LACs (committed iterations).
    pub iterations: Counter,
    /// Incremental phase-two rounds completed.
    pub phase2_rounds: Counter,
    /// Candidates that shared a structural class with an earlier one —
    /// evaluations saved by deduplication.
    pub dedup_hits: Counter,
    /// Class representatives actually evaluated after deduplication.
    pub dedup_reps: Counter,
    /// Runs that ended by natural convergence.
    pub stop_converged: Counter,
    /// Runs stopped by the `max_lacs` safety cap.
    pub stop_lac_limit: Counter,
    /// Runs preempted by the supervision iteration budget.
    pub stop_iter_limit: Counter,
    /// Runs preempted by the wall-clock deadline.
    pub stop_deadline: Counter,
    /// Runs preempted by external cancellation (API or signal).
    pub stop_cancelled: Counter,
    /// Transient journal-persist failures retried through.
    pub journal_retries: Counter,
    /// Degradation-ladder steps taken (serial mode, frozen resampling).
    pub degradations: Counter,
    /// Wall-clock time from run start to preemption, microseconds
    /// (observed only for preempted runs).
    pub time_to_preempt_us: Histogram,
}

impl EngineMetrics {
    /// Registers every engine metric on `obs` (no-op handles when
    /// disabled).
    pub fn register(obs: &Obs) -> EngineMetrics {
        EngineMetrics {
            cut_recomputes: obs
                .counter("als_cut_recomputations_total", "full disjoint-cut recomputations"),
            cpc_violations: obs.counter(
                "als_cpc_violations_total",
                "CPC-violating nodes repaired by incremental cut updates",
            ),
            s_v_size: obs
                .histogram("als_s_v_size", "CPC-violating set size |S_v| per incremental update"),
            s_cand_size: obs
                .histogram("als_s_cand_size", "candidate node set size |S_cand| per round"),
            lacs_evaluated: obs
                .histogram("als_lacs_evaluated", "candidate LACs evaluated per analysis"),
            cpm_rows_built: obs
                .counter("als_cpm_rows_built_total", "CPM rows built (full + partial)"),
            cpm_rows_reused: obs.counter(
                "als_cpm_rows_reused_total",
                "rows a partial CPM avoided rebuilding (live nodes minus closure)",
            ),
            journal_append_us: obs
                .histogram("als_journal_append_us", "journal append latency (us)"),
            iterations: obs.counter("als_iterations_total", "applied LACs (committed iterations)"),
            phase2_rounds: obs
                .counter("als_phase2_rounds_total", "incremental phase-two rounds completed"),
            dedup_hits: obs.counter(
                "als_lac_dedup_hits_total",
                "candidate evaluations saved by structural deduplication",
            ),
            dedup_reps: obs.counter(
                "als_lac_dedup_reps_total",
                "class representatives evaluated after structural deduplication",
            ),
            stop_converged: obs
                .counter("als_stop_converged_total", "runs ended by natural convergence"),
            stop_lac_limit: obs
                .counter("als_stop_lac_limit_total", "runs stopped by the max_lacs safety cap"),
            stop_iter_limit: obs.counter(
                "als_stop_iter_limit_total",
                "runs preempted by the supervision iteration budget",
            ),
            stop_deadline: obs
                .counter("als_stop_deadline_total", "runs preempted by the wall-clock deadline"),
            stop_cancelled: obs.counter(
                "als_stop_cancelled_total",
                "runs preempted by external cancellation (API or signal)",
            ),
            journal_retries: obs.counter(
                "als_journal_retries_total",
                "transient journal-persist failures retried through",
            ),
            degradations: obs.counter(
                "als_degradations_total",
                "degradation-ladder steps taken (serial mode, frozen resampling)",
            ),
            time_to_preempt_us: obs.histogram(
                "als_time_to_preempt_us",
                "wall-clock time from run start to preemption (us)",
            ),
        }
    }

    /// Records how a run ended: one stop-reason counter, plus the
    /// time-to-preempt histogram when the run was preempted.
    pub fn note_stop(&self, stop: &crate::StopReason, elapsed: Duration) {
        use crate::StopReason;
        match stop {
            StopReason::Converged => self.stop_converged.inc(),
            StopReason::LacLimit { .. } => self.stop_lac_limit.inc(),
            StopReason::IterLimit { .. } => self.stop_iter_limit.inc(),
            StopReason::Deadline { .. } => self.stop_deadline.inc(),
            StopReason::Cancelled => self.stop_cancelled.inc(),
        }
        if stop.is_preemption() {
            self.time_to_preempt_us.observe(elapsed.as_micros() as u64);
        }
    }
}

/// Mutable state of one flow run: the working circuit, its simulation,
/// the cached error state and timing accumulators.
pub struct Ctx {
    /// Working approximate circuit.
    pub aig: Aig,
    /// Monte-Carlo stimuli (fixed for the whole run).
    pub patterns: PatternSet,
    /// Node values of the working circuit.
    pub sim: Simulator,
    /// Cached error state against the golden outputs.
    pub state: ErrorState,
    /// Current topological ranks of the working circuit.
    pub ranks: Vec<u32>,
    /// Reusable flip-simulation scratch.
    pub flipsim: FlipSim,
    /// Per-step timing accumulators.
    pub times: StepTimes,
    /// Pre-registered metric handles (no-ops when observability is off).
    pub metrics: EngineMetrics,
    /// Observability handle of this run.
    obs: Obs,
    /// Shared worker pool for every parallel analysis region.
    pool: WorkerPool,
    /// Scheduling configuration the pool was built from (kept so the
    /// degradation ladder can rebuild a serial pool under the same mode).
    sched: SchedConfig,
    /// Per-worker change-vector buffers that persist across LAC
    /// evaluations (slot `i` serves worker `i` of every eval region).
    eval_scratch: WorkerScratch<PackedBits>,
    /// Reusable output-value buffers for error-state refreshes.
    outs: Vec<PackedBits>,
    /// Fold constants after each applied LAC.
    fold_constants: bool,
    #[cfg(feature = "fault-inject")]
    faults: crate::faultplan::FaultPlan,
    started: Instant,
}

/// Evaluates one LAC against the CPM and error state (no mutation).
///
/// `d` and `flips` are caller-owned scratch: the change vector is written
/// into `d` in place, and the CPM row's arena slices are collected into
/// `flips` as borrowed views, so a candidate evaluation allocates nothing.
/// The fused [`ErrorState::eval_flips_sparse`] kernel then streams
/// `d ∧ P[n][o]` word-by-word with zero-word skipping — bit-identical to
/// materialising the flip vectors and calling `eval_flips`.
fn eval_one<'a>(
    aig: &Aig,
    sim: &Simulator,
    state: &ErrorState,
    cpm: &'a Cpm,
    lac: &Lac,
    d: &mut PackedBits,
    flips: &mut Vec<SparseFlip<'a>>,
) -> Option<Evaluated> {
    let row = cpm.row(lac.target)?;
    lac.change_vector_into(sim, d);
    flips.clear();
    flips.extend(row.iter().map(|(o, bits)| SparseFlip { output: o as usize, bits }));
    let error_after = state.eval_flips_sparse(d, flips);
    let saving = als_lac::area_saving(aig, lac.target);
    Some(Evaluated { lac: *lac, error_after, saving })
}

impl Ctx {
    /// Initialises a run on a copy of `original`.
    pub fn new(original: &Aig, cfg: &FlowConfig) -> Ctx {
        let aig = original.clone();
        // The pattern count need not be a multiple of 64: the tail lanes of
        // the last word are masked at the `PatternSet` boundary and the
        // error state accumulates only the logical `cfg.num_patterns` bits.
        let patterns = match cfg.patterns_from {
            crate::config::PatternSource::Uniform => {
                PatternSet::random(aig.num_inputs(), cfg.pattern_words(), cfg.seed)
            }
            crate::config::PatternSource::Biased(density) => {
                PatternSet::biased(aig.num_inputs(), cfg.pattern_words(), cfg.seed, density)
            }
        }
        .with_pattern_count(cfg.num_patterns);
        let pool = WorkerPool::with_config(cfg.threads, cfg.sched.clone()).with_obs(&cfg.obs);
        let sim = Simulator::new_with(&aig, &patterns, &pool);
        let golden: Vec<PackedBits> =
            (0..aig.num_outputs()).map(|o| sim.output_value(&aig, o)).collect();
        let weights = cfg.weights.clone().unwrap_or_else(|| unsigned_weights(aig.num_outputs()));
        let state = ErrorState::with_pattern_count(
            cfg.metric,
            weights,
            golden.clone(),
            &golden,
            cfg.num_patterns,
        );
        let ranks = als_aig::topo::topo_ranks(&aig);
        let flipsim = FlipSim::new(aig.num_nodes(), patterns.num_words());
        Ctx {
            aig,
            patterns,
            sim,
            state,
            ranks,
            flipsim,
            times: StepTimes::default(),
            metrics: EngineMetrics::register(&cfg.obs),
            obs: cfg.obs.clone(),
            pool,
            sched: cfg.sched.clone(),
            eval_scratch: WorkerScratch::new(),
            outs: Vec::new(),
            fold_constants: cfg.fold_constants,
            #[cfg(feature = "fault-inject")]
            faults: cfg.faults.clone(),
            started: Instant::now(),
        }
    }

    /// The worker pool every parallel analysis region of this run shares
    /// (disjoint cuts, CPM waves, simulation waves, LAC evaluation).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Degradation ladder: replaces the shared pool with a serial one.
    /// Returns whether anything changed (already-serial runs have no rung
    /// left here). Safe at any point of a run — results are byte-identical
    /// at every thread count — so repeated guard fallbacks can trade speed
    /// for the simplest possible execution instead of aborting.
    pub fn degrade_to_serial(&mut self) -> bool {
        if self.pool.threads() <= 1 {
            return false;
        }
        self.pool = WorkerPool::with_config(1, self.sched.clone()).with_obs(&self.obs);
        true
    }

    /// The observability handle of this run (disabled unless the
    /// configuration attached one).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Current measured error of the working circuit.
    pub fn error(&self) -> f64 {
        self.state.error()
    }

    /// Full statistical error report of the working circuit.
    pub fn report(&self) -> als_error::ErrorReport {
        als_error::ErrorReport::from_state(&self.state)
    }

    /// Elapsed wall-clock time since the run started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Current output values of the working circuit.
    pub fn output_values(&self) -> Vec<PackedBits> {
        (0..self.aig.num_outputs()).map(|o| self.sim.output_value(&self.aig, o)).collect()
    }

    /// Refreshes the error state from the current output values, reusing
    /// the context's output buffers instead of allocating per call.
    fn refresh_error_state(&mut self) {
        let num_outputs = self.aig.num_outputs();
        let num_words = self.sim.num_words();
        self.outs.resize_with(num_outputs, || PackedBits::zeros(num_words));
        for (o, out) in self.outs.iter_mut().enumerate() {
            self.sim.output_value_into(&self.aig, o, out);
        }
        self.state.refresh(&self.outs);
    }

    /// Converts a LAC's change vector plus a CPM row into per-output flip
    /// vectors.
    pub fn flips_for(&self, lac: &Lac, cpm: &Cpm) -> Option<Vec<FlipVec>> {
        let row = cpm.row(lac.target)?;
        let d = lac.change_vector(&self.sim);
        if d.is_zero() {
            return Some(Vec::new());
        }
        Some(
            row.iter()
                .filter_map(|(o, p)| {
                    let bits = p.and(&d);
                    (!bits.is_zero()).then_some(FlipVec { output: o as usize, bits })
                })
                .collect(),
        )
    }

    /// Evaluates candidate LACs against the CPM, in parallel when the
    /// configuration asked for worker threads (the paper's multi-threaded
    /// error estimation). Candidates without a CPM row (unreachable
    /// targets) are skipped. Result order is deterministic regardless of
    /// the thread count.
    ///
    /// Functionally identical candidates — equal change vector `D` at
    /// targets with equal CPM rows — yield the same estimated error, so
    /// they are partitioned into structural classes first (keyed by
    /// `(hash(D), row fingerprint)`, confirmed exactly before merging) and
    /// only one representative per class goes through the batch kernel.
    /// The others inherit its `error_after`; area saving is per-candidate
    /// (class members may have different targets). The result is identical
    /// to evaluating every candidate individually.
    pub fn evaluate_lacs(
        &mut self,
        cpm: &Cpm,
        lacs: &[Lac],
    ) -> Result<Vec<Evaluated>, crate::error::EngineError> {
        let mut span = self.obs.span("eval");
        span.count("lacs", lacs.len() as u64);
        self.metrics.lacs_evaluated.observe(lacs.len() as u64);
        let (aig, sim, state) = (&self.aig, &self.sim, &self.state);
        let num_words = sim.num_words();

        // Serial keying pre-pass: one change vector + hash per candidate,
        // with the row fingerprint memoised per target node. The tail
        // lanes of `D` are masked before hashing: the eval kernels mask
        // them identically, so candidates differing only in garbage tail
        // bits are functionally identical and must share a class.
        let tail = als_sim::tail_mask(state.num_patterns());
        let mut d = PackedBits::zeros(num_words);
        let mut d_arena: Vec<u64> = vec![0; lacs.len() * num_words];
        let mut keys: Vec<Option<(u64, u64)>> = Vec::with_capacity(lacs.len());
        let mut fp_memo: std::collections::HashMap<NodeId, u64> = std::collections::HashMap::new();
        for (i, lac) in lacs.iter().enumerate() {
            let Some(row) = cpm.row(lac.target) else {
                keys.push(None);
                continue;
            };
            lac.change_vector_into(sim, &mut d);
            let dst = &mut d_arena[i * num_words..(i + 1) * num_words];
            dst.copy_from_slice(d.words());
            if let Some(last) = dst.last_mut() {
                *last &= tail;
            }
            let fp = *fp_memo.entry(lac.target).or_insert_with(|| row.fingerprint());
            keys.push(Some((als_cuts::hash_words(dst), fp)));
        }
        let d_of = |i: usize| &d_arena[i * num_words..(i + 1) * num_words];
        let classes = als_lac::DedupClasses::build(
            lacs.len(),
            |i| keys[i],
            |rep, i| d_of(rep) == d_of(i) && cpm.row(lacs[rep].target) == cpm.row(lacs[i].target),
        );
        span.count("dedup_hits", classes.hits() as u64);
        self.metrics.dedup_hits.add(classes.hits() as u64);
        self.metrics.dedup_reps.add(classes.num_classes() as u64);

        // Parallel evaluation of one representative per class. The
        // change-vector buffers persist in `eval_scratch` across calls
        // (this region runs once per analysis round), so steady state
        // allocates only the per-call flip views, which borrow `cpm`.
        let reps: Vec<Lac> = classes.reps().iter().map(|&i| lacs[i]).collect();
        #[cfg(feature = "fault-inject")]
        let faults = &self.faults;
        let out = self
            .pool
            .map_hybrid_in(
                RegionSpec::weighted("eval", num_words as u64),
                &reps,
                &mut self.eval_scratch,
                || PackedBits::zeros(num_words),
                Vec::new,
                |d, flips, lac| {
                    #[cfg(feature = "fault-inject")]
                    faults.tick_eval_item();
                    eval_one(aig, sim, state, cpm, lac, d, flips)
                },
            )
            .map_err(crate::error::EngineError::from)
            .map(|rep_evals: Vec<Option<Evaluated>>| {
                // Broadcast each class result back to every member, in the
                // original candidate order.
                let mut out = Vec::with_capacity(lacs.len());
                for (i, lac) in lacs.iter().enumerate() {
                    let Some(c) = classes.class_of(i) else { continue };
                    let Some(rep) = &rep_evals[c] else { continue };
                    let saving = if classes.reps()[c] == i {
                        rep.saving
                    } else {
                        als_lac::area_saving(aig, lac.target)
                    };
                    out.push(Evaluated { lac: *lac, error_after: rep.error_after, saving });
                }
                out
            });
        self.times.eval += span.finish();
        out
    }

    /// Exact error a LAC would cause, via full fanout-cone resimulation —
    /// used to validate candidates chosen from approximate estimates.
    pub fn exact_error_of(&mut self, lac: &Lac) -> f64 {
        let row =
            als_cpm::exact_row(&self.aig, &self.sim, &self.ranks, &mut self.flipsim, lac.target);
        let d = lac.change_vector(&self.sim);
        if d.is_zero() {
            return self.state.error();
        }
        let flips: Vec<FlipVec> = row
            .into_iter()
            .filter_map(|(o, p)| {
                let bits = d.and(&p);
                (!bits.is_zero()).then_some(FlipVec { output: o as usize, bits })
            })
            .collect();
        self.state.eval_flips(&flips)
    }

    /// Picks the best applicable candidate: smallest error, ties broken by
    /// larger area saving, then deterministic LAC identity.
    pub fn select_best(evals: &[Evaluated], bound: f64) -> Option<Evaluated> {
        evals
            .iter()
            .filter(|e| e.error_after <= bound)
            .min_by(|a, b| {
                a.error_after
                    .total_cmp(&b.error_after)
                    .then(b.saving.cmp(&a.saving))
                    .then(a.lac.target.cmp(&b.lac.target))
                    .then(a.lac.replacement().raw().cmp(&b.lac.replacement().raw()))
            })
            .cloned()
    }

    /// Picks the best applicable candidate under the configured
    /// [`SelectionStrategy`](crate::config::SelectionStrategy).
    /// `current_error` is the circuit error before
    /// the candidate would be applied (used by the gain/cost criterion).
    pub fn select(
        evals: &[Evaluated],
        bound: f64,
        strategy: crate::config::SelectionStrategy,
        current_error: f64,
    ) -> Option<Evaluated> {
        use crate::config::SelectionStrategy;
        match strategy {
            SelectionStrategy::MinError => Ctx::select_best(evals, bound),
            SelectionStrategy::MaxGainPerError => evals
                .iter()
                .filter(|e| e.error_after <= bound)
                .max_by(|a, b| {
                    let score = |e: &Evaluated| {
                        let inc = (e.error_after - current_error).max(1e-12);
                        e.saving as f64 / inc
                    };
                    score(a)
                        .total_cmp(&score(b))
                        .then(b.error_after.total_cmp(&a.error_after))
                        .then(b.lac.target.cmp(&a.lac.target))
                        .then(b.lac.replacement().raw().cmp(&a.lac.replacement().raw()))
                })
                .cloned(),
        }
    }

    /// Applies a LAC and refreshes simulation values, the error state and
    /// topological ranks. When constant folding is enabled, trivially
    /// foldable gates left behind by the change are removed as well (an
    /// exact transformation — simulated values are untouched). Returns all
    /// edit records, LAC first, for incremental consumers.
    pub fn apply(&mut self, lac: &Lac) -> Vec<EditRecord> {
        let mut span = self.obs.span("apply");
        let rec = lac.apply(&mut self.aig);
        self.sim.resimulate_fanout_cone_with(&self.aig, &[rec.replacement.node()], &self.pool);
        let seed = rec.replacement.node();
        let mut records = vec![rec];
        if self.fold_constants {
            records.extend(als_aig::simplify::propagate_constants_from(&mut self.aig, &[seed]));
        }
        self.refresh_error_state();
        self.ranks = als_aig::topo::topo_ranks(&self.aig);
        span.count("edits", records.len() as u64);
        span.count("nodes", self.aig.num_ands() as u64);
        self.times.apply += span.finish();
        records
    }

    /// Applies a LAC *inside a transaction* on the working circuit:
    /// identical to [`Ctx::apply`], but the graph mutations are journaled
    /// so the application can be undone. Pair with [`Ctx::commit_txn`]
    /// once the result is accepted or [`Ctx::rollback`] to discard it.
    pub fn apply_txn(&mut self, lac: &Lac) -> Vec<EditRecord> {
        self.aig.begin_txn();
        self.apply(lac)
    }

    /// Commits the transaction opened by [`Ctx::apply_txn`].
    pub fn commit_txn(&mut self) {
        self.aig.commit_txn();
    }

    /// Rolls back the transaction opened by [`Ctx::apply_txn`] and
    /// restores the simulation values, error state and topological ranks
    /// to their pre-application values. `records` must be the edit records
    /// that [`Ctx::apply_txn`] returned.
    ///
    /// Cost is proportional to the edit's fanout cones, not the graph: the
    /// journal undoes the structural changes, then the cones of each
    /// record's target and replacement are resimulated (those two seeds
    /// cover every node either application path touched, because the
    /// replacement inherits the target's fanouts during `replace` and
    /// returns them on rollback).
    pub fn rollback(&mut self, records: &[EditRecord]) {
        let mut span = self.obs.span("apply");
        span.count("rollback", 1);
        self.aig.rollback_txn();
        let mut seeds: Vec<NodeId> = Vec::new();
        for rec in records {
            seeds.push(rec.target);
            seeds.push(rec.replacement.node());
        }
        seeds.retain(|&n| self.aig.is_live(n));
        seeds.sort_unstable();
        seeds.dedup();
        self.sim.resimulate_fanout_cone_with(&self.aig, &seeds, &self.pool);
        self.refresh_error_state();
        self.ranks = als_aig::topo::topo_ranks(&self.aig);
        self.times.apply += span.finish();
    }

    /// Ranks target nodes by their best (smallest) evaluated error — the
    /// paper's `E(n)` ordering used to build `S_cand` and Fig. 4.
    pub fn rank_targets(evals: &[Evaluated]) -> Vec<NodeId> {
        use std::collections::HashMap;
        let mut best: HashMap<NodeId, f64> = HashMap::new();
        for e in evals {
            best.entry(e.lac.target)
                .and_modify(|v| *v = v.min(e.error_after))
                .or_insert(e.error_after);
        }
        let mut nodes: Vec<(NodeId, f64)> = best.into_iter().collect();
        nodes.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        nodes.into_iter().map(|(n, _)| n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_cuts::CutState;
    use als_error::MetricKind;

    fn small() -> Aig {
        als_circuits_test_stub()
    }

    // a tiny local circuit builder to avoid a dev-dependency cycle
    fn als_circuits_test_stub() -> Aig {
        let mut aig = Aig::new("t");
        let x = aig.add_inputs("x", 6);
        let g1 = aig.and(x[0], x[1]);
        let g2 = aig.and(g1, x[2]);
        let g3 = aig.and(g2, !x[3]);
        let g4 = aig.and(x[4], x[5]);
        let g5 = aig.and(g3, g4);
        aig.add_output(g5, "o0");
        aig.add_output(g2, "o1");
        aig
    }

    fn cfg() -> FlowConfig {
        FlowConfig::new(MetricKind::Med, 1.0).with_patterns(512)
    }

    #[test]
    fn fresh_context_has_zero_error() {
        let aig = small();
        let ctx = Ctx::new(&aig, &cfg());
        assert_eq!(ctx.error(), 0.0);
    }

    #[test]
    fn exact_cpm_estimate_matches_measured_error() {
        let aig = small();
        let mut ctx = Ctx::new(&aig, &cfg());
        let cuts = CutState::compute(&ctx.aig);
        let cpm = als_cpm::compute_full(&ctx.aig, &ctx.sim, &cuts).unwrap();
        let lacs = als_lac::constant_lacs(&ctx.aig, None);
        let evals = ctx.evaluate_lacs(&cpm, &lacs).unwrap();
        assert_eq!(evals.len(), lacs.len());
        for e in &evals {
            // exact-row evaluation must agree with the cut-based CPM
            let exact = ctx.exact_error_of(&e.lac);
            assert!(
                (e.error_after - exact).abs() < 1e-9,
                "{:?}: cpm {} vs exact {}",
                e.lac,
                e.error_after,
                exact
            );
        }
        // and applying the best must reproduce its estimate
        let best = Ctx::select_best(&evals, f64::INFINITY).unwrap();
        ctx.apply(&best.lac);
        assert!(
            (ctx.error() - best.error_after).abs() < 1e-9,
            "measured {} vs estimated {}",
            ctx.error(),
            best.error_after
        );
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let aig = small();
        let mut serial_ctx = Ctx::new(&aig, &cfg());
        let mut par_cfg = cfg();
        par_cfg.threads = 4;
        let mut par_ctx = Ctx::new(&aig, &par_cfg);
        let cuts = CutState::compute(&serial_ctx.aig);
        let cpm = als_cpm::compute_full(&serial_ctx.aig, &serial_ctx.sim, &cuts).unwrap();
        let lacs = als_lac::constant_lacs(&serial_ctx.aig, None);
        let a = serial_ctx.evaluate_lacs(&cpm, &lacs).unwrap();
        let b = par_ctx.evaluate_lacs(&cpm, &lacs).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.lac, y.lac);
            assert_eq!(x.error_after, y.error_after);
            assert_eq!(x.saving, y.saving);
        }
    }

    #[test]
    fn select_best_prefers_small_error_then_saving() {
        let l1 = Lac::const0(NodeId(7));
        let l2 = Lac::const0(NodeId(8));
        let l3 = Lac::const1(NodeId(9));
        let evals = vec![
            Evaluated { lac: l1, error_after: 0.5, saving: 1 },
            Evaluated { lac: l2, error_after: 0.25, saving: 1 },
            Evaluated { lac: l3, error_after: 0.25, saving: 5 },
        ];
        let best = Ctx::select_best(&evals, 1.0).unwrap();
        assert_eq!(best.lac, l3);
        assert!(Ctx::select_best(&evals, 0.1).is_none());
    }

    #[test]
    fn gain_per_error_strategy_prefers_big_savings() {
        use crate::config::SelectionStrategy;
        let cheap = Evaluated { lac: Lac::const0(NodeId(1)), error_after: 0.1, saving: 1 };
        let bulky = Evaluated { lac: Lac::const0(NodeId(2)), error_after: 0.2, saving: 10 };
        let evals = vec![cheap.clone(), bulky.clone()];
        // MinError picks the cheap one…
        let a = Ctx::select(&evals, 1.0, SelectionStrategy::MinError, 0.0).unwrap();
        assert_eq!(a.lac, cheap.lac);
        // …gain/cost picks the bulky one (10/0.2 = 50 > 1/0.1 = 10)
        let b = Ctx::select(&evals, 1.0, SelectionStrategy::MaxGainPerError, 0.0).unwrap();
        assert_eq!(b.lac, bulky.lac);
        // both respect the bound
        assert!(Ctx::select(&evals, 0.05, SelectionStrategy::MaxGainPerError, 0.0).is_none());
    }

    #[test]
    fn rank_targets_orders_by_best_error() {
        let evals = vec![
            Evaluated { lac: Lac::const0(NodeId(1)), error_after: 0.9, saving: 1 },
            Evaluated { lac: Lac::const1(NodeId(1)), error_after: 0.2, saving: 1 },
            Evaluated { lac: Lac::const0(NodeId(2)), error_after: 0.5, saving: 1 },
        ];
        assert_eq!(Ctx::rank_targets(&evals), vec![NodeId(1), NodeId(2)]);
    }
}
