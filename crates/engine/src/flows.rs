//! The flow registry: one place that knows how to turn a flow name into a
//! runnable [`Flow`].
//!
//! The CLI, the bench binaries and the journal's configuration checks used
//! to each carry their own `match` over flow-name strings; they all
//! dispatch through [`by_name`] now, so adding a flow means touching this
//! file once. [`FlowName`] is the typed form of that selection — front
//! ends parse user input into it once (via [`FromStr`](std::str::FromStr))
//! and everything downstream matches exhaustively instead of comparing
//! strings. [`by_name`] accepts either a `FlowName` or a raw `&str` (which
//! it parses), so string-keyed contexts like journal headers keep working.

use std::fmt;
use std::str::FromStr;

use crate::accals::AccAlsFlow;
use crate::config::FlowConfig;
use crate::conventional::ConventionalFlow;
use crate::dual_phase::DualPhaseFlow;
use crate::error::EngineError;
use crate::flow::Flow;
use crate::vecbee_flow::VecbeeDepthOneFlow;

/// Canonical names accepted by [`by_name`], in presentation order.
pub const FLOW_NAMES: &[&str] = &["conventional", "l1", "accals", "dp", "dpsa"];

/// A registered flow, as a typed selection.
///
/// `Display` renders the canonical registry token (`dpsa`, …) and
/// `FromStr` inverts it, so the enum is the single source of truth for the
/// CLI `--flow` option and the service wire protocol alike.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum FlowName {
    /// Enhanced VECBEE `l = ∞` baseline: one comprehensive analysis per
    /// applied LAC.
    Conventional,
    /// VECBEE with depth limit `l = 1`.
    L1,
    /// AccALS-style multi-LAC selection.
    AccAls,
    /// The paper's dual-phase flow.
    Dp,
    /// Dual-phase with self-adaption (DP-SA).
    DpSa,
}

impl FlowName {
    /// Every registered flow, in [`FLOW_NAMES`] order.
    pub const ALL: [FlowName; 5] =
        [FlowName::Conventional, FlowName::L1, FlowName::AccAls, FlowName::Dp, FlowName::DpSa];

    /// The canonical registry token (what [`FromStr`] parses).
    pub fn token(self) -> &'static str {
        match self {
            FlowName::Conventional => "conventional",
            FlowName::L1 => "l1",
            FlowName::AccAls => "accals",
            FlowName::Dp => "dp",
            FlowName::DpSa => "dpsa",
        }
    }

    /// Whether the flow supports crash-safe journaling (mirrors
    /// [`Flow::supports_journal`] without constructing the flow).
    pub fn supports_journal(self) -> bool {
        matches!(self, FlowName::Dp | FlowName::DpSa)
    }
}

impl fmt::Display for FlowName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for FlowName {
    type Err = EngineError;

    fn from_str(s: &str) -> Result<FlowName, EngineError> {
        match s {
            "conventional" => Ok(FlowName::Conventional),
            "l1" => Ok(FlowName::L1),
            "accals" => Ok(FlowName::AccAls),
            "dp" => Ok(FlowName::Dp),
            "dpsa" => Ok(FlowName::DpSa),
            other => Err(EngineError::Config(format!(
                "unknown flow {other:?} (expected one of: {})",
                FLOW_NAMES.join(", ")
            ))),
        }
    }
}

impl TryFrom<&str> for FlowName {
    type Error = EngineError;

    fn try_from(s: &str) -> Result<FlowName, EngineError> {
        s.parse()
    }
}

impl TryFrom<&String> for FlowName {
    type Error = EngineError;

    fn try_from(s: &String) -> Result<FlowName, EngineError> {
        s.parse()
    }
}

/// Builds the flow registered under `name` with the given configuration.
///
/// `name` is either a typed [`FlowName`] (infallible dispatch) or a raw
/// string, which is parsed first; unknown strings return
/// [`EngineError::Config`] listing the valid tokens.
pub fn by_name<N>(name: N, cfg: FlowConfig) -> Result<Box<dyn Flow>, EngineError>
where
    N: TryInto<FlowName>,
    N::Error: Into<EngineError>,
{
    let name = name.try_into().map_err(Into::into)?;
    Ok(match name {
        FlowName::Conventional => Box::new(ConventionalFlow::new(cfg)),
        FlowName::L1 => Box::new(VecbeeDepthOneFlow::new(cfg)),
        FlowName::AccAls => Box::new(AccAlsFlow::new(cfg)),
        FlowName::Dp => Box::new(DualPhaseFlow::new(cfg)),
        FlowName::DpSa => Box::new(DualPhaseFlow::with_self_adaption(cfg)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_error::MetricKind;

    fn cfg() -> FlowConfig {
        FlowConfig::new(MetricKind::Med, 1.0)
    }

    #[test]
    fn every_registered_name_resolves() {
        for &name in FLOW_NAMES {
            let flow = by_name(name, cfg()).unwrap();
            assert!(!flow.name().is_empty(), "{name}");
        }
    }

    #[test]
    fn typed_and_string_dispatch_agree() {
        for (token, typed) in FLOW_NAMES.iter().zip(FlowName::ALL) {
            assert_eq!(typed.token(), *token);
            assert_eq!(typed.to_string().parse::<FlowName>().unwrap(), typed);
            let from_str = by_name(*token, cfg()).unwrap();
            let from_enum = by_name(typed, cfg()).unwrap();
            assert_eq!(from_str.name(), from_enum.name(), "{token}");
        }
    }

    #[test]
    fn registry_names_map_to_expected_flows() {
        assert_eq!(by_name(FlowName::DpSa, cfg()).unwrap().name(), "DP-SA");
        assert_eq!(by_name(FlowName::Dp, cfg()).unwrap().name(), "DP");
        assert_eq!(by_name("conventional", cfg()).unwrap().name(), "Conventional(l=inf)");
        assert_eq!(by_name("l1", cfg()).unwrap().name(), "VECBEE(l=1)");
        assert_eq!(by_name("accals", cfg()).unwrap().name(), "AccALS");
    }

    #[test]
    fn only_dual_phase_flows_journal() {
        for name in FlowName::ALL {
            let flow = by_name(name, cfg()).unwrap();
            assert_eq!(flow.supports_journal(), name.supports_journal(), "{name}");
            assert_eq!(name.supports_journal(), matches!(name, FlowName::Dp | FlowName::DpSa));
        }
    }

    #[test]
    fn unknown_name_lists_alternatives() {
        let Err(err) = by_name("sasimi", cfg()) else {
            panic!("unknown flow name must not resolve");
        };
        let msg = err.to_string();
        assert!(msg.contains("sasimi") && msg.contains("dpsa"), "{msg}");
        assert!("".parse::<FlowName>().is_err());
        assert!("DPSA".parse::<FlowName>().is_err(), "tokens are exact, not case-folded");
    }
}
