//! The flow registry: one place that knows how to turn a flow name into a
//! runnable [`Flow`].
//!
//! The CLI, the bench binaries and the journal's configuration checks used
//! to each carry their own `match` over flow-name strings; they all
//! dispatch through [`by_name`] now, so adding a flow means touching this
//! file once.

use crate::accals::AccAlsFlow;
use crate::config::FlowConfig;
use crate::conventional::ConventionalFlow;
use crate::dual_phase::DualPhaseFlow;
use crate::error::EngineError;
use crate::flow::Flow;
use crate::vecbee_flow::VecbeeDepthOneFlow;

/// Canonical names accepted by [`by_name`], in presentation order.
pub const FLOW_NAMES: &[&str] = &["conventional", "l1", "accals", "dp", "dpsa"];

/// Builds the flow registered under `name` (see [`FLOW_NAMES`]) with the
/// given configuration. Unknown names return [`EngineError::Config`]
/// listing the valid ones.
pub fn by_name(name: &str, cfg: FlowConfig) -> Result<Box<dyn Flow>, EngineError> {
    match name {
        "conventional" => Ok(Box::new(ConventionalFlow::new(cfg))),
        "l1" => Ok(Box::new(VecbeeDepthOneFlow::new(cfg))),
        "accals" => Ok(Box::new(AccAlsFlow::new(cfg))),
        "dp" => Ok(Box::new(DualPhaseFlow::new(cfg))),
        "dpsa" => Ok(Box::new(DualPhaseFlow::with_self_adaption(cfg))),
        other => Err(EngineError::Config(format!(
            "unknown flow {other:?} (expected one of: {})",
            FLOW_NAMES.join(", ")
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_error::MetricKind;

    fn cfg() -> FlowConfig {
        FlowConfig::new(MetricKind::Med, 1.0)
    }

    #[test]
    fn every_registered_name_resolves() {
        for &name in FLOW_NAMES {
            let flow = by_name(name, cfg()).unwrap();
            assert!(!flow.name().is_empty(), "{name}");
        }
    }

    #[test]
    fn registry_names_map_to_expected_flows() {
        assert_eq!(by_name("dpsa", cfg()).unwrap().name(), "DP-SA");
        assert_eq!(by_name("dp", cfg()).unwrap().name(), "DP");
        assert_eq!(by_name("conventional", cfg()).unwrap().name(), "Conventional(l=inf)");
        assert_eq!(by_name("l1", cfg()).unwrap().name(), "VECBEE(l=1)");
        assert_eq!(by_name("accals", cfg()).unwrap().name(), "AccALS");
    }

    #[test]
    fn only_dual_phase_flows_journal() {
        for &name in FLOW_NAMES {
            let flow = by_name(name, cfg()).unwrap();
            assert_eq!(flow.supports_journal(), matches!(name, "dp" | "dpsa"), "{name}");
        }
    }

    #[test]
    fn unknown_name_lists_alternatives() {
        let Err(err) = by_name("sasimi", cfg()) else {
            panic!("unknown flow name must not resolve");
        };
        let msg = err.to_string();
        assert!(msg.contains("sasimi") && msg.contains("dpsa"), "{msg}");
    }
}
