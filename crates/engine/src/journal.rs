//! Crash-safe run journal: append-only persistence of every committed
//! iteration, with deterministic resume.
//!
//! # Format
//!
//! A journal is one binary file:
//!
//! ```text
//! header:  magic "ALSJRNL\0" · version u32 · flow-name string
//!          · config hash u64 · circuit hash u64 · header checksum u64
//! records: (kind u8 · payload-len u32 · payload · checksum u64)*
//! ```
//!
//! All integers are little-endian; floats are stored as their IEEE-754
//! bit patterns so replay cross-checks can demand *bit* equality, not
//! epsilon equality. Each record checksum is FNV-1a 64 over the kind byte
//! plus the payload. Two record kinds exist:
//!
//! * **checkpoint** (kind 1) — written at the top of every dual-phase
//!   iteration: commit count so far, cumulative error, the tunable
//!   parameters self-adaption may have changed (`M`, `N`, per-target LAC
//!   budget), degradation-ladder state, the first-analysis node ranking
//!   and a [`GuardSnapshot`]. Everything phase one needs that is not a
//!   function of the circuit itself.
//! * **commit** (kind 2) — one per applied LAC: the LAC, its
//!   [`IterationRecord`](crate::report::IterationRecord) fields, the
//!   serialized [`als_aig::edit::EditRecord`]s of the
//!   application, the cumulative error after the commit and the
//!   cumulative per-step times.
//!
//! # Durability
//!
//! Every persist rewrites the whole journal atomically: the full byte
//! image is written to a sibling `.tmp` file, fsynced, renamed over the
//! journal path, and the parent directory is fsynced so the rename itself
//! survives power loss. The on-disk file is therefore always a *prefix*
//! of the logical journal ending on a record boundary — a crash between
//! persists loses at most the records not yet flushed, never corrupts
//! earlier ones.
//!
//! Commits are **group-committed**: the dual-phase loop buffers each
//! iteration's commit records in memory and makes them durable with a
//! single fsync — either an explicit [`JournalWriter::flush`] or the next
//! iteration's checkpoint append (whose persist covers everything
//! buffered before it). That turns one fsync per applied LAC into one
//! fsync per iteration without weakening the prefix invariant. Journals
//! are small (a few KiB per hundred commits), so the rewrite is cheap;
//! see `BENCH_journal.json` for the measured overhead on a full DP-SA
//! run.
//!
//! # Recovery rules
//!
//! * A file whose *header* is damaged (short, bad magic/version, bad
//!   header checksum) is unusable → [`EngineError::Journal`].
//! * A **torn tail** — trailing bytes too short to hold a complete
//!   record frame — is truncated: resume continues from the last
//!   complete record. This is the crash-mid-write case.
//! * A *complete* record whose checksum does not match is corruption,
//!   not a torn write → [`EngineError::Journal`]. Same for a payload
//!   that fails structural decoding.
//! * Resume replays the journaled edit log onto the original circuit,
//!   cross-checking each regenerated [`EditRecord`] and the bit pattern
//!   of the cumulative error against the journaled values; any
//!   divergence → [`EngineError::Journal`] rather than a silently wrong
//!   result.

use std::path::{Path, PathBuf};

use als_aig::{Aig, EditRecord, Lit, NodeId};
use als_lac::{Lac, LacKind};

use crate::config::FlowConfig;
use crate::error::EngineError;
use crate::report::{GuardStats, Phase, StepTimes};
use crate::supervisor::StopReason;

/// File magic; the trailing NUL reserves room without a version bump.
const MAGIC: &[u8; 8] = b"ALSJRNL\0";
/// Format version; bump on any incompatible layout change.
const VERSION: u32 = 1;
/// Record kind tags.
const KIND_CHECKPOINT: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_PREEMPT: u8 = 3;

/// Transient-persist retry policy: how many times one `persist` retries a
/// transient I/O failure, and the deterministic backoff before attempt
/// `n` (1-based): 1 ms, 2 ms, 4 ms.
const PERSIST_RETRIES: u32 = 3;
fn backoff(attempt: u32) -> std::time::Duration {
    std::time::Duration::from_millis(1 << (attempt - 1))
}

/// Environment variable that makes the writer `abort()` the process right
/// after persisting the N-th commit record (1-based). Exists solely so the
/// kill-and-resume integration tests can crash a real `als` subprocess at
/// a deterministic point; unset in any normal run.
pub const CRASH_AFTER_COMMITS_ENV: &str = "ALS_CRASH_AFTER_COMMITS";

// ---------------------------------------------------------------------------
// hashing
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit, the checksum and fingerprint hash of the format. Not
/// cryptographic — it detects torn writes and bit rot, not adversaries.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of every configuration field that influences the run's
/// *results*. Threads and the scheduler settings are deliberately
/// excluded — runs are byte-identical at any thread count under any
/// scheduling mode, so a 1-thread journal may resume on 4 threads with a
/// different `ALS_SCHED` — as are the journal settings themselves and the
/// fault-injection plan.
pub fn config_fingerprint(cfg: &FlowConfig, flow: &str) -> u64 {
    let mut e = Enc::new();
    e.str(flow);
    e.str(&format!("{:?}", cfg.metric));
    e.f64(cfg.error_bound);
    e.u64(cfg.num_patterns as u64);
    e.u64(cfg.seed);
    e.str(&format!("{:?}", cfg.patterns_from));
    e.str(&format!("{:?}", cfg.selection));
    match &cfg.weights {
        None => e.u8(0),
        Some(w) => {
            e.u8(1);
            e.u32(w.len() as u32);
            for &x in w {
                e.f64(x);
            }
        }
    }
    e.u8(cfg.lac.constants as u8);
    e.u8(cfg.lac.substitutions as u8);
    e.u64(cfg.lac.max_subs_per_target as u64);
    e.f64(cfg.lac.max_distance_frac);
    e.u64(cfg.m as u64);
    e.u64(cfg.n as u64);
    e.f64(cfg.r_inc);
    e.f64(cfg.b_r);
    e.f64(cfg.b_s);
    e.f64(cfg.e_t);
    e.u64(cfg.multi_k as u64);
    e.u64(cfg.max_lacs as u64);
    e.u8(cfg.fold_constants as u8);
    e.u8(cfg.guard.enabled as u8);
    e.u8(cfg.guard.strict as u8);
    e.u64(cfg.guard.validation_factor as u64);
    e.u64(cfg.guard.max_retries as u64);
    e.u64(cfg.guard.max_resamples as u64);
    e.u64(cfg.guard.spot_check as u64);
    fnv1a(&e.buf)
}

/// Fingerprint of the input circuit (over its canonical ASCII AIGER
/// text), so a journal cannot silently replay onto the wrong netlist.
pub fn circuit_fingerprint(aig: &Aig) -> u64 {
    fnv1a(als_aig::io::to_ascii_string(aig).as_bytes())
}

/// Rejects a journaling configuration for flows that cannot honour it.
/// Dispatch is on [`crate::Flow::supports_journal`] — not on name strings —
/// so new flows opt in by overriding the trait method, and journaling a
/// flow that cannot checkpoint is a configuration error, not a silent
/// no-op.
pub fn reject_unsupported(cfg: &FlowConfig, flow: &dyn crate::Flow) -> Result<(), EngineError> {
    if cfg.journal.is_some() && !flow.supports_journal() {
        return Err(EngineError::Config(format!(
            "{} does not support --journal/--resume; only the dual-phase flows (dp, dpsa) \
             journal runs",
            flow.name()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// byte-level encode / decode
// ---------------------------------------------------------------------------

/// Little-endian byte sink.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt_str(&mut self, s: &Option<String>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }
    fn u32s(&mut self, v: &[u32]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u32(x);
        }
    }
}

/// Little-endian cursor over a complete, checksum-verified payload.
/// Decode errors therefore mean corruption, reported as `String` details
/// the caller wraps into [`EngineError::Journal`].
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| "non-UTF-8 string".to_string())
    }
    fn opt_str(&mut self) -> Result<Option<String>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            t => Err(format!("invalid option tag {t}")),
        }
    }
    fn u32s(&mut self) -> Result<Vec<u32>, String> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.u32()).collect()
    }
    fn done(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes in payload", self.buf.len() - self.pos))
        }
    }
}

// ---------------------------------------------------------------------------
// record types
// ---------------------------------------------------------------------------

/// Identity of the run a journal belongs to; a resume refuses a journal
/// whose header does not match the current run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalHeader {
    /// Flow name ("DP" or "DP-SA").
    pub flow: String,
    /// [`config_fingerprint`] of the run configuration.
    pub config_hash: u64,
    /// [`circuit_fingerprint`] of the original input circuit.
    pub circuit_hash: u64,
}

/// Serializable snapshot of the [`crate::BudgetGuard`]'s mutable state,
/// taken at checkpoints so a resumed run reproduces the guard's behaviour
/// exactly (validation set regeneration included: the set is a pure
/// function of `val_seed`/`val_words`).
#[derive(Clone, Debug, PartialEq)]
pub struct GuardSnapshot {
    /// Seed of the next validation set to draw.
    pub val_seed: u64,
    /// Words per validation pattern set.
    pub val_words: u64,
    /// Resamples performed so far.
    pub resamples: u64,
    /// Validation error recorded at the most recent commit.
    pub committed_val_error: f64,
    /// Evicted `(target, replacement-literal)` pairs, sorted.
    pub evicted: Vec<(u32, u32)>,
    /// Guard activity counters.
    pub stats: GuardStats,
}

/// Loop state at the top of one dual-phase iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Commits journaled before this checkpoint.
    pub commit_count: u64,
    /// Measured circuit error at the checkpoint (bit-exact cross-check).
    pub cum_error: f64,
    /// Candidate-set size `M` (self-adaption mutates it).
    pub m: u64,
    /// Phase-two round limit `N`.
    pub n_limit: u64,
    /// Per-target substitution budget (self-adaption mutates it).
    pub max_subs_per_target: u64,
    /// Phase-two rounds completed across the run (spot-check salt).
    pub total_rounds: u64,
    /// Comprehensive analyses performed so far.
    pub analyses: u64,
    /// Spot-check failure detail that forced the upcoming comprehensive
    /// analysis to be a fallback, if any.
    pub fallback_pending: Option<String>,
    /// Node ranking of the first comprehensive analysis (raw `NodeId`s).
    pub first_ranking: Vec<u32>,
    /// Budget-guard state.
    pub guard: GuardSnapshot,
}

/// One committed LAC application.
#[derive(Clone, Debug, PartialEq)]
pub struct Commit {
    /// 0-based commit index (= position in `FlowResult::iterations`).
    pub index: u64,
    /// The applied change.
    pub lac: Lac,
    /// Phase that selected the LAC.
    pub phase: Phase,
    /// `IterationRecord` bookkeeping.
    pub error_after: f64,
    /// Gates removed.
    pub saving: u64,
    /// Live AND gates after the application.
    pub nodes_after: u64,
    /// Guard rollbacks before this commit.
    pub rollbacks: u64,
    /// Measured circuit error after the commit (bit-exact cross-check).
    pub cum_error: f64,
    /// Cumulative per-step times at the commit, in nanoseconds
    /// (cuts, cpm, eval, apply) — observability only, never replayed.
    pub step_nanos: [u64; 4],
    /// Edit records of the application, LAC first.
    pub edits: Vec<EditRecord>,
}

/// Graceful-preemption marker, always the final record of a preempted
/// journal: the run was stopped by the supervision layer (deadline,
/// iteration budget or cancellation) after flushing every buffered
/// commit, so the journal is a complete record of the work done.
/// `--resume` drops it naturally — the resume image ends before the last
/// checkpoint, and the resumed (now unpreempted) run re-executes from
/// there, converging to a journal byte-identical to an uninterrupted run.
#[derive(Clone, Debug, PartialEq)]
pub struct Preempt {
    /// Why the run was preempted (always a preemption reason — natural
    /// ends never write this record).
    pub reason: StopReason,
    /// Commits journaled before the preemption.
    pub commit_count: u64,
}

impl Preempt {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        let (tag, limit) = match &self.reason {
            StopReason::IterLimit { limit } => (1u8, *limit as u64),
            StopReason::Deadline { limit } => (2u8, limit.as_nanos() as u64),
            StopReason::Cancelled => (3u8, 0u64),
            // Natural ends are never journaled as preemptions; encoding
            // one is a caller bug worth failing loudly on in tests.
            StopReason::Converged | StopReason::LacLimit { .. } => {
                debug_assert!(false, "natural stop journaled as Preempt");
                (3u8, 0u64)
            }
        };
        e.u8(tag);
        e.u64(limit);
        e.u64(self.commit_count);
        e.buf
    }

    fn decode(buf: &[u8]) -> Result<Preempt, String> {
        let mut d = Dec::new(buf);
        let tag = d.u8()?;
        let limit = d.u64()?;
        let reason = match tag {
            1 => StopReason::IterLimit { limit: limit as usize },
            2 => StopReason::Deadline { limit: std::time::Duration::from_nanos(limit) },
            3 => StopReason::Cancelled,
            t => return Err(format!("invalid preempt reason tag {t}")),
        };
        let p = Preempt { reason, commit_count: d.u64()? };
        d.done()?;
        Ok(p)
    }
}

/// Any journal record.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// Top-of-iteration loop state.
    Checkpoint(Checkpoint),
    /// One committed LAC.
    Commit(Commit),
    /// Graceful-preemption marker (always last when present).
    Preempt(Preempt),
}

fn encode_lac(e: &mut Enc, lac: &Lac) {
    e.u32(lac.target.0);
    match lac.kind {
        LacKind::Const0 => {
            e.u8(0);
            e.u32(0);
        }
        LacKind::Const1 => {
            e.u8(1);
            e.u32(0);
        }
        LacKind::Substitute { sub } => {
            e.u8(2);
            e.u32(sub.raw());
        }
    }
}

fn decode_lac(d: &mut Dec) -> Result<Lac, String> {
    let target = NodeId(d.u32()?);
    let tag = d.u8()?;
    let sub = d.u32()?;
    let kind = match tag {
        0 => LacKind::Const0,
        1 => LacKind::Const1,
        2 => LacKind::Substitute { sub: Lit::from_raw(sub) },
        t => return Err(format!("invalid LAC kind {t}")),
    };
    Ok(Lac { target, kind })
}

fn encode_edit(e: &mut Enc, rec: &EditRecord) {
    e.u32(rec.target.0);
    e.u32(rec.replacement.raw());
    e.u32s(&rec.removed.iter().map(|n| n.0).collect::<Vec<_>>());
    e.u32s(&rec.fanout_changed.iter().map(|n| n.0).collect::<Vec<_>>());
}

fn decode_edit(d: &mut Dec) -> Result<EditRecord, String> {
    Ok(EditRecord {
        target: NodeId(d.u32()?),
        replacement: Lit::from_raw(d.u32()?),
        removed: d.u32s()?.into_iter().map(NodeId).collect(),
        fanout_changed: d.u32s()?.into_iter().map(NodeId).collect(),
    })
}

impl Checkpoint {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.commit_count);
        e.f64(self.cum_error);
        e.u64(self.m);
        e.u64(self.n_limit);
        e.u64(self.max_subs_per_target);
        e.u64(self.total_rounds);
        e.u64(self.analyses);
        e.opt_str(&self.fallback_pending);
        e.u32s(&self.first_ranking);
        e.u64(self.guard.val_seed);
        e.u64(self.guard.val_words);
        e.u64(self.guard.resamples);
        e.f64(self.guard.committed_val_error);
        e.u32(self.guard.evicted.len() as u32);
        for &(n, r) in &self.guard.evicted {
            e.u32(n);
            e.u32(r);
        }
        e.u64(self.guard.stats.validations as u64);
        e.u64(self.guard.stats.rollbacks as u64);
        e.u64(self.guard.stats.evictions as u64);
        e.u64(self.guard.stats.resamples as u64);
        e.u64(self.guard.stats.fallbacks as u64);
        e.buf
    }

    fn decode(buf: &[u8]) -> Result<Checkpoint, String> {
        let mut d = Dec::new(buf);
        let cp = Checkpoint {
            commit_count: d.u64()?,
            cum_error: d.f64()?,
            m: d.u64()?,
            n_limit: d.u64()?,
            max_subs_per_target: d.u64()?,
            total_rounds: d.u64()?,
            analyses: d.u64()?,
            fallback_pending: d.opt_str()?,
            first_ranking: d.u32s()?,
            guard: GuardSnapshot {
                val_seed: d.u64()?,
                val_words: d.u64()?,
                resamples: d.u64()?,
                committed_val_error: d.f64()?,
                evicted: {
                    let n = d.u32()? as usize;
                    (0..n)
                        .map(|_| Ok::<_, String>((d.u32()?, d.u32()?)))
                        .collect::<Result<Vec<_>, _>>()?
                },
                stats: GuardStats {
                    validations: d.u64()? as usize,
                    rollbacks: d.u64()? as usize,
                    evictions: d.u64()? as usize,
                    resamples: d.u64()? as usize,
                    fallbacks: d.u64()? as usize,
                },
            },
        };
        d.done()?;
        Ok(cp)
    }
}

impl Commit {
    /// Bundles the data of one committed iteration, converting the
    /// cumulative [`StepTimes`] to nanoseconds.
    pub fn new(
        index: usize,
        rec: &crate::report::IterationRecord,
        edits: &[EditRecord],
        cum_error: f64,
        times: &StepTimes,
    ) -> Commit {
        Commit {
            index: index as u64,
            lac: rec.lac,
            phase: rec.phase,
            error_after: rec.error_after,
            saving: rec.saving as u64,
            nodes_after: rec.nodes_after as u64,
            rollbacks: rec.rollbacks as u64,
            cum_error,
            step_nanos: [
                times.cuts.as_nanos() as u64,
                times.cpm.as_nanos() as u64,
                times.eval.as_nanos() as u64,
                times.apply.as_nanos() as u64,
            ],
            edits: edits.to_vec(),
        }
    }

    /// The journaled [`crate::report::IterationRecord`], for rebuilding
    /// `FlowResult::iterations` on resume.
    pub fn iteration_record(&self) -> crate::report::IterationRecord {
        crate::report::IterationRecord {
            lac: self.lac,
            error_after: self.error_after,
            saving: self.saving as usize,
            nodes_after: self.nodes_after as usize,
            phase: self.phase,
            rollbacks: self.rollbacks as usize,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.index);
        encode_lac(&mut e, &self.lac);
        e.u8(match self.phase {
            Phase::Comprehensive => 0,
            Phase::Incremental => 1,
        });
        e.f64(self.error_after);
        e.u64(self.saving);
        e.u64(self.nodes_after);
        e.u64(self.rollbacks);
        e.f64(self.cum_error);
        for n in self.step_nanos {
            e.u64(n);
        }
        e.u32(self.edits.len() as u32);
        for edit in &self.edits {
            encode_edit(&mut e, edit);
        }
        e.buf
    }

    fn decode(buf: &[u8]) -> Result<Commit, String> {
        let mut d = Dec::new(buf);
        let c = Commit {
            index: d.u64()?,
            lac: decode_lac(&mut d)?,
            phase: match d.u8()? {
                0 => Phase::Comprehensive,
                1 => Phase::Incremental,
                t => return Err(format!("invalid phase tag {t}")),
            },
            error_after: d.f64()?,
            saving: d.u64()?,
            nodes_after: d.u64()?,
            rollbacks: d.u64()?,
            cum_error: d.f64()?,
            step_nanos: [d.u64()?, d.u64()?, d.u64()?, d.u64()?],
            edits: {
                let n = d.u32()? as usize;
                (0..n).map(|_| decode_edit(&mut d)).collect::<Result<Vec<_>, _>>()?
            },
        };
        d.done()?;
        Ok(c)
    }
}

// ---------------------------------------------------------------------------
// writer
// ---------------------------------------------------------------------------

fn io_err(path: &Path, source: std::io::Error) -> EngineError {
    EngineError::Io { path: path.to_path_buf(), source }
}

fn journal_err(detail: impl Into<String>) -> EngineError {
    EngineError::Journal { detail: detail.into() }
}

fn encode_header(h: &JournalHeader) -> Vec<u8> {
    let mut e = Enc::new();
    e.buf.extend_from_slice(MAGIC);
    e.u32(VERSION);
    e.str(&h.flow);
    e.u64(h.config_hash);
    e.u64(h.circuit_hash);
    let sum = fnv1a(&e.buf);
    e.u64(sum);
    e.buf
}

fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(kind);
    e.u32(payload.len() as u32);
    e.buf.extend_from_slice(payload);
    let mut sum_input = vec![kind];
    sum_input.extend_from_slice(payload);
    e.u64(fnv1a(&sum_input));
    e.buf
}

/// Appends records to a journal file, atomically (whole-image temp file +
/// rename per persist).
///
/// Commits support **group commit**: [`JournalWriter::append_commit_buffered`]
/// only extends the in-memory image, and one [`JournalWriter::flush`] (or
/// any checkpoint append) makes every buffered commit durable with a single
/// write + fsync + rename. The on-disk file always ends on a record
/// boundary, so a crash between flushes loses at most the buffered commits
/// of the current iteration — never a torn or reordered record.
pub struct JournalWriter {
    path: PathBuf,
    tmp: PathBuf,
    /// Full byte image of the journal (header + complete records).
    buf: Vec<u8>,
    /// Commit records durably persisted so far (drives the crash hook).
    commits_written: usize,
    /// Commit records appended to `buf` but not yet persisted.
    pending_commits: usize,
    /// Crash hook: abort the process after persisting this many commits.
    crash_after: Option<usize>,
    /// Transient persist failures retried through (obs: the
    /// `als_journal_retries_total` family when wired via
    /// [`JournalWriter::set_retry_counter`]).
    retries: als_obs::Counter,
    #[cfg(feature = "fault-inject")]
    faults: crate::faultplan::FaultPlan,
}

impl JournalWriter {
    fn with_image(path: &Path, buf: Vec<u8>) -> Result<JournalWriter, EngineError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let mut w = JournalWriter {
            path: path.to_path_buf(),
            tmp: PathBuf::from(tmp),
            buf,
            commits_written: 0,
            pending_commits: 0,
            crash_after: std::env::var(CRASH_AFTER_COMMITS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok()),
            retries: als_obs::Counter::noop(),
            #[cfg(feature = "fault-inject")]
            faults: crate::faultplan::FaultPlan::default(),
        };
        w.persist()?;
        Ok(w)
    }

    /// Starts a fresh journal at `path` (any existing file is replaced).
    pub fn create(path: &Path, header: &JournalHeader) -> Result<JournalWriter, EngineError> {
        JournalWriter::with_image(path, encode_header(header))
    }

    /// Continues journaling after a resume: `image` must be the verified
    /// byte prefix of the existing journal to keep (torn tails and
    /// re-executed records already dropped). Persisting immediately
    /// truncates the on-disk file to that prefix.
    pub fn resume(path: &Path, image: Vec<u8>) -> Result<JournalWriter, EngineError> {
        JournalWriter::with_image(path, image)
    }

    /// Installs the fault-injection plan consulted on each append.
    #[cfg(feature = "fault-inject")]
    pub fn set_faults(&mut self, faults: crate::faultplan::FaultPlan) {
        self.faults = faults;
    }

    /// Wires the counter incremented once per transient persist failure
    /// retried through (the engine registers it as
    /// `als_journal_retries_total`).
    pub fn set_retry_counter(&mut self, retries: als_obs::Counter) {
        self.retries = retries;
    }

    /// Writes the current image to the temp file, fsyncs it, renames it
    /// over the journal path, and fsyncs the parent directory so the
    /// rename itself is durable. Without the directory sync a crash after
    /// the rename could still lose the new directory entry — the file
    /// content was safe but the journal path might resolve to the old
    /// inode (or nothing) after power loss.
    fn persist_once(&mut self) -> Result<(), EngineError> {
        #[cfg(feature = "fault-inject")]
        if let Some(source) = self.faults.take_journal_failure() {
            return Err(io_err(&self.path, source));
        }
        #[cfg(feature = "fault-inject")]
        if let Some(source) = self.faults.take_transient_journal_failure() {
            return Err(io_err(&self.path, source));
        }
        let write = || -> std::io::Result<()> {
            std::fs::write(&self.tmp, &self.buf)?;
            let f = std::fs::File::open(&self.tmp)?;
            f.sync_all()?;
            std::fs::rename(&self.tmp, &self.path)?;
            #[cfg(feature = "fault-inject")]
            if let Some(source) = self.faults.take_dir_sync_failure() {
                return Err(source);
            }
            let parent = self.path.parent().filter(|p| !p.as_os_str().is_empty());
            let dir = std::fs::File::open(parent.unwrap_or_else(|| Path::new(".")))?;
            dir.sync_all()
        };
        write().map_err(|e| io_err(&self.path, e))
    }

    /// [`JournalWriter::persist_once`] with bounded deterministic retry:
    /// a transient failure (interrupted syscall, saturated device,
    /// timeout — see [`EngineError::is_transient`]) is retried up to
    /// [`PERSIST_RETRIES`] times with 1/2/4 ms backoff before surfacing.
    /// Persisting is idempotent — the whole image is rewritten and the
    /// rename is atomic — so a retry after a partial temp-file write is
    /// always safe. Non-transient failures surface immediately.
    fn persist(&mut self) -> Result<(), EngineError> {
        let mut attempt = 0;
        loop {
            match self.persist_once() {
                Ok(()) => return Ok(()),
                Err(e) if attempt < PERSIST_RETRIES && e.is_transient() => {
                    attempt += 1;
                    self.retries.inc();
                    std::thread::sleep(backoff(attempt));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Marks every buffered commit durable after a successful persist and
    /// services the [`CRASH_AFTER_COMMITS_ENV`] hook: when the armed count
    /// was crossed by this persist, the process aborts *after* the records
    /// are durably on disk — simulating a kill at the worst moment that
    /// still has work to lose.
    fn mark_durable(&mut self) {
        let before = self.commits_written;
        self.commits_written += self.pending_commits;
        self.pending_commits = 0;
        if let Some(n) = self.crash_after {
            if before < n && self.commits_written >= n {
                std::process::abort();
            }
        }
    }

    /// Appends and persists a checkpoint record. The persist also makes
    /// any buffered commits durable (they precede the checkpoint in the
    /// image), so the top-of-iteration checkpoint doubles as the group
    /// commit of the previous iteration.
    pub fn append_checkpoint(&mut self, cp: &Checkpoint) -> Result<(), EngineError> {
        self.buf.extend_from_slice(&frame(KIND_CHECKPOINT, &cp.encode()));
        self.persist()?;
        self.mark_durable();
        Ok(())
    }

    /// Appends a commit record to the in-memory image without touching
    /// disk. The record becomes durable at the next [`JournalWriter::flush`]
    /// or checkpoint append — one fsync then covers every commit buffered
    /// since the last persist.
    pub fn append_commit_buffered(&mut self, c: &Commit) {
        self.buf.extend_from_slice(&frame(KIND_COMMIT, &c.encode()));
        self.pending_commits += 1;
    }

    /// Persists every buffered commit with one write + fsync + rename.
    /// No-op when nothing is buffered.
    pub fn flush(&mut self) -> Result<(), EngineError> {
        if self.pending_commits == 0 {
            return Ok(());
        }
        self.persist()?;
        self.mark_durable();
        Ok(())
    }

    /// Commit records buffered in memory but not yet persisted.
    pub fn pending_commits(&self) -> usize {
        self.pending_commits
    }

    /// Appends and immediately persists a commit record — a buffered
    /// append followed by a [`JournalWriter::flush`]. Kept for callers
    /// (and tests) that want per-commit durability.
    pub fn append_commit(&mut self, c: &Commit) -> Result<(), EngineError> {
        self.append_commit_buffered(c);
        self.flush()
    }

    /// Appends and persists the graceful-preemption marker. Callers flush
    /// buffered commits first (the record claims the journal is complete),
    /// and must append nothing afterwards — `Preempt` is always last.
    pub fn append_preempt(&mut self, p: &Preempt) -> Result<(), EngineError> {
        debug_assert_eq!(self.pending_commits, 0, "flush buffered commits before Preempt");
        self.buf.extend_from_slice(&frame(KIND_PREEMPT, &p.encode()));
        self.persist()?;
        self.mark_durable();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// loader
// ---------------------------------------------------------------------------

/// A parsed journal: header, complete records, and the verified byte
/// prefix they came from (any torn tail already dropped).
#[derive(Debug)]
pub struct LoadedJournal {
    /// The journal's identity header.
    pub header: JournalHeader,
    /// All complete records, in file order.
    pub records: Vec<Record>,
    /// Byte image up to the last complete record.
    pub bytes: Vec<u8>,
    /// Whether a torn tail record was truncated during loading.
    pub torn_tail: bool,
    /// End offset (exclusive) of each record within `bytes`.
    ends: Vec<usize>,
    /// End offset of the header within `bytes`.
    header_end: usize,
}

/// Loads and verifies the journal at `path`. See the module docs for the
/// torn-tail versus corruption rules.
pub fn load(path: &Path) -> Result<LoadedJournal, EngineError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;

    // Header. A short or mismatching header means there is nothing safe
    // to resume from — that is corruption, not a torn tail.
    let mut d = Dec::new(&bytes);
    let magic = d.take(8).map_err(|_| journal_err("file too short for header"))?;
    if magic != MAGIC {
        return Err(journal_err("bad magic (not an ALS run journal)"));
    }
    let version = d.u32().map_err(|_| journal_err("file too short for header"))?;
    if version != VERSION {
        return Err(journal_err(format!("unsupported journal version {version} (want {VERSION})")));
    }
    let flow = d.str().map_err(|e| journal_err(format!("bad header: {e}")))?;
    let config_hash = d.u64().map_err(|_| journal_err("file too short for header"))?;
    let circuit_hash = d.u64().map_err(|_| journal_err("file too short for header"))?;
    let hashed_len = d.pos;
    let stored_sum = d.u64().map_err(|_| journal_err("file too short for header"))?;
    if stored_sum != fnv1a(&bytes[..hashed_len]) {
        return Err(journal_err("header checksum mismatch"));
    }
    let header = JournalHeader { flow, config_hash, circuit_hash };
    let header_end = d.pos;

    // Records: a frame is kind u8 · len u32 · payload · checksum u64.
    let mut records = Vec::new();
    let mut ends = Vec::new();
    let mut pos = header_end;
    let mut torn_tail = false;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 5 {
            torn_tail = true;
            break;
        }
        let kind = bytes[pos];
        let len =
            u32::from_le_bytes([bytes[pos + 1], bytes[pos + 2], bytes[pos + 3], bytes[pos + 4]])
                as usize;
        if remaining < 5 + len + 8 {
            torn_tail = true;
            break;
        }
        let payload = &bytes[pos + 5..pos + 5 + len];
        let stored = {
            let b = &bytes[pos + 5 + len..pos + 5 + len + 8];
            u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
        };
        let mut sum_input = vec![kind];
        sum_input.extend_from_slice(payload);
        let idx = records.len();
        if stored != fnv1a(&sum_input) {
            return Err(journal_err(format!("checksum mismatch in record {idx}")));
        }
        let record = match kind {
            KIND_CHECKPOINT => Checkpoint::decode(payload)
                .map(Record::Checkpoint)
                .map_err(|e| journal_err(format!("record {idx}: {e}")))?,
            KIND_COMMIT => Commit::decode(payload)
                .map(Record::Commit)
                .map_err(|e| journal_err(format!("record {idx}: {e}")))?,
            KIND_PREEMPT => Preempt::decode(payload)
                .map(Record::Preempt)
                .map_err(|e| journal_err(format!("record {idx}: {e}")))?,
            k => return Err(journal_err(format!("record {idx}: unknown kind {k}"))),
        };
        pos += 5 + len + 8;
        records.push(record);
        ends.push(pos);
    }

    let mut bytes = bytes;
    bytes.truncate(pos);
    Ok(LoadedJournal { header, records, bytes, torn_tail, ends, header_end })
}

impl LoadedJournal {
    /// Rejects the journal when its header does not match the current
    /// run's identity.
    pub fn check_header(&self, expected: &JournalHeader) -> Result<(), EngineError> {
        if self.header.flow != expected.flow {
            return Err(journal_err(format!(
                "journal belongs to flow {} but this run is {}",
                self.header.flow, expected.flow
            )));
        }
        if self.header.config_hash != expected.config_hash {
            return Err(journal_err(
                "journal was written under a different configuration (config hash mismatch)",
            ));
        }
        if self.header.circuit_hash != expected.circuit_hash {
            return Err(journal_err(
                "journal belongs to a different input circuit (circuit hash mismatch)",
            ));
        }
        Ok(())
    }

    /// Index and contents of the last checkpoint record, if any.
    pub fn last_checkpoint(&self) -> Option<(usize, &Checkpoint)> {
        self.records.iter().enumerate().rev().find_map(|(i, r)| match r {
            Record::Checkpoint(cp) => Some((i, cp)),
            Record::Commit(_) | Record::Preempt(_) => None,
        })
    }

    /// Byte image ending just *before* record `idx` — the resume writer
    /// is seeded with the prefix before the last checkpoint, because the
    /// resumed loop immediately re-journals an identical checkpoint
    /// (restored state is bit-exact), keeping the resumed journal
    /// byte-identical to an uninterrupted one.
    pub fn image_before(&self, idx: usize) -> Vec<u8> {
        let end = if idx == 0 { self.header_end } else { self.ends[idx - 1] };
        self.bytes[..end].to_vec()
    }

    /// The commit records preceding record index `idx`, in order.
    pub fn commits_before(&self, idx: usize) -> Vec<&Commit> {
        self.records[..idx]
            .iter()
            .filter_map(|r| match r {
                Record::Commit(c) => Some(c),
                Record::Checkpoint(_) | Record::Preempt(_) => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_error::MetricKind;

    fn header() -> JournalHeader {
        JournalHeader { flow: "DP-SA".into(), config_hash: 0x1234, circuit_hash: 0x5678 }
    }

    fn sample_checkpoint(commits: u64) -> Checkpoint {
        Checkpoint {
            commit_count: commits,
            cum_error: 1.25,
            m: 60,
            n_limit: 20,
            max_subs_per_target: 8,
            total_rounds: 7,
            analyses: 2,
            fallback_pending: Some("stale cut".into()),
            first_ranking: vec![9, 4, 7],
            guard: GuardSnapshot {
                val_seed: 42,
                val_words: 64,
                resamples: 1,
                committed_val_error: 0.5,
                evicted: vec![(3, 1), (5, 0)],
                stats: GuardStats {
                    validations: 10,
                    rollbacks: 2,
                    evictions: 2,
                    resamples: 1,
                    fallbacks: 1,
                },
            },
        }
    }

    fn sample_commit(index: u64) -> Commit {
        Commit {
            index,
            lac: Lac::substitute(NodeId(12), Lit::from_raw(7)),
            phase: Phase::Incremental,
            error_after: 0.75,
            saving: 3,
            nodes_after: 40,
            rollbacks: 1,
            cum_error: 0.75,
            step_nanos: [1, 2, 3, 4],
            edits: vec![EditRecord {
                target: NodeId(12),
                replacement: Lit::from_raw(7),
                removed: vec![NodeId(12), NodeId(13)],
                fanout_changed: vec![NodeId(3)],
            }],
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("als-journal-test-{}-{name}.alsj", std::process::id()));
        p
    }

    #[test]
    fn roundtrips_header_and_records() {
        let path = tmp_path("roundtrip");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append_checkpoint(&sample_checkpoint(0)).unwrap();
        w.append_commit(&sample_commit(0)).unwrap();
        w.append_commit(&sample_commit(1)).unwrap();
        w.append_checkpoint(&sample_checkpoint(2)).unwrap();

        let loaded = load(&path).unwrap();
        assert_eq!(loaded.header, header());
        assert!(!loaded.torn_tail);
        assert_eq!(loaded.records.len(), 4);
        assert_eq!(loaded.records[0], Record::Checkpoint(sample_checkpoint(0)));
        assert_eq!(loaded.records[1], Record::Commit(sample_commit(0)));
        assert_eq!(loaded.records[3], Record::Checkpoint(sample_checkpoint(2)));
        let (idx, cp) = loaded.last_checkpoint().unwrap();
        assert_eq!((idx, cp.commit_count), (3, 2));
        assert_eq!(loaded.commits_before(idx).len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_to_last_complete_record() {
        let path = tmp_path("torn");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append_checkpoint(&sample_checkpoint(0)).unwrap();
        w.append_commit(&sample_commit(0)).unwrap();
        let full = std::fs::read(&path).unwrap();
        // chop the final record mid-payload
        std::fs::write(&path, &full[..full.len() - 10]).unwrap();

        let loaded = load(&path).unwrap();
        assert!(loaded.torn_tail);
        assert_eq!(loaded.records.len(), 1, "only the complete checkpoint survives");
        assert!(matches!(loaded.records[0], Record::Checkpoint(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_checksum_is_an_error_not_a_truncation() {
        let path = tmp_path("corrupt");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append_checkpoint(&sample_checkpoint(0)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // flip one payload byte of the (complete) record
        let n = bytes.len();
        bytes[n - 12] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let err = load(&path).unwrap_err();
        assert!(matches!(err, EngineError::Journal { ref detail } if detail.contains("checksum")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_version_and_header_mismatch_are_rejected() {
        let path = tmp_path("badheader");
        std::fs::write(&path, b"NOTAJRNL").unwrap();
        assert!(matches!(load(&path).unwrap_err(), EngineError::Journal { .. }));

        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append_checkpoint(&sample_checkpoint(0)).unwrap();
        let loaded = load(&path).unwrap();
        let other = JournalHeader { circuit_hash: 0x9999, ..header() };
        assert!(loaded.check_header(&header()).is_ok());
        assert!(matches!(loaded.check_header(&other).unwrap_err(), EngineError::Journal { .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn image_before_supports_byte_identical_resume() {
        let path = tmp_path("image");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append_checkpoint(&sample_checkpoint(0)).unwrap();
        w.append_commit(&sample_commit(0)).unwrap();
        let after_commit = std::fs::read(&path).unwrap();
        w.append_checkpoint(&sample_checkpoint(1)).unwrap();
        w.append_commit(&sample_commit(1)).unwrap();

        let loaded = load(&path).unwrap();
        let (idx, _) = loaded.last_checkpoint().unwrap();
        // the image before the last checkpoint is exactly the journal as
        // it stood after the preceding commit
        assert_eq!(loaded.image_before(idx), after_commit);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn preempt_records_roundtrip_and_resume_drops_them() {
        let path = tmp_path("preempt");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append_checkpoint(&sample_checkpoint(0)).unwrap();
        w.append_commit(&sample_commit(0)).unwrap();
        let preempt = Preempt {
            reason: StopReason::Deadline { limit: std::time::Duration::from_millis(1500) },
            commit_count: 1,
        };
        w.append_preempt(&preempt).unwrap();

        let loaded = load(&path).unwrap();
        assert!(!loaded.torn_tail);
        assert_eq!(loaded.records.last(), Some(&Record::Preempt(preempt)));
        // the resume image (before the last checkpoint) excludes the
        // preempt marker, so a resumed journal can converge to the bytes
        // of an uninterrupted run
        let (idx, _) = loaded.last_checkpoint().unwrap();
        assert_eq!(idx, 0);
        assert!(!loaded.image_before(idx).is_empty());
        std::fs::remove_file(&path).ok();

        for reason in [StopReason::IterLimit { limit: 40 }, StopReason::Cancelled] {
            let p = Preempt { reason, commit_count: 7 };
            assert_eq!(Preempt::decode(&p.encode()).unwrap(), p);
        }
    }

    #[test]
    fn config_fingerprint_ignores_threads_but_not_semantics() {
        let a = FlowConfig::new(MetricKind::Med, 4.0).with_patterns(1024);
        let b = a.clone().with_threads(8);
        assert_eq!(config_fingerprint(&a, "DP-SA"), config_fingerprint(&b, "DP-SA"));
        // supervision limits are stop-time knobs, not result semantics: a
        // preempted run must resume under different (or no) limits
        let s = a.clone().with_timeout(std::time::Duration::from_secs(1)).with_max_iters(5);
        assert_eq!(config_fingerprint(&a, "DP-SA"), config_fingerprint(&s, "DP-SA"));
        let c = a.clone().with_seed(99);
        assert_ne!(config_fingerprint(&a, "DP-SA"), config_fingerprint(&c, "DP-SA"));
        assert_ne!(config_fingerprint(&a, "DP-SA"), config_fingerprint(&a, "DP"));
        let mut d = a.clone();
        d.error_bound = 5.0;
        assert_ne!(config_fingerprint(&a, "DP-SA"), config_fingerprint(&d, "DP-SA"));
    }
}
