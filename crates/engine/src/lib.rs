//! The ALS flows: the paper's dual-phase framework and the baselines it is
//! compared against.
//!
//! All flows share the same substrate (AIG editing, bit-parallel
//! simulation, CPM-based batch error estimation) and differ only in *how
//! much analysis they redo per applied LAC*:
//!
//! * [`ConventionalFlow`] — one comprehensive analysis (disjoint cuts +
//!   full CPM + all-LAC evaluation) per applied LAC. This is the enhanced
//!   VECBEE `l = ∞` baseline of the paper.
//! * [`VecbeeDepthOneFlow`] — VECBEE with depth limit `l = 1`: no cuts,
//!   approximate depth-one CPM, exact validation of the chosen LAC before
//!   committing.
//! * [`AccAlsFlow`] — AccALS-style multi-LAC selection: one comprehensive
//!   analysis selects several compatible LACs, each validated exactly
//!   before application; a large estimate-versus-exact deviation stops the
//!   batch (the behaviour the paper observes under MED).
//! * [`DualPhaseFlow`] — the paper's contribution: phase one runs one
//!   comprehensive analysis and selects the candidate set `S_cand`; phase
//!   two applies up to `N` LACs with incremental cut update, partial CPM
//!   and restricted evaluation. With self-adaption enabled it becomes
//!   **DP-SA** (parameter tuning + adaptive phase-two stop).
//!
//! Every flow returns a [`FlowResult`] with the final circuit, error,
//! per-iteration records and a per-step timing breakdown — the data behind
//! the paper's tables.

// Hot-path analysis code must surface failures as values, not panics: a
// stray `unwrap()` here aborts a whole synthesis run.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod accals;
pub mod config;
pub mod context;
pub mod conventional;
pub mod dual_phase;
pub mod error;
#[cfg(feature = "fault-inject")]
pub mod faultplan;
pub mod flow;
pub mod flows;
pub mod guard;
pub mod journal;
pub mod model;
pub mod report;
pub mod supervisor;
pub mod vecbee_flow;

pub use accals::AccAlsFlow;
pub use config::{
    ConfigError, FlowConfig, FlowConfigBuilder, GuardConfig, JournalConfig, PatternSource,
    SelectionStrategy,
};
pub use context::{Ctx, EngineMetrics, Evaluated};
pub use conventional::ConventionalFlow;
pub use dual_phase::DualPhaseFlow;
pub use error::EngineError;
pub use flow::Flow;
pub use flows::{by_name, FlowName, FLOW_NAMES};
pub use guard::BudgetGuard;
pub use model::RuntimeModel;
pub use report::{FlowResult, GuardStats, IterationRecord, Phase, StepTimes};
pub use supervisor::{
    install_signal_handlers, CancelToken, RunGovernor, StopReason, SuperviseConfig,
};
pub use vecbee_flow::VecbeeDepthOneFlow;
