//! AccALS-style multi-LAC selection baseline.

use std::collections::HashSet;

use als_aig::{Aig, NodeId};
use als_cuts::CutState;

use crate::config::FlowConfig;
use crate::context::Ctx;
use crate::error::EngineError;
use crate::flow::Flow;
use crate::guard::BudgetGuard;
use crate::report::{FlowResult, IterationRecord, Phase};
use crate::supervisor::{self, RunGovernor, StopReason};

/// AccALS accelerates the iterative flow by applying *multiple* LACs per
/// comprehensive analysis. After one full analysis, up to `multi_k`
/// candidates are taken in rank order, subject to non-interference (their
/// targets' reachable-output sets must not overlap an already-chosen
/// target's); each is validated exactly against the bound just before
/// application, because the batch estimates go stale as LACs land.
///
/// When validation shows a large deviation between the stale estimate and
/// the exact error, the batch stops early — in the worst case one LAC per
/// analysis is applied, which is the SEALS-like degeneration the paper
/// observes under the MED metric.
#[derive(Clone, Debug)]
pub struct AccAlsFlow {
    cfg: FlowConfig,
    /// Relative deviation between stale estimate and exact error above
    /// which the batch is abandoned.
    deviation_tolerance: f64,
}

impl AccAlsFlow {
    /// Creates the flow with the default deviation tolerance (25%).
    pub fn new(cfg: FlowConfig) -> AccAlsFlow {
        AccAlsFlow { cfg, deviation_tolerance: 0.25 }
    }

    /// Overrides the estimate-deviation tolerance.
    pub fn with_deviation_tolerance(mut self, tol: f64) -> AccAlsFlow {
        self.deviation_tolerance = tol.max(0.0);
        self
    }
}

impl Flow for AccAlsFlow {
    fn name(&self) -> &str {
        "AccALS"
    }

    fn run(&self, original: &Aig) -> Result<FlowResult, EngineError> {
        als_aig::check::check(original).map_err(EngineError::InvalidInput)?;
        let cfg = &self.cfg;
        crate::journal::reject_unsupported(cfg, self)?;
        let bound = cfg.error_bound;
        let mut ctx = Ctx::new(original, cfg);
        let _flow_span = ctx.obs().span("flow");
        let mut guard = BudgetGuard::new(original, cfg);
        let mut iterations = Vec::new();
        let mut first_ranking = Vec::new();
        let mut analyses = 0usize;
        let gov = RunGovernor::new(&cfg.supervise);
        let mut tripped: Option<StopReason> = None;

        'analysis: while iterations.len() < cfg.max_lacs {
            if let Some(reason) = gov.check(iterations.len()) {
                tripped = Some(reason);
                break 'analysis;
            }
            let _iter_span = ctx.obs().span("iteration");
            let _phase_span = ctx.obs().span("phase1");
            // Comprehensive analysis.
            let span = ctx.obs().span("cuts");
            let cuts = CutState::compute_with(&ctx.aig, ctx.pool())?;
            ctx.times.cuts += span.finish();
            ctx.metrics.cut_recomputes.inc();
            let mut span = ctx.obs().span("cpm");
            let cpm = als_cpm::compute_full_with(&ctx.aig, &ctx.sim, &cuts, ctx.pool())?;
            span.count("rows", cpm.num_rows() as u64);
            ctx.times.cpm += span.finish();
            ctx.metrics.cpm_rows_built.add(cpm.num_rows() as u64);
            let span = ctx.obs().span("eval");
            let lacs = als_lac::generate(&ctx.aig, &ctx.sim, &cfg.lac, None);
            ctx.times.eval += span.finish();
            if let Some(reason) = gov.check(iterations.len()) {
                tripped = Some(reason);
                break 'analysis;
            }
            let mut evals = ctx.evaluate_lacs(&cpm, &lacs)?;
            analyses += 1;
            if first_ranking.is_empty() {
                first_ranking = Ctx::rank_targets(&evals);
            }
            evals.retain(|e| e.error_after <= bound);
            evals = guard.admissible(&evals);
            evals.sort_by(|a, b| {
                a.error_after
                    .total_cmp(&b.error_after)
                    .then(b.saving.cmp(&a.saving))
                    .then(a.lac.target.cmp(&b.lac.target))
            });
            if evals.is_empty() {
                break;
            }

            // Greedy multi-selection of non-interfering targets.
            let mut chosen: Vec<_> = Vec::new();
            let mut blocked_outputs = als_sim::PackedBits::zeros(cuts.reach().mask_words());
            let mut used_targets: HashSet<NodeId> = HashSet::new();
            for e in &evals {
                if chosen.len() >= cfg.multi_k {
                    break;
                }
                if used_targets.contains(&e.lac.target) {
                    continue;
                }
                let mask = cuts.reach().mask(e.lac.target);
                let interferes =
                    mask.words().iter().zip(blocked_outputs.words()).any(|(a, b)| a & b != 0);
                if chosen.is_empty() || !interferes {
                    blocked_outputs.or_assign(mask);
                    used_targets.insert(e.lac.target);
                    chosen.push(e.clone());
                }
            }

            // Apply the batch with exact revalidation.
            let mut applied_any = false;
            for (i, e) in chosen.iter().enumerate() {
                if let Some(reason) = gov.check(iterations.len()) {
                    tripped = Some(reason);
                    break 'analysis;
                }
                if !ctx.aig.is_live(e.lac.target) || !ctx.aig.node(e.lac.target).is_and() {
                    continue;
                }
                if let als_lac::LacKind::Substitute { sub } = e.lac.kind {
                    if !ctx.aig.is_live(sub.node()) {
                        continue;
                    }
                }
                let span = ctx.obs().span("eval");
                let exact = ctx.exact_error_of(&e.lac);
                ctx.times.eval += span.finish();
                if exact > bound {
                    break; // stale estimate no longer sound — stop the batch
                }
                // Large estimate deviation: degrade to single-LAC behaviour.
                let scale = bound.max(f64::MIN_POSITIVE);
                let deviation = (exact - e.error_after).abs() / scale;
                if i > 0 && deviation > self.deviation_tolerance {
                    break;
                }
                if guard.try_apply(&mut ctx, e)?.is_none() {
                    break; // the guard measured an overshoot — stop the batch
                }
                ctx.metrics.iterations.inc();
                iterations.push(IterationRecord {
                    lac: e.lac,
                    error_after: exact,
                    saving: e.saving,
                    nodes_after: ctx.aig.num_ands(),
                    phase: if i == 0 { Phase::Comprehensive } else { Phase::Incremental },
                    rollbacks: 0,
                });
                applied_any = true;
            }
            if !applied_any {
                break;
            }
        }

        let stop = match tripped {
            Some(reason) => reason,
            None => supervisor::natural_stop(iterations.len(), cfg.max_lacs),
        };
        ctx.metrics.note_stop(&stop, gov.elapsed());
        Ok(FlowResult {
            flow: self.name().to_string(),
            final_error: guard.final_error(&ctx),
            error_bound: bound,
            iterations,
            runtime: ctx.elapsed(),
            step_times: ctx.times,
            comprehensive_analyses: analyses,
            first_ranking,
            error_report: ctx.report(),
            comprehensive_time: ctx.elapsed(),
            incremental_time: std::time::Duration::ZERO,
            guard: guard.stats(),
            stop,
            circuit: ctx.aig,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_error::MetricKind;

    fn two_independent_adders() -> Aig {
        let mut aig = Aig::new("dual");
        let a = aig.add_inputs("a", 3);
        let b = aig.add_inputs("b", 3);
        let c = aig.add_inputs("c", 3);
        let d = aig.add_inputs("d", 3);
        let mut carry = als_aig::Lit::FALSE;
        for i in 0..3 {
            let (s, ca) = aig.full_adder(a[i], b[i], carry);
            aig.add_output(s, format!("x{i}"));
            carry = ca;
        }
        let mut carry2 = als_aig::Lit::FALSE;
        for i in 0..3 {
            let (s, ca) = aig.full_adder(c[i], d[i], carry2);
            aig.add_output(s, format!("y{i}"));
            carry2 = ca;
        }
        als_aig::edit::sweep_dangling(&mut aig);
        aig
    }

    #[test]
    fn bound_respected() {
        let aig = two_independent_adders();
        let cfg = FlowConfig::new(MetricKind::Med, 3.0).with_patterns(1024);
        let res = AccAlsFlow::new(cfg).run(&aig).unwrap();
        assert!(res.final_error <= 3.0 + 1e-9, "error {}", res.final_error);
        als_aig::check::check(&res.circuit).unwrap();
    }

    #[test]
    fn multi_selection_reduces_analyses() {
        let aig = two_independent_adders();
        let cfg = FlowConfig::new(MetricKind::Er, 0.6).with_patterns(1024);
        let res = AccAlsFlow::new(cfg).run(&aig).unwrap();
        if res.lacs_applied() >= 2 {
            assert!(res.comprehensive_analyses <= res.lacs_applied());
        }
    }

    #[test]
    fn zero_tolerance_still_sound() {
        let aig = two_independent_adders();
        let cfg = FlowConfig::new(MetricKind::Med, 2.0).with_patterns(512);
        let res = AccAlsFlow::new(cfg).with_deviation_tolerance(0.0).run(&aig).unwrap();
        assert!(res.final_error <= 2.0 + 1e-9);
    }
}
