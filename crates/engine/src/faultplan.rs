//! Deterministic fault injection for the chaos test suite.
//!
//! A [`FaultPlan`] is threaded through a run via
//! [`FlowConfig::faults`](crate::config::FlowConfig) and consulted at four
//! injection points, each of which has a *designed* recovery path the chaos
//! tests assert on:
//!
//! | injection point                        | designed recovery                      |
//! |----------------------------------------|----------------------------------------|
//! | evaluation worker panic (any flow)     | `EngineError::WorkerPanic`             |
//! | budget-guard overshoot streak          | rollback + eviction + retry            |
//! | incremental cut-state corruption       | spot-check → comprehensive fallback    |
//! | fresh (post-fallback) state corruption | `EngineError::CorruptAnalysis`         |
//! | journal append I/O failure             | `EngineError::Io`, journal resumable   |
//! | transient journal I/O failure          | bounded retry + backoff, then success  |
//! | forced deadline trip at a round        | graceful stop, best-so-far + `Preempt` |
//!
//! The whole module only exists under the `fault-inject` feature; without
//! it neither the plan nor any injection call site is compiled, so the
//! production hot path carries zero cost. Plans are deterministic: every
//! trigger is an exact count of events ("the k-th validation", "after
//! round n"), never time- or randomness-based, so a chaos test fails
//! reproducibly or not at all.
//!
//! Clones share state (the plan rides inside a cloned `FlowConfig`), which
//! also lets the test keep a handle and assert *that* a fault actually
//! fired via the `*_fired` counters.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Sentinel for "this injection is disarmed".
const OFF: usize = usize::MAX;

/// Shared state of one plan; see the module docs for the injection points.
#[derive(Debug)]
struct PlanState {
    /// Panic while evaluating the item with this 0-based global index
    /// (counted across every `evaluate_lacs` call of the run).
    panic_eval_item: AtomicUsize,
    /// Items evaluated so far.
    eval_items_seen: AtomicUsize,
    /// Remaining guard validations to report as overshoots.
    overshoot_streak: AtomicUsize,
    /// Corrupt the incremental cut state after this phase-two round.
    corrupt_after_round: AtomicUsize,
    /// Corrupt the freshly recomputed state a spot-check fallback lands
    /// on, forcing the `CorruptAnalysis` end of the degradation ladder.
    corrupt_fresh: AtomicUsize,
    /// Fail the journal append with this 0-based index.
    fail_journal_append: AtomicUsize,
    /// Journal appends attempted so far.
    journal_appends_seen: AtomicUsize,
    /// Fail the parent-directory fsync with this 0-based index.
    fail_journal_dir_sync: AtomicUsize,
    /// Directory fsyncs attempted so far.
    dir_syncs_seen: AtomicUsize,
    /// Remaining journal persists to fail *transiently* (ErrorKind the
    /// retry policy classifies as retryable).
    transient_journal_failures: AtomicUsize,
    /// Force the run governor's deadline to trip right after this
    /// phase-two round.
    trip_deadline_round: AtomicUsize,
    /// How many injections of each kind actually fired.
    eval_panics_fired: AtomicUsize,
    overshoots_fired: AtomicUsize,
    corruptions_fired: AtomicUsize,
    journal_failures_fired: AtomicUsize,
    dir_sync_failures_fired: AtomicUsize,
    transient_failures_fired: AtomicUsize,
    deadline_trips_fired: AtomicUsize,
}

impl Default for PlanState {
    fn default() -> PlanState {
        PlanState {
            panic_eval_item: AtomicUsize::new(OFF),
            eval_items_seen: AtomicUsize::new(0),
            overshoot_streak: AtomicUsize::new(0),
            corrupt_after_round: AtomicUsize::new(OFF),
            corrupt_fresh: AtomicUsize::new(0),
            fail_journal_append: AtomicUsize::new(OFF),
            journal_appends_seen: AtomicUsize::new(0),
            fail_journal_dir_sync: AtomicUsize::new(OFF),
            dir_syncs_seen: AtomicUsize::new(0),
            transient_journal_failures: AtomicUsize::new(0),
            trip_deadline_round: AtomicUsize::new(OFF),
            eval_panics_fired: AtomicUsize::new(0),
            overshoots_fired: AtomicUsize::new(0),
            corruptions_fired: AtomicUsize::new(0),
            journal_failures_fired: AtomicUsize::new(0),
            dir_sync_failures_fired: AtomicUsize::new(0),
            transient_failures_fired: AtomicUsize::new(0),
            deadline_trips_fired: AtomicUsize::new(0),
        }
    }
}

/// A deterministic schedule of faults to inject into one run. The default
/// plan injects nothing.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    state: Arc<PlanState>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    // ---------------- arming (builder style) ----------------------------

    /// Panic inside the LAC-evaluation worker while processing the
    /// `item`-th candidate of the run (0-based, counted across all
    /// evaluation calls). Only parallel pools (≥ 2 threads over enough
    /// items) contain the panic as [`EngineError::WorkerPanic`]; the
    /// serial path propagates panics natively by design.
    pub fn panic_in_eval_at_item(self, item: usize) -> FaultPlan {
        self.state.panic_eval_item.store(item, Ordering::SeqCst);
        self
    }

    /// Report the next `streak` guard validations as budget overshoots,
    /// regardless of the measured error.
    pub fn force_overshoots(self, streak: usize) -> FaultPlan {
        self.state.overshoot_streak.store(streak, Ordering::SeqCst);
        self
    }

    /// Corrupt the incrementally maintained cut state right after the
    /// given phase-two round (1-based, counted across the run).
    pub fn corrupt_cuts_after_round(self, round: usize) -> FaultPlan {
        self.state.corrupt_after_round.store(round, Ordering::SeqCst);
        self
    }

    /// Additionally corrupt the *fresh* analysis state that the
    /// spot-check fallback recomputes, so the degradation ladder runs out
    /// of rungs and the flow must abort with `CorruptAnalysis`.
    pub fn corrupt_fresh_analysis(self) -> FaultPlan {
        self.state.corrupt_fresh.store(1, Ordering::SeqCst);
        self
    }

    /// Fail the `append`-th journal write of the run (0-based; the header
    /// write does not count) with a synthetic I/O error.
    pub fn fail_journal_append(self, append: usize) -> FaultPlan {
        self.state.fail_journal_append.store(append, Ordering::SeqCst);
        self
    }

    /// Fail the `sync`-th parent-directory fsync of the run (0-based; the
    /// header write does not count) with a synthetic I/O error — the
    /// "rename landed but the directory entry is not durable" case.
    pub fn fail_journal_dir_sync(self, sync: usize) -> FaultPlan {
        self.state.fail_journal_dir_sync.store(sync, Ordering::SeqCst);
        self
    }

    /// Fail the next `count` journal persists with a *transient* I/O
    /// error (`ErrorKind::Interrupted`), which the writer's bounded
    /// retry policy must absorb without surfacing an error.
    pub fn fail_journal_append_transient(self, count: usize) -> FaultPlan {
        self.state.transient_journal_failures.store(count, Ordering::SeqCst);
        self
    }

    /// Trip the run governor's wall-clock deadline right after the given
    /// phase-two round (1-based, counted across the run), exercising the
    /// graceful mid-iteration preemption path without real waiting.
    pub fn trip_deadline_at_round(self, round: usize) -> FaultPlan {
        self.state.trip_deadline_round.store(round, Ordering::SeqCst);
        self
    }

    // ---------------- firing (called from injection points) --------------

    /// Called per evaluated candidate; panics when the armed item index is
    /// reached.
    pub(crate) fn tick_eval_item(&self) {
        let armed = self.state.panic_eval_item.load(Ordering::SeqCst);
        if armed == OFF {
            return;
        }
        let seen = self.state.eval_items_seen.fetch_add(1, Ordering::SeqCst);
        if seen == armed {
            self.state.eval_panics_fired.fetch_add(1, Ordering::SeqCst);
            panic!("fault injection: evaluation worker panic at item {armed}");
        }
    }

    /// Whether the current guard validation must be treated as an
    /// overshoot.
    pub(crate) fn take_forced_overshoot(&self) -> bool {
        let fired = self
            .state
            .overshoot_streak
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| left.checked_sub(1))
            .is_ok();
        if fired {
            self.state.overshoots_fired.fetch_add(1, Ordering::SeqCst);
        }
        fired
    }

    /// Whether the incremental cut state must be corrupted after
    /// phase-two round `round` (fires at most once).
    pub(crate) fn take_corrupt_at_round(&self, round: usize) -> bool {
        let fired = self
            .state
            .corrupt_after_round
            .compare_exchange(round, OFF, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        if fired {
            self.state.corruptions_fired.fetch_add(1, Ordering::SeqCst);
        }
        fired
    }

    /// Whether the fresh post-fallback analysis state must be corrupted
    /// (fires at most once).
    pub(crate) fn take_corrupt_fresh(&self) -> bool {
        let fired = self
            .state
            .corrupt_fresh
            .compare_exchange(1, 0, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        if fired {
            self.state.corruptions_fired.fetch_add(1, Ordering::SeqCst);
        }
        fired
    }

    /// Called per journal append; returns the injected I/O error when the
    /// armed append index is reached.
    pub(crate) fn take_journal_failure(&self) -> Option<std::io::Error> {
        let armed = self.state.fail_journal_append.load(Ordering::SeqCst);
        if armed == OFF {
            return None;
        }
        let seen = self.state.journal_appends_seen.fetch_add(1, Ordering::SeqCst);
        if seen == armed {
            self.state.journal_failures_fired.fetch_add(1, Ordering::SeqCst);
            return Some(std::io::Error::other(format!(
                "fault injection: journal append {armed} failed"
            )));
        }
        None
    }

    /// Called per parent-directory fsync; returns the injected I/O error
    /// when the armed sync index is reached.
    pub(crate) fn take_dir_sync_failure(&self) -> Option<std::io::Error> {
        let armed = self.state.fail_journal_dir_sync.load(Ordering::SeqCst);
        if armed == OFF {
            return None;
        }
        let seen = self.state.dir_syncs_seen.fetch_add(1, Ordering::SeqCst);
        if seen == armed {
            self.state.dir_sync_failures_fired.fetch_add(1, Ordering::SeqCst);
            return Some(std::io::Error::other(format!(
                "fault injection: journal directory sync {armed} failed"
            )));
        }
        None
    }

    /// Called per journal persist attempt; returns the injected transient
    /// I/O error while the armed countdown lasts.
    pub(crate) fn take_transient_journal_failure(&self) -> Option<std::io::Error> {
        let fired = self
            .state
            .transient_journal_failures
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| left.checked_sub(1))
            .is_ok();
        if fired {
            self.state.transient_failures_fired.fetch_add(1, Ordering::SeqCst);
            return Some(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "fault injection: transient journal write failure",
            ));
        }
        None
    }

    /// Whether the governor's deadline must be tripped after phase-two
    /// round `round` (fires at most once).
    pub(crate) fn take_trip_deadline(&self, round: usize) -> bool {
        let fired = self
            .state
            .trip_deadline_round
            .compare_exchange(round, OFF, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        if fired {
            self.state.deadline_trips_fired.fetch_add(1, Ordering::SeqCst);
        }
        fired
    }

    // ---------------- assertions (for the chaos tests) --------------------

    /// Evaluation-worker panics fired so far.
    pub fn eval_panics_fired(&self) -> usize {
        self.state.eval_panics_fired.load(Ordering::SeqCst)
    }

    /// Forced overshoots fired so far.
    pub fn overshoots_fired(&self) -> usize {
        self.state.overshoots_fired.load(Ordering::SeqCst)
    }

    /// State corruptions (incremental or fresh) fired so far.
    pub fn corruptions_fired(&self) -> usize {
        self.state.corruptions_fired.load(Ordering::SeqCst)
    }

    /// Journal append failures fired so far.
    pub fn journal_failures_fired(&self) -> usize {
        self.state.journal_failures_fired.load(Ordering::SeqCst)
    }

    /// Journal directory-sync failures fired so far.
    pub fn dir_sync_failures_fired(&self) -> usize {
        self.state.dir_sync_failures_fired.load(Ordering::SeqCst)
    }

    /// Transient journal failures fired so far.
    pub fn transient_failures_fired(&self) -> usize {
        self.state.transient_failures_fired.load(Ordering::SeqCst)
    }

    /// Forced deadline trips fired so far.
    pub fn deadline_trips_fired(&self) -> usize {
        self.state.deadline_trips_fired.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let plan = FaultPlan::new();
        for _ in 0..100 {
            plan.tick_eval_item();
            assert!(!plan.take_forced_overshoot());
            assert!(!plan.take_corrupt_at_round(1));
            assert!(!plan.take_corrupt_fresh());
            assert!(plan.take_journal_failure().is_none());
            assert!(plan.take_dir_sync_failure().is_none());
            assert!(plan.take_transient_journal_failure().is_none());
            assert!(!plan.take_trip_deadline(1));
        }
        assert_eq!(plan.eval_panics_fired(), 0);
        assert_eq!(plan.overshoots_fired(), 0);
        assert_eq!(plan.corruptions_fired(), 0);
        assert_eq!(plan.journal_failures_fired(), 0);
        assert_eq!(plan.dir_sync_failures_fired(), 0);
    }

    #[test]
    fn overshoot_streak_counts_down_exactly() {
        let plan = FaultPlan::new().force_overshoots(3);
        let fired: usize = (0..10).filter(|_| plan.take_forced_overshoot()).count();
        assert_eq!(fired, 3);
        assert_eq!(plan.overshoots_fired(), 3);
    }

    #[test]
    fn corruption_triggers_fire_once_at_their_round() {
        let plan = FaultPlan::new().corrupt_cuts_after_round(2).corrupt_fresh_analysis();
        assert!(!plan.take_corrupt_at_round(1));
        assert!(plan.take_corrupt_at_round(2));
        assert!(!plan.take_corrupt_at_round(2), "fires at most once");
        assert!(plan.take_corrupt_fresh());
        assert!(!plan.take_corrupt_fresh());
        assert_eq!(plan.corruptions_fired(), 2);
    }

    #[test]
    fn eval_panic_fires_at_the_armed_item_and_is_shared_across_clones() {
        let plan = FaultPlan::new().panic_in_eval_at_item(2);
        let clone = plan.clone();
        clone.tick_eval_item();
        clone.tick_eval_item();
        let caught = std::panic::catch_unwind(|| clone.tick_eval_item());
        assert!(caught.is_err());
        assert_eq!(plan.eval_panics_fired(), 1, "clones share the fired counter");
    }

    #[test]
    fn journal_failure_fires_at_the_armed_append() {
        let plan = FaultPlan::new().fail_journal_append(1);
        assert!(plan.take_journal_failure().is_none());
        let err = plan.take_journal_failure().expect("second append fails");
        assert!(err.to_string().contains("journal append 1"));
        assert!(plan.take_journal_failure().is_none(), "fires once");
        assert_eq!(plan.journal_failures_fired(), 1);
    }

    #[test]
    fn transient_failures_count_down_and_are_retryable_kinds() {
        let plan = FaultPlan::new().fail_journal_append_transient(2);
        let e = plan.take_transient_journal_failure().expect("first fails");
        assert_eq!(e.kind(), std::io::ErrorKind::Interrupted);
        assert!(plan.take_transient_journal_failure().is_some());
        assert!(plan.take_transient_journal_failure().is_none(), "only n failures");
        assert_eq!(plan.transient_failures_fired(), 2);
    }

    #[test]
    fn deadline_trip_fires_once_at_its_round() {
        let plan = FaultPlan::new().trip_deadline_at_round(2);
        assert!(!plan.take_trip_deadline(1));
        assert!(plan.take_trip_deadline(2));
        assert!(!plan.take_trip_deadline(2), "fires at most once");
        assert_eq!(plan.deadline_trips_fired(), 1);
    }

    #[test]
    fn dir_sync_failure_fires_at_the_armed_sync() {
        let plan = FaultPlan::new().fail_journal_dir_sync(1);
        assert!(plan.take_dir_sync_failure().is_none());
        let err = plan.take_dir_sync_failure().expect("second sync fails");
        assert!(err.to_string().contains("directory sync 1"));
        assert!(plan.take_dir_sync_failure().is_none(), "fires once");
        assert_eq!(plan.dir_sync_failures_fired(), 1);
    }
}
