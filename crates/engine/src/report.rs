//! Flow results and per-step timing.

use std::time::Duration;

use als_aig::{Aig, NodeId};
use als_lac::Lac;

/// Which phase of a dual-phase iteration applied a LAC (single-phase flows
/// always report [`Phase::Comprehensive`]).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Applied after a comprehensive (full) analysis.
    Comprehensive,
    /// Applied by an incremental phase-two round.
    Incremental,
}

/// Accumulated runtime of the three analysis steps (plus application and
/// bookkeeping).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct StepTimes {
    /// Step 1: obtaining/updating disjoint cuts.
    pub cuts: Duration,
    /// Step 2: computing the CPM.
    pub cpm: Duration,
    /// Step 3: candidate generation and error evaluation.
    pub eval: Duration,
    /// LAC application, resimulation and cache refresh.
    pub apply: Duration,
}

impl StepTimes {
    /// Total of all tracked steps.
    pub fn total(&self) -> Duration {
        self.cuts + self.cpm + self.eval + self.apply
    }

    /// Adds another accumulator's times into this one.
    pub fn add(&mut self, other: &StepTimes) {
        self.cuts += other.cuts;
        self.cpm += other.cpm;
        self.eval += other.eval;
        self.apply += other.apply;
    }

    /// The time accumulated since an earlier snapshot of the same
    /// accumulator.
    pub fn delta_since(&self, snapshot: &StepTimes) -> StepTimes {
        StepTimes {
            cuts: self.cuts.saturating_sub(snapshot.cuts),
            cpm: self.cpm.saturating_sub(snapshot.cpm),
            eval: self.eval.saturating_sub(snapshot.eval),
            apply: self.apply.saturating_sub(snapshot.apply),
        }
    }

    /// Index (1..=3) of the analysis step that took more than half of the
    /// analysis time, if any — the paper's "dominating step".
    pub fn dominating_step(&self) -> Option<usize> {
        let analysis = self.cuts + self.cpm + self.eval;
        if analysis.is_zero() {
            return None;
        }
        let half = analysis / 2;
        if self.cuts > half {
            Some(1)
        } else if self.cpm > half {
            Some(2)
        } else if self.eval > half {
            Some(3)
        } else {
            None
        }
    }
}

/// One applied LAC.
#[derive(Clone, Debug)]
pub struct IterationRecord {
    /// The applied change.
    pub lac: Lac,
    /// Estimated error after applying (equals the measured error for exact
    /// analyses).
    pub error_after: f64,
    /// Gates removed by the LAC.
    pub saving: usize,
    /// Live AND gates remaining after the application.
    pub nodes_after: usize,
    /// Phase that selected the LAC.
    pub phase: Phase,
    /// Candidates the budget guard applied, measured over budget and
    /// rolled back before this one committed.
    pub rollbacks: usize,
}

/// Guarded-execution activity accumulated over a run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Exact pre-commit measurements performed.
    pub validations: usize,
    /// Tentatively applied LACs rolled back on budget overshoot.
    pub rollbacks: usize,
    /// Candidates evicted from the pool after a rollback.
    pub evictions: usize,
    /// Validation-set doublings triggered by overshoots (strict mode).
    pub resamples: usize,
    /// Phase-two rounds aborted to a fresh comprehensive analysis after a
    /// failed incremental-state spot-check.
    pub fallbacks: usize,
}

/// Everything a flow run produces.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// Flow name (for reports).
    pub flow: String,
    /// The final approximate circuit.
    pub circuit: Aig,
    /// Final error under the configured metric (measured, not estimated).
    pub final_error: f64,
    /// Error bound the run was given.
    pub error_bound: f64,
    /// One record per applied LAC, in order.
    pub iterations: Vec<IterationRecord>,
    /// Wall-clock runtime of the whole run.
    pub runtime: Duration,
    /// Per-step timing accumulated over the run.
    pub step_times: StepTimes,
    /// Number of comprehensive analyses performed.
    pub comprehensive_analyses: usize,
    /// Node ranking (by smallest error increase) after the first
    /// comprehensive analysis — the Fig. 4 experiment consumes this.
    pub first_ranking: Vec<NodeId>,
    /// Full statistical error report of the final circuit (ER, MED, MSE,
    /// max ED, NMED, MRED and an error-distance histogram).
    pub error_report: als_error::ErrorReport,
    /// Wall-clock time spent in comprehensive (phase-one) work.
    pub comprehensive_time: Duration,
    /// Wall-clock time spent in incremental (phase-two) work.
    pub incremental_time: Duration,
    /// Guarded-execution activity (rollbacks, evictions, resamples,
    /// incremental-state fallbacks).
    pub guard: GuardStats,
    /// Why the run ended. Anything but
    /// [`Converged`](crate::StopReason::Converged) means the run stopped
    /// early and `circuit` is the best-so-far result — still valid and
    /// still within `error_bound`.
    pub stop: crate::StopReason,
}

/// Version tag of the [`FlowResult::to_json`] document schema. Bumped on
/// any incompatible change; the service wire protocol embeds the same
/// documents, so client and server agree by construction.
pub const RESULT_SCHEMA_VERSION: u64 = 1;

impl GuardStats {
    /// The wire form of the guard activity counters.
    pub fn to_json(&self) -> als_obs::json::Json {
        als_obs::json::Json::obj()
            .with("validations", self.validations)
            .with("rollbacks", self.rollbacks)
            .with("evictions", self.evictions)
            .with("resamples", self.resamples)
            .with("fallbacks", self.fallbacks)
    }
}

impl StepTimes {
    /// The wire form of the per-step timing breakdown, in microseconds.
    pub fn to_json(&self) -> als_obs::json::Json {
        als_obs::json::Json::obj()
            .with("cuts_us", self.cuts.as_micros() as u64)
            .with("cpm_us", self.cpm.as_micros() as u64)
            .with("eval_us", self.eval.as_micros() as u64)
            .with("apply_us", self.apply.as_micros() as u64)
    }
}

impl FlowResult {
    /// Number of applied LACs.
    pub fn lacs_applied(&self) -> usize {
        self.iterations.len()
    }

    /// Renders the run summary as one JSON document — the **shared result
    /// schema**: `als synth --json` prints exactly this object, and the
    /// job service embeds it verbatim as the `result` field of a completed
    /// job's status response, so every consumer parses one shape.
    ///
    /// The circuit itself is not embedded (it is written to `-o` by the
    /// CLI and stored per job by the service); everything else a caller
    /// needs to judge the run — error, bound, stop reason, sizes, timing,
    /// guard activity and the full statistical error report — is.
    pub fn to_json(&self) -> als_obs::json::Json {
        use als_obs::json::Json;
        let report = Json::obj()
            .with("er", self.error_report.er)
            .with("med", self.error_report.med)
            .with("mse", self.error_report.mse)
            .with("max_ed", self.error_report.max_ed)
            .with("nmed", self.error_report.nmed)
            .with("mred", self.error_report.mred)
            .with(
                "ed_histogram",
                Json::Arr(
                    self.error_report.histogram.iter().map(|&c| Json::UInt(c as u64)).collect(),
                ),
            );
        Json::obj()
            .with("schema", RESULT_SCHEMA_VERSION)
            .with("flow", self.flow.as_str())
            .with("final_error", self.final_error)
            .with("error_bound", self.error_bound)
            .with("stop", self.stop.to_json())
            .with("lacs_applied", self.lacs_applied())
            .with("final_nodes", self.final_nodes())
            .with("comprehensive_analyses", self.comprehensive_analyses)
            .with("runtime_us", self.runtime.as_micros() as u64)
            .with("comprehensive_us", self.comprehensive_time.as_micros() as u64)
            .with("incremental_us", self.incremental_time.as_micros() as u64)
            .with("step_times", self.step_times.to_json())
            .with("guard", self.guard.to_json())
            .with("error_report", report)
    }

    /// AND-gate count of the final circuit.
    pub fn final_nodes(&self) -> usize {
        self.circuit.num_ands()
    }

    /// Average wall-clock time per applied LAC.
    pub fn time_per_lac(&self) -> Duration {
        if self.iterations.is_empty() {
            self.runtime
        } else {
            self.runtime / self.iterations.len() as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominating_step_detection() {
        let mut t = StepTimes::default();
        assert_eq!(t.dominating_step(), None);
        t.cuts = Duration::from_millis(90);
        t.cpm = Duration::from_millis(5);
        t.eval = Duration::from_millis(5);
        assert_eq!(t.dominating_step(), Some(1));
        t.cpm = Duration::from_millis(200);
        assert_eq!(t.dominating_step(), Some(2));
        t.eval = Duration::from_millis(400);
        assert_eq!(t.dominating_step(), Some(3));
        // balanced: none dominates
        let b = StepTimes {
            cuts: Duration::from_millis(10),
            cpm: Duration::from_millis(10),
            eval: Duration::from_millis(10),
            apply: Duration::ZERO,
        };
        assert_eq!(b.dominating_step(), None);
    }

    #[test]
    fn step_times_accumulate() {
        let mut a = StepTimes {
            cuts: Duration::from_secs(1),
            cpm: Duration::from_secs(2),
            eval: Duration::from_secs(3),
            apply: Duration::from_secs(4),
        };
        let b = a;
        a.add(&b);
        assert_eq!(a.total(), Duration::from_secs(20));
    }
}
