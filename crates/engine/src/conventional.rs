//! The conventional single-LAC-per-iteration flow (enhanced VECBEE,
//! `l = ∞`).

use als_aig::Aig;
use als_cuts::CutState;

use crate::config::FlowConfig;
use crate::context::Ctx;
use crate::error::EngineError;
use crate::flow::Flow;
use crate::guard::BudgetGuard;
use crate::report::{FlowResult, IterationRecord, Phase};
use crate::supervisor::{self, RunGovernor, StopReason};

/// One comprehensive analysis per applied LAC: full disjoint cuts, full
/// CPM, all candidate LACs evaluated, the best applied. Exact error
/// estimation throughout — the quality reference every acceleration is
/// measured against.
#[derive(Clone, Debug)]
pub struct ConventionalFlow {
    cfg: FlowConfig,
}

impl ConventionalFlow {
    /// Creates the flow.
    pub fn new(cfg: FlowConfig) -> ConventionalFlow {
        ConventionalFlow { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.cfg
    }
}

impl Flow for ConventionalFlow {
    fn name(&self) -> &str {
        "Conventional(l=inf)"
    }

    fn run(&self, original: &Aig) -> Result<FlowResult, EngineError> {
        als_aig::check::check(original).map_err(EngineError::InvalidInput)?;
        let cfg = &self.cfg;
        crate::journal::reject_unsupported(cfg, self)?;
        let mut ctx = Ctx::new(original, cfg);
        let _flow_span = ctx.obs().span("flow");
        let mut guard = BudgetGuard::new(original, cfg);
        let mut iterations = Vec::new();
        let mut first_ranking = Vec::new();
        let mut analyses = 0usize;
        let gov = RunGovernor::new(&cfg.supervise);
        let mut tripped: Option<StopReason> = None;

        while iterations.len() < cfg.max_lacs {
            if let Some(reason) = gov.check(iterations.len()) {
                tripped = Some(reason);
                break;
            }
            let _iter_span = ctx.obs().span("iteration");
            let _phase_span = ctx.obs().span("phase1");
            // Step 1: disjoint cuts (full recomputation — this is the
            // "conventional" cost the dual-phase flow removes).
            let mut span = ctx.obs().span("cuts");
            span.count("nodes", ctx.aig.num_ands() as u64);
            let cuts = CutState::compute_with(&ctx.aig, ctx.pool())?;
            ctx.times.cuts += span.finish();
            ctx.metrics.cut_recomputes.inc();

            // Step 2: full CPM.
            let mut span = ctx.obs().span("cpm");
            let cpm = als_cpm::compute_full_with(&ctx.aig, &ctx.sim, &cuts, ctx.pool())?;
            span.count("rows", cpm.num_rows() as u64);
            ctx.times.cpm += span.finish();
            ctx.metrics.cpm_rows_built.add(cpm.num_rows() as u64);

            // Step 3: all candidate LACs.
            let span = ctx.obs().span("eval");
            let lacs = als_lac::generate(&ctx.aig, &ctx.sim, &cfg.lac, None);
            ctx.times.eval += span.finish();
            if let Some(reason) = gov.check(iterations.len()) {
                tripped = Some(reason);
                break;
            }
            let evals = ctx.evaluate_lacs(&cpm, &lacs)?;
            analyses += 1;
            if first_ranking.is_empty() {
                first_ranking = Ctx::rank_targets(&evals);
            }

            let Some(applied) = guard.select_apply(&mut ctx, &evals, cfg.selection)? else {
                break;
            };
            ctx.metrics.iterations.inc();
            iterations.push(IterationRecord {
                lac: applied.eval.lac,
                error_after: applied.eval.error_after,
                saving: applied.eval.saving,
                nodes_after: ctx.aig.num_ands(),
                phase: Phase::Comprehensive,
                rollbacks: applied.rollbacks,
            });
        }

        let stop = match tripped {
            Some(reason) => reason,
            None => supervisor::natural_stop(iterations.len(), cfg.max_lacs),
        };
        ctx.metrics.note_stop(&stop, gov.elapsed());
        Ok(FlowResult {
            flow: self.name().to_string(),
            final_error: guard.final_error(&ctx),
            error_bound: cfg.error_bound,
            iterations,
            runtime: ctx.elapsed(),
            step_times: ctx.times,
            comprehensive_analyses: analyses,
            first_ranking,
            error_report: ctx.report(),
            comprehensive_time: ctx.elapsed(),
            incremental_time: std::time::Duration::ZERO,
            guard: guard.stats(),
            stop,
            circuit: ctx.aig,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_error::MetricKind;

    fn adder() -> Aig {
        // small hand-rolled 3-bit adder to avoid a circular dev-dependency
        let mut aig = Aig::new("add3");
        let a = aig.add_inputs("a", 3);
        let b = aig.add_inputs("b", 3);
        let mut carry = als_aig::Lit::FALSE;
        let mut outs = Vec::new();
        for i in 0..3 {
            let (s, c) = aig.full_adder(a[i], b[i], carry);
            outs.push(s);
            carry = c;
        }
        outs.push(carry);
        for (i, &o) in outs.iter().enumerate() {
            aig.add_output(o, format!("s{i}"));
        }
        aig
    }

    #[test]
    fn zero_bound_applies_only_free_lacs() {
        let aig = adder();
        let cfg = FlowConfig::new(MetricKind::Er, 0.0).with_patterns(512);
        let res = ConventionalFlow::new(cfg).run(&aig).unwrap();
        assert_eq!(res.final_error, 0.0);
        // any applied LAC must have been error-free
        for it in &res.iterations {
            assert_eq!(it.error_after, 0.0);
        }
    }

    #[test]
    fn bounded_run_respects_bound_and_saves_area() {
        let aig = adder();
        let cfg = FlowConfig::new(MetricKind::Med, 2.0).with_patterns(512);
        let res = ConventionalFlow::new(cfg).run(&aig).unwrap();
        assert!(res.final_error <= 2.0 + 1e-9, "error {}", res.final_error);
        assert!(res.final_nodes() < aig.num_ands(), "no area saved");
        assert!(!res.iterations.is_empty());
        assert!(res.comprehensive_analyses >= res.lacs_applied());
        als_aig::check::check(&res.circuit).unwrap();
    }

    #[test]
    fn monotone_bounds_monotone_quality() {
        let aig = adder();
        let loose = ConventionalFlow::new(FlowConfig::new(MetricKind::Med, 4.0).with_patterns(512))
            .run(&aig)
            .unwrap();
        let tight = ConventionalFlow::new(FlowConfig::new(MetricKind::Med, 0.5).with_patterns(512))
            .run(&aig)
            .unwrap();
        assert!(loose.final_nodes() <= tight.final_nodes());
    }

    #[test]
    fn first_ranking_is_populated() {
        let aig = adder();
        let cfg = FlowConfig::new(MetricKind::Med, 1.0).with_patterns(512);
        let res = ConventionalFlow::new(cfg).run(&aig).unwrap();
        assert!(!res.first_ranking.is_empty());
    }
}
