//! Flow configuration.

use std::fmt;

use als_error::MetricKind;
use als_lac::CandidateConfig;
use als_obs::Obs;

/// How Monte-Carlo input patterns are drawn.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub enum PatternSource {
    /// Independent uniform bits (the paper's experimental setup).
    #[default]
    Uniform,
    /// Independent biased bits: each input is 1 with the given
    /// probability — exercises the "any input distribution" claim.
    Biased(f64),
}

/// How the best candidate LAC of an iteration is chosen.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum SelectionStrategy {
    /// Smallest error increase, ties broken by larger area saving — the
    /// paper's criterion ("selects one target node with the smallest
    /// error increase").
    #[default]
    MinError,
    /// Largest area saving per unit of error increase (SASIMI-style
    /// gain/cost greedy). Tends to remove big cones earlier at the price
    /// of burning error budget faster.
    MaxGainPerError,
}

/// Settings of the guarded execution layer: transactional LAC application
/// with exact pre-commit re-measurement, rollback on budget overshoot and
/// incremental-state spot-checking.
#[derive(Clone, Debug, PartialEq)]
pub struct GuardConfig {
    /// Apply each selected LAC inside a transaction and re-measure the
    /// circuit error exactly before committing; roll back and evict the
    /// candidate when the measurement overshoots the bound. With the
    /// flows' exact estimators this never triggers, so enabling it does
    /// not change results — it removes the *assumption* that it cannot.
    pub enabled: bool,
    /// Additionally re-validate every commit on an independent validation
    /// pattern set (different seed, [`GuardConfig::validation_factor`]×
    /// larger than the estimation set). Catches overshoot caused by an
    /// unrepresentative estimation sample, at the price of one extra
    /// simulation per candidate commit.
    pub strict: bool,
    /// Size multiplier of the strict validation set relative to the
    /// estimation set.
    pub validation_factor: usize,
    /// Candidates tried (applied, measured, rolled back) per selection
    /// before the iteration gives up.
    pub max_retries: usize,
    /// How many times an overshoot may double the validation sample count
    /// before it stops growing.
    pub max_resamples: usize,
    /// Live nodes spot-checked against ground truth after each
    /// incremental phase-two round (0 disables the check).
    pub spot_check: usize,
}

impl Default for GuardConfig {
    fn default() -> GuardConfig {
        GuardConfig {
            enabled: true,
            strict: false,
            validation_factor: 4,
            max_retries: 8,
            max_resamples: 3,
            spot_check: 8,
        }
    }
}

/// Crash-safety settings: where the run journal lives and whether the run
/// starts fresh or resumes from the journal's last checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalConfig {
    /// Path of the journal file (created fresh, or read when resuming).
    pub path: std::path::PathBuf,
    /// Resume from an existing journal instead of starting a fresh run.
    pub resume: bool,
}

/// Configuration shared by every flow.
///
/// The dual-phase parameters follow the paper's experimental setup:
/// `M = 60` candidates (150 for large circuits), `N = M/3`, and the
/// self-adaption constants `R_inc = 0.25`, `b_r = 0.025`, `b_s = 0.25`,
/// `e_t = 0.5`.
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Error metric the bound applies to.
    pub metric: MetricKind,
    /// Error upper bound `E_b`.
    pub error_bound: f64,
    /// Number of Monte-Carlo patterns (rounded up to a multiple of 64).
    pub num_patterns: usize,
    /// RNG seed for pattern generation.
    pub seed: u64,
    /// Input distribution for pattern generation.
    pub patterns_from: PatternSource,
    /// Candidate selection criterion.
    pub selection: SelectionStrategy,
    /// Explicit output weights; `None` selects `2^o` (unsigned word).
    pub weights: Option<Vec<f64>>,
    /// Candidate LAC enumeration settings.
    pub lac: CandidateConfig,
    /// Candidate-set size `M` for the dual-phase flows.
    pub m: usize,
    /// Phase-two iteration limit `N` (must stay below `M`).
    pub n: usize,
    /// Self-adaption growth/shrink factor `R_inc`.
    pub r_inc: f64,
    /// Relaxed bound ratio `b_r`.
    pub b_r: f64,
    /// Strict bound ratio `b_s`.
    pub b_s: f64,
    /// Relative-error-increase threshold `e_t`.
    pub e_t: f64,
    /// AccALS: maximum LACs applied per comprehensive analysis.
    pub multi_k: usize,
    /// Safety cap on applied LACs.
    pub max_lacs: usize,
    /// Worker threads for the shared analysis pool — disjoint cuts, CPM
    /// waves, simulation waves and batch error estimation all fan out over
    /// it (the paper uses 16 for its Table II runs; 1 = serial).
    pub threads: usize,
    /// Adaptive-scheduler settings of the shared pool: serial/parallel
    /// cutover, chunk sizing and work stealing. Defaults to the
    /// `ALS_SCHED` environment variable (adaptive when unset). Like
    /// `threads`, scheduling never affects result bytes — only where and
    /// in what grain the work runs — so it is excluded from journal
    /// fingerprints and a run may be resumed under a different scheduler.
    pub sched: als_par::SchedConfig,
    /// Fold trivially-constant gates after each applied LAC (an exact
    /// transformation ABC would perform before mapping; keeps reported
    /// areas honest for constant LACs).
    pub fold_constants: bool,
    /// Guarded execution settings (transactional application, budget
    /// guard, incremental-state fallback).
    pub guard: GuardConfig,
    /// Crash-safe run journal (`None` = no journal). Only the dual-phase
    /// flows support journaling; other flows reject it with a
    /// configuration error.
    pub journal: Option<JournalConfig>,
    /// Observability handle: hierarchical tracing spans and the metrics
    /// registry every instrumented layer (flows, guard, journal, worker
    /// pool) reports into. Disabled by default; a disabled handle makes
    /// every instrumentation point an inlined no-op.
    pub obs: Obs,
    /// Supervision limits: wall-clock deadline, iteration budget and the
    /// external cancellation token. Like `threads`, these never affect
    /// the result bytes of the work that does run — they only decide when
    /// it stops — so they are excluded from journal fingerprints and a
    /// preempted run may be resumed under different (or no) limits.
    pub supervise: crate::supervisor::SuperviseConfig,
    /// Deterministic fault-injection plan exercised by the chaos test
    /// suite. Compiled in only with the `fault-inject` feature; the
    /// default plan injects nothing.
    #[cfg(feature = "fault-inject")]
    pub faults: crate::faultplan::FaultPlan,
}

/// The default worker-thread budget: the `ALS_THREADS` environment
/// variable when set to a positive integer, else 1 (serial). Runs stay
/// byte-for-byte deterministic at any thread count, so this is purely a
/// performance knob — safe to flip fleet-wide (e.g. in CI) without
/// touching call sites.
fn default_threads() -> usize {
    std::env::var("ALS_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

impl FlowConfig {
    /// A configuration with the paper's small-circuit defaults.
    pub fn new(metric: MetricKind, error_bound: f64) -> FlowConfig {
        FlowConfig {
            metric,
            error_bound,
            num_patterns: 8192,
            seed: 0xA15,
            patterns_from: PatternSource::Uniform,
            selection: SelectionStrategy::MinError,
            weights: None,
            lac: CandidateConfig::sasimi(8),
            m: 60,
            n: 20,
            r_inc: 0.25,
            b_r: 0.025,
            b_s: 0.25,
            e_t: 0.5,
            multi_k: 8,
            max_lacs: 100_000,
            threads: default_threads(),
            sched: als_par::SchedConfig::from_env(),
            fold_constants: true,
            guard: GuardConfig::default(),
            journal: None,
            obs: Obs::disabled(),
            supervise: crate::supervisor::SuperviseConfig::default(),
            #[cfg(feature = "fault-inject")]
            faults: crate::faultplan::FaultPlan::default(),
        }
    }

    /// Starts a validating builder with the paper's small-circuit
    /// defaults. Unlike the chainable `with_*` setters (which clamp bad
    /// values silently), [`FlowConfigBuilder::build`] rejects an
    /// inconsistent configuration with a [`ConfigError`].
    pub fn builder(metric: MetricKind, error_bound: f64) -> FlowConfigBuilder {
        FlowConfigBuilder { cfg: FlowConfig::new(metric, error_bound) }
    }

    /// Switches to the paper's large-circuit setup: `M = 150`, `N = 50`,
    /// constant LACs only.
    pub fn for_large_circuit(mut self) -> FlowConfig {
        self.m = 150;
        self.n = 50;
        self.lac = CandidateConfig::constants_only();
        self
    }

    /// Sets the Monte-Carlo pattern count (rounded up to a multiple of 64).
    pub fn with_patterns(mut self, num_patterns: usize) -> FlowConfig {
        self.num_patterns = num_patterns.max(64);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> FlowConfig {
        self.seed = seed;
        self
    }

    /// Sets the candidate-set size `M` and derives `N = M/3`.
    pub fn with_candidates(mut self, m: usize) -> FlowConfig {
        self.m = m.max(3);
        self.n = (self.m / 3).max(1);
        self
    }

    /// Sets the worker-thread budget of the shared analysis pool,
    /// overriding the `ALS_THREADS` default.
    pub fn with_threads(mut self, threads: usize) -> FlowConfig {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the adaptive-scheduler settings of the shared pool,
    /// overriding the `ALS_SCHED` default.
    pub fn with_sched(mut self, sched: als_par::SchedConfig) -> FlowConfig {
        self.sched = sched;
        self
    }

    /// Selects the input distribution.
    pub fn with_input_distribution(mut self, source: PatternSource) -> FlowConfig {
        self.patterns_from = source;
        self
    }

    /// Selects the candidate selection criterion.
    pub fn with_selection(mut self, strategy: SelectionStrategy) -> FlowConfig {
        self.selection = strategy;
        self
    }

    /// Replaces the guarded-execution settings wholesale.
    pub fn with_guard(mut self, guard: GuardConfig) -> FlowConfig {
        self.guard = guard;
        self
    }

    /// Enables strict mode: every commit is re-validated on an
    /// independent, larger pattern set.
    pub fn with_strict(mut self) -> FlowConfig {
        self.guard.strict = true;
        self
    }

    /// Sets how many rejected candidates a selection may roll back before
    /// the iteration gives up.
    pub fn with_max_retries(mut self, retries: usize) -> FlowConfig {
        self.guard.max_retries = retries;
        self
    }

    /// Journals every committed iteration to `path` (fresh run: any
    /// existing journal at that path is overwritten).
    pub fn with_journal(mut self, path: impl Into<std::path::PathBuf>) -> FlowConfig {
        self.journal = Some(JournalConfig { path: path.into(), resume: false });
        self
    }

    /// Resumes a run from the journal at `path` and keeps journaling to it.
    pub fn with_resume(mut self, path: impl Into<std::path::PathBuf>) -> FlowConfig {
        self.journal = Some(JournalConfig { path: path.into(), resume: true });
        self
    }

    /// Installs a fault-injection plan (chaos tests only).
    #[cfg(feature = "fault-inject")]
    pub fn with_faults(mut self, faults: crate::faultplan::FaultPlan) -> FlowConfig {
        self.faults = faults;
        self
    }

    /// Attaches an observability handle: every instrumented layer of the
    /// run (flows, guard, journal, worker pool) reports spans and metrics
    /// through it.
    pub fn with_obs(mut self, obs: Obs) -> FlowConfig {
        self.obs = obs;
        self
    }

    /// Imposes a wall-clock deadline on the run: once it passes, the flow
    /// stops at the next supervision check and reports the best-so-far
    /// circuit with [`StopReason::Deadline`](crate::StopReason::Deadline).
    pub fn with_timeout(mut self, deadline: std::time::Duration) -> FlowConfig {
        self.supervise.deadline = Some(deadline);
        self
    }

    /// Caps the number of applied LACs as a supervision budget (unlike
    /// `max_lacs`, excluded from journal fingerprints: a budgeted run can
    /// be resumed without the cap).
    pub fn with_max_iters(mut self, max_iters: usize) -> FlowConfig {
        self.supervise.max_iters = Some(max_iters);
        self
    }

    /// Installs an external cancellation token; cancelling it stops the
    /// run gracefully at the next supervision check.
    pub fn with_cancel_token(mut self, token: crate::supervisor::CancelToken) -> FlowConfig {
        self.supervise.cancel = token;
        self
    }

    /// Number of 64-bit pattern words.
    pub fn pattern_words(&self) -> usize {
        self.num_patterns.div_ceil(64)
    }

    /// Checks the cross-field invariants the builder enforces. The public
    /// fields remain assignable for one deprecation cycle, so a config
    /// assembled by hand can be re-validated before a run.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_patterns == 0 {
            return Err(ConfigError::NoPatterns);
        }
        if self.m == 0 || self.n == 0 {
            return Err(ConfigError::EmptyCandidateSet { m: self.m, n: self.n });
        }
        if self.m <= self.n {
            return Err(ConfigError::CandidateBudget { m: self.m, n: self.n });
        }
        if let PatternSource::Biased(p) = self.patterns_from {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(ConfigError::BiasOutOfRange(p));
            }
        }
        if !self.error_bound.is_finite() || self.error_bound < 0.0 {
            return Err(ConfigError::BadErrorBound(self.error_bound));
        }
        if self.supervise.deadline == Some(std::time::Duration::ZERO) {
            return Err(ConfigError::ZeroTimeout);
        }
        if self.supervise.max_iters == Some(0) {
            return Err(ConfigError::ZeroIterLimit);
        }
        Ok(())
    }
}

/// Why a [`FlowConfigBuilder`] refused to produce a [`FlowConfig`].
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// The Monte-Carlo sample count is zero.
    NoPatterns,
    /// `M` or `N` is zero — no candidates to analyse.
    EmptyCandidateSet {
        /// Candidate-set size `M`.
        m: usize,
        /// Phase-two iteration limit `N`.
        n: usize,
    },
    /// The phase-two budget `N` is not strictly below the candidate-set
    /// size `M`.
    CandidateBudget {
        /// Candidate-set size `M`.
        m: usize,
        /// Phase-two iteration limit `N`.
        n: usize,
    },
    /// A biased input distribution's one-probability is outside `[0, 1]`.
    BiasOutOfRange(f64),
    /// The error bound is negative, infinite or NaN.
    BadErrorBound(f64),
    /// A wall-clock deadline of zero — the run could never start. Omit
    /// the deadline instead to run unlimited.
    ZeroTimeout,
    /// A supervision iteration budget of zero — the run could never apply
    /// a LAC. Omit the budget instead to run unlimited.
    ZeroIterLimit,
    /// A resumed run's supervision iteration budget does not exceed the
    /// number of LACs its journal has already committed: the run would be
    /// preempted again before making any progress. Raise (or drop) the
    /// budget — supervision limits are excluded from journal fingerprints
    /// precisely so a resume may change them.
    ResumeIterBudget {
        /// LACs already committed in the journal being resumed.
        journaled: usize,
        /// The configured supervision budget.
        limit: usize,
    },
}

impl ConfigError {
    /// A stable machine-readable code for the wire protocol's error
    /// bodies (`ErrorBody.code`).
    pub fn code(&self) -> &'static str {
        match self {
            ConfigError::NoPatterns => "no_patterns",
            ConfigError::EmptyCandidateSet { .. } => "empty_candidate_set",
            ConfigError::CandidateBudget { .. } => "candidate_budget",
            ConfigError::BiasOutOfRange(_) => "bias_out_of_range",
            ConfigError::BadErrorBound(_) => "bad_error_bound",
            ConfigError::ZeroTimeout => "zero_timeout",
            ConfigError::ZeroIterLimit => "zero_iter_limit",
            ConfigError::ResumeIterBudget { .. } => "resume_iter_budget",
        }
    }

    /// The wire form: `{"code": …, "message": …}` — the same shape the
    /// service's `ErrorBody` uses, so configuration rejections cross the
    /// wire without losing their type.
    pub fn to_json(&self) -> als_obs::json::Json {
        als_obs::json::Json::obj().with("code", self.code()).with("message", self.to_string())
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoPatterns => {
                write!(f, "the Monte-Carlo pattern count must be positive")
            }
            ConfigError::EmptyCandidateSet { m, n } => {
                write!(f, "M and N must be positive (got M = {m}, N = {n})")
            }
            ConfigError::CandidateBudget { m, n } => {
                write!(f, "the candidate-set size M must exceed N (got M = {m}, N = {n})")
            }
            ConfigError::BiasOutOfRange(p) => {
                write!(f, "biased input probability {p} is outside [0, 1]")
            }
            ConfigError::BadErrorBound(b) => {
                write!(f, "error bound {b} must be finite and non-negative")
            }
            ConfigError::ZeroTimeout => {
                write!(f, "a --timeout of zero would stop the run before it starts")
            }
            ConfigError::ZeroIterLimit => {
                write!(f, "a --max-iters of zero would stop the run before it starts")
            }
            ConfigError::ResumeIterBudget { journaled, limit } => {
                write!(
                    f,
                    "the iteration budget ({limit}) does not exceed the {journaled} LACs the \
                     journal already holds — the resumed run could make no progress (raise or \
                     drop --max-iters)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`FlowConfig`], started by
/// [`FlowConfig::builder`]. Setters store values verbatim (no clamping);
/// [`FlowConfigBuilder::build`] checks the cross-field invariants and
/// returns a [`ConfigError`] instead of silently repairing the input.
#[derive(Clone, Debug)]
pub struct FlowConfigBuilder {
    cfg: FlowConfig,
}

impl FlowConfigBuilder {
    /// Sets the Monte-Carlo pattern count (validated, not clamped).
    pub fn patterns(mut self, num_patterns: usize) -> FlowConfigBuilder {
        self.cfg.num_patterns = num_patterns;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> FlowConfigBuilder {
        self.cfg.seed = seed;
        self
    }

    /// Sets the candidate-set size `M` and the phase-two limit `N`
    /// explicitly (`build` enforces `M > N > 0`).
    pub fn candidates(mut self, m: usize, n: usize) -> FlowConfigBuilder {
        self.cfg.m = m;
        self.cfg.n = n;
        self
    }

    /// Sets the worker-thread budget.
    pub fn threads(mut self, threads: usize) -> FlowConfigBuilder {
        self.cfg.threads = threads.max(1);
        self
    }

    /// Replaces the adaptive-scheduler settings of the shared pool.
    pub fn sched(mut self, sched: als_par::SchedConfig) -> FlowConfigBuilder {
        self.cfg.sched = sched;
        self
    }

    /// Selects the input distribution (`build` rejects a biased
    /// probability outside `[0, 1]`).
    pub fn input_distribution(mut self, source: PatternSource) -> FlowConfigBuilder {
        self.cfg.patterns_from = source;
        self
    }

    /// Selects the candidate selection criterion.
    pub fn selection(mut self, strategy: SelectionStrategy) -> FlowConfigBuilder {
        self.cfg.selection = strategy;
        self
    }

    /// Replaces the guarded-execution settings wholesale.
    pub fn guard(mut self, guard: GuardConfig) -> FlowConfigBuilder {
        self.cfg.guard = guard;
        self
    }

    /// Journals every committed iteration to `path`.
    pub fn journal(mut self, path: impl Into<std::path::PathBuf>) -> FlowConfigBuilder {
        self.cfg.journal = Some(JournalConfig { path: path.into(), resume: false });
        self
    }

    /// Resumes a run from the journal at `path` and keeps journaling to
    /// it.
    pub fn resume(mut self, path: impl Into<std::path::PathBuf>) -> FlowConfigBuilder {
        self.cfg.journal = Some(JournalConfig { path: path.into(), resume: true });
        self
    }

    /// Enables strict mode: every commit is re-validated on an
    /// independent, larger pattern set.
    pub fn strict(mut self) -> FlowConfigBuilder {
        self.cfg.guard.strict = true;
        self
    }

    /// Sets how many rejected candidates a selection may roll back before
    /// the iteration gives up.
    pub fn max_retries(mut self, retries: usize) -> FlowConfigBuilder {
        self.cfg.guard.max_retries = retries;
        self
    }

    /// Imposes a wall-clock deadline (`build` rejects a zero deadline).
    pub fn timeout(mut self, deadline: std::time::Duration) -> FlowConfigBuilder {
        self.cfg.supervise.deadline = Some(deadline);
        self
    }

    /// Caps the number of applied LACs as a supervision budget (`build`
    /// rejects a zero budget).
    pub fn max_iters(mut self, max_iters: usize) -> FlowConfigBuilder {
        self.cfg.supervise.max_iters = Some(max_iters);
        self
    }

    /// Installs an external cancellation token.
    pub fn cancel_token(mut self, token: crate::supervisor::CancelToken) -> FlowConfigBuilder {
        self.cfg.supervise.cancel = token;
        self
    }

    /// Attaches an observability handle.
    pub fn obs(mut self, obs: Obs) -> FlowConfigBuilder {
        self.cfg.obs = obs;
        self
    }

    /// Switches to the paper's large-circuit setup (`M = 150`, `N = 50`,
    /// constant LACs only).
    pub fn large_circuit(mut self) -> FlowConfigBuilder {
        self.cfg = self.cfg.for_large_circuit();
        self
    }

    /// Validates the assembled configuration and returns it, or the first
    /// violated invariant.
    pub fn build(self) -> Result<FlowConfig, ConfigError> {
        self.cfg.validate()?;
        let mut cfg = self.cfg;
        // normalise the pattern count exactly like the legacy setter
        cfg.num_patterns = cfg.num_patterns.max(64);
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_codes_are_stable_and_distinct() {
        let cases = [
            (ConfigError::NoPatterns, "no_patterns"),
            (ConfigError::EmptyCandidateSet { m: 0, n: 0 }, "empty_candidate_set"),
            (ConfigError::CandidateBudget { m: 10, n: 20 }, "candidate_budget"),
            (ConfigError::BiasOutOfRange(2.0), "bias_out_of_range"),
            (ConfigError::BadErrorBound(-1.0), "bad_error_bound"),
            (ConfigError::ZeroTimeout, "zero_timeout"),
            (ConfigError::ZeroIterLimit, "zero_iter_limit"),
            (ConfigError::ResumeIterBudget { journaled: 5, limit: 5 }, "resume_iter_budget"),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for (err, code) in cases {
            assert_eq!(err.code(), code);
            assert!(seen.insert(code), "duplicate error code {code}");
            let j = err.to_json();
            assert_eq!(j.get("code").and_then(|c| c.as_str()), Some(code));
            let msg = j.get("message").and_then(|m| m.as_str()).unwrap_or("");
            assert_eq!(msg, err.to_string(), "wire message mirrors Display");
        }
    }

    #[test]
    fn defaults_match_paper() {
        let c = FlowConfig::new(MetricKind::Mse, 100.0);
        assert_eq!(c.m, 60);
        assert_eq!(c.n, 20);
        assert_eq!(c.r_inc, 0.25);
        assert_eq!(c.b_r, 0.025);
        assert_eq!(c.b_s, 0.25);
        assert_eq!(c.e_t, 0.5);
        assert!(c.n < c.m);
    }

    #[test]
    fn large_circuit_setup() {
        let c = FlowConfig::new(MetricKind::Er, 0.01).for_large_circuit();
        assert_eq!(c.m, 150);
        assert_eq!(c.n, 50);
        assert!(!c.lac.substitutions);
    }

    #[test]
    fn pattern_rounding() {
        let c = FlowConfig::new(MetricKind::Er, 0.01).with_patterns(100);
        assert_eq!(c.pattern_words(), 2);
        assert_eq!(FlowConfig::new(MetricKind::Er, 0.1).with_patterns(1).pattern_words(), 1);
    }

    #[test]
    fn candidate_derivation() {
        let c = FlowConfig::new(MetricKind::Er, 0.01).with_candidates(90);
        assert_eq!((c.m, c.n), (90, 30));
    }

    #[test]
    fn builder_accepts_valid_configs() {
        let c = FlowConfig::builder(MetricKind::Med, 2.0)
            .patterns(1000)
            .seed(7)
            .candidates(90, 30)
            .threads(4)
            .input_distribution(PatternSource::Biased(0.25))
            .build()
            .unwrap();
        assert_eq!((c.m, c.n), (90, 30));
        assert_eq!(c.seed, 7);
        assert_eq!(c.threads, 4);
        assert_eq!(c.num_patterns, 1000);
        assert!(!c.obs.is_enabled());
    }

    #[test]
    fn builder_rejects_inverted_candidate_budget() {
        let err = FlowConfig::builder(MetricKind::Med, 1.0).candidates(20, 20).build().unwrap_err();
        assert_eq!(err, ConfigError::CandidateBudget { m: 20, n: 20 });
        assert!(err.to_string().contains("M must exceed N"));
        let err = FlowConfig::builder(MetricKind::Med, 1.0).candidates(0, 0).build().unwrap_err();
        assert_eq!(err, ConfigError::EmptyCandidateSet { m: 0, n: 0 });
    }

    #[test]
    fn builder_rejects_zero_patterns_and_bad_bias() {
        let err = FlowConfig::builder(MetricKind::Er, 0.1).patterns(0).build().unwrap_err();
        assert_eq!(err, ConfigError::NoPatterns);
        let err = FlowConfig::builder(MetricKind::Er, 0.1)
            .input_distribution(PatternSource::Biased(1.5))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::BiasOutOfRange(1.5));
        assert!(FlowConfig::builder(MetricKind::Er, 0.1)
            .input_distribution(PatternSource::Biased(f64::NAN))
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_degenerate_supervision_limits() {
        let err =
            FlowConfig::builder(MetricKind::Er, 0.1).timeout(std::time::Duration::ZERO).build();
        assert_eq!(err.unwrap_err(), ConfigError::ZeroTimeout);
        let err = FlowConfig::builder(MetricKind::Er, 0.1).max_iters(0).build();
        assert_eq!(err.unwrap_err(), ConfigError::ZeroIterLimit);
        let c = FlowConfig::builder(MetricKind::Er, 0.1)
            .timeout(std::time::Duration::from_secs(5))
            .max_iters(3)
            .build()
            .unwrap();
        assert_eq!(c.supervise.deadline, Some(std::time::Duration::from_secs(5)));
        assert_eq!(c.supervise.max_iters, Some(3));
    }

    #[test]
    fn builder_rejects_bad_bounds_and_validate_matches() {
        let err = FlowConfig::builder(MetricKind::Er, -1.0).build().unwrap_err();
        assert_eq!(err, ConfigError::BadErrorBound(-1.0));
        assert!(FlowConfig::builder(MetricKind::Er, f64::INFINITY).build().is_err());
        // hand-assembled configs re-validate through the same predicate
        let mut c = FlowConfig::new(MetricKind::Er, 0.1);
        assert!(c.validate().is_ok());
        c.n = c.m;
        assert!(c.validate().is_err());
    }
}
