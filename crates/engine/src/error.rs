//! Structured failure reporting for the synthesis flows.
//!
//! [`crate::Flow::run`] returns `Result<FlowResult, EngineError>` so a
//! front end can report *why* a run aborted (and exit nonzero) instead of
//! unwinding through a panic from deep inside an analysis step.

use std::fmt;
use std::path::PathBuf;

use als_aig::check::CheckError;
use als_cpm::CpmError;

/// Why a flow aborted instead of producing a [`crate::FlowResult`].
#[derive(Debug)]
pub enum EngineError {
    /// The input circuit failed structural validation before the run
    /// started.
    InvalidInput(CheckError),
    /// The working circuit failed structural validation mid-run. The flow
    /// aborts rather than report results computed on a corrupt netlist.
    CorruptCircuit {
        /// Name of the flow that detected the corruption.
        flow: String,
        /// The failed structural invariant.
        source: CheckError,
    },
    /// Analysis state failed cross-validation even after a from-scratch
    /// recompute — retrying cannot re-establish it.
    CorruptAnalysis {
        /// Name of the flow that detected the corruption.
        flow: String,
        /// What the spot-check found.
        detail: String,
    },
    /// CPM construction failed (stale or missing disjoint cuts).
    Cpm(CpmError),
    /// A parallel evaluation worker panicked.
    WorkerPanic(String),
    /// An invalid configuration value.
    Config(String),
    /// A filesystem operation on a run artifact (journal file, temp file)
    /// failed.
    Io {
        /// The path the operation targeted.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A run journal is unusable: bad magic/version, header mismatch
    /// against the current run, a corrupted record checksum, or a replay
    /// that diverged from the journaled state.
    Journal {
        /// What exactly is wrong with the journal.
        detail: String,
    },
}

impl EngineError {
    /// Whether retrying the failed operation could plausibly succeed.
    /// Only environmental I/O hiccups qualify — an interrupted syscall, a
    /// saturated device, a timeout. Semantic I/O failures (permissions,
    /// missing directory, disk full) and every non-I/O variant are final:
    /// retrying them re-runs the same deterministic failure.
    pub fn is_transient(&self) -> bool {
        use std::io::ErrorKind;
        match self {
            EngineError::Io { source, .. } => matches!(
                source.kind(),
                ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
            ),
            _ => false,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidInput(e) => {
                write!(f, "input circuit failed structural check: {e}")
            }
            EngineError::CorruptCircuit { flow, source } => {
                write!(f, "{flow}: working circuit corrupted mid-run: {source}")
            }
            EngineError::CorruptAnalysis { flow, detail } => {
                write!(f, "{flow}: analysis state corrupt after full recompute: {detail}")
            }
            EngineError::Cpm(e) => write!(f, "CPM construction failed: {e}"),
            EngineError::WorkerPanic(detail) => {
                write!(f, "evaluation worker panicked: {detail}")
            }
            EngineError::Config(detail) => write!(f, "invalid configuration: {detail}"),
            EngineError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            EngineError::Journal { detail } => write!(f, "run journal error: {detail}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Cpm(e) => Some(e),
            EngineError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CpmError> for EngineError {
    fn from(e: CpmError) -> EngineError {
        match e {
            // A worker panic inside CPM construction is the same failure
            // class as one inside LAC evaluation — surface it uniformly.
            CpmError::WorkerPanic(detail) => EngineError::WorkerPanic(detail),
            other => EngineError::Cpm(other),
        }
    }
}

impl From<als_par::WorkerPanic> for EngineError {
    fn from(p: als_par::WorkerPanic) -> EngineError {
        EngineError::WorkerPanic(p.0)
    }
}

impl From<crate::config::ConfigError> for EngineError {
    fn from(e: crate::config::ConfigError) -> EngineError {
        EngineError::Config(e.to_string())
    }
}

// Lets infallible conversions (e.g. passing an already-typed `FlowName`
// to the generic `flows::by_name`) satisfy an `Into<EngineError>` bound.
impl From<std::convert::Infallible> for EngineError {
    fn from(e: std::convert::Infallible) -> EngineError {
        match e {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_aig::NodeId;

    #[test]
    fn displays_carry_context() {
        let e = EngineError::Cpm(CpmError::MissingCut { node: NodeId(5) });
        assert!(e.to_string().contains("CPM"));
        let e = EngineError::CorruptAnalysis { flow: "DP-SA".into(), detail: "stale mask".into() };
        let s = e.to_string();
        assert!(s.contains("DP-SA") && s.contains("stale mask"));
        let e = EngineError::WorkerPanic("boom".into());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn io_and_journal_variants_display_context() {
        let e = EngineError::Io {
            path: std::path::PathBuf::from("/tmp/run.alsj"),
            source: std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        };
        let s = e.to_string();
        assert!(s.contains("/tmp/run.alsj") && s.contains("denied"), "{s}");
        assert!(std::error::Error::source(&e).is_some());
        let e = EngineError::Journal { detail: "checksum mismatch in record 3".into() };
        assert!(e.to_string().contains("checksum mismatch in record 3"));
    }

    #[test]
    fn cpm_errors_convert_and_chain() {
        let e: EngineError = CpmError::MissingCut { node: NodeId(2) }.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn transience_is_an_io_kind_property() {
        let io = |kind| EngineError::Io {
            path: std::path::PathBuf::from("/tmp/run.alsj"),
            source: std::io::Error::new(kind, "x"),
        };
        assert!(io(std::io::ErrorKind::Interrupted).is_transient());
        assert!(io(std::io::ErrorKind::WouldBlock).is_transient());
        assert!(io(std::io::ErrorKind::TimedOut).is_transient());
        assert!(!io(std::io::ErrorKind::PermissionDenied).is_transient());
        assert!(!io(std::io::ErrorKind::Other).is_transient());
        assert!(!EngineError::Journal { detail: "x".into() }.is_transient());
        assert!(!EngineError::WorkerPanic("x".into()).is_transient());
    }

    #[test]
    fn worker_panics_convert_uniformly() {
        let e: EngineError = als_par::WorkerPanic("oops".into()).into();
        assert!(matches!(e, EngineError::WorkerPanic(ref d) if d == "oops"));
        let e: EngineError = CpmError::WorkerPanic("deep".into()).into();
        assert!(matches!(e, EngineError::WorkerPanic(ref d) if d == "deep"));
    }
}
