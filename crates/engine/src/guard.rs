//! The budget guard: transactional LAC application with exact pre-commit
//! re-measurement and rollback on budget overshoot.
//!
//! Every flow routes its "apply the selected candidate" step through
//! [`BudgetGuard::select_apply`]. The guard applies the candidate inside a
//! transaction ([`crate::Ctx::apply_txn`]), re-measures the circuit error
//! exactly on the estimation patterns and — in strict mode — on an
//! independent, larger validation pattern set, and only then commits. An
//! overshoot rolls the application back, evicts the candidate from the pool
//! and retries with the next-best one; strict-mode overshoots additionally
//! double the validation sample count (up to a cap) so a persistently
//! unlucky sample cannot keep admitting bad candidates.

use std::collections::HashSet;

use als_aig::{Aig, EditRecord, NodeId};
use als_error::{unsigned_weights, ErrorState, MetricKind};
use als_obs::{Counter, Obs};
use als_sim::{PackedBits, PatternSet, Simulator};

use crate::config::{FlowConfig, GuardConfig, SelectionStrategy};
use crate::context::{Ctx, Evaluated};
use crate::error::EngineError;
use crate::report::GuardStats;

/// Relative slack added to the bound before an exact measurement counts as
/// an overshoot, so commit/reject decisions are immune to floating-point
/// noise between estimator and re-measurement.
fn threshold(bound: f64) -> f64 {
    bound + 1e-9 * bound.abs().max(1.0)
}

/// An accepted application returned by [`BudgetGuard::select_apply`].
pub struct GuardedApply {
    /// The candidate that committed.
    pub eval: Evaluated,
    /// Edit records of the committed application (LAC first).
    pub records: Vec<EditRecord>,
    /// Candidates applied, measured over budget and rolled back before
    /// this one committed.
    pub rollbacks: usize,
}

/// The strict-mode validation set: patterns drawn independently of the
/// estimation set, plus the original circuit's outputs on them.
struct ValSet {
    patterns: PatternSet,
    golden: Vec<PackedBits>,
}

/// Guarded-execution state of one flow run.
pub struct BudgetGuard {
    cfg: GuardConfig,
    #[cfg(feature = "fault-inject")]
    faults: crate::faultplan::FaultPlan,
    bound: f64,
    metric: MetricKind,
    weights: Vec<f64>,
    /// The exact input circuit, kept to produce golden outputs for
    /// freshly drawn validation sets.
    original: Aig,
    /// Seed of the next validation set to draw.
    val_seed: u64,
    /// 64-bit words per validation pattern set (doubles on resample).
    val_words: usize,
    val: Option<ValSet>,
    resamples: usize,
    /// `(target, replacement literal)` pairs measured over budget; never
    /// offered again this run.
    evicted: HashSet<(NodeId, u32)>,
    /// Validation error recorded at the most recent commit (strict mode).
    committed_val_error: f64,
    stats: GuardStats,
    metrics: GuardMetrics,
}

/// Pre-registered guard counters mirroring [`GuardStats`] into the
/// metrics registry (no-ops when observability is off).
#[derive(Clone, Debug, Default)]
struct GuardMetrics {
    validations: Counter,
    rollbacks: Counter,
    evictions: Counter,
    resamples: Counter,
    fallbacks: Counter,
}

impl GuardMetrics {
    fn register(obs: &Obs) -> GuardMetrics {
        GuardMetrics {
            validations: obs
                .counter("als_guard_validations_total", "exact pre-commit measurements"),
            rollbacks: obs
                .counter("als_guard_rollbacks_total", "applications rolled back on overshoot"),
            evictions: obs
                .counter("als_guard_evictions_total", "candidates evicted after a rollback"),
            resamples: obs
                .counter("als_guard_resamples_total", "strict-mode validation-set doublings"),
            fallbacks: obs.counter(
                "als_guard_fallbacks_total",
                "phase-two aborts to a fresh comprehensive analysis",
            ),
        }
    }
}

impl BudgetGuard {
    /// Builds the guard for a run of `cfg` on `original`.
    pub fn new(original: &Aig, cfg: &FlowConfig) -> BudgetGuard {
        let weights =
            cfg.weights.clone().unwrap_or_else(|| unsigned_weights(original.num_outputs()));
        BudgetGuard {
            cfg: cfg.guard.clone(),
            #[cfg(feature = "fault-inject")]
            faults: cfg.faults.clone(),
            bound: cfg.error_bound,
            metric: cfg.metric,
            weights,
            original: original.clone(),
            // A seed unrelated to the estimation seed, so validation
            // patterns are independent of the ones candidates were tuned on.
            val_seed: cfg.seed ^ 0x5E_ED0F_DA7A_u64,
            val_words: cfg.pattern_words().max(1) * cfg.guard.validation_factor.max(1),
            val: None,
            resamples: 0,
            evicted: HashSet::new(),
            committed_val_error: 0.0,
            stats: GuardStats::default(),
            metrics: GuardMetrics::register(&cfg.obs),
        }
    }

    /// Guard activity accumulated so far.
    pub fn stats(&self) -> GuardStats {
        self.stats
    }

    /// Snapshot of the guard's mutable state for a journal checkpoint.
    /// The validation set itself is not captured: it is a pure function
    /// of `val_seed`/`val_words` and is lazily rebuilt after a restore.
    pub fn snapshot(&self) -> crate::journal::GuardSnapshot {
        let mut evicted: Vec<(u32, u32)> = self.evicted.iter().map(|&(n, r)| (n.0, r)).collect();
        evicted.sort_unstable();
        crate::journal::GuardSnapshot {
            val_seed: self.val_seed,
            val_words: self.val_words as u64,
            resamples: self.resamples as u64,
            committed_val_error: self.committed_val_error,
            evicted,
            stats: self.stats,
        }
    }

    /// Restores the state captured by [`BudgetGuard::snapshot`].
    pub fn restore(&mut self, s: &crate::journal::GuardSnapshot) {
        self.val_seed = s.val_seed;
        self.val_words = s.val_words as usize;
        self.val = None;
        self.resamples = s.resamples as usize;
        self.committed_val_error = s.committed_val_error;
        self.evicted = s.evicted.iter().map(|&(n, r)| (NodeId(n), r)).collect();
        self.stats = s.stats;
    }

    /// Records one incremental-state fallback (a failed phase-two
    /// spot-check that forced a fresh comprehensive analysis).
    pub fn note_fallback(&mut self) {
        self.stats.fallbacks += 1;
        self.metrics.fallbacks.inc();
    }

    /// Degradation ladder: freezes the validation sample count at its
    /// current size by lowering the resample cap to the resamples already
    /// taken. Returns whether anything changed. Deterministic on resume:
    /// the cap is re-derived from the journaled fallback count, and the
    /// frozen `val_words`/`val_seed` live in the checkpoint snapshot.
    pub fn reduce_resampling(&mut self) -> bool {
        if self.cfg.max_resamples <= self.resamples {
            return false;
        }
        self.cfg.max_resamples = self.resamples;
        true
    }

    /// The final error the run should report: the measured error on the
    /// estimation patterns, or — in strict mode — the validation error
    /// recorded at the last commit, which the guard proved to be within
    /// the bound.
    pub fn final_error(&self, ctx: &Ctx) -> f64 {
        if self.cfg.enabled && self.cfg.strict {
            self.committed_val_error
        } else {
            ctx.error()
        }
    }

    /// Candidates not yet evicted by a rollback.
    pub fn admissible(&self, evals: &[Evaluated]) -> Vec<Evaluated> {
        evals
            .iter()
            .filter(|e| !self.evicted.contains(&(e.lac.target, e.lac.replacement().raw())))
            .cloned()
            .collect()
    }

    /// The working circuit's error on the validation set, built lazily
    /// (and rebuilt after each resample).
    fn validation_error(&mut self, ctx: &Ctx) -> f64 {
        if self.val.is_none() {
            let patterns =
                PatternSet::random(self.original.num_inputs(), self.val_words, self.val_seed);
            let sim = Simulator::new_with(&self.original, &patterns, ctx.pool());
            let golden: Vec<PackedBits> = (0..self.original.num_outputs())
                .map(|o| sim.output_value(&self.original, o))
                .collect();
            self.val = Some(ValSet { patterns, golden });
        }
        let vs = self.val.as_ref().expect("validation set just built");
        let sim = Simulator::new_with(&ctx.aig, &vs.patterns, ctx.pool());
        let outs: Vec<PackedBits> =
            (0..ctx.aig.num_outputs()).map(|o| sim.output_value(&ctx.aig, o)).collect();
        ErrorState::new(self.metric, self.weights.clone(), vs.golden.clone(), &outs).error()
    }

    /// Doubles the validation sample count and forces a redraw, up to
    /// [`GuardConfig::max_resamples`] times per run.
    fn resample(&mut self) {
        if self.resamples >= self.cfg.max_resamples {
            return;
        }
        self.resamples += 1;
        self.val_words *= 2;
        self.val_seed = self.val_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        self.val = None;
        self.stats.resamples += 1;
        self.metrics.resamples.inc();
    }

    /// Applies `eval` inside a transaction and re-measures before
    /// committing. Returns the edit records on commit, `None` after a
    /// rollback (the candidate is evicted and, in strict mode, the
    /// validation set grows).
    pub fn try_apply(
        &mut self,
        ctx: &mut Ctx,
        eval: &Evaluated,
    ) -> Result<Option<Vec<EditRecord>>, EngineError> {
        if !self.cfg.enabled {
            return Ok(Some(ctx.apply(&eval.lac)));
        }
        let records = ctx.apply_txn(&eval.lac);
        self.stats.validations += 1;
        self.metrics.validations.inc();
        let mut over = ctx.error() > threshold(self.bound);
        #[cfg(feature = "fault-inject")]
        {
            over = over || self.faults.take_forced_overshoot();
        }
        let mut val_error = None;
        if !over && self.cfg.strict {
            let e = self.validation_error(ctx);
            over = e > threshold(self.bound);
            val_error = Some(e);
        }
        if !over {
            ctx.commit_txn();
            if let Some(e) = val_error {
                self.committed_val_error = e;
            }
            return Ok(Some(records));
        }
        ctx.rollback(&records);
        self.stats.rollbacks += 1;
        self.metrics.rollbacks.inc();
        self.evicted.insert((eval.lac.target, eval.lac.replacement().raw()));
        self.stats.evictions += 1;
        self.metrics.evictions.inc();
        if self.cfg.strict {
            self.resample();
        }
        Ok(None)
    }

    /// Selects the best admissible candidate under `strategy`, applies it
    /// transactionally and commits once the exact re-measurement stays
    /// within the bound. Rolls back, evicts and retries on overshoot, up
    /// to [`GuardConfig::max_retries`] rollbacks; returns `Ok(None)` when
    /// no candidate survives (the iteration should stop, exactly as if
    /// selection had found nothing).
    pub fn select_apply(
        &mut self,
        ctx: &mut Ctx,
        evals: &[Evaluated],
        strategy: SelectionStrategy,
    ) -> Result<Option<GuardedApply>, EngineError> {
        let mut rollbacks = 0;
        for _ in 0..=self.cfg.max_retries {
            let pool = self.admissible(evals);
            let Some(eval) = Ctx::select(&pool, self.bound, strategy, ctx.error()) else {
                return Ok(None);
            };
            match self.try_apply(ctx, &eval)? {
                Some(records) => return Ok(Some(GuardedApply { eval, records, rollbacks })),
                None => rollbacks += 1,
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_lac::{Lac, LacKind};

    fn small() -> Aig {
        let mut aig = Aig::new("t");
        let x = aig.add_inputs("x", 4);
        let g1 = aig.and(x[0], x[1]);
        let g2 = aig.and(g1, x[2]);
        let g3 = aig.and(g2, x[3]);
        aig.add_output(g3, "o0");
        aig
    }

    fn cfg(bound: f64) -> FlowConfig {
        FlowConfig::new(MetricKind::Med, bound).with_patterns(256)
    }

    #[test]
    fn commits_within_budget_and_rolls_back_overshoot() {
        let aig = small();
        // Bound 0: only exact-equivalence rewrites may commit. Constant-0
        // on the top gate definitely overshoots.
        let cfg = cfg(0.0);
        let mut ctx = Ctx::new(&aig, &cfg);
        let mut guard = BudgetGuard::new(&aig, &cfg);
        let top = aig.iter_ands().last().unwrap();
        let bad = Lac { target: top, kind: LacKind::Const1 };
        let eval = Evaluated { lac: bad, error_after: 0.0, saving: 1 };
        let before = ctx.aig.num_ands();
        let res = guard.try_apply(&mut ctx, &eval).unwrap();
        assert!(res.is_none(), "overshooting LAC must not commit");
        assert_eq!(ctx.aig.num_ands(), before, "rollback restores the circuit");
        assert_eq!(ctx.error(), 0.0, "rollback restores the error state");
        assert_eq!(guard.stats().rollbacks, 1);
        assert_eq!(guard.stats().evictions, 1);
        // The evicted candidate is never offered again.
        assert!(guard.admissible(std::slice::from_ref(&eval)).is_empty());
    }

    #[test]
    fn disabled_guard_applies_directly() {
        let aig = small();
        let mut cfg = cfg(1e9);
        cfg.guard.enabled = false;
        let mut ctx = Ctx::new(&aig, &cfg);
        let mut guard = BudgetGuard::new(&aig, &cfg);
        let top = aig.iter_ands().last().unwrap();
        let lac = Lac { target: top, kind: LacKind::Const0 };
        let eval = Evaluated { lac, error_after: 0.0, saving: 1 };
        let res = guard.try_apply(&mut ctx, &eval).unwrap();
        assert!(res.is_some());
        assert_eq!(guard.stats().validations, 0, "no validation without the guard");
        assert!(!ctx.aig.in_txn(), "no transaction left open");
    }

    #[test]
    fn strict_mode_validates_on_independent_patterns() {
        let aig = small();
        let cfg = cfg(1e9).with_strict();
        let mut ctx = Ctx::new(&aig, &cfg);
        let mut guard = BudgetGuard::new(&aig, &cfg);
        let top = aig.iter_ands().last().unwrap();
        let lac = Lac { target: top, kind: LacKind::Const0 };
        let eval = Evaluated { lac, error_after: 0.0, saving: 1 };
        let res = guard.try_apply(&mut ctx, &eval).unwrap();
        assert!(res.is_some(), "generous bound commits");
        assert!(guard.final_error(&ctx) <= threshold(1e9));
        assert!(guard.final_error(&ctx) > 0.0, "validation measured the damage");
    }

    #[test]
    fn resample_grows_and_caps() {
        let aig = small();
        let mut cfg = cfg(0.5);
        cfg.guard.max_resamples = 2;
        let mut guard = BudgetGuard::new(&aig, &cfg);
        let w0 = guard.val_words;
        guard.resample();
        guard.resample();
        guard.resample(); // capped
        assert_eq!(guard.val_words, w0 * 4);
        assert_eq!(guard.stats().resamples, 2);
    }

    #[test]
    fn reduce_resampling_freezes_the_validation_set() {
        let aig = small();
        let cfg = cfg(0.5);
        let mut guard = BudgetGuard::new(&aig, &cfg);
        guard.resample();
        assert!(guard.reduce_resampling(), "cap lowered to resamples taken");
        assert!(!guard.reduce_resampling(), "second call is a no-op");
        let w = guard.val_words;
        guard.resample();
        assert_eq!(guard.val_words, w, "further resamples are frozen out");
    }
}
