//! The dual-phase iterative framework (DP) and its self-adapting variant
//! (DP-SA) — the paper's contribution.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use als_aig::{Aig, NodeId};
use als_cuts::CutState;

use crate::config::FlowConfig;
use crate::context::Ctx;
use crate::error::EngineError;
use crate::flow::Flow;
use crate::guard::BudgetGuard;
use crate::journal::{self, JournalWriter};
use crate::report::{FlowResult, IterationRecord, Phase};
use crate::supervisor::{self, RunGovernor, StopReason};

/// Degradation ladder, upper rungs. Repeated incremental-state fallbacks
/// mean this run keeps catching its own analysis state out of sync —
/// rather than aborting, trade speed for the simplest execution: after
/// the 2nd fallback drop to a serial pool (byte-identical results, no
/// concurrent mutation anywhere near the failure), after the 3rd freeze
/// strict-mode validation resampling. Driven by the *cumulative* fallback
/// count, which rides in the journaled guard snapshot, so a resumed run
/// re-derives exactly the degradations the original run had applied.
fn apply_degradation(ctx: &mut Ctx, guard: &mut BudgetGuard, fallbacks: usize) {
    if fallbacks >= 2 && ctx.degrade_to_serial() {
        ctx.metrics.degradations.inc();
    }
    if fallbacks >= 3 && guard.reduce_resampling() {
        ctx.metrics.degradations.inc();
    }
}

/// The dual-phase flow.
///
/// Each *dual-phase iteration* runs:
///
/// 1. **Phase one — comprehensive analysis.** Full disjoint cuts, full CPM
///    and evaluation of every candidate LAC. The best LAC is applied and
///    the `M` target nodes with the smallest error increase become the
///    candidate set `S_cand`.
/// 2. **Phase two — up to `N` incremental rounds.** After each applied LAC
///    the disjoint cuts are refreshed only for the CPC-violating set
///    `S_v`, the CPM only for the closure `N(S_cand)`, and only LACs
///    targeting `S_cand` are evaluated. Replaced nodes and their MFFCs
///    leave `S_cand`.
///
/// With [`DualPhaseFlow::with_self_adaption`] the flow additionally tunes
/// `M` (and the per-target LAC budget) from the dominating analysis step
/// of the previous dual phase, and stops phase two early when relative
/// error increases pass the `e_t` threshold in the `b_r`/`b_s` bound
/// regions — the paper's DP-SA.
#[derive(Clone, Debug)]
pub struct DualPhaseFlow {
    cfg: FlowConfig,
    self_adapt: bool,
}

impl DualPhaseFlow {
    /// DP: fixed parameters, no self-adaption.
    pub fn new(cfg: FlowConfig) -> DualPhaseFlow {
        DualPhaseFlow { cfg, self_adapt: false }
    }

    /// DP-SA: with parameter tuning and adaptive phase-two stopping.
    pub fn with_self_adaption(cfg: FlowConfig) -> DualPhaseFlow {
        DualPhaseFlow { cfg, self_adapt: true }
    }

    /// Whether self-adaption is enabled.
    pub fn is_self_adapting(&self) -> bool {
        self.self_adapt
    }
}

/// Relative error increase with a guard for a zero starting error.
fn relative_increase(e_inc: f64, e0: f64) -> f64 {
    if e0 > 0.0 {
        e_inc / e0
    } else if e_inc > 0.0 {
        f64::INFINITY
    } else {
        0.0
    }
}

/// Appends a journal record through `append`, recording the call's latency
/// into the run's `als_journal_append_us` histogram when enabled.
fn timed_append<E>(
    latency: &als_obs::Histogram,
    append: impl FnOnce() -> Result<(), E>,
) -> Result<(), E> {
    if !latency.is_enabled() {
        return append();
    }
    let t0 = Instant::now();
    let out = append();
    latency.observe_duration(t0.elapsed());
    out
}

impl Flow for DualPhaseFlow {
    fn name(&self) -> &str {
        if self.self_adapt {
            "DP-SA"
        } else {
            "DP"
        }
    }

    fn supports_journal(&self) -> bool {
        true
    }

    fn run(&self, original: &Aig) -> Result<FlowResult, EngineError> {
        als_aig::check::check(original).map_err(EngineError::InvalidInput)?;
        let cfg = &self.cfg;
        let bound = cfg.error_bound;
        let mut ctx = Ctx::new(original, cfg);
        let _flow_span = ctx.obs().span("flow");
        let mut guard = BudgetGuard::new(original, cfg);
        let mut iterations = Vec::new();
        let mut first_ranking = Vec::new();
        let mut analyses = 0usize;

        // Tunable parameters (self-adaption mutates them between dual
        // phases).
        let mut m = cfg.m;
        let mut n_limit = cfg.n;
        let mut lac_cfg = cfg.lac.clone();
        let mut comp_time = Duration::ZERO;
        let mut inc_time = Duration::ZERO;
        // Degradation-ladder bookkeeping: total phase-two rounds across the
        // run (drives the spot-check salt and the corruption test hook),
        // and the spot-check failure that forced the current comprehensive
        // fallback, if any.
        let mut total_rounds = 0usize;
        let mut fallback_pending: Option<String> = None;

        // ---------------- run supervision --------------------------------
        // The governor is polled at every iteration, round and eval-batch
        // boundary; a trip records the reason and unwinds to the graceful
        // end of the run (flush + Preempt record + best-so-far result).
        let gov = RunGovernor::new(&cfg.supervise);
        let mut tripped: Option<StopReason> = None;
        #[cfg(feature = "fault-inject")]
        let mut gov = gov;
        // Test-only hold window (see `HOLD_AT_CHECKPOINT_ENV`).
        let hold_at = supervisor::hold_at_checkpoint();
        let mut checkpoints_written = 0usize;

        // ---------------- crash-safe run journal -------------------------
        // Fresh runs start a new journal; resumes replay the journaled
        // edit log onto the original circuit (cross-checking every edit
        // record and error value bit-exactly), restore the loop state of
        // the last checkpoint and re-execute the iteration that was in
        // flight when the run died — determinism makes the re-execution
        // reproduce it exactly.
        let mut journal: Option<JournalWriter> = None;
        if let Some(jc) = &cfg.journal {
            let head = journal::JournalHeader {
                flow: self.name().to_string(),
                config_hash: journal::config_fingerprint(cfg, self.name()),
                circuit_hash: journal::circuit_fingerprint(original),
            };
            let writer = if jc.resume {
                let loaded = journal::load(&jc.path)?;
                loaded.check_header(&head)?;
                // Contradictory supervision limits only become visible
                // once the journal is in hand: an iteration budget at or
                // below the journaled commit count could never admit a
                // single new LAC — the resumed run would stop (or
                // re-preempt) immediately while claiming to have honoured
                // a limit the original run never had. Reject it as a
                // typed configuration error instead.
                if let Some(limit) = cfg.supervise.max_iters {
                    let journaled = loaded
                        .records
                        .iter()
                        .filter(|r| matches!(r, journal::Record::Commit(_)))
                        .count();
                    if journaled > 0 && limit <= journaled {
                        return Err(crate::config::ConfigError::ResumeIterBudget {
                            journaled,
                            limit,
                        }
                        .into());
                    }
                }
                if let Some((idx, cp)) = loaded.last_checkpoint() {
                    for c in loaded.commits_before(idx) {
                        if c.index != iterations.len() as u64 {
                            return Err(EngineError::Journal {
                                detail: format!(
                                    "commit records out of order: found index {} where {} was \
                                     expected",
                                    c.index,
                                    iterations.len()
                                ),
                            });
                        }
                        let edits = ctx.apply(&c.lac);
                        if edits != c.edits {
                            return Err(EngineError::Journal {
                                detail: format!(
                                    "replay of commit {} diverged from the journaled edit records",
                                    c.index
                                ),
                            });
                        }
                        if ctx.error().to_bits() != c.cum_error.to_bits() {
                            return Err(EngineError::Journal {
                                detail: format!(
                                    "replayed error {} of commit {} does not match journaled {}",
                                    ctx.error(),
                                    c.index,
                                    c.cum_error
                                ),
                            });
                        }
                        iterations.push(c.iteration_record());
                    }
                    if iterations.len() as u64 != cp.commit_count {
                        return Err(EngineError::Journal {
                            detail: format!(
                                "checkpoint expects {} commits but the journal holds {}",
                                cp.commit_count,
                                iterations.len()
                            ),
                        });
                    }
                    if ctx.error().to_bits() != cp.cum_error.to_bits() {
                        return Err(EngineError::Journal {
                            detail: format!(
                                "replayed error {} does not match checkpointed {}",
                                ctx.error(),
                                cp.cum_error
                            ),
                        });
                    }
                    m = cp.m as usize;
                    n_limit = cp.n_limit as usize;
                    lac_cfg.max_subs_per_target = cp.max_subs_per_target as usize;
                    total_rounds = cp.total_rounds as usize;
                    analyses = cp.analyses as usize;
                    fallback_pending = cp.fallback_pending.clone();
                    first_ranking = cp.first_ranking.iter().map(|&n| NodeId(n)).collect();
                    guard.restore(&cp.guard);
                    // Re-derive the degradation ladder from the journaled
                    // fallback count so the resumed run executes under the
                    // same regime the original had degraded into.
                    apply_degradation(&mut ctx, &mut guard, cp.guard.stats.fallbacks);
                    // Seed the writer with the bytes *before* the last
                    // checkpoint: the loop below immediately re-journals an
                    // identical checkpoint (the restored state is
                    // bit-exact), so the resumed journal stays
                    // byte-identical to an uninterrupted one.
                    JournalWriter::resume(&jc.path, loaded.image_before(idx))?
                } else {
                    // Crash before the first checkpoint: nothing to replay.
                    JournalWriter::create(&jc.path, &head)?
                }
            } else {
                JournalWriter::create(&jc.path, &head)?
            };
            let mut writer = writer;
            writer.set_retry_counter(ctx.metrics.journal_retries.clone());
            #[cfg(feature = "fault-inject")]
            writer.set_faults(cfg.faults.clone());
            journal = Some(writer);
        }

        'dual_phase: while iterations.len() < cfg.max_lacs {
            // Iteration boundary: the cheapest place to stop — nothing of
            // this iteration has started yet.
            if let Some(r) = gov.check(iterations.len()) {
                tripped = Some(r);
                break 'dual_phase;
            }
            let _iter_span = ctx.obs().span("iteration");
            if let Some(w) = journal.as_mut() {
                let cp = journal::Checkpoint {
                    commit_count: iterations.len() as u64,
                    cum_error: ctx.error(),
                    m: m as u64,
                    n_limit: n_limit as u64,
                    max_subs_per_target: lac_cfg.max_subs_per_target as u64,
                    total_rounds: total_rounds as u64,
                    analyses: analyses as u64,
                    fallback_pending: fallback_pending.clone(),
                    first_ranking: first_ranking.iter().map(|n| n.0).collect(),
                    guard: guard.snapshot(),
                };
                timed_append(&ctx.metrics.journal_append_us, || w.append_checkpoint(&cp))?;
                checkpoints_written += 1;
                // Test hook: park right after the n-th checkpoint until a
                // cancellation (normally a delivered signal) arrives, so
                // the SIGTERM integration test has a wide deterministic
                // window to land in. Bounded so a lost signal cannot hang
                // a test run forever.
                if hold_at == Some(checkpoints_written) {
                    let parked = Instant::now();
                    while !gov.cancel_requested() && parked.elapsed() < Duration::from_secs(60) {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
            let times_snapshot = ctx.times;
            let e0 = ctx.error();
            let mut sum_er = 0.0f64;

            // ---------------- Phase one: comprehensive analysis ----------
            let phase1_span = ctx.obs().span("phase1");
            let mut span = ctx.obs().span("cuts");
            span.count("nodes", ctx.aig.num_ands() as u64);
            let mut cuts = CutState::compute_with(&ctx.aig, ctx.pool())?;
            ctx.times.cuts += span.finish();
            ctx.metrics.cut_recomputes.inc();
            // Last rung of the degradation ladder: if this comprehensive
            // analysis is itself a fallback from a failed incremental
            // spot-check, cross-validate the *fresh* state too. A fresh
            // compute that still fails cannot be repaired by recomputing —
            // abort with context.
            if let Some(prev) = fallback_pending.take() {
                #[cfg(feature = "fault-inject")]
                if cfg.faults.take_corrupt_fresh() {
                    cuts.debug_corrupt_cuts();
                }
                if let Err(detail) =
                    cuts.spot_check(&ctx.aig, cfg.guard.spot_check.max(16), total_rounds as u64)
                {
                    return Err(EngineError::CorruptAnalysis {
                        flow: self.name().to_string(),
                        detail: format!("{detail} (falling back from: {prev})"),
                    });
                }
            }
            let mut span = ctx.obs().span("cpm");
            let cpm = als_cpm::compute_full_with(&ctx.aig, &ctx.sim, &cuts, ctx.pool())?;
            span.count("rows", cpm.num_rows() as u64);
            ctx.times.cpm += span.finish();
            ctx.metrics.cpm_rows_built.add(cpm.num_rows() as u64);
            let span = ctx.obs().span("eval");
            let lacs = als_lac::generate(&ctx.aig, &ctx.sim, &lac_cfg, None);
            ctx.times.eval += span.finish();
            // Eval-batch boundary: the comprehensive evaluation is the
            // single most expensive step — don't start it doomed.
            if let Some(r) = gov.check(iterations.len()) {
                comp_time += phase1_span.finish();
                tripped = Some(r);
                break 'dual_phase;
            }
            let evals = ctx.evaluate_lacs(&cpm, &lacs)?;
            analyses += 1;
            if first_ranking.is_empty() {
                first_ranking = Ctx::rank_targets(&evals);
            }

            let e_pre = ctx.error();
            let Some(applied) = guard.select_apply(&mut ctx, &evals, cfg.selection)? else {
                comp_time += phase1_span.finish();
                break;
            };
            ctx.metrics.iterations.inc();
            let mut s_cand: Vec<NodeId> = Ctx::rank_targets(&evals).into_iter().take(m).collect();
            ctx.metrics.s_cand_size.observe(s_cand.len() as u64);
            sum_er += relative_increase(applied.eval.error_after - e_pre, e0);
            let recs = applied.records;
            iterations.push(IterationRecord {
                lac: applied.eval.lac,
                error_after: applied.eval.error_after,
                saving: applied.eval.saving,
                nodes_after: ctx.aig.num_ands(),
                phase: Phase::Comprehensive,
                rollbacks: applied.rollbacks,
            });
            if let (Some(w), Some(rec)) = (journal.as_mut(), iterations.last()) {
                let c =
                    journal::Commit::new(iterations.len() - 1, rec, &recs, ctx.error(), &ctx.times);
                // Group commit: buffered in memory, made durable by the next
                // checkpoint append (or the end-of-run flush).
                w.append_commit_buffered(&c);
            }
            let removed: HashSet<NodeId> =
                recs.iter().flat_map(|r| r.removed.iter().copied()).collect();
            s_cand.retain(|n| !removed.contains(n));
            let mut span = ctx.obs().span("cuts");
            let mut s_v = 0u64;
            for rec in &recs {
                cuts.update_after(&ctx.aig, rec);
                let sz = cuts.last_update_size() as u64;
                s_v += sz;
                ctx.metrics.s_v_size.observe(sz);
            }
            span.count("s_v", s_v);
            ctx.times.cuts += span.finish();
            ctx.metrics.cpc_violations.add(s_v);
            comp_time += phase1_span.finish();

            // ---------------- Phase two: incremental rounds --------------
            let phase2_span = ctx.obs().span("phase2");
            let mut rounds = 0usize;
            while rounds < n_limit && !s_cand.is_empty() && iterations.len() < cfg.max_lacs {
                // Round boundary.
                if let Some(r) = gov.check(iterations.len()) {
                    tripped = Some(r);
                    break;
                }
                let _round_span = ctx.obs().span("round");
                s_cand.retain(|&n| ctx.aig.is_live(n) && ctx.aig.node(n).is_and());
                if s_cand.is_empty() {
                    break;
                }
                ctx.metrics.s_cand_size.observe(s_cand.len() as u64);
                // Step 2: partial CPM over N(S_cand).
                let mut span = ctx.obs().span("cpm");
                let (pcpm, closure) =
                    als_cpm::compute_partial_with(&ctx.aig, &ctx.sim, &cuts, &s_cand, ctx.pool())?;
                span.count("rows", pcpm.num_rows() as u64);
                span.count("closure", closure as u64);
                ctx.times.cpm += span.finish();
                ctx.metrics.cpm_rows_built.add(pcpm.num_rows() as u64);
                ctx.metrics
                    .cpm_rows_reused
                    .add((ctx.aig.num_ands() as u64).saturating_sub(closure as u64));
                // Step 3: LACs targeting S_cand only.
                let span = ctx.obs().span("eval");
                let lacs = als_lac::generate(&ctx.aig, &ctx.sim, &lac_cfg, Some(&s_cand));
                ctx.times.eval += span.finish();
                // Eval-batch boundary.
                if let Some(r) = gov.check(iterations.len()) {
                    tripped = Some(r);
                    break;
                }
                let evals = ctx.evaluate_lacs(&pcpm, &lacs)?;

                // Guarded selection with the DP-SA adaptive stop woven in:
                // the stop criterion looks at the candidate's *estimate*
                // before it is applied, so it runs inside the retry loop.
                let mut rollbacks = 0usize;
                let outcome = loop {
                    if rollbacks > cfg.guard.max_retries {
                        break None;
                    }
                    let pool = guard.admissible(&evals);
                    let Some(best) = Ctx::select(&pool, bound, cfg.selection, ctx.error()) else {
                        break None;
                    };
                    let e = ctx.error();
                    let e_r = relative_increase(best.error_after - e, e0);
                    if self.self_adapt {
                        let in_relaxed = e > cfg.b_r * bound && e <= cfg.b_s * bound;
                        let in_strict = e > cfg.b_s * bound;
                        if (in_relaxed && e_r > cfg.e_t) || (in_strict && sum_er + e_r > cfg.e_t) {
                            break None;
                        }
                    }
                    match guard.try_apply(&mut ctx, &best)? {
                        Some(recs) => break Some((best, recs, e_r)),
                        None => rollbacks += 1,
                    }
                };
                let Some((best, recs, e_r)) = outcome else {
                    break;
                };
                if self.self_adapt {
                    sum_er += e_r;
                }
                ctx.metrics.iterations.inc();
                iterations.push(IterationRecord {
                    lac: best.lac,
                    error_after: best.error_after,
                    saving: best.saving,
                    nodes_after: ctx.aig.num_ands(),
                    phase: Phase::Incremental,
                    rollbacks,
                });
                if let (Some(w), Some(rec)) = (journal.as_mut(), iterations.last()) {
                    let c = journal::Commit::new(
                        iterations.len() - 1,
                        rec,
                        &recs,
                        ctx.error(),
                        &ctx.times,
                    );
                    w.append_commit_buffered(&c);
                }
                let removed: HashSet<NodeId> =
                    recs.iter().flat_map(|r| r.removed.iter().copied()).collect();
                s_cand.retain(|n| !removed.contains(n));
                // Step 1 (incremental): refresh cuts for S_v only.
                let mut span = ctx.obs().span("cuts");
                let mut s_v = 0u64;
                for rec in &recs {
                    cuts.update_after(&ctx.aig, rec);
                    let sz = cuts.last_update_size() as u64;
                    s_v += sz;
                    ctx.metrics.s_v_size.observe(sz);
                }
                span.count("s_v", s_v);
                ctx.times.cuts += span.finish();
                ctx.metrics.cpc_violations.add(s_v);
                rounds += 1;
                total_rounds += 1;
                ctx.metrics.phase2_rounds.inc();

                // Degradation ladder: cross-validate the incrementally
                // maintained state against ground truth on a small node
                // sample. A failure aborts phase two and falls back to a
                // fresh comprehensive analysis instead of continuing on
                // corrupt bookkeeping.
                #[cfg(feature = "fault-inject")]
                if cfg.faults.take_corrupt_at_round(total_rounds) {
                    cuts.debug_corrupt_cuts();
                }
                #[cfg(feature = "fault-inject")]
                if cfg.faults.take_trip_deadline(total_rounds) {
                    gov.force_deadline();
                }
                if cfg.guard.enabled && cfg.guard.spot_check > 0 {
                    als_aig::check::check(&ctx.aig).map_err(|e| EngineError::CorruptCircuit {
                        flow: self.name().to_string(),
                        source: e,
                    })?;
                    let mut span = ctx.obs().span("cuts");
                    span.count("spot_check", 1);
                    let verdict =
                        cuts.spot_check(&ctx.aig, cfg.guard.spot_check, total_rounds as u64);
                    ctx.times.cuts += span.finish();
                    if let Err(detail) = verdict {
                        guard.note_fallback();
                        let fallbacks = guard.stats().fallbacks;
                        apply_degradation(&mut ctx, &mut guard, fallbacks);
                        fallback_pending = Some(detail);
                        break;
                    }
                }
            }
            inc_time += phase2_span.finish();
            if tripped.is_some() {
                // A governor trip inside phase two: the timing accumulators
                // are settled above, now unwind to the graceful end.
                break 'dual_phase;
            }
            if fallback_pending.is_some() {
                // Skip self-adaption this round: its timing signal is
                // polluted by the aborted phase two.
                continue 'dual_phase;
            }

            // ---------------- Self-adaption: parameter tuning ------------
            if self.self_adapt {
                let dp_times = ctx.times.delta_since(&times_snapshot);
                match dp_times.dominating_step() {
                    Some(1) => {
                        // Step 1 dominated: growing M adds phase-two rounds
                        // without adding cut-update work.
                        m = ((m as f64) * (1.0 + cfg.r_inc)).round() as usize;
                    }
                    Some(2) => {
                        // Step 2 dominated: shrink the candidate set to cut
                        // partial-CPM cost.
                        m = (((m as f64) * (1.0 - cfg.r_inc)).round() as usize).max(6);
                    }
                    Some(3) if lac_cfg.substitutions && lac_cfg.max_subs_per_target > 1 => {
                        // Step 3 dominated: fewer LACs per target node.
                        let reduced = ((lac_cfg.max_subs_per_target as f64) * (1.0 - cfg.r_inc))
                            .round() as usize;
                        lac_cfg.max_subs_per_target = reduced.max(1);
                    }
                    _ => {}
                }
                n_limit = (m / 3).max(1);
            }

            if iterations.is_empty() {
                // phase one applied nothing (cannot happen: `best` existed),
                // but guard against pathological configs
                break 'dual_phase;
            }
        }

        let stop = match tripped {
            Some(r) => r,
            None => supervisor::natural_stop(iterations.len(), cfg.max_lacs),
        };

        // Final group commit: commits of the last iteration have no
        // following checkpoint to ride on, so flush them explicitly. A
        // preempted run then seals the journal with a `Preempt` record —
        // proof for `--resume` (and the operator) that the file ends at a
        // graceful stop, not a crash.
        if let Some(w) = journal.as_mut() {
            timed_append(&ctx.metrics.journal_append_us, || w.flush())?;
            if stop.is_preemption() {
                let p = journal::Preempt {
                    reason: stop.clone(),
                    commit_count: iterations.len() as u64,
                };
                timed_append(&ctx.metrics.journal_append_us, || w.append_preempt(&p))?;
            }
        }
        ctx.metrics.note_stop(&stop, gov.elapsed());

        Ok(FlowResult {
            flow: self.name().to_string(),
            final_error: guard.final_error(&ctx),
            error_bound: bound,
            iterations,
            runtime: ctx.elapsed(),
            step_times: ctx.times,
            comprehensive_analyses: analyses,
            first_ranking,
            error_report: ctx.report(),
            comprehensive_time: comp_time,
            incremental_time: inc_time,
            guard: guard.stats(),
            stop,
            circuit: ctx.aig,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_error::MetricKind;

    fn adder(width: usize) -> Aig {
        let mut aig = Aig::new("adder");
        let a = aig.add_inputs("a", width);
        let b = aig.add_inputs("b", width);
        let mut carry = als_aig::Lit::FALSE;
        for i in 0..width {
            let (s, c) = aig.full_adder(a[i], b[i], carry);
            aig.add_output(s, format!("s{i}"));
            carry = c;
        }
        aig.add_output(carry, format!("s{width}"));
        aig
    }

    #[test]
    fn dp_respects_bound() {
        let aig = adder(4);
        let cfg = FlowConfig::new(MetricKind::Med, 3.0).with_patterns(1024);
        let res = DualPhaseFlow::new(cfg).run(&aig).unwrap();
        assert!(res.final_error <= 3.0 + 1e-9, "error {}", res.final_error);
        assert!(res.final_nodes() < aig.num_ands());
        assert_eq!(res.stop, StopReason::Converged, "unlimited run ends naturally");
        als_aig::check::check(&res.circuit).unwrap();
    }

    #[test]
    fn iteration_budget_stops_early_with_best_so_far() {
        let aig = adder(6);
        let cfg = FlowConfig::new(MetricKind::Med, 8.0).with_patterns(1024).with_max_iters(1);
        let res = DualPhaseFlow::new(cfg).run(&aig).unwrap();
        assert_eq!(res.stop, StopReason::IterLimit { limit: 1 });
        assert_eq!(res.lacs_applied(), 1, "stops right after the budgeted LAC");
        assert!(res.final_error <= 8.0 + 1e-9);
        als_aig::check::check(&res.circuit).unwrap();
    }

    #[test]
    fn cancelled_token_stops_before_any_work() {
        let aig = adder(4);
        let token = crate::CancelToken::new();
        token.cancel();
        let cfg = FlowConfig::new(MetricKind::Med, 3.0).with_patterns(256).with_cancel_token(token);
        let res = DualPhaseFlow::new(cfg).run(&aig).unwrap();
        assert_eq!(res.stop, StopReason::Cancelled);
        assert_eq!(res.lacs_applied(), 0);
        assert_eq!(res.final_nodes(), aig.num_ands(), "circuit untouched");
        als_aig::check::check(&res.circuit).unwrap();
    }

    #[test]
    fn elapsed_deadline_stops_gracefully() {
        let aig = adder(5);
        let cfg = FlowConfig::new(MetricKind::Med, 4.0)
            .with_patterns(1024)
            .with_timeout(Duration::from_nanos(1));
        let res = DualPhaseFlow::with_self_adaption(cfg).run(&aig).unwrap();
        assert!(matches!(res.stop, StopReason::Deadline { .. }), "stop {:?}", res.stop);
        assert!(res.final_error <= 4.0 + 1e-9);
        als_aig::check::check(&res.circuit).unwrap();
    }

    #[test]
    fn dp_uses_fewer_comprehensive_analyses_than_lacs() {
        let aig = adder(6);
        let cfg = FlowConfig::new(MetricKind::Med, 8.0).with_patterns(1024);
        let res = DualPhaseFlow::new(cfg).run(&aig).unwrap();
        assert!(res.lacs_applied() > 1);
        assert!(
            res.comprehensive_analyses < res.lacs_applied(),
            "{} analyses for {} LACs",
            res.comprehensive_analyses,
            res.lacs_applied()
        );
        // phase-two records exist
        assert!(res.iterations.iter().any(|r| r.phase == Phase::Incremental));
    }

    #[test]
    fn dp_sa_respects_bound_and_adapts() {
        let aig = adder(5);
        let cfg = FlowConfig::new(MetricKind::Med, 4.0).with_patterns(1024);
        let flow = DualPhaseFlow::with_self_adaption(cfg);
        assert!(flow.is_self_adapting());
        assert_eq!(flow.name(), "DP-SA");
        let res = flow.run(&aig).unwrap();
        assert!(res.final_error <= 4.0 + 1e-9);
        als_aig::check::check(&res.circuit).unwrap();
    }

    #[test]
    fn dp_matches_conventional_quality_roughly() {
        use crate::conventional::ConventionalFlow;
        use crate::flow::Flow as _;
        let aig = adder(4);
        let cfg = FlowConfig::new(MetricKind::Med, 2.0).with_patterns(1024);
        let conv = ConventionalFlow::new(cfg.clone()).run(&aig).unwrap();
        let dp = DualPhaseFlow::new(cfg).run(&aig).unwrap();
        // the dual-phase result must stay within a couple of gates of the
        // conventional one (the paper reports no quality loss)
        let diff = dp.final_nodes() as i64 - conv.final_nodes() as i64;
        assert!(diff.abs() <= 3, "conv {} vs dp {}", conv.final_nodes(), dp.final_nodes());
    }

    #[test]
    fn relative_increase_guards_zero_start() {
        assert_eq!(relative_increase(0.0, 0.0), 0.0);
        assert_eq!(relative_increase(1.0, 0.0), f64::INFINITY);
        assert_eq!(relative_increase(1.0, 2.0), 0.5);
    }
}
