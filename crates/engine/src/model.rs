//! The paper's runtime model (Eq. 2) fitted from a measured run.
//!
//! With `T_com` the cost of one comprehensive analysis, `T_inc = f(M) ·
//! T_com` the cost of one incremental round and `N_r` actual phase-two
//! rounds per dual phase, the average cost of applying one LAC is
//!
//! ```text
//! T_avg = (T_com + N_r · T_inc) / (N_r + 1) ≈ (1/(N_r+1) + f(M)) · T_com
//! ```
//!
//! Fitting the model from a [`FlowResult`] lets the self-adaption
//! reasoning of §III-D be inspected quantitatively: how expensive
//! incremental rounds are relative to comprehensive analyses (`f(M)`), and
//! what speedup over the conventional flow the model predicts.

use crate::report::{FlowResult, Phase};

/// Eq. (2) parameters extracted from a dual-phase run.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RuntimeModel {
    /// Average wall-clock cost of one comprehensive analysis (seconds).
    pub t_com: f64,
    /// Average wall-clock cost of one incremental round (seconds).
    pub t_inc: f64,
    /// Average number of incremental LACs per dual phase.
    pub n_r: f64,
}

impl RuntimeModel {
    /// Fits the model from a finished run. Returns `None` when the run
    /// performed no comprehensive analysis (nothing to fit).
    pub fn fit(result: &FlowResult) -> Option<RuntimeModel> {
        if result.comprehensive_analyses == 0 {
            return None;
        }
        let incremental =
            result.iterations.iter().filter(|r| r.phase == Phase::Incremental).count();
        let t_com = result.comprehensive_time.as_secs_f64() / result.comprehensive_analyses as f64;
        let t_inc = if incremental > 0 {
            result.incremental_time.as_secs_f64() / incremental as f64
        } else {
            0.0
        };
        Some(RuntimeModel {
            t_com,
            t_inc,
            n_r: incremental as f64 / result.comprehensive_analyses as f64,
        })
    }

    /// The ratio `f(M) = T_inc / T_com` of Eq. (2).
    pub fn f_m(&self) -> f64 {
        if self.t_com > 0.0 {
            self.t_inc / self.t_com
        } else {
            0.0
        }
    }

    /// Average time to apply one LAC under the model.
    pub fn t_avg(&self) -> f64 {
        (self.t_com + self.n_r * self.t_inc) / (self.n_r + 1.0)
    }

    /// Predicted speedup over a conventional flow that pays `T_com` per
    /// LAC.
    pub fn predicted_speedup(&self) -> f64 {
        let avg = self.t_avg();
        if avg > 0.0 {
            self.t_com / avg
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use crate::dual_phase::DualPhaseFlow;
    use crate::flow::Flow;
    use als_error::MetricKind;

    #[test]
    fn algebra_of_the_model() {
        let m = RuntimeModel { t_com: 1.0, t_inc: 0.1, n_r: 9.0 };
        assert!((m.f_m() - 0.1).abs() < 1e-12);
        // T_avg = (1 + 0.9) / 10 = 0.19
        assert!((m.t_avg() - 0.19).abs() < 1e-12);
        assert!((m.predicted_speedup() - 1.0 / 0.19).abs() < 1e-9);
    }

    #[test]
    fn fit_from_real_run() {
        let mut aig = als_aig::Aig::new("add");
        let a = aig.add_inputs("a", 6);
        let b = aig.add_inputs("b", 6);
        let mut carry = als_aig::Lit::FALSE;
        for i in 0..6 {
            let (s, c) = aig.full_adder(a[i], b[i], carry);
            aig.add_output(s, format!("s{i}"));
            carry = c;
        }
        aig.add_output(carry, "cout");
        let cfg = FlowConfig::new(MetricKind::Med, 16.0).with_patterns(1024);
        let res = DualPhaseFlow::new(cfg).run(&aig).unwrap();
        let model = RuntimeModel::fit(&res).expect("at least one analysis ran");
        assert!(model.t_com > 0.0);
        assert!(model.n_r >= 0.0);
        // on a toy circuit the incremental advantage is small (fixed
        // overheads dominate), but the model must stay finite and sane
        assert!(model.f_m().is_finite());
        assert!(model.t_avg() > 0.0);
        assert!(model.predicted_speedup() > 0.0);
    }

    #[test]
    fn degenerate_runs_are_handled() {
        let m = RuntimeModel { t_com: 0.0, t_inc: 0.0, n_r: 0.0 };
        assert_eq!(m.f_m(), 0.0);
        assert_eq!(m.predicted_speedup(), 1.0);
    }
}
