//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal timing harness with the API surface its benches consume:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Differences from upstream, by design:
//!
//! * **No statistics.** Each benchmark runs `sample_size` timed iterations
//!   and reports mean wall-clock time per iteration — enough to compare the
//!   full-vs-incremental algorithms these benches exist to contrast, with
//!   none of the bootstrap machinery.
//! * **Inert under `cargo test`.** Bench targets use `harness = false`, so
//!   `cargo test` executes them as plain binaries; without the `--bench`
//!   argument that `cargo bench` passes, every routine is skipped and the
//!   binary exits immediately, keeping the test suite fast.

use std::time::Instant;

/// Top-level harness handle; [`criterion_group!`] constructs one per group
/// function.
pub struct Criterion {
    enabled: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let enabled = std::env::args().any(|a| a == "--bench")
            || std::env::var_os("CRITERION_SHIM_FORCE").is_some();
        Criterion { enabled }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 10, enabled: self.enabled }
    }

    /// Times a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.enabled, &id.to_string(), 10, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    enabled: bool,
}

impl BenchmarkGroup {
    /// Number of timed iterations per benchmark (upstream: samples per
    /// estimate).
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.enabled, &full, self.sample_size, f);
        self
    }

    /// Ends the group. (Upstream finalizes reports here; the shim prints
    /// per-benchmark lines eagerly.)
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(enabled: bool, id: &str, sample_size: usize, mut f: F) {
    if !enabled {
        return;
    }
    let mut b = Bencher { iters: sample_size as u64, elapsed_ns: 0.0 };
    f(&mut b);
    let mean_ns = b.elapsed_ns / b.iters.max(1) as f64;
    println!("bench: {id:<40} {:>12.1} ns/iter ({} iters)", mean_ns, b.iters);
}

/// Controls how `iter_batched` amortizes setup cost; the shim runs one
/// routine invocation per setup regardless, so the variants only document
/// intent.
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to every benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
    }

    /// Times `routine` on fresh `setup()` input per iteration; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos() as f64;
        }
    }
}

/// Declares a bench group function `$name` running each target against a
/// default-configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_harness_skips_routines() {
        let mut c = Criterion { enabled: false };
        let mut ran = false;
        let mut group = c.benchmark_group("g");
        group.sample_size(3).bench_function("skip", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn enabled_harness_times_each_sample() {
        let mut c = Criterion { enabled: true };
        let mut calls = 0u64;
        let mut group = c.benchmark_group("g");
        group.sample_size(4).bench_function("count", |b| {
            b.iter_batched(|| calls += 1, |_| (), BatchSize::SmallInput);
        });
        group.finish();
        assert_eq!(calls, 4);
    }
}
