//! Adaptive serial/parallel scheduling for [`WorkerPool`](crate::WorkerPool)
//! regions.
//!
//! The fixed-grain pool split every map into `threads` equal chunks and
//! fanned out whenever `len >= 4 * threads`. On real circuits that *costs*
//! time: a simulation wave of a few hundred ~100ns gates finishes long
//! before the spawn cost of even one scoped thread is paid back. This
//! module replaces the fixed threshold with a measured model:
//!
//! * **Calibration** — a one-time probe times empty scoped spawns and reads
//!   the hardware thread count. It runs once per process (`OnceLock`) and
//!   can be overridden with a fixed [`Calibration`] for deterministic
//!   tests.
//! * **Per-region cost model** — every call site names a region
//!   (`"sim_wave"`, `"cpm_wave"`, `"eval"`, …). The scheduler keeps an
//!   estimated cost in nanoseconds per *unit* (item × weight, where the
//!   weight carries a known scale factor such as the simulation word
//!   count), seeded per region and learned online from span timings with
//!   an exponential moving average.
//! * **Cutover** — a region runs parallel only when its predicted serial
//!   time exceeds the predicted parallel time (spawn cost × workers +
//!   serial ÷ workers) by a safety margin. Sub-threshold regions run
//!   inline with zero pool traffic; a hard minimum-items guard and a
//!   minimum-serial-time floor keep sub-millisecond regions serial no
//!   matter what the model says.
//! * **Level-scaled chunking** — parallel regions are split into chunks
//!   sized so each carries roughly `chunk_target_us` of predicted work
//!   (bounded to `[workers, 8 × workers]` chunks), instead of `len /
//!   threads`. More chunks than workers is what makes whole-chunk stealing
//!   (see `crate::WorkerPool`) able to rebalance stragglers.
//!
//! Scheduling decisions never affect result bytes — only which thread
//! computes them and in what grouping — so the pool's determinism
//! guarantee (chunk-ordered joins) is preserved under every mode, model
//! state and steal schedule.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How the pool decides between serial and parallel execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedMode {
    /// Cost-model-driven cutover with level-scaled chunks and stealing.
    #[default]
    Adaptive,
    /// The legacy fixed-grain policy: parallel iff `len >= 4 * threads`,
    /// `len / threads` equal chunks, no stealing, no timing.
    Off,
    /// Every region runs on the caller's thread regardless of size.
    Serial,
    /// Every region with ≥ 2 items fans out (testing aid: exercises the
    /// parallel path and stealing even where the model would cut to
    /// serial, e.g. on a single-core host).
    Force,
}

/// Spawn-cost and hardware facts the cutover model needs. Obtained once
/// per process by [`Calibration::probe`], or injected for deterministic
/// tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Calibration {
    /// Measured cost of spawning + joining one scoped thread, nanoseconds.
    pub spawn_ns: u64,
    /// Hardware threads available to the process.
    pub hw_threads: usize,
}

impl Calibration {
    /// Probes the host once per process: times a few empty
    /// `thread::scope` fan-outs (best of four, so a descheduled probe
    /// doesn't poison the estimate) and reads `available_parallelism`.
    pub fn probe() -> Calibration {
        static PROBE: OnceLock<Calibration> = OnceLock::new();
        *PROBE.get_or_init(|| {
            let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
            let workers = hw_threads.clamp(2, 4);
            let mut best = u64::MAX;
            for _ in 0..4 {
                let t0 = Instant::now();
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| {});
                    }
                });
                best = best.min(t0.elapsed().as_nanos().try_into().unwrap_or(u64::MAX));
            }
            // Clamp below: a suspiciously fast probe (vDSO-less coarse
            // clock) must not make the model think spawns are free.
            Calibration { spawn_ns: (best / workers as u64).max(1_000), hw_threads }
        })
    }
}

/// Tuning knobs for the adaptive scheduler. Constructed from the
/// `ALS_SCHED` environment variable by [`SchedConfig::from_env`] (the
/// default used by `WorkerPool::new`), or explicitly for tests and
/// embedders via `FlowConfig`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedConfig {
    /// Decision policy.
    pub mode: SchedMode,
    /// Regions below this many items never fan out (hard guard, applied
    /// before the model runs).
    pub min_items: usize,
    /// Regions whose predicted serial time is below this floor never fan
    /// out (keeps sub-millisecond regions — the 30× sim regression — on
    /// the caller's thread).
    pub min_serial_us: u64,
    /// Target predicted work per chunk; smaller values mean more chunks
    /// and finer stealing granularity.
    pub chunk_target_us: u64,
    /// Whether idle workers steal whole chunks from stragglers.
    pub steal: bool,
    /// Fixed calibration, bypassing the one-time probe. `None` (the
    /// default) probes lazily on first use.
    pub calibration: Option<Calibration>,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            mode: SchedMode::Adaptive,
            min_items: 16,
            min_serial_us: 200,
            chunk_target_us: 100,
            steal: true,
            calibration: None,
        }
    }
}

impl SchedConfig {
    /// Reads the `ALS_SCHED` environment variable. The value is a
    /// comma-separated token list; unknown tokens are ignored so stale
    /// environments cannot break a run:
    ///
    /// * `adaptive` / `on` — cost-model cutover (default)
    /// * `off` — legacy fixed-grain policy
    /// * `serial` — never fan out
    /// * `force` — always fan out (testing)
    /// * `steal=0|1`, `min_items=N`, `min_serial_us=N`, `chunk_us=N`
    pub fn from_env() -> SchedConfig {
        match std::env::var("ALS_SCHED") {
            Ok(v) => SchedConfig::parse(&v),
            Err(_) => SchedConfig::default(),
        }
    }

    /// Parses an `ALS_SCHED`-style token list (see [`SchedConfig::from_env`]).
    pub fn parse(spec: &str) -> SchedConfig {
        let mut cfg = SchedConfig::default();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match token.split_once('=') {
                None => match token {
                    "adaptive" | "on" => cfg.mode = SchedMode::Adaptive,
                    "off" => cfg.mode = SchedMode::Off,
                    "serial" => cfg.mode = SchedMode::Serial,
                    "force" => cfg.mode = SchedMode::Force,
                    _ => {}
                },
                Some((key, val)) => match (key.trim(), val.trim()) {
                    ("steal", v) => cfg.steal = v != "0",
                    ("min_items", v) => {
                        if let Ok(n) = v.parse() {
                            cfg.min_items = n;
                        }
                    }
                    ("min_serial_us", v) => {
                        if let Ok(n) = v.parse() {
                            cfg.min_serial_us = n;
                        }
                    }
                    ("chunk_us", v) => {
                        if let Ok(n) = v.parse() {
                            cfg.chunk_target_us = n;
                        }
                    }
                    _ => {}
                },
            }
        }
        cfg
    }

    /// The legacy fixed-grain policy (`ALS_SCHED=off`).
    pub fn legacy() -> SchedConfig {
        SchedConfig { mode: SchedMode::Off, ..SchedConfig::default() }
    }

    /// Always fan out (`ALS_SCHED=force`), stealing enabled. Used by tests
    /// that must exercise the parallel path regardless of host parallelism.
    pub fn forced() -> SchedConfig {
        SchedConfig { mode: SchedMode::Force, ..SchedConfig::default() }
    }

    /// Adaptive mode with a fixed calibration — fully deterministic
    /// decisions given identical observation sequences.
    pub fn with_calibration(cal: Calibration) -> SchedConfig {
        SchedConfig { calibration: Some(cal), ..SchedConfig::default() }
    }
}

/// The outcome of one cutover decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Fan out across workers.
    Parallel,
    /// The model predicts serial is faster (or the pool is serial).
    Serial,
    /// A hard guard (min items / min serial time) kept the region inline
    /// before the model was consulted.
    Floor,
}

impl Decision {
    /// Whether the region fans out.
    pub fn is_parallel(self) -> bool {
        self == Decision::Parallel
    }
}

/// Online cost estimate for one named region: nanoseconds per unit
/// (item × weight), seeded per region name and refined by an EMA over
/// observed span timings. Atomic so parallel regions can be observed
/// without locks; the f64 estimate is stored as its bit pattern.
#[derive(Debug)]
pub struct RegionCost {
    unit_ns_bits: AtomicU64,
    samples: AtomicU64,
}

impl RegionCost {
    fn new(seed_unit_ns: f64) -> RegionCost {
        RegionCost {
            unit_ns_bits: AtomicU64::new(seed_unit_ns.to_bits()),
            samples: AtomicU64::new(0),
        }
    }

    /// Current estimated cost of one unit (item × weight), nanoseconds.
    pub fn unit_ns(&self) -> f64 {
        f64::from_bits(self.unit_ns_bits.load(Ordering::Relaxed))
    }

    /// Number of timing observations folded into the estimate.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    fn observe(&self, units: u64, elapsed: Duration) {
        if units == 0 {
            return;
        }
        let observed = elapsed.as_nanos() as f64 / units as f64;
        if !observed.is_finite() || observed <= 0.0 {
            return;
        }
        let n = self.samples.fetch_add(1, Ordering::Relaxed);
        let new = if n == 0 {
            // First measurement replaces the static seed outright.
            observed
        } else {
            let old = self.unit_ns();
            (3.0 * old + observed) / 4.0
        };
        self.unit_ns_bits.store(new.to_bits(), Ordering::Relaxed);
    }
}

/// Static per-region seeds, ns per unit. Only the order of magnitude
/// matters — the first real observation replaces the seed — but a sane
/// seed makes the very first decision of a run correct on typical hosts:
/// simulation gates are a handful of word-ops per pattern word, CPM rows
/// and LAC evaluations stream whole arena rows, and cut computation walks
/// fanout cones.
fn seed_for(region: &str) -> f64 {
    match region {
        "sim" | "sim_wave" => 2.0,
        "cpm_wave" | "eval" => 100.0,
        "cuts" => 5_000.0,
        _ => 1_000.0,
    }
}

/// The sizing of one parallel region: how many workers to spawn and how
/// many items each chunk carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Scoped threads to spawn (≤ pool budget, ≤ chunk count).
    pub workers: usize,
    /// Items per chunk; the last chunk may be short.
    pub chunk_len: usize,
    /// Total chunks (`ceil(len / chunk_len)`).
    pub chunks: usize,
}

/// Cost-model state shared by all regions of one [`WorkerPool`](crate::WorkerPool).
///
/// `decide` and `plan` are pure functions of the configuration, the
/// calibration and the observation history, which is what makes cutover
/// decisions reproducible: two schedulers constructed with the same
/// [`SchedConfig`] (fixed calibration) and fed the same observation
/// sequence return identical decisions for identical queries.
#[derive(Debug)]
pub struct Scheduler {
    cfg: SchedConfig,
    regions: Mutex<HashMap<&'static str, Arc<RegionCost>>>,
}

/// Safety margin: predicted serial time must beat predicted parallel time
/// by 15% before a region fans out, so model noise near the break-even
/// point resolves to the cheap (serial) side.
const CUTOVER_MARGIN_NUM: f64 = 1.15;

/// Upper bound on chunks per worker: enough slack for stealing to
/// rebalance stragglers without drowning in per-chunk overhead.
const MAX_CHUNKS_PER_WORKER: usize = 8;

/// Serial spans predicted shorter than this are not worth the two
/// `Instant` reads it takes to learn from them.
const LEARN_MIN_NS: f64 = 20_000.0;

impl Scheduler {
    pub fn new(cfg: SchedConfig) -> Scheduler {
        Scheduler { cfg, regions: Mutex::new(HashMap::new()) }
    }

    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    /// The calibration in effect: the configured fixture, or the one-time
    /// process-wide probe.
    pub fn calibration(&self) -> Calibration {
        self.cfg.calibration.unwrap_or_else(Calibration::probe)
    }

    /// The (lazily created) cost accumulator for a region.
    pub fn region(&self, name: &'static str) -> Arc<RegionCost> {
        let mut map = self.regions.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name).or_insert_with(|| Arc::new(RegionCost::new(seed_for(name)))))
    }

    /// Predicted serial time of a region, nanoseconds.
    pub fn predict_serial_ns(&self, region: &RegionCost, len: usize, weight: u64) -> f64 {
        (len as f64) * (weight.max(1) as f64) * region.unit_ns()
    }

    /// Predicted parallel time of a region over `workers` workers,
    /// nanoseconds (spawn cost plus the ideally-divided serial work).
    pub fn predict_parallel_ns(&self, serial_ns: f64, workers: usize) -> f64 {
        let cal = self.calibration();
        (cal.spawn_ns * workers as u64) as f64 + serial_ns / workers as f64
    }

    /// Serial-vs-parallel cutover for a region of `len` items with the
    /// given per-item weight, on a pool with `threads` budget.
    pub fn decide(&self, region: &RegionCost, len: usize, weight: u64, threads: usize) -> Decision {
        if threads <= 1 {
            return Decision::Serial;
        }
        match self.cfg.mode {
            SchedMode::Serial => Decision::Serial,
            SchedMode::Off => {
                // Legacy policy, bit-for-bit: `len >= 4 * threads`.
                if len >= 4 * threads {
                    Decision::Parallel
                } else {
                    Decision::Floor
                }
            }
            SchedMode::Force => {
                if len >= 2 {
                    Decision::Parallel
                } else {
                    Decision::Floor
                }
            }
            SchedMode::Adaptive => {
                if len < self.cfg.min_items {
                    return Decision::Floor;
                }
                let serial_ns = self.predict_serial_ns(region, len, weight);
                if serial_ns < (self.cfg.min_serial_us * 1_000) as f64 {
                    return Decision::Floor;
                }
                let workers = threads.min(self.calibration().hw_threads).min(len);
                if workers <= 1 {
                    return Decision::Serial;
                }
                if serial_ns > self.predict_parallel_ns(serial_ns, workers) * CUTOVER_MARGIN_NUM {
                    Decision::Parallel
                } else {
                    Decision::Serial
                }
            }
        }
    }

    /// Chunk sizing for a region that [`Scheduler::decide`]d to fan out.
    pub fn plan(&self, region: &RegionCost, len: usize, weight: u64, threads: usize) -> ChunkPlan {
        debug_assert!(len > 0);
        let chunks = match self.cfg.mode {
            SchedMode::Off => threads.min(len),
            SchedMode::Force => (threads * 4).min(len),
            SchedMode::Serial | SchedMode::Adaptive => {
                let workers = threads.min(self.calibration().hw_threads).min(len).max(1);
                if self.cfg.mode == SchedMode::Serial {
                    workers
                } else if self.cfg.steal {
                    let serial_ns = self.predict_serial_ns(region, len, weight);
                    let target = (self.cfg.chunk_target_us.max(1) * 1_000) as f64;
                    let by_cost = (serial_ns / target).ceil() as usize;
                    by_cost.clamp(workers, workers * MAX_CHUNKS_PER_WORKER).min(len)
                } else {
                    workers
                }
            }
        };
        let chunks = chunks.max(1);
        let chunk_len = len.div_ceil(chunks);
        let chunks = len.div_ceil(chunk_len);
        let workers = match self.cfg.mode {
            SchedMode::Off | SchedMode::Force => threads.min(chunks),
            SchedMode::Serial | SchedMode::Adaptive => {
                threads.min(self.calibration().hw_threads).min(chunks).max(1)
            }
        };
        ChunkPlan { workers, chunk_len, chunks }
    }

    /// Whether a serial span of this predicted size is worth timing for
    /// the model (the clock reads are ~2% of a 20µs span and shrink from
    /// there).
    pub fn should_learn_serial(&self, region: &RegionCost, len: usize, weight: u64) -> bool {
        self.cfg.mode == SchedMode::Adaptive
            && self.predict_serial_ns(region, len, weight) >= LEARN_MIN_NS
    }

    /// Folds an observed span into a region's cost estimate.
    pub fn observe(&self, region: &RegionCost, len: usize, weight: u64, elapsed: Duration) {
        if self.cfg.mode != SchedMode::Adaptive {
            return;
        }
        region.observe((len as u64).saturating_mul(weight.max(1)), elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed() -> Calibration {
        Calibration { spawn_ns: 20_000, hw_threads: 8 }
    }

    #[test]
    fn parse_round_trips_tokens() {
        let cfg = SchedConfig::parse("force,steal=0,min_items=3,min_serial_us=7,chunk_us=50");
        assert_eq!(cfg.mode, SchedMode::Force);
        assert!(!cfg.steal);
        assert_eq!(cfg.min_items, 3);
        assert_eq!(cfg.min_serial_us, 7);
        assert_eq!(cfg.chunk_target_us, 50);
        assert_eq!(SchedConfig::parse("off").mode, SchedMode::Off);
        assert_eq!(SchedConfig::parse("serial").mode, SchedMode::Serial);
        assert_eq!(SchedConfig::parse("on").mode, SchedMode::Adaptive);
        // Unknown tokens are ignored, not fatal.
        assert_eq!(SchedConfig::parse("bogus,mode=nope"), SchedConfig::default());
    }

    #[test]
    fn floor_guards_fire_before_the_model() {
        let s = Scheduler::new(SchedConfig::with_calibration(fixed()));
        let r = s.region("cpm_wave");
        assert_eq!(s.decide(&r, 15, 1, 8), Decision::Floor, "min_items");
        // 100 items x 1 word x 100ns seed = 10us < 200us floor.
        assert_eq!(s.decide(&r, 100, 1, 8), Decision::Floor, "min_serial_us");
        assert_eq!(s.decide(&r, 1_000_000, 64, 1), Decision::Serial, "serial pool");
    }

    #[test]
    fn model_cuts_over_when_serial_dominates_spawn_cost() {
        let s = Scheduler::new(SchedConfig::with_calibration(fixed()));
        let r = s.region("cpm_wave");
        // 10k items x 64 words x 100ns = 64ms serial; parallel over 8
        // workers ~ 8.16ms — clear win.
        assert_eq!(s.decide(&r, 10_000, 64, 8), Decision::Parallel);
        // After observing a much cheaper reality (0.5ns/unit), a mid-size
        // region cuts back to serial: 6.5k items x 64 words = 208us
        // serial, while parallel pays 160us of spawn for 26us of divided
        // work (186us, within the 15% margin of serial).
        s.observe(&r, 10_000, 64, Duration::from_micros(320));
        assert_eq!(r.unit_ns(), 0.5);
        assert_eq!(s.decide(&r, 6_500, 64, 8), Decision::Serial);
        // ...while the original heavy region stays parallel.
        assert_eq!(s.decide(&r, 10_000, 64, 8), Decision::Parallel);
    }

    #[test]
    fn chunks_scale_with_predicted_cost_not_thread_count() {
        let s = Scheduler::new(SchedConfig::with_calibration(fixed()));
        let r = s.region("cpm_wave");
        // 64ms of predicted work at chunk_target=100us wants 640 chunks,
        // clamped to workers * 8.
        let plan = s.plan(&r, 10_000, 64, 8);
        assert_eq!(plan.workers, 8);
        assert_eq!(plan.chunks, 64);
        // A small region still gets at least one chunk per worker.
        let small = s.plan(&r, 40, 1, 8);
        assert!(small.chunks >= small.workers);
        assert_eq!(small.chunk_len.checked_mul(small.chunks).map(|t| t >= 40), Some(true));
    }

    #[test]
    fn off_mode_reproduces_legacy_grain() {
        let s = Scheduler::new(SchedConfig::legacy());
        let r = s.region("anon");
        assert_eq!(s.decide(&r, 31, 1, 8), Decision::Floor);
        assert_eq!(s.decide(&r, 32, 1, 8), Decision::Parallel);
        let plan = s.plan(&r, 1000, 1, 4);
        assert_eq!((plan.workers, plan.chunk_len), (4, 250));
    }

    #[test]
    fn first_observation_replaces_seed_then_ema() {
        let r = RegionCost::new(1_000.0);
        r.observe(1_000, Duration::from_micros(10)); // 10ns/unit
        assert_eq!(r.unit_ns(), 10.0);
        r.observe(1_000, Duration::from_micros(50)); // 50ns/unit
        assert_eq!(r.unit_ns(), 20.0); // (3*10 + 50) / 4
        assert_eq!(r.samples(), 2);
    }
}
