//! Shared worker pool for the analysis hot path.
//!
//! All three analysis steps of the dual-phase framework — disjoint cuts,
//! CPM construction and LAC evaluation — are embarrassingly parallel over
//! independent nodes once their read-only inputs (reach map, ranks,
//! simulation values, earlier CPM rows) are fixed. This crate provides the
//! one threading primitive they all share, with three guarantees:
//!
//! * **Determinism.** Work is split into contiguous chunks and results are
//!   joined in chunk order, so the output of every `map` is byte-identical
//!   to the serial fold regardless of the thread count, the scheduling
//!   mode or which worker ends up computing (or stealing) a chunk.
//! * **Bounded threads.** A [`WorkerPool`] carries a fixed thread budget;
//!   each parallel region spawns at most that many scoped threads and
//!   joins them before returning (no detached workers, no global state).
//! * **Contained panics.** A panic on a worker thread is caught per chunk,
//!   every worker is still joined, and the payload of the panicking chunk
//!   with the lowest index is surfaced as a [`WorkerPanic`] value the
//!   engine converts into its structured `EngineError::WorkerPanic` — a
//!   run aborts with context instead of tearing down the process. (The
//!   serial fast path runs on the caller's stack and propagates panics
//!   natively, exactly like the serial code it replaces.)
//!
//! Whether a region fans out at all — and into how many chunks — is
//! decided by the adaptive [`Scheduler`] in [`sched`]: a per-region cost
//! model (ns per item, learned online from span timings, seeded by a
//! one-time calibration probe) predicts serial and parallel time and runs
//! the region inline when parallelism would not pay. Parallel regions are
//! split into more chunks than workers (sized by predicted cost, not
//! `len / threads`) and idle workers *steal whole chunks* from stragglers:
//! each worker owns a contiguous range of chunk indices claimed through a
//! per-range atomic cursor, and an idle worker claims from a victim's
//! cursor exactly like the owner does, so every chunk is computed exactly
//! once and results are reassembled by chunk index afterwards — stealing
//! moves *where* a chunk runs, never *where its results land*.
//!
//! The pool intentionally uses `std::thread::scope` rather than persistent
//! worker threads: analysis regions borrow the circuit, simulator and cut
//! state immutably, and scoped spawns make those borrows safe without any
//! `Arc`/channel machinery or external dependencies.

use std::any::Any;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use als_obs::{Counter, Histogram, Obs};

pub mod sched;

pub use sched::{Calibration, ChunkPlan, Decision, SchedConfig, SchedMode, Scheduler};

/// A worker thread panicked inside a parallel region; carries the panic
/// payload rendered as text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerPanic(pub String);

impl WorkerPanic {
    fn from_payload(payload: Box<dyn Any + Send>) -> WorkerPanic {
        let detail = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown panic payload".to_string());
        WorkerPanic(detail)
    }

    /// Re-raises the contained panic on the current thread. For callers
    /// whose API has no error channel (e.g. simulation refresh).
    pub fn resume(self) -> ! {
        std::panic::panic_any(self.0)
    }
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker thread panicked: {}", self.0)
    }
}

impl std::error::Error for WorkerPanic {}

/// Names a scheduling region and carries its per-item weight — a known
/// scale factor (such as the simulation word count) that lets one learned
/// ns-per-unit estimate transfer between runs whose items differ only in
/// that factor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionSpec {
    /// Region name; one cost estimate is kept per name.
    pub name: &'static str,
    /// Per-item weight (≥ 1); predicted cost is `len · weight · unit_ns`.
    pub weight: u64,
}

impl RegionSpec {
    /// A region with unit weight.
    pub fn new(name: &'static str) -> RegionSpec {
        RegionSpec { name, weight: 1 }
    }

    /// A region whose items carry a known scale factor (e.g. words per
    /// simulation vector).
    pub fn weighted(name: &'static str, weight: u64) -> RegionSpec {
        RegionSpec { name, weight: weight.max(1) }
    }
}

impl From<&'static str> for RegionSpec {
    fn from(name: &'static str) -> RegionSpec {
        RegionSpec::new(name)
    }
}

/// A pre-resolved scheduling region: the spec plus its cost accumulator,
/// looked up once. Call sites that decide per wave (simulation, CPM
/// sweeps) hold one of these so each decision reads the model directly
/// instead of re-locking the scheduler's region registry.
#[derive(Clone, Debug)]
pub struct RegionHandle {
    spec: RegionSpec,
    cost: Arc<sched::RegionCost>,
}

impl RegionHandle {
    /// The spec this handle was resolved from.
    pub fn spec(&self) -> RegionSpec {
        self.spec
    }
}

/// Per-worker state that persists *across* parallel regions.
///
/// A `map_with` scratch is rebuilt on every call; for per-iteration loops
/// (batch LAC evaluation, CPM waves) that rebuild is pure allocation
/// churn. Callers keep a `WorkerScratch` alongside the pool and pass it to
/// the `*_store_in` / `*_hybrid_in` maps: slot `i` is lazily built on
/// first use and handed to worker `i` of every subsequent region, and slot
/// 0 doubles as the serial-path scratch, so steady state performs zero
/// scratch allocation regardless of how the scheduler splits the work.
#[derive(Debug)]
pub struct WorkerScratch<P> {
    slots: Vec<P>,
}

impl<P> Default for WorkerScratch<P> {
    fn default() -> WorkerScratch<P> {
        WorkerScratch { slots: Vec::new() }
    }
}

impl<P> WorkerScratch<P> {
    pub fn new() -> WorkerScratch<P> {
        WorkerScratch::default()
    }

    /// Built slots so far (grows to the widest region seen).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Drops all built slots (e.g. when the backing dimensions change).
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    fn ensure(&mut self, n: usize, build: &(impl Fn() -> P + ?Sized)) {
        while self.slots.len() < n {
            self.slots.push(build());
        }
    }
}

/// Pre-registered utilization metrics of one pool. Disabled handles are
/// inlined no-ops, so an uninstrumented pool pays nothing per region.
#[derive(Clone, Debug, Default)]
struct PoolMetrics {
    /// Whether the backing [`Obs`] records anything (gates the per-region
    /// `Instant` reads, which unlike the handles are not free).
    enabled: bool,
    /// Parallel regions that actually fanned out.
    regions: Counter,
    /// Regions that stayed on the caller's thread (small inputs or a
    /// serial pool).
    serial_regions: Counter,
    /// Items mapped across all regions.
    items: Counter,
    /// Per-worker busy time inside a parallel region, microseconds.
    busy_us: Histogram,
    /// Per-region pool utilization: `100 · Σ busy / (workers · span)`.
    utilization_pct: Histogram,
    /// Cutover decisions that fanned out.
    cutover_parallel: Counter,
    /// Cutover decisions the cost model resolved to serial.
    cutover_serial: Counter,
    /// Cutover decisions short-circuited by a hard floor guard.
    cutover_floor: Counter,
    /// Chunks executed by a worker other than their range owner.
    steals: Counter,
    /// `100 · |predicted − actual| / actual` for parallel regions.
    pred_err_pct: Histogram,
}

impl PoolMetrics {
    fn register(obs: &Obs) -> PoolMetrics {
        PoolMetrics {
            enabled: obs.is_enabled(),
            regions: obs.counter("als_pool_regions_total", "parallel regions that fanned out"),
            serial_regions: obs
                .counter("als_pool_serial_regions_total", "regions that ran on the caller thread"),
            items: obs.counter("als_pool_items_total", "items mapped over the pool"),
            busy_us: obs
                .histogram("als_pool_worker_busy_us", "per-worker busy time per region (us)"),
            utilization_pct: obs.histogram(
                "als_pool_utilization_pct",
                "per-region worker utilization (percent of workers x wall time)",
            ),
            cutover_parallel: obs
                .counter("als_sched_cutover_parallel_total", "cutover decisions that fanned out"),
            cutover_serial: obs.counter(
                "als_sched_cutover_serial_total",
                "cutover decisions the cost model kept serial",
            ),
            cutover_floor: obs.counter(
                "als_sched_cutover_floor_total",
                "cutover decisions stopped by the min-items/min-time floor",
            ),
            steals: obs.counter("als_sched_steals_total", "chunks executed by a non-owner worker"),
            pred_err_pct: obs.histogram(
                "als_sched_pred_err_pct",
                "percent error of predicted vs actual parallel region time",
            ),
        }
    }
}

/// A fixed-size budget of worker threads for chunk-parallel maps.
///
/// The pool itself is trivially cheap to construct and `Clone` (clones
/// share the adaptive scheduler, so learned costs transfer); the threads
/// are spawned per parallel region (scoped) and joined before the call
/// returns.
#[derive(Clone, Debug)]
pub struct WorkerPool {
    threads: usize,
    sched: Arc<Scheduler>,
    metrics: PoolMetrics,
}

impl WorkerPool {
    /// A pool of `threads` workers (values below 1 are clamped to 1 —
    /// serial execution), scheduled per the `ALS_SCHED` environment
    /// variable (adaptive by default).
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool::with_config(threads, SchedConfig::from_env())
    }

    /// A pool with an explicit scheduling configuration (ignores
    /// `ALS_SCHED`). Tests that depend on cutover decisions use this with
    /// a fixed [`Calibration`] or [`SchedConfig::forced`] so the host's
    /// core count cannot change the outcome.
    pub fn with_config(threads: usize, cfg: SchedConfig) -> WorkerPool {
        WorkerPool {
            threads: threads.max(1),
            sched: Arc::new(Scheduler::new(cfg)),
            metrics: PoolMetrics::default(),
        }
    }

    /// Attaches an observability handle: the pool pre-registers its
    /// utilization metrics and records them per region. With a disabled
    /// `Obs` this is equivalent to the plain pool.
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> WorkerPool {
        self.metrics = PoolMetrics::register(obs);
        self
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool always executes on the caller's thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// The scheduler driving this pool's cutover decisions.
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Whether a region over `len` items would actually fan out, without
    /// recording a cutover decision. Callers that branch on the answer and
    /// then run the region through the pool should use [`WorkerPool::decide`]
    /// instead so the decision is counted once.
    pub fn would_parallelize(&self, len: usize) -> bool {
        self.would_parallelize_in(RegionSpec::new("anon"), len)
    }

    /// [`WorkerPool::would_parallelize`] for a named, weighted region.
    pub fn would_parallelize_in(&self, spec: impl Into<RegionSpec>, len: usize) -> bool {
        let spec = spec.into();
        let region = self.sched.region(spec.name);
        self.sched.decide(&region, len, spec.weight, self.threads).is_parallel()
    }

    /// Resolves a region's cost accumulator once; pair with the
    /// `*_region` methods in loops that decide per wave.
    pub fn region(&self, spec: impl Into<RegionSpec>) -> RegionHandle {
        let spec = spec.into();
        RegionHandle { cost: self.sched.region(spec.name), spec }
    }

    /// Serial/parallel cutover for a region the caller runs itself (e.g.
    /// an inline loop with its own install step). Records the decision in
    /// the `als_sched_cutover_*` counters.
    pub fn decide(&self, spec: impl Into<RegionSpec>, len: usize) -> bool {
        self.decide_region(&self.region(spec), len)
    }

    /// [`WorkerPool::decide`] through a pre-resolved handle (no registry
    /// lock).
    pub fn decide_region(&self, h: &RegionHandle, len: usize) -> bool {
        let d = self.sched.decide(&h.cost, len, h.spec.weight, self.threads);
        self.record_cutover(d);
        d.is_parallel()
    }

    /// Feeds the cost model from a region the caller ran inline (after a
    /// serial [`WorkerPool::decide`]). Callers gate the `Instant` reads on
    /// [`WorkerPool::should_learn`].
    pub fn observe_serial(&self, spec: impl Into<RegionSpec>, len: usize, elapsed: Duration) {
        self.observe_serial_region(&self.region(spec), len, elapsed);
    }

    /// [`WorkerPool::observe_serial`] through a pre-resolved handle.
    pub fn observe_serial_region(&self, h: &RegionHandle, len: usize, elapsed: Duration) {
        self.sched.observe(&h.cost, len, h.spec.weight, elapsed);
    }

    /// Whether an inline serial region of this size is worth timing for
    /// the cost model (false on serial pools and for sub-threshold spans,
    /// so tiny regions never pay the clock reads).
    pub fn should_learn(&self, spec: impl Into<RegionSpec>, len: usize) -> bool {
        self.should_learn_region(&self.region(spec), len)
    }

    /// [`WorkerPool::should_learn`] through a pre-resolved handle.
    pub fn should_learn_region(&self, h: &RegionHandle, len: usize) -> bool {
        self.threads > 1 && self.sched.should_learn_serial(&h.cost, len, h.spec.weight)
    }

    fn record_cutover(&self, d: Decision) {
        if self.threads <= 1 {
            return;
        }
        match d {
            Decision::Parallel => self.metrics.cutover_parallel.inc(),
            Decision::Serial => self.metrics.cutover_serial.inc(),
            Decision::Floor => self.metrics.cutover_floor.inc(),
        }
    }

    /// Maps `f` over `items`, returning the results in item order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, WorkerPanic>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_in("anon", items, f)
    }

    /// [`WorkerPool::map`] under a named region.
    pub fn map_in<T, R, F>(
        &self,
        spec: impl Into<RegionSpec>,
        items: &[T],
        f: F,
    ) -> Result<Vec<R>, WorkerPanic>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let mut store = WorkerScratch::new();
        self.run_region(
            spec.into(),
            items,
            &mut store,
            &|| (),
            &|| (),
            &|_: &mut (), _: &mut (), item| f(item),
            false,
        )
    }

    /// Maps `f` over `items` with one `scratch()`-built state per worker,
    /// returning the results in item order.
    ///
    /// The scratch builder runs once per spawned worker (once total on the
    /// serial path), so expensive reusable buffers amortise over the whole
    /// chunk instead of being rebuilt per item. To also amortise across
    /// *calls*, see [`WorkerPool::map_store_in`].
    pub fn map_with<S, T, R, B, F>(
        &self,
        items: &[T],
        scratch: B,
        f: F,
    ) -> Result<Vec<R>, WorkerPanic>
    where
        T: Sync,
        R: Send,
        B: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        self.map_with_in("anon", items, scratch, f)
    }

    /// [`WorkerPool::map_with`] under a named region.
    pub fn map_with_in<S, T, R, B, F>(
        &self,
        spec: impl Into<RegionSpec>,
        items: &[T],
        scratch: B,
        f: F,
    ) -> Result<Vec<R>, WorkerPanic>
    where
        T: Sync,
        R: Send,
        B: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        let mut store = WorkerScratch::new();
        self.run_region(
            spec.into(),
            items,
            &mut store,
            &|| (),
            &scratch,
            &|_: &mut (), s, item| f(s, item),
            false,
        )
    }

    /// Maps `f` over `items` with per-worker scratch that persists across
    /// calls in `store` (slot `i` serves worker `i`; built lazily by
    /// `persist`).
    pub fn map_store_in<P, T, R, B, F>(
        &self,
        spec: impl Into<RegionSpec>,
        items: &[T],
        store: &mut WorkerScratch<P>,
        persist: B,
        f: F,
    ) -> Result<Vec<R>, WorkerPanic>
    where
        P: Send,
        T: Sync,
        R: Send,
        B: Fn() -> P + Sync,
        F: Fn(&mut P, &T) -> R + Sync,
    {
        self.run_region(
            spec.into(),
            items,
            store,
            &persist,
            &|| (),
            &|p, _: &mut (), item| f(p, item),
            false,
        )
    }

    /// The most general map: per-worker *persistent* scratch `P` (reused
    /// across calls via `store`) plus per-call scratch `S` (rebuilt each
    /// call, for state that borrows call-local inputs).
    #[allow(clippy::too_many_arguments)]
    pub fn map_hybrid_in<P, S, T, R, BP, BS, F>(
        &self,
        spec: impl Into<RegionSpec>,
        items: &[T],
        store: &mut WorkerScratch<P>,
        persist: BP,
        percall: BS,
        f: F,
    ) -> Result<Vec<R>, WorkerPanic>
    where
        P: Send,
        T: Sync,
        R: Send,
        BP: Fn() -> P + Sync,
        BS: Fn() -> S + Sync,
        F: Fn(&mut P, &mut S, &T) -> R + Sync,
    {
        self.run_region(spec.into(), items, store, &persist, &percall, &f, false)
    }

    /// Maps `f` over `items` forcing the parallel path (no cutover
    /// decision, no decision metrics): for callers that already called
    /// [`WorkerPool::decide`] and branch themselves. Falls back to the
    /// serial path only when it cannot fan out at all (serial pool or
    /// fewer than two items).
    pub fn map_parallel_in<T, R, F>(
        &self,
        spec: impl Into<RegionSpec>,
        items: &[T],
        f: F,
    ) -> Result<Vec<R>, WorkerPanic>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let mut store = WorkerScratch::new();
        self.run_region(
            spec.into(),
            items,
            &mut store,
            &|| (),
            &|| (),
            &|_: &mut (), _: &mut (), item| f(item),
            true,
        )
    }

    /// Maps a fallible `f` over `items` with per-worker scratch, collecting
    /// the first error (worker panics take precedence). Item order is
    /// preserved; error selection is deterministic (first item in order).
    pub fn try_map_with<S, T, R, E, B, F>(
        &self,
        items: &[T],
        scratch: B,
        f: F,
    ) -> Result<Result<Vec<R>, E>, WorkerPanic>
    where
        T: Sync,
        R: Send,
        E: Send,
        B: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> Result<R, E> + Sync,
    {
        let per_item = self.map_with(items, scratch, f)?;
        Ok(per_item.into_iter().collect())
    }

    /// [`WorkerPool::try_map_with`] with persistent-plus-per-call scratch
    /// (see [`WorkerPool::map_hybrid_in`]).
    #[allow(clippy::too_many_arguments)]
    pub fn try_map_hybrid_in<P, S, T, R, E, BP, BS, F>(
        &self,
        spec: impl Into<RegionSpec>,
        items: &[T],
        store: &mut WorkerScratch<P>,
        persist: BP,
        percall: BS,
        f: F,
    ) -> Result<Result<Vec<R>, E>, WorkerPanic>
    where
        P: Send,
        T: Sync,
        R: Send,
        E: Send,
        BP: Fn() -> P + Sync,
        BS: Fn() -> S + Sync,
        F: Fn(&mut P, &mut S, &T) -> Result<R, E> + Sync,
    {
        let per_item = self.map_hybrid_in(spec, items, store, persist, percall, f)?;
        Ok(per_item.into_iter().collect())
    }

    /// [`WorkerPool::try_map_hybrid_in`] forcing the parallel path (no
    /// cutover decision — for callers that already called
    /// [`WorkerPool::decide`] and handle the serial branch themselves,
    /// e.g. to install results with zero copies).
    #[allow(clippy::too_many_arguments)]
    pub fn try_map_parallel_hybrid_in<P, S, T, R, E, BP, BS, F>(
        &self,
        spec: impl Into<RegionSpec>,
        items: &[T],
        store: &mut WorkerScratch<P>,
        persist: BP,
        percall: BS,
        f: F,
    ) -> Result<Result<Vec<R>, E>, WorkerPanic>
    where
        P: Send,
        T: Sync,
        R: Send,
        E: Send,
        BP: Fn() -> P + Sync,
        BS: Fn() -> S + Sync,
        F: Fn(&mut P, &mut S, &T) -> Result<R, E> + Sync,
    {
        let per_item = self.run_region(spec.into(), items, store, &persist, &percall, &f, true)?;
        Ok(per_item.into_iter().collect())
    }

    /// The one region engine behind every map: decides (or is forced),
    /// sizes chunks, fans out with whole-chunk stealing, reassembles in
    /// chunk order, and feeds timings back to the cost model.
    #[allow(clippy::too_many_arguments)]
    fn run_region<P, S, T, R>(
        &self,
        spec: RegionSpec,
        items: &[T],
        store: &mut WorkerScratch<P>,
        persist: &(impl Fn() -> P + Sync),
        percall: &(impl Fn() -> S + Sync),
        f: &(impl Fn(&mut P, &mut S, &T) -> R + Sync),
        force_parallel: bool,
    ) -> Result<Vec<R>, WorkerPanic>
    where
        P: Send,
        T: Sync,
        R: Send,
    {
        let len = items.len();
        let region = self.sched.region(spec.name);
        let decision = if force_parallel {
            if self.threads > 1 && len >= 2 {
                Decision::Parallel
            } else {
                Decision::Floor
            }
        } else {
            let d = self.sched.decide(&region, len, spec.weight, self.threads);
            self.record_cutover(d);
            d
        };

        if !decision.is_parallel() {
            self.metrics.serial_regions.inc();
            self.metrics.items.add(len as u64);
            // Only model-driven serial decisions on a parallel pool learn
            // from the span — floor-guarded (tiny) regions and serial
            // pools never pay the clock reads.
            let learn = self.threads > 1
                && decision == Decision::Serial
                && self.sched.should_learn_serial(&region, len, spec.weight);
            let t0 = learn.then(Instant::now);
            store.ensure(1, persist);
            let p = &mut store.slots[0];
            let mut s = percall();
            // A multi-thread pool contains item panics no matter which
            // side of the cutover a region lands on — the error surface
            // must not depend on the cost model's decision. A 1-thread
            // pool deliberately propagates, matching the engine's serial
            // degradation contract.
            let out: Vec<R> = if self.threads > 1 {
                std::panic::catch_unwind(AssertUnwindSafe(|| {
                    items.iter().map(|item| f(p, &mut s, item)).collect()
                }))
                .map_err(WorkerPanic::from_payload)?
            } else {
                items.iter().map(|item| f(p, &mut s, item)).collect()
            };
            if let Some(t0) = t0 {
                self.sched.observe(&region, len, spec.weight, t0.elapsed());
            }
            return Ok(out);
        }

        let plan = self.sched.plan(&region, len, spec.weight, self.threads);
        let ChunkPlan { workers, chunk_len, chunks } = plan;
        store.ensure(workers, persist);
        self.metrics.regions.inc();
        self.metrics.items.add(len as u64);
        // Busy-time reads are gated on `enabled` OR adaptive learning:
        // handles are free when disabled but `Instant::now` is not, and
        // the legacy (`off`) mode must not pay it on uninstrumented runs.
        let timed = self.metrics.enabled;
        let learning = self.sched.config().mode == SchedMode::Adaptive;
        let time_workers = timed || learning;
        let region_start = timed.then(Instant::now);
        let predicted_ns = (timed && learning && !force_parallel).then(|| {
            let serial_ns = self.sched.predict_serial_ns(&region, len, spec.weight);
            self.sched.predict_parallel_ns(serial_ns, workers)
        });
        let steal_enabled = self.sched.config().steal && self.sched.config().mode != SchedMode::Off;

        // Contiguous chunk-index ranges, one per worker; every chunk is
        // claimed exactly once through its range's atomic cursor, whether
        // by the owner or a stealer.
        let starts: Vec<usize> = (0..workers).map(|w| w * chunks / workers).collect();
        let ends: Vec<usize> = (0..workers).map(|w| (w + 1) * chunks / workers).collect();
        let cursors: Vec<AtomicUsize> = starts.iter().map(|&s| AtomicUsize::new(s)).collect();
        let (cursors, ends) = (&cursors, &ends);

        type WorkerOut<R> =
            (Vec<(usize, Vec<R>)>, u64, Option<Duration>, Option<(usize, WorkerPanic)>);

        std::thread::scope(|scope| {
            let handles: Vec<_> = store.slots[..workers]
                .iter_mut()
                .enumerate()
                .map(|(w, slot)| {
                    scope.spawn(move || -> WorkerOut<R> {
                        let t0 = time_workers.then(Instant::now);
                        let mut s = percall();
                        let mut parts: Vec<(usize, Vec<R>)> = Vec::new();
                        let mut steals = 0u64;
                        let mut panicked: Option<(usize, WorkerPanic)> = None;
                        let victims = if steal_enabled { workers } else { 1 };
                        'drain: for k in 0..victims {
                            let v = (w + k) % workers;
                            loop {
                                let c = cursors[v].fetch_add(1, Ordering::Relaxed);
                                if c >= ends[v] {
                                    break;
                                }
                                if v != w {
                                    steals += 1;
                                }
                                let lo = c * chunk_len;
                                let hi = (lo + chunk_len).min(len);
                                let part = &items[lo..hi];
                                // Catch per chunk so the *lowest-index*
                                // panicking chunk can be surfaced even
                                // when stealing reorders execution.
                                let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                    part.iter()
                                        .map(|item| f(slot, &mut s, item))
                                        .collect::<Vec<R>>()
                                }));
                                match run {
                                    Ok(rs) => parts.push((c, rs)),
                                    Err(payload) => {
                                        panicked = Some((c, WorkerPanic::from_payload(payload)));
                                        break 'drain;
                                    }
                                }
                            }
                        }
                        (parts, steals, t0.map(|t| t.elapsed()), panicked)
                    })
                })
                .collect();

            // Join every handle even after a panic: leaving a panicked
            // scoped thread unjoined would make the scope itself panic and
            // bypass the error conversion.
            let mut by_chunk: Vec<Option<Vec<R>>> = (0..chunks).map(|_| None).collect();
            let mut first_panic: Option<(usize, WorkerPanic)> = None;
            let mut busy = Duration::ZERO;
            let mut steal_total = 0u64;
            for h in handles {
                match h.join() {
                    Ok((parts, steals, worker_busy, panicked)) => {
                        for (c, rs) in parts {
                            by_chunk[c] = Some(rs);
                        }
                        steal_total += steals;
                        if let Some(b) = worker_busy {
                            busy += b;
                            if timed {
                                self.metrics.busy_us.observe_duration(b);
                            }
                        }
                        if let Some((c, p)) = panicked {
                            if first_panic.as_ref().is_none_or(|(fc, _)| c < *fc) {
                                first_panic = Some((c, p));
                            }
                        }
                    }
                    Err(payload) => {
                        // A panic that escaped the per-chunk catch (e.g.
                        // inside `percall`): surface it, but let any
                        // chunk-attributed panic win the ordering.
                        let p = WorkerPanic::from_payload(payload);
                        if first_panic.is_none() {
                            first_panic = Some((usize::MAX, p));
                        }
                    }
                }
            }

            self.metrics.steals.add(steal_total);
            if learning {
                self.sched.observe(&region, len, spec.weight, busy);
            }
            if let Some(start) = region_start {
                let span_ns = start.elapsed().as_nanos();
                if span_ns > 0 {
                    let pct = busy.as_nanos() * 100 / (span_ns * (workers.max(1) as u128));
                    self.metrics.utilization_pct.observe(pct.min(100) as u64);
                    if let Some(pred) = predicted_ns {
                        let actual = span_ns as f64;
                        let err = ((pred - actual).abs() * 100.0 / actual) as u64;
                        self.metrics.pred_err_pct.observe(err);
                    }
                }
            }

            if let Some((_, p)) = first_panic {
                return Err(p);
            }
            let mut all = Vec::with_capacity(len);
            for part in by_chunk {
                // Every cursor ran to its range end and no chunk panicked,
                // so every index was claimed and completed exactly once.
                all.extend(part.expect("chunk completed by exactly one worker"));
            }
            Ok(all)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A calibration fixture: decisions become a pure function of the
    /// config and observations, independent of the host.
    fn fixed_cal() -> Calibration {
        Calibration { spawn_ns: 20_000, hw_threads: 8 }
    }

    #[test]
    fn map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 7, 16] {
            for cfg in [
                SchedConfig::default(),
                SchedConfig::legacy(),
                SchedConfig::forced(),
                SchedConfig { steal: false, ..SchedConfig::forced() },
                SchedConfig::with_calibration(fixed_cal()),
            ] {
                let pool = WorkerPool::with_config(threads, cfg.clone());
                let got = pool.map(&items, |x| x * 3 + 1).unwrap();
                assert_eq!(got, expect, "threads = {threads}, cfg = {cfg:?}");
            }
        }
    }

    #[test]
    fn scratch_is_per_worker_and_results_ordered() {
        let items: Vec<usize> = (0..500).collect();
        let pool = WorkerPool::with_config(4, SchedConfig::forced());
        // Scratch accumulates a per-worker counter; the mapped value must
        // not depend on it (determinism), only on the item.
        let got = pool
            .map_with(
                &items,
                || 0usize,
                |count, &x| {
                    *count += 1;
                    x * 2
                },
            )
            .unwrap();
        assert_eq!(got, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn legacy_mode_keeps_fixed_grain_thresholds() {
        let pool = WorkerPool::with_config(8, SchedConfig::legacy());
        assert!(!pool.would_parallelize(7));
        assert!(!pool.would_parallelize(31));
        assert!(pool.would_parallelize(8 * 4));
        // ...and still produce correct results below threshold.
        let got = pool.map(&[1, 2, 3], |x| x + 1).unwrap();
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn adaptive_floors_keep_small_and_cheap_regions_serial() {
        let pool = WorkerPool::with_config(8, SchedConfig::with_calibration(fixed_cal()));
        // Hard min-items guard: below 16 items never fans out, whatever
        // the model thinks.
        assert!(!pool.would_parallelize(15));
        // A sub-millisecond region (sim seed: 2ns/unit · 1000 = 2us) stays
        // serial under the min-serial-time floor.
        assert!(!pool.would_parallelize_in(RegionSpec::weighted("sim_wave", 1), 1000));
        // A predicted-heavy region clears both floors and the model.
        assert!(pool.would_parallelize_in(RegionSpec::weighted("cpm_wave", 64), 10_000));
    }

    #[test]
    fn worker_panic_is_converted_not_propagated() {
        let items: Vec<usize> = (0..200).collect();
        let pool = WorkerPool::with_config(4, SchedConfig::forced());
        let err = pool
            .map(&items, |&x| {
                assert!(x != 137, "boom at {x}");
                x
            })
            .unwrap_err();
        assert!(err.0.contains("boom at 137"), "payload: {}", err.0);
        assert!(err.to_string().contains("worker thread panicked"));
    }

    #[test]
    fn multi_thread_pool_contains_panics_even_when_region_runs_serial() {
        // The error surface must not depend on the cutover decision: a
        // region the cost model keeps serial still returns WorkerPanic
        // on a multi-thread pool...
        let items: Vec<usize> = (0..8).collect(); // below the min-items floor
        let pool = WorkerPool::with_config(4, SchedConfig::with_calibration(fixed_cal()));
        let err = pool.map(&items, |&x| if x == 3 { panic!("serial boom") } else { x });
        assert!(err.unwrap_err().0.contains("serial boom"));
        // ...while a 1-thread pool deliberately propagates.
        let serial = WorkerPool::with_config(1, SchedConfig::with_calibration(fixed_cal()));
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
            serial.map(&items, |&x| if x == 3 { panic!("serial boom") } else { x })
        }));
        assert!(run.is_err());
    }

    #[test]
    fn lowest_chunk_panic_wins_even_with_stealing() {
        let items: Vec<usize> = (0..400).collect();
        for steal in [true, false] {
            let pool = WorkerPool::with_config(4, SchedConfig { steal, ..SchedConfig::forced() });
            // every chunk panics; the payload of the lowest chunk wins
            let err = pool.map(&items, |&x| panic!("chunk item {x}")).unwrap_err();
            assert_eq!(err.0, "chunk item 0", "steal = {steal}");
        }
    }

    #[test]
    fn try_map_surfaces_first_error_in_item_order() {
        let items: Vec<usize> = (0..300).collect();
        let pool = WorkerPool::with_config(3, SchedConfig::forced());
        let inner = pool
            .try_map_with(&items, || (), |(), &x| if x % 100 == 50 { Err(x) } else { Ok(x) })
            .unwrap();
        assert_eq!(inner.unwrap_err(), 50);
    }

    #[test]
    fn stealing_rebalances_stragglers_and_preserves_order() {
        // One pathological item (index 0) is ~1000x the cost of the rest:
        // the worker that owns chunk 0 stalls there while the others
        // finish their ranges and steal its remaining chunks.
        let items: Vec<u64> = (0..4096).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x + 1).collect();
        let obs = als_obs::Obs::new(als_obs::ObsConfig::default()).unwrap();
        let pool = WorkerPool::with_config(4, SchedConfig::forced()).with_obs(&obs);
        let got = pool
            .map(&items, |&x| {
                if x == 0 {
                    std::thread::sleep(Duration::from_millis(30));
                }
                x + 1
            })
            .unwrap();
        assert_eq!(got, expect);
        let steals = obs.counter("als_sched_steals_total", "").get();
        assert!(steals > 0, "expected the stalled owner's chunks to be stolen");
    }

    #[test]
    fn persistent_store_reuses_slots_across_calls() {
        let pool = WorkerPool::with_config(4, SchedConfig::forced());
        let items: Vec<u64> = (0..256).collect();
        let builds = AtomicUsize::new(0);
        let mut store: WorkerScratch<Vec<u64>> = WorkerScratch::new();
        for round in 0..5 {
            let got = pool
                .map_store_in(
                    "eval",
                    &items,
                    &mut store,
                    || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        Vec::with_capacity(64)
                    },
                    |buf, &x| {
                        buf.clear();
                        buf.push(x);
                        buf[0] * 2
                    },
                )
                .unwrap();
            assert_eq!(got, items.iter().map(|x| x * 2).collect::<Vec<_>>(), "round {round}");
        }
        let built = builds.load(Ordering::Relaxed);
        assert!(!store.is_empty());
        assert_eq!(built, store.len(), "slots built lazily once, then reused");
        assert!(built <= 4, "at most one slot per worker, got {built}");
    }

    #[test]
    fn hybrid_map_rebuilds_percall_scratch_only() {
        let pool = WorkerPool::with_config(2, SchedConfig::forced());
        let items: Vec<u64> = (0..64).collect();
        let persist_builds = AtomicUsize::new(0);
        let percall_builds = AtomicUsize::new(0);
        let mut store: WorkerScratch<u64> = WorkerScratch::new();
        for _ in 0..3 {
            let got = pool
                .map_hybrid_in(
                    "eval",
                    &items,
                    &mut store,
                    || {
                        persist_builds.fetch_add(1, Ordering::Relaxed);
                        0u64
                    },
                    || {
                        percall_builds.fetch_add(1, Ordering::Relaxed);
                        0u64
                    },
                    |_p, _s, &x| x,
                )
                .unwrap();
            assert_eq!(got, items);
        }
        assert!(persist_builds.load(Ordering::Relaxed) <= 2, "persistent slots reused");
        assert!(percall_builds.load(Ordering::Relaxed) >= 3, "per-call scratch rebuilt");
    }

    #[test]
    fn map_parallel_in_matches_serial_output() {
        let items: Vec<u64> = (0..100).collect();
        let forced = WorkerPool::with_config(4, SchedConfig::forced());
        let serial = WorkerPool::with_config(1, SchedConfig::default());
        assert_eq!(
            forced.map_parallel_in("sim_wave", &items, |x| x * 5).unwrap(),
            serial.map(&items, |x| x * 5).unwrap(),
        );
    }

    #[test]
    fn instrumented_pool_records_regions_and_matches_plain_output() {
        let obs = als_obs::Obs::new(als_obs::ObsConfig::default()).unwrap();
        let items: Vec<u64> = (0..1000).collect();
        let plain = WorkerPool::with_config(4, SchedConfig::forced());
        let pool = WorkerPool::with_config(4, SchedConfig::forced()).with_obs(&obs);
        assert_eq!(pool.map(&items, |x| x * 7).unwrap(), plain.map(&items, |x| x * 7).unwrap());
        let _small = pool.map(&[1u64], |x| *x).unwrap();
        assert_eq!(obs.counter("als_pool_regions_total", "").get(), 1);
        assert_eq!(obs.counter("als_pool_serial_regions_total", "").get(), 1);
        assert_eq!(obs.counter("als_pool_items_total", "").get(), 1001);
        assert_eq!(obs.counter("als_sched_cutover_parallel_total", "").get(), 1);
        assert_eq!(obs.counter("als_sched_cutover_floor_total", "").get(), 1);
        assert_eq!(obs.histogram("als_pool_worker_busy_us", "").count(), 4);
        assert_eq!(obs.histogram("als_pool_utilization_pct", "").count(), 1);
    }

    #[test]
    fn adaptive_records_serial_cutovers_and_pred_err() {
        let obs = als_obs::Obs::new(als_obs::ObsConfig::default()).unwrap();
        let pool =
            WorkerPool::with_config(8, SchedConfig::with_calibration(fixed_cal())).with_obs(&obs);
        let items: Vec<u64> = (0..10_000).collect();
        // Heavy region fans out and records a prediction error sample.
        pool.map_in(RegionSpec::weighted("cpm_wave", 64), &items, |x| x + 1).unwrap();
        // Tiny region floors.
        pool.map(&[1u64, 2], |x| *x).unwrap();
        assert_eq!(obs.counter("als_sched_cutover_parallel_total", "").get(), 1);
        assert_eq!(obs.counter("als_sched_cutover_floor_total", "").get(), 1);
        assert_eq!(obs.histogram("als_sched_pred_err_pct", "").count(), 1);
    }

    #[test]
    fn disabled_obs_pool_records_nothing() {
        let pool =
            WorkerPool::with_config(2, SchedConfig::forced()).with_obs(&als_obs::Obs::disabled());
        let items: Vec<u64> = (0..100).collect();
        pool.map(&items, |x| x + 1).unwrap();
        assert!(!pool.metrics.enabled);
        assert_eq!(pool.metrics.regions.get(), 0);
        assert_eq!(pool.metrics.items.get(), 0);
    }

    #[test]
    fn zero_threads_clamps_to_serial() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert!(pool.is_serial());
    }
}
