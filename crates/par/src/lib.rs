//! Shared worker pool for the analysis hot path.
//!
//! All three analysis steps of the dual-phase framework — disjoint cuts,
//! CPM construction and LAC evaluation — are embarrassingly parallel over
//! independent nodes once their read-only inputs (reach map, ranks,
//! simulation values, earlier CPM rows) are fixed. This crate provides the
//! one threading primitive they all share, with three guarantees:
//!
//! * **Determinism.** Work is split into contiguous chunks and results are
//!   joined in chunk order, so the output of every `map` is byte-identical
//!   to the serial fold regardless of the thread count or scheduling.
//! * **Bounded threads.** A [`WorkerPool`] carries a fixed thread budget;
//!   each parallel region spawns at most that many scoped threads and
//!   joins them before returning (no detached workers, no global state).
//! * **Contained panics.** A panic on a worker thread is caught at the
//!   join, every remaining worker is still joined, and the first payload
//!   is surfaced as a [`WorkerPanic`] value the engine converts into its
//!   structured `EngineError::WorkerPanic` — a run aborts with context
//!   instead of tearing down the process. (The serial fast path runs on
//!   the caller's stack and propagates panics natively, exactly like the
//!   serial code it replaces.)
//!
//! The pool intentionally uses `std::thread::scope` rather than persistent
//! worker threads: analysis regions borrow the circuit, simulator and cut
//! state immutably, and scoped spawns make those borrows safe without any
//! `Arc`/channel machinery or external dependencies.

use std::any::Any;
use std::fmt;
use std::time::Instant;

use als_obs::{Counter, Histogram, Obs};

/// A worker thread panicked inside a parallel region; carries the panic
/// payload rendered as text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerPanic(pub String);

impl WorkerPanic {
    fn from_payload(payload: Box<dyn Any + Send>) -> WorkerPanic {
        let detail = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown panic payload".to_string());
        WorkerPanic(detail)
    }

    /// Re-raises the contained panic on the current thread. For callers
    /// whose API has no error channel (e.g. simulation refresh).
    pub fn resume(self) -> ! {
        std::panic::panic_any(self.0)
    }
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker thread panicked: {}", self.0)
    }
}

impl std::error::Error for WorkerPanic {}

/// A fixed-size budget of worker threads for chunk-parallel maps.
///
/// The pool itself is trivially cheap to construct and `Clone`; the threads
/// are spawned per parallel region (scoped) and joined before the call
/// returns.
#[derive(Clone, Debug)]
pub struct WorkerPool {
    threads: usize,
    metrics: PoolMetrics,
}

/// Pre-registered utilization metrics of one pool. Disabled handles are
/// inlined no-ops, so an uninstrumented pool pays nothing per region.
#[derive(Clone, Debug, Default)]
struct PoolMetrics {
    /// Whether the backing [`Obs`] records anything (gates the per-region
    /// `Instant` reads, which unlike the handles are not free).
    enabled: bool,
    /// Parallel regions that actually fanned out.
    regions: Counter,
    /// Regions that stayed on the caller's thread (small inputs or a
    /// serial pool).
    serial_regions: Counter,
    /// Items mapped across all regions.
    items: Counter,
    /// Per-worker busy time inside a parallel region, microseconds.
    busy_us: Histogram,
    /// Per-region pool utilization: `100 · Σ busy / (workers · span)`.
    utilization_pct: Histogram,
}

impl PoolMetrics {
    fn register(obs: &Obs) -> PoolMetrics {
        PoolMetrics {
            enabled: obs.is_enabled(),
            regions: obs.counter("als_pool_regions_total", "parallel regions that fanned out"),
            serial_regions: obs
                .counter("als_pool_serial_regions_total", "regions that ran on the caller thread"),
            items: obs.counter("als_pool_items_total", "items mapped over the pool"),
            busy_us: obs
                .histogram("als_pool_worker_busy_us", "per-worker busy time per region (us)"),
            utilization_pct: obs.histogram(
                "als_pool_utilization_pct",
                "per-region worker utilization (percent of workers x wall time)",
            ),
        }
    }
}

/// Below this many items per thread a parallel region is not worth the
/// spawn cost; the pool falls back to the serial path.
const MIN_ITEMS_PER_THREAD: usize = 4;

impl WorkerPool {
    /// A pool of `threads` workers (values below 1 are clamped to 1 —
    /// serial execution).
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool { threads: threads.max(1), metrics: PoolMetrics::default() }
    }

    /// Attaches an observability handle: the pool pre-registers its
    /// utilization metrics and records them per region. With a disabled
    /// `Obs` this is equivalent to the plain pool.
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> WorkerPool {
        self.metrics = PoolMetrics::register(obs);
        self
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool always executes on the caller's thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Whether a region over `len` items would actually fan out.
    pub fn would_parallelize(&self, len: usize) -> bool {
        self.threads > 1 && len >= MIN_ITEMS_PER_THREAD * self.threads
    }

    /// Maps `f` over `items`, returning the results in item order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, WorkerPanic>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_with(items, || (), |(), item| f(item))
    }

    /// Maps `f` over `items` with one `scratch()`-built state per worker,
    /// returning the results in item order.
    ///
    /// The scratch builder runs once per spawned worker (once total on the
    /// serial path), so expensive reusable buffers amortise over the whole
    /// chunk instead of being rebuilt per item.
    pub fn map_with<S, T, R, B, F>(
        &self,
        items: &[T],
        scratch: B,
        f: F,
    ) -> Result<Vec<R>, WorkerPanic>
    where
        T: Sync,
        R: Send,
        B: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        if !self.would_parallelize(items.len()) {
            self.metrics.serial_regions.inc();
            self.metrics.items.add(items.len() as u64);
            let mut s = scratch();
            return Ok(items.iter().map(|item| f(&mut s, item)).collect());
        }
        self.metrics.regions.inc();
        self.metrics.items.add(items.len() as u64);
        // Busy-time reads are gated on `enabled`: handles are free when
        // disabled but `Instant::now` is not, and the worker closure must
        // not pay it on uninstrumented runs.
        let timed = self.metrics.enabled;
        let region_start = timed.then(Instant::now);
        let chunk = items.len().div_ceil(self.threads);
        let (scratch, f) = (&scratch, &f);
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        let t0 = timed.then(Instant::now);
                        let mut s = scratch();
                        let out = part.iter().map(|item| f(&mut s, item)).collect::<Vec<R>>();
                        (out, t0.map(|t| t.elapsed()))
                    })
                })
                .collect();
            let workers = handles.len() as u64;
            // Join every handle even after a panic: leaving a panicked
            // scoped thread unjoined would make the scope itself panic and
            // bypass the error conversion.
            let mut all = Vec::with_capacity(items.len());
            let mut first_panic: Option<WorkerPanic> = None;
            let mut busy_ns = 0u128;
            for h in handles {
                match h.join() {
                    Ok((part, busy)) => {
                        all.extend(part);
                        if let Some(b) = busy {
                            busy_ns += b.as_nanos();
                            self.metrics.busy_us.observe_duration(b);
                        }
                    }
                    Err(payload) => {
                        first_panic.get_or_insert_with(|| WorkerPanic::from_payload(payload));
                    }
                }
            }
            if let Some(start) = region_start {
                let span_ns = start.elapsed().as_nanos();
                if span_ns > 0 {
                    let pct = busy_ns * 100 / (span_ns * u128::from(workers.max(1)));
                    self.metrics.utilization_pct.observe(pct.min(100) as u64);
                }
            }
            match first_panic {
                Some(p) => Err(p),
                None => Ok(all),
            }
        })
    }

    /// Maps a fallible `f` over `items` with per-worker scratch, collecting
    /// the first error (worker panics take precedence). Item order is
    /// preserved; error selection is deterministic (first item in order).
    pub fn try_map_with<S, T, R, E, B, F>(
        &self,
        items: &[T],
        scratch: B,
        f: F,
    ) -> Result<Result<Vec<R>, E>, WorkerPanic>
    where
        T: Sync,
        R: Send,
        E: Send,
        B: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> Result<R, E> + Sync,
    {
        let per_item = self.map_with(items, scratch, f)?;
        Ok(per_item.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 7, 16] {
            let pool = WorkerPool::new(threads);
            let got = pool.map(&items, |x| x * 3 + 1).unwrap();
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn scratch_is_per_worker_and_results_ordered() {
        let items: Vec<usize> = (0..500).collect();
        let pool = WorkerPool::new(4);
        // Scratch accumulates a per-worker counter; the mapped value must
        // not depend on it (determinism), only on the item.
        let got = pool
            .map_with(
                &items,
                || 0usize,
                |count, &x| {
                    *count += 1;
                    x * 2
                },
            )
            .unwrap();
        assert_eq!(got, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn small_inputs_stay_serial() {
        let pool = WorkerPool::new(8);
        assert!(!pool.would_parallelize(7));
        assert!(pool.would_parallelize(8 * MIN_ITEMS_PER_THREAD));
        // ...and still produce correct results.
        let got = pool.map(&[1, 2, 3], |x| x + 1).unwrap();
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn worker_panic_is_converted_not_propagated() {
        let items: Vec<usize> = (0..200).collect();
        let pool = WorkerPool::new(4);
        let err = pool
            .map(&items, |&x| {
                assert!(x != 137, "boom at {x}");
                x
            })
            .unwrap_err();
        assert!(err.0.contains("boom at 137"), "payload: {}", err.0);
        assert!(err.to_string().contains("worker thread panicked"));
    }

    #[test]
    fn all_workers_joined_when_several_panic() {
        let items: Vec<usize> = (0..400).collect();
        let pool = WorkerPool::new(4);
        // every chunk panics; the first payload (in chunk order) wins
        let err = pool.map(&items, |&x| panic!("chunk item {x}")).unwrap_err();
        assert_eq!(err.0, "chunk item 0");
    }

    #[test]
    fn try_map_surfaces_first_error_in_item_order() {
        let items: Vec<usize> = (0..300).collect();
        let pool = WorkerPool::new(3);
        let inner = pool
            .try_map_with(&items, || (), |(), &x| if x % 100 == 50 { Err(x) } else { Ok(x) })
            .unwrap();
        assert_eq!(inner.unwrap_err(), 50);
    }

    #[test]
    fn instrumented_pool_records_regions_and_matches_plain_output() {
        let obs = als_obs::Obs::new(als_obs::ObsConfig::default()).unwrap();
        let items: Vec<u64> = (0..1000).collect();
        let plain = WorkerPool::new(4);
        let pool = WorkerPool::new(4).with_obs(&obs);
        assert_eq!(pool.map(&items, |x| x * 7).unwrap(), plain.map(&items, |x| x * 7).unwrap());
        let _small = pool.map(&[1u64, 2], |x| *x).unwrap();
        assert_eq!(obs.counter("als_pool_regions_total", "").get(), 1);
        assert_eq!(obs.counter("als_pool_serial_regions_total", "").get(), 1);
        assert_eq!(obs.counter("als_pool_items_total", "").get(), 1002);
        assert_eq!(obs.histogram("als_pool_worker_busy_us", "").count(), 4);
        assert_eq!(obs.histogram("als_pool_utilization_pct", "").count(), 1);
    }

    #[test]
    fn disabled_obs_pool_records_nothing() {
        let pool = WorkerPool::new(2).with_obs(&als_obs::Obs::disabled());
        let items: Vec<u64> = (0..100).collect();
        pool.map(&items, |x| x + 1).unwrap();
        assert!(!pool.metrics.enabled);
        assert_eq!(pool.metrics.regions.get(), 0);
        assert_eq!(pool.metrics.items.get(), 0);
    }

    #[test]
    fn zero_threads_clamps_to_serial() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert!(pool.is_serial());
    }
}
