//! Exact CPM via disjoint cuts (Eq. (1)), for all nodes.

use als_aig::{Aig, NodeId};
use als_cuts::{CutMember, CutState, DisjointCut};
use als_par::{RegionHandle, RegionSpec, WorkerPool, WorkerScratch};
use als_sim::Simulator;

use crate::error::CpmError;
use crate::flipsim::FlipSim;
use crate::storage::{Cpm, RowData};

/// Computes one node's CPM row from its cut members' Boolean differences
/// and the already-computed rows of node members, into the reused `out`
/// buffer (cleared first).
///
/// The Eq. (1) products `B[n][t] ∧ P[t][o]` are streamed word-by-word from
/// the member difference and the arena entry, restricted to the
/// intersection of their nonzero windows; a product that annihilates (all
/// zero) is dropped on the spot, and an annihilated member difference skips
/// its whole sub-row without reading it.
#[allow(clippy::too_many_arguments)] // internal kernel: the row pipeline's full context
pub(crate) fn row_from_cut(
    aig: &Aig,
    sim: &Simulator,
    cuts: &CutState,
    flipsim: &mut FlipSim,
    cpm: &Cpm,
    n: NodeId,
    cut: &DisjointCut,
    out: &mut RowData,
) -> Result<(), CpmError> {
    out.clear();
    let diffs = flipsim.differences(aig, sim, cuts.ranks(), n, cut);
    for (member, b) in diffs.iter() {
        match member {
            CutMember::Output(o) => {
                if b.is_zero() {
                    continue; // annihilated: the flip never reaches o
                }
                let dst = out.push_entry(o);
                dst[b.nz_begin()..b.nz_end()].copy_from_slice(&b.words()[b.nz_begin()..b.nz_end()]);
            }
            CutMember::Node(t) => {
                let trow = cpm.row(t).ok_or(CpmError::MissingMemberRow { member: t, node: n })?;
                if b.is_zero() {
                    continue; // annihilated: nothing propagates through t
                }
                for (o, p) in trow.iter() {
                    let lo = b.nz_begin().max(p.nz_begin());
                    let hi = b.nz_end().min(p.nz_end());
                    let dst = out.push_entry(o);
                    let mut any = 0u64;
                    for (w, slot) in dst.iter_mut().enumerate().take(hi).skip(lo) {
                        let v = b.words()[w] & p.words()[w];
                        *slot = v;
                        any |= v;
                    }
                    if any == 0 {
                        out.pop_entry(); // product annihilated
                    }
                }
            }
        }
    }
    Ok(())
}

/// Computes CPM rows for the nodes selected by `include` (indexed by node
/// id); `include = None` selects every live node.
///
/// Rows are filled in reverse topological order so that every node-member
/// row needed by Eq. (1) is available. When `include` is given it must be
/// closed under disjoint-cut membership (see
/// [`crate::partial::candidate_closure`]).
pub fn compute_for_set(
    aig: &Aig,
    sim: &Simulator,
    cuts: &CutState,
    include: Option<&[bool]>,
) -> Result<Cpm, CpmError> {
    compute_for_set_with(aig, sim, cuts, include, &WorkerPool::new(1))
}

/// Like [`compute_for_set`], but fills each *wave* of the cut DAG in
/// parallel on `pool` — the analysis step-2 parallelisation.
///
/// Eq. (1) makes a node's row depend only on the rows of its cut's node
/// members, not on topological adjacency, so the reverse-topological sweep
/// regroups into level-synchronous waves: `wave(n) = 1 + max(wave(t))` over
/// node members `t` (0 with none). The partition is not re-derived here —
/// [`CutState`] maintains the per-node wave incrementally across edits and
/// caches the full-sweep schedule ([`CutState::full_plan`]), so the
/// per-iteration sweep starts filling rows immediately. Per wave the
/// pool's scheduler decides serial vs parallel; parallel waves fan out
/// across workers — each with its own persistent [`FlipSim`]/[`RowData`]
/// scratch, reused across waves — and the rows are installed after the
/// join. Chunk-ordered joins and the pure row computation make the result
/// byte-identical to the serial sweep at any thread count.
pub fn compute_for_set_with(
    aig: &Aig,
    sim: &Simulator,
    cuts: &CutState,
    include: Option<&[bool]>,
    pool: &WorkerPool,
) -> Result<Cpm, CpmError> {
    match include {
        None => {
            let plan = cuts.full_plan(aig).map_err(|node| CpmError::MissingCut { node })?;
            let mut cpm = Cpm::new(aig.num_nodes(), sim.num_words());
            let mut fill = WaveFill::new(aig, sim, cuts, pool);
            for wv in plan.waves() {
                fill.fill(&mut cpm, wv)?;
            }
            Ok(cpm)
        }
        Some(inc) => {
            let nodes: Vec<NodeId> =
                aig.iter_live().filter(|n| inc.get(n.index()).copied().unwrap_or(false)).collect();
            compute_for_nodes_with(aig, sim, cuts, &nodes, pool)
        }
    }
}

/// Computes exact CPM rows for exactly `nodes` (which must be closed under
/// disjoint-cut node membership, in any order).
///
/// The nodes are bucketed by their [`CutState`]-maintained waves — a
/// member's full-graph wave is strictly below its dependent's, so the
/// full-graph waves schedule any member-closed subset correctly — and each
/// bucket is filled through the pool's scheduler like the full sweep.
pub fn compute_for_nodes_with(
    aig: &Aig,
    sim: &Simulator,
    cuts: &CutState,
    nodes: &[NodeId],
    pool: &WorkerPool,
) -> Result<Cpm, CpmError> {
    let ranks = cuts.ranks();
    let mut scheduled: Vec<(u32, u32, NodeId)> = Vec::with_capacity(nodes.len());
    for &n in nodes {
        let wave = cuts.cpm_wave(n).ok_or(CpmError::MissingCut { node: n })?;
        scheduled.push((wave, u32::MAX - ranks[n.index()], n));
    }
    // Wave ascending, rank descending within a wave (reverse topological,
    // matching the full sweep's within-wave order).
    scheduled.sort_unstable_by_key(|e| (e.0, e.1));
    let mut cpm = Cpm::new(aig.num_nodes(), sim.num_words());
    let mut fill = WaveFill::new(aig, sim, cuts, pool);
    let mut wave: Vec<NodeId> = Vec::new();
    let mut at = 0;
    while at < scheduled.len() {
        let w = scheduled[at].0;
        wave.clear();
        while at < scheduled.len() && scheduled[at].0 == w {
            wave.push(scheduled[at].2);
            at += 1;
        }
        fill.fill(&mut cpm, &wave)?;
    }
    Ok(cpm)
}

/// Per-sweep scratch and scheduling for filling one wave at a time:
/// serial waves write rows straight from one reused scratch buffer (zero
/// steady-state allocation), parallel waves fan out with per-worker
/// scratch persisted across waves.
struct WaveFill<'a> {
    aig: &'a Aig,
    sim: &'a Simulator,
    cuts: &'a CutState,
    pool: &'a WorkerPool,
    region: RegionHandle,
    serial: Option<(FlipSim, RowData)>,
    store: WorkerScratch<(FlipSim, RowData)>,
}

impl<'a> WaveFill<'a> {
    fn new(aig: &'a Aig, sim: &'a Simulator, cuts: &'a CutState, pool: &'a WorkerPool) -> Self {
        WaveFill {
            aig,
            sim,
            cuts,
            pool,
            region: pool.region(RegionSpec::weighted("cpm_wave", sim.num_words() as u64)),
            serial: None,
            store: WorkerScratch::new(),
        }
    }

    fn fill(&mut self, cpm: &mut Cpm, wave: &[NodeId]) -> Result<(), CpmError> {
        let (aig, sim, cuts) = (self.aig, self.sim, self.cuts);
        if self.pool.is_serial() || !self.pool.decide_region(&self.region, wave.len()) {
            let learn = self.pool.should_learn_region(&self.region, wave.len());
            let t0 = learn.then(std::time::Instant::now);
            let (flipsim, row) = self.serial.get_or_insert_with(|| {
                (FlipSim::new(aig.num_nodes(), sim.num_words()), RowData::new(sim.num_words()))
            });
            for &n in wave {
                let cut = cuts.get_cut(n).ok_or(CpmError::MissingCut { node: n })?;
                row_from_cut(aig, sim, cuts, flipsim, cpm, n, cut, row)?;
                cpm.set_row(n, row);
            }
            if let Some(t0) = t0 {
                self.pool.observe_serial_region(&self.region, wave.len(), t0.elapsed());
            }
            return Ok(());
        }
        let shared = &*cpm;
        let mut rows = self
            .pool
            .try_map_parallel_hybrid_in(
                self.region.spec(),
                wave,
                &mut self.store,
                || (FlipSim::new(aig.num_nodes(), sim.num_words()), RowData::new(sim.num_words())),
                || (),
                |(flipsim, row), _, &n| {
                    let cut = cuts.get_cut(n).ok_or(CpmError::MissingCut { node: n })?;
                    row_from_cut(aig, sim, cuts, flipsim, shared, n, cut, row)?;
                    // hand an owned buffer back to the join; the scratch
                    // buffer restarts empty for the next item
                    Ok(std::mem::replace(row, RowData::new(sim.num_words())))
                },
            )
            .map_err(|p| CpmError::WorkerPanic(p.0))??;
        for (&n, row) in wave.iter().zip(rows.iter_mut()) {
            cpm.set_row(n, row);
        }
        Ok(())
    }
}

/// The comprehensive (phase-one) CPM: exact rows for every live node.
pub fn compute_full(aig: &Aig, sim: &Simulator, cuts: &CutState) -> Result<Cpm, CpmError> {
    compute_for_set(aig, sim, cuts, None)
}

/// [`compute_full`] on a worker pool (see [`compute_for_set_with`]).
pub fn compute_full_with(
    aig: &Aig,
    sim: &Simulator,
    cuts: &CutState,
    pool: &WorkerPool,
) -> Result<Cpm, CpmError> {
    compute_for_set_with(aig, sim, cuts, None, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{brute_force_row, rows_equivalent};
    use als_sim::PatternSet;

    fn reconvergent() -> Aig {
        let mut aig = Aig::new("r");
        let x = aig.add_inputs("x", 6);
        let a = aig.and(x[0], x[1]);
        let b = aig.and(a, x[2]);
        let c = aig.and(a, !x[2]);
        let d = aig.and(b, x[3]);
        let e = aig.and(b, c);
        let f = aig.and(e, x[4]);
        aig.add_output(d, "O1");
        aig.add_output(f, "O2");
        aig.add_output(!c, "O3");
        aig.add_output(x[5], "O4");
        aig
    }

    #[test]
    fn full_cpm_matches_brute_force_exhaustively() {
        let aig = reconvergent();
        let patterns = PatternSet::exhaustive(6);
        let sim = Simulator::new(&aig, &patterns);
        let cuts = CutState::compute(&aig);
        let cpm = compute_full(&aig, &sim, &cuts).unwrap();
        for n in aig.iter_live() {
            let reference = brute_force_row(&aig, &patterns, n);
            let row = cpm.row(n).expect("all rows computed");
            assert!(
                rows_equivalent(row, &reference, aig.num_outputs()),
                "CPM row of {n} diverges from brute force"
            );
        }
        assert!(cpm.arena_bytes() > 0);
    }

    #[test]
    fn full_cpm_matches_brute_force_on_random_patterns() {
        let aig = reconvergent();
        let patterns = PatternSet::random(6, 8, 99);
        let sim = Simulator::new(&aig, &patterns);
        let cuts = CutState::compute(&aig);
        let cpm = compute_full(&aig, &sim, &cuts).unwrap();
        for n in aig.iter_live() {
            let reference = brute_force_row(&aig, &patterns, n);
            assert!(rows_equivalent(cpm.row(n).unwrap(), &reference, aig.num_outputs()));
        }
    }

    #[test]
    fn parallel_cpm_is_bit_identical_to_serial() {
        let aig = reconvergent();
        let patterns = PatternSet::random(6, 8, 5);
        let sim = Simulator::new(&aig, &patterns);
        let cuts = CutState::compute(&aig);
        let serial = compute_full(&aig, &sim, &cuts).unwrap();
        for threads in [2, 7] {
            let par = compute_full_with(&aig, &sim, &cuts, &WorkerPool::new(threads)).unwrap();
            for n in aig.iter_live() {
                assert_eq!(serial.row(n), par.row(n), "row of {n} at {threads} threads");
            }
        }
    }

    #[test]
    fn row_of_output_driver_is_all_ones_on_its_output() {
        let aig = reconvergent();
        let patterns = PatternSet::exhaustive(6);
        let sim = Simulator::new(&aig, &patterns);
        let cuts = CutState::compute(&aig);
        let cpm = compute_full(&aig, &sim, &cuts).unwrap();
        // output O4 is driven directly by input x5
        let x5 = aig.inputs()[5];
        let entry = cpm.entry(x5, 3).expect("entry exists");
        assert_eq!(entry.count_ones(), entry.num_words() * 64);
    }
}
