//! Partial CPM restricted to `N(S_cand)` — the phase-two step 2.
//!
//! When phase two only considers LACs targeting the candidate set
//! `S_cand`, the only CPM rows needed are those of `S_cand` itself plus,
//! recursively, the rows of every node member of their disjoint cuts
//! (Eq. (1) consumes them). The paper computes this closure with a work
//! queue; [`candidate_closure`] reproduces it exactly (Example 2).

use als_aig::{Aig, NodeId};
use als_cuts::{CutMember, CutState};
use als_sim::Simulator;

use crate::error::CpmError;
use crate::storage::Cpm;

/// Computes `N(S_cand)`: the transitive closure of the candidate nodes
/// through their disjoint cuts' node members (output sinks terminate).
pub fn candidate_closure(
    aig: &Aig,
    cuts: &CutState,
    s_cand: &[NodeId],
) -> Result<Vec<NodeId>, CpmError> {
    let mut in_set = vec![false; aig.num_nodes()];
    let mut queue: Vec<NodeId> = Vec::new();
    for &s in s_cand {
        if !in_set[s.index()] {
            in_set[s.index()] = true;
            queue.push(s);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let s = queue[head];
        head += 1;
        let cut = cuts.get_cut(s).ok_or(CpmError::MissingCut { node: s })?;
        for m in cut.members() {
            if let CutMember::Node(t) = m {
                if !in_set[t.index()] {
                    in_set[t.index()] = true;
                    queue.push(*t);
                }
            }
        }
    }
    Ok(queue)
}

/// Computes exact CPM rows for `N(S_cand)` only.
///
/// Entries for the candidate nodes are identical to the full CPM's; all
/// other rows are left empty, which is what makes phase two cheap.
pub fn compute_partial(
    aig: &Aig,
    sim: &Simulator,
    cuts: &CutState,
    s_cand: &[NodeId],
) -> Result<(Cpm, usize), CpmError> {
    compute_partial_with(aig, sim, cuts, s_cand, &als_par::WorkerPool::new(1))
}

/// [`compute_partial`] on a worker pool: the closure's rows are filled in
/// level-synchronous waves (see [`crate::full::compute_for_set_with`]),
/// bit-identical to the serial sweep at any thread count.
pub fn compute_partial_with(
    aig: &Aig,
    sim: &Simulator,
    cuts: &CutState,
    s_cand: &[NodeId],
    pool: &als_par::WorkerPool,
) -> Result<(Cpm, usize), CpmError> {
    let closure = candidate_closure(aig, cuts, s_cand)?;
    // The closure is member-closed by construction, so it schedules
    // directly on the CutState-maintained waves — no per-round O(V)
    // include scan or wave re-derivation.
    let cpm = crate::full::compute_for_nodes_with(aig, sim, cuts, &closure, pool)?;
    Ok((cpm, closure.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::compute_full;
    use als_sim::PatternSet;

    /// The paper's Example 2 shape: a and b both cut at d; d cuts at O1.
    fn example2() -> (Aig, Vec<NodeId>) {
        let mut aig = Aig::new("ex2");
        let x = aig.add_inputs("x", 6);
        let a = aig.and(x[0], x[1]);
        let b = aig.and(x[2], x[3]);
        let c = aig.and(x[4], x[5]);
        let d = aig.and(a, b);
        let e = aig.and(d, c);
        aig.add_output(e, "O1");
        (aig, vec![a.node(), b.node(), c.node(), d.node(), e.node()])
    }

    #[test]
    fn closure_follows_cut_chain() {
        let (aig, n) = example2();
        let cuts = CutState::compute(&aig);
        let (a, b, d) = (n[0], n[1], n[3]);
        let mut closure = candidate_closure(&aig, &cuts, &[a, b]).unwrap();
        closure.sort();
        let mut expect = vec![a, b, d, n[4]];
        expect.sort();
        // a and b cut at d; d's cut is e (single fanout), e's cut is O1.
        assert_eq!(closure, expect);
    }

    #[test]
    fn partial_rows_match_full_cpm() {
        let (aig, n) = example2();
        let patterns = PatternSet::exhaustive(6);
        let sim = Simulator::new(&aig, &patterns);
        let cuts = CutState::compute(&aig);
        let full = compute_full(&aig, &sim, &cuts).unwrap();
        let (partial, closure_size) = compute_partial(&aig, &sim, &cuts, &[n[0], n[1]]).unwrap();
        assert!(closure_size < aig.iter_live().count());
        for &cand in &[n[0], n[1]] {
            assert_eq!(partial.row(cand), full.row(cand));
        }
        // non-closure nodes have no rows
        let c = n[2];
        assert!(partial.row(c).is_none());
        assert!(partial.num_rows() == closure_size);
    }

    #[test]
    fn closure_of_empty_set_is_empty() {
        let (aig, _) = example2();
        let cuts = CutState::compute(&aig);
        assert!(candidate_closure(&aig, &cuts, &[]).unwrap().is_empty());
    }
}
