//! Single-flip cone simulation.
//!
//! To fill a CPM row via Eq. (1), we need the Boolean differences
//! `B[n][t] = value(t | n flipped) ⊕ value(t)` for every member `t` of
//! `n`'s disjoint cut. Because the cut members' TFO cones are disjoint, one
//! simulation of the *inner cone* — the region between `n` and the cut —
//! yields all of them at once.

use als_aig::{Aig, NodeId};
use als_cuts::{CutMember, DisjointCut};
use als_sim::{BitsRef, PackedBits, Simulator};

/// The Boolean differences of one flip simulation: cut members paired with
/// their difference vectors, stored in one flat word buffer with per-member
/// nonzero windows. Reused across calls, so steady-state extraction
/// performs no heap allocation.
#[derive(Debug, Default)]
pub struct DiffSet {
    num_words: usize,
    members: Vec<CutMember>,
    words: Vec<u64>,
    /// Per member: `(nz_begin, nz_end)` window of its word chunk.
    nz: Vec<(u32, u32)>,
}

impl DiffSet {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterates `(member, difference)` in cut-member order.
    pub fn iter(&self) -> impl Iterator<Item = (CutMember, BitsRef<'_>)> + '_ {
        self.members.iter().enumerate().map(move |(i, &m)| (m, self.bits(i)))
    }

    /// The difference vector of member `i`.
    pub fn bits(&self, i: usize) -> BitsRef<'_> {
        let (b, e) = self.nz[i];
        BitsRef::with_window(
            &self.words[i * self.num_words..(i + 1) * self.num_words],
            b as usize,
            e as usize,
        )
    }

    fn clear(&mut self, num_words: usize) {
        self.num_words = num_words;
        self.members.clear();
        self.words.clear();
        self.nz.clear();
    }

    /// Appends a member whose difference is the word-wise XOR of `flipped`
    /// and `orig`, computing the nonzero window on the fly.
    fn push_xor(&mut self, m: CutMember, flipped: &[u64], orig: &[u64]) {
        let start = self.words.len();
        self.words.extend_from_slice(flipped);
        let dst = &mut self.words[start..];
        als_sim::kernel::xor_assign(dst, orig);
        let nz_begin = dst.iter().position(|&w| w != 0).unwrap_or(dst.len());
        let nz_end = if nz_begin == dst.len() {
            nz_begin
        } else {
            dst.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1)
        };
        self.members.push(m);
        self.nz.push((nz_begin as u32, nz_end as u32));
    }

    /// Appends a member with an all-zero difference (node untouched by the
    /// flip).
    fn push_zero(&mut self, m: CutMember) {
        self.words.resize(self.words.len() + self.num_words, 0);
        self.members.push(m);
        self.nz.push((0, 0));
    }
}

/// Reusable scratch buffers for flip simulations.
///
/// A flip simulation touches only the inner cone of one node, so flipped
/// values live in a compact arena indexed by *cone slot*, not node id: the
/// arena grows lazily to the largest inner cone seen times the pattern
/// width, so per-thread scratch memory scales with cone size, not circuit
/// size. Per-node state is three `u32` stamps.
#[derive(Debug)]
pub struct FlipSim {
    num_words: usize,
    /// node -> arena slot, valid when `stamp` matches the current epoch.
    slot: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    /// Flipped values, `cone_len × num_words` words, grown on demand.
    arena: Vec<u64>,
    /// Scratch: the inner cone in topological order.
    cone: Vec<NodeId>,
    /// Scratch: cone membership stamps.
    cone_stamp: Vec<u32>,
    /// Scratch: cut-node-member stamps (O(1) member tests during the BFS).
    member_stamp: Vec<u32>,
    cone_epoch: u32,
    diffs: DiffSet,
}

impl FlipSim {
    /// Allocates scratch for a graph with `num_nodes` slots and pattern
    /// vectors of `num_words` words. The value arena itself starts empty
    /// and grows with the largest inner cone actually simulated.
    pub fn new(num_nodes: usize, num_words: usize) -> FlipSim {
        FlipSim {
            num_words,
            slot: vec![0; num_nodes],
            stamp: vec![0; num_nodes],
            epoch: 0,
            arena: Vec::new(),
            cone: Vec::new(),
            cone_stamp: vec![0; num_nodes],
            member_stamp: vec![0; num_nodes],
            cone_epoch: 0,
            diffs: DiffSet::default(),
        }
    }

    /// Bytes currently held by the flipped-value arena (scales with the
    /// largest inner cone seen, not the circuit).
    pub fn arena_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<u64>()
    }

    /// Simulates the inner cone of `n` with `n`'s value complemented and
    /// returns, for each cut member `t`, the Boolean-difference vector
    /// `B[n][t]`, in a reused buffer.
    ///
    /// `ranks` must be current topological ranks
    /// ([`als_aig::topo::topo_ranks`]). For a [`CutMember::Output`] member
    /// the difference is that of the output's driver (output complements
    /// cancel under XOR).
    pub fn differences(
        &mut self,
        aig: &Aig,
        sim: &Simulator,
        ranks: &[u32],
        n: NodeId,
        cut: &DisjointCut,
    ) -> &DiffSet {
        debug_assert_eq!(sim.num_words(), self.num_words);
        self.epoch = self.epoch.wrapping_add(1);
        self.cone_epoch = self.cone_epoch.wrapping_add(1);

        // Stamp cut node members for O(1) tests during the BFS.
        for m in cut.members() {
            if let CutMember::Node(t) = m {
                self.member_stamp[t.index()] = self.cone_epoch;
            }
        }

        // Collect the inner cone: BFS from n through fanouts, not expanding
        // beyond cut member nodes (output sinks terminate naturally).
        self.cone.clear();
        self.cone_stamp[n.index()] = self.cone_epoch;
        self.cone.push(n);
        let mut head = 0;
        while head < self.cone.len() {
            let u = self.cone[head];
            head += 1;
            if u != n && self.member_stamp[u.index()] == self.cone_epoch {
                continue; // member: include but do not expand
            }
            for &f in aig.fanouts(u) {
                if self.cone_stamp[f.index()] != self.cone_epoch {
                    self.cone_stamp[f.index()] = self.cone_epoch;
                    self.cone.push(f);
                }
            }
        }
        self.cone.sort_by_key(|id| ranks[id.index()]);

        // Grow the arena to the cone and assign slots in topological order.
        let needed = self.cone.len() * self.num_words;
        if self.arena.len() < needed {
            self.arena.resize(needed, 0);
        }
        for (i, &id) in self.cone.iter().enumerate() {
            self.slot[id.index()] = i as u32;
        }

        // Seed: n flipped (slot 0 — n has the lowest rank in its own cone).
        debug_assert_eq!(self.cone[0], n);
        self.arena[..self.num_words].copy_from_slice(sim.value(n).words());
        als_sim::kernel::not_assign(&mut self.arena[..self.num_words]);
        self.stamp[n.index()] = self.epoch;

        // Evaluate the cone in topological order.
        for ci in 1..self.cone.len() {
            let id = self.cone[ci];
            if !aig.node(id).is_and() {
                continue;
            }
            let node = aig.node(id);
            let (f0, f1) = (node.fanin0(), node.fanin1());
            let (i0, i1) = (f0.node().index(), f1.node().index());
            let (m0, m1) = (
                if f0.is_complement() { !0u64 } else { 0 },
                if f1.is_complement() { !0u64 } else { 0 },
            );
            let (s0, s1) = (self.slot[i0] as usize, self.slot[i1] as usize);
            let (use0, use1) = (self.stamp[i0] == self.epoch, self.stamp[i1] == self.epoch);
            let nw = self.num_words;
            // Fanins in the cone sit at strictly lower slots (the cone is
            // rank-sorted), so the arena splits into sources and the
            // destination chunk without aliasing.
            debug_assert!((!use0 || s0 < ci) && (!use1 || s1 < ci));
            let (src, rest) = self.arena.split_at_mut(ci * nw);
            let a: &[u64] =
                if use0 { &src[s0 * nw..(s0 + 1) * nw] } else { sim.value(f0.node()).words() };
            let b: &[u64] =
                if use1 { &src[s1 * nw..(s1 + 1) * nw] } else { sim.value(f1.node()).words() };
            als_sim::kernel::and2_masked(&mut rest[..nw], a, b, m0, m1);
            self.stamp[id.index()] = self.epoch;
        }

        // Extract differences at the cut into the reused buffer.
        let (diffs, num_words) = (&mut self.diffs, self.num_words);
        diffs.clear(num_words);
        for &m in cut.members() {
            let node = match m {
                CutMember::Node(t) => t,
                CutMember::Output(o) => aig.output_lit(o as usize).node(),
            };
            if self.stamp[node.index()] == self.epoch {
                let s = self.slot[node.index()] as usize;
                diffs.push_xor(
                    m,
                    &self.arena[s * num_words..(s + 1) * num_words],
                    sim.value(node).words(),
                );
            } else {
                diffs.push_zero(m);
            }
        }
        &self.diffs
    }

    /// [`FlipSim::differences`] materialised as owned vectors — the boxed
    /// compatibility path for single-row consumers and tests.
    pub fn boolean_differences(
        &mut self,
        aig: &Aig,
        sim: &Simulator,
        ranks: &[u32],
        n: NodeId,
        cut: &DisjointCut,
    ) -> Vec<(CutMember, PackedBits)> {
        self.differences(aig, sim, ranks, n, cut).iter().map(|(m, b)| (m, b.to_packed())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_aig::Aig;
    use als_cuts::{closest_disjoint_cut, ReachMap};
    use als_sim::PatternSet;

    /// Brute-force Boolean difference of any node pair by full resimulation.
    fn brute_diff(aig: &Aig, patterns: &PatternSet, n: NodeId, t: NodeId) -> PackedBits {
        let sim = Simulator::new(aig, patterns);
        // full flipped simulation
        let mut vals: Vec<PackedBits> =
            (0..aig.num_nodes()).map(|i| sim.value(NodeId(i as u32)).clone()).collect();
        vals[n.index()].not_assign();
        for id in als_aig::topo::topo_order(aig) {
            if id == n || !aig.node(id).is_and() {
                continue;
            }
            let node = aig.node(id);
            let a = {
                let v = &vals[node.fanin0().node().index()];
                if node.fanin0().is_complement() {
                    v.not()
                } else {
                    v.clone()
                }
            };
            let b = {
                let v = &vals[node.fanin1().node().index()];
                if node.fanin1().is_complement() {
                    v.not()
                } else {
                    v.clone()
                }
            };
            vals[id.index()] = a.and(&b);
        }
        vals[t.index()].xor(sim.value(t))
    }

    #[test]
    fn differences_match_brute_force() {
        // Reconvergent circuit stressing the inner-cone logic.
        let mut aig = Aig::new("r");
        let x = aig.add_inputs("x", 6);
        let a = aig.and(x[0], x[1]);
        let b = aig.and(a, x[2]);
        let c = aig.and(a, !x[2]);
        let d = aig.and(b, x[3]);
        let e = aig.and(b, c);
        aig.add_output(d, "O1");
        aig.add_output(e, "O2");
        aig.add_output(!c, "O3");
        let patterns = PatternSet::exhaustive(6);
        let sim = Simulator::new(&aig, &patterns);
        let reach = ReachMap::compute(&aig);
        let ranks = als_aig::topo::topo_ranks(&aig);
        let mut fs = FlipSim::new(aig.num_nodes(), sim.num_words());

        for id in aig.iter_live() {
            if reach.mask(id).is_zero() {
                continue;
            }
            let cut = closest_disjoint_cut(&aig, &reach, &ranks, id);
            let diffs = fs.boolean_differences(&aig, &sim, &ranks, id, &cut);
            for (m, diff) in diffs {
                let t = match m {
                    CutMember::Node(t) => t,
                    CutMember::Output(o) => aig.output_lit(o as usize).node(),
                };
                assert_eq!(diff, brute_diff(&aig, &patterns, id, t), "node {id} member {m:?}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_clean_across_calls() {
        let mut aig = Aig::new("two");
        let x = aig.add_inputs("x", 6);
        let g1 = aig.and(x[0], x[1]);
        let g2 = aig.and(x[2], x[3]);
        let h = aig.and(g1, g2);
        aig.add_output(h, "o");
        let patterns = PatternSet::exhaustive(6);
        let sim = Simulator::new(&aig, &patterns);
        let reach = ReachMap::compute(&aig);
        let ranks = als_aig::topo::topo_ranks(&aig);
        let mut fs = FlipSim::new(aig.num_nodes(), sim.num_words());
        let cut1 = closest_disjoint_cut(&aig, &reach, &ranks, g1.node());
        let first = fs.boolean_differences(&aig, &sim, &ranks, g1.node(), &cut1);
        // second call on a different node must not see stale flipped values
        let cut2 = closest_disjoint_cut(&aig, &reach, &ranks, g2.node());
        let _ = fs.boolean_differences(&aig, &sim, &ranks, g2.node(), &cut2);
        let again = fs.boolean_differences(&aig, &sim, &ranks, g1.node(), &cut1);
        assert_eq!(first, again);
    }

    #[test]
    fn scratch_memory_scales_with_cone_not_circuit() {
        // A wide circuit where each node's inner cone is tiny.
        let mut aig = Aig::new("wide");
        let x = aig.add_inputs("x", 64);
        let mut last = None;
        for i in 0..32 {
            let g = aig.and(x[2 * i], x[2 * i + 1]);
            aig.add_output(g, format!("o{i}"));
            last = Some(g);
        }
        let _ = last;
        let patterns = PatternSet::random(64, 4, 9);
        let sim = Simulator::new(&aig, &patterns);
        let reach = ReachMap::compute(&aig);
        let ranks = als_aig::topo::topo_ranks(&aig);
        let mut fs = FlipSim::new(aig.num_nodes(), sim.num_words());
        for n in aig.iter_ands() {
            let cut = closest_disjoint_cut(&aig, &reach, &ranks, n);
            let _ = fs.differences(&aig, &sim, &ranks, n, &cut);
        }
        // every inner cone here is a single node; the arena must stay far
        // below num_nodes × num_words words
        assert!(
            fs.arena_bytes() <= 4 * sim.num_words() * 8,
            "arena {} bytes for single-node cones",
            fs.arena_bytes()
        );
    }
}
