//! Single-flip cone simulation.
//!
//! To fill a CPM row via Eq. (1), we need the Boolean differences
//! `B[n][t] = value(t | n flipped) ⊕ value(t)` for every member `t` of
//! `n`'s disjoint cut. Because the cut members' TFO cones are disjoint, one
//! simulation of the *inner cone* — the region between `n` and the cut —
//! yields all of them at once.

use als_aig::{Aig, NodeId};
use als_cuts::{CutMember, DisjointCut};
use als_sim::{PackedBits, Simulator};

/// Reusable scratch buffers for flip simulations.
///
/// A flip simulation touches only the inner cone of one node, so the
/// scratch vectors are stamped per call rather than cleared.
#[derive(Debug)]
pub struct FlipSim {
    num_words: usize,
    flipped: Vec<PackedBits>,
    stamp: Vec<u32>,
    epoch: u32,
    /// Scratch: cone membership stamps.
    cone_stamp: Vec<u32>,
    cone_epoch: u32,
}

impl FlipSim {
    /// Allocates scratch for a graph with `num_nodes` slots and pattern
    /// vectors of `num_words` words.
    pub fn new(num_nodes: usize, num_words: usize) -> FlipSim {
        FlipSim {
            num_words,
            flipped: vec![PackedBits::zeros(num_words); num_nodes],
            stamp: vec![0; num_nodes],
            epoch: 0,
            cone_stamp: vec![0; num_nodes],
            cone_epoch: 0,
        }
    }

    #[inline]
    fn flipped_or_orig<'a>(&'a self, sim: &'a Simulator, id: NodeId) -> &'a PackedBits {
        if self.stamp[id.index()] == self.epoch {
            &self.flipped[id.index()]
        } else {
            sim.value(id)
        }
    }

    /// Simulates the inner cone of `n` with `n`'s value complemented and
    /// returns, for each cut member `t`, the Boolean-difference vector
    /// `B[n][t]`.
    ///
    /// `ranks` must be current topological ranks
    /// ([`als_aig::topo::topo_ranks`]). For an [`CutMember::Output`] member
    /// the difference is that of the output's driver (output complements
    /// cancel under XOR).
    pub fn boolean_differences(
        &mut self,
        aig: &Aig,
        sim: &Simulator,
        ranks: &[u32],
        n: NodeId,
        cut: &DisjointCut,
    ) -> Vec<(CutMember, PackedBits)> {
        debug_assert_eq!(sim.num_words(), self.num_words);
        self.epoch = self.epoch.wrapping_add(1);
        self.cone_epoch = self.cone_epoch.wrapping_add(1);

        // Collect the inner cone: BFS from n through fanouts, not expanding
        // beyond cut member nodes (output sinks terminate naturally).
        let mut cone: Vec<NodeId> = Vec::new();
        let is_cut_node = |id: NodeId| cut.members().contains(&CutMember::Node(id));
        self.cone_stamp[n.index()] = self.cone_epoch;
        let mut queue = vec![n];
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            if u != n && is_cut_node(u) {
                cone.push(u);
                continue; // member: include but do not expand
            }
            cone.push(u);
            for &f in aig.fanouts(u) {
                if self.cone_stamp[f.index()] != self.cone_epoch {
                    self.cone_stamp[f.index()] = self.cone_epoch;
                    queue.push(f);
                }
            }
        }
        cone.sort_by_key(|id| ranks[id.index()]);

        // Seed: n flipped.
        self.flipped[n.index()].words_mut().copy_from_slice(sim.value(n).words());
        self.flipped[n.index()].not_assign();
        self.stamp[n.index()] = self.epoch;

        // Evaluate the cone in topological order.
        for &id in &cone {
            if id == n || !aig.node(id).is_and() {
                continue;
            }
            let node = aig.node(id);
            let (f0, f1) = (node.fanin0(), node.fanin1());
            let (i0, i1, ii) = (f0.node().index(), f1.node().index(), id.index());
            let use0 = self.stamp[i0] == self.epoch;
            let use1 = self.stamp[i1] == self.epoch;
            let (m0, m1) = (
                if f0.is_complement() { !0u64 } else { 0 },
                if f1.is_complement() { !0u64 } else { 0 },
            );
            for w in 0..self.num_words {
                let a = if use0 {
                    self.flipped[i0].words()[w]
                } else {
                    sim.value(f0.node()).words()[w]
                };
                let b = if use1 {
                    self.flipped[i1].words()[w]
                } else {
                    sim.value(f1.node()).words()[w]
                };
                let r = (a ^ m0) & (b ^ m1);
                self.flipped[ii].words_mut()[w] = r;
            }
            self.stamp[ii] = self.epoch;
        }

        // Extract differences at the cut.
        cut.members()
            .iter()
            .map(|&m| {
                let node = match m {
                    CutMember::Node(t) => t,
                    CutMember::Output(o) => aig.output_lit(o as usize).node(),
                };
                let diff = self.flipped_or_orig(sim, node).xor(sim.value(node));
                (m, diff)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_aig::Aig;
    use als_cuts::{closest_disjoint_cut, ReachMap};
    use als_sim::PatternSet;

    /// Brute-force Boolean difference of any node pair by full resimulation.
    fn brute_diff(aig: &Aig, patterns: &PatternSet, n: NodeId, t: NodeId) -> PackedBits {
        let sim = Simulator::new(aig, patterns);
        // full flipped simulation
        let mut vals: Vec<PackedBits> =
            (0..aig.num_nodes()).map(|i| sim.value(NodeId(i as u32)).clone()).collect();
        vals[n.index()].not_assign();
        for id in als_aig::topo::topo_order(aig) {
            if id == n || !aig.node(id).is_and() {
                continue;
            }
            let node = aig.node(id);
            let a = {
                let v = &vals[node.fanin0().node().index()];
                if node.fanin0().is_complement() {
                    v.not()
                } else {
                    v.clone()
                }
            };
            let b = {
                let v = &vals[node.fanin1().node().index()];
                if node.fanin1().is_complement() {
                    v.not()
                } else {
                    v.clone()
                }
            };
            vals[id.index()] = a.and(&b);
        }
        vals[t.index()].xor(sim.value(t))
    }

    #[test]
    fn differences_match_brute_force() {
        // Reconvergent circuit stressing the inner-cone logic.
        let mut aig = Aig::new("r");
        let x = aig.add_inputs("x", 6);
        let a = aig.and(x[0], x[1]);
        let b = aig.and(a, x[2]);
        let c = aig.and(a, !x[2]);
        let d = aig.and(b, x[3]);
        let e = aig.and(b, c);
        aig.add_output(d, "O1");
        aig.add_output(e, "O2");
        aig.add_output(!c, "O3");
        let patterns = PatternSet::exhaustive(6);
        let sim = Simulator::new(&aig, &patterns);
        let reach = ReachMap::compute(&aig);
        let ranks = als_aig::topo::topo_ranks(&aig);
        let mut fs = FlipSim::new(aig.num_nodes(), sim.num_words());

        for id in aig.iter_live() {
            if reach.mask(id).is_zero() {
                continue;
            }
            let cut = closest_disjoint_cut(&aig, &reach, &ranks, id);
            let diffs = fs.boolean_differences(&aig, &sim, &ranks, id, &cut);
            for (m, diff) in diffs {
                let t = match m {
                    CutMember::Node(t) => t,
                    CutMember::Output(o) => aig.output_lit(o as usize).node(),
                };
                assert_eq!(diff, brute_diff(&aig, &patterns, id, t), "node {id} member {m:?}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_clean_across_calls() {
        let mut aig = Aig::new("two");
        let x = aig.add_inputs("x", 6);
        let g1 = aig.and(x[0], x[1]);
        let g2 = aig.and(x[2], x[3]);
        let h = aig.and(g1, g2);
        aig.add_output(h, "o");
        let patterns = PatternSet::exhaustive(6);
        let sim = Simulator::new(&aig, &patterns);
        let reach = ReachMap::compute(&aig);
        let ranks = als_aig::topo::topo_ranks(&aig);
        let mut fs = FlipSim::new(aig.num_nodes(), sim.num_words());
        let cut1 = closest_disjoint_cut(&aig, &reach, &ranks, g1.node());
        let first = fs.boolean_differences(&aig, &sim, &ranks, g1.node(), &cut1);
        // second call on a different node must not see stale flipped values
        let cut2 = closest_disjoint_cut(&aig, &reach, &ranks, g2.node());
        let _ = fs.boolean_differences(&aig, &sim, &ranks, g2.node(), &cut2);
        let again = fs.boolean_differences(&aig, &sim, &ranks, g1.node(), &cut1);
        assert_eq!(first, again);
    }
}
