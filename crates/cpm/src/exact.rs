//! Exact single-node CPM row via full fanout-cone resimulation.
//!
//! Every node has a trivial disjoint cut: the set of primary-output sinks
//! it reaches. Using it with [`crate::FlipSim`] simulates the node's whole
//! TFO cone — more expensive than the closest cut, but requiring no
//! precomputed cut state. The flows use this to *validate* a LAC chosen
//! from approximate estimates (VECBEE `l = 1`, AccALS multi-selection)
//! before committing it.

use als_aig::{Aig, NodeId};
use als_cuts::{CutMember, DisjointCut};
use als_sim::Simulator;

use crate::flipsim::FlipSim;
use crate::storage::CpmRow;

/// Builds the trivial output-sink disjoint cut of `n` by walking its TFO
/// cone.
pub fn trivial_cut(aig: &Aig, n: NodeId) -> DisjointCut {
    let cone = als_aig::cone::tfo_cone(aig, n);
    let mut outputs: Vec<u32> =
        cone.iter().flat_map(|&u| aig.output_refs(u).iter().copied()).collect();
    outputs.sort_unstable();
    outputs.dedup();
    DisjointCut::from_members(outputs.into_iter().map(CutMember::Output).collect())
}

/// Computes the exact CPM row of `n` with one full cone simulation, with
/// no dependence on cut or CPM state.
pub fn exact_row(
    aig: &Aig,
    sim: &Simulator,
    ranks: &[u32],
    flipsim: &mut FlipSim,
    n: NodeId,
) -> CpmRow {
    let cut = trivial_cut(aig, n);
    let mut row: CpmRow = flipsim
        .boolean_differences(aig, sim, ranks, n, &cut)
        .into_iter()
        .map(|(m, b)| {
            let CutMember::Output(o) = m else { unreachable!("trivial cut has only sinks") };
            (o, b)
        })
        .collect();
    row.sort_by_key(|(o, _)| *o);
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{boxed_rows_equivalent, brute_force_row};
    use als_sim::PatternSet;

    #[test]
    fn exact_row_matches_brute_force() {
        let mut aig = Aig::new("r");
        let x = aig.add_inputs("x", 6);
        let a = aig.and(x[0], x[1]);
        let b = aig.and(a, x[2]);
        let c = aig.and(a, !x[2]);
        let e = aig.and(b, c);
        aig.add_output(e, "O1");
        aig.add_output(!c, "O2");
        let patterns = PatternSet::exhaustive(6);
        let sim = Simulator::new(&aig, &patterns);
        let ranks = als_aig::topo::topo_ranks(&aig);
        let mut fs = FlipSim::new(aig.num_nodes(), sim.num_words());
        for n in aig.iter_live() {
            let row = exact_row(&aig, &sim, &ranks, &mut fs, n);
            let reference = brute_force_row(&aig, &patterns, n);
            assert!(boxed_rows_equivalent(&row, &reference, 2), "node {n}");
        }
    }

    #[test]
    fn trivial_cut_lists_reachable_outputs() {
        let mut aig = Aig::new("t");
        let x = aig.add_inputs("x", 2);
        let g = aig.and(x[0], x[1]);
        aig.add_output(g, "o0");
        aig.add_output(x[1].xor_complement(true), "o1");
        let cut = trivial_cut(&aig, g.node());
        assert_eq!(cut.members(), &[CutMember::Output(0)]);
        let cut_x1 = trivial_cut(&aig, x[1].node());
        assert_eq!(cut_x1.members(), &[CutMember::Output(0), CutMember::Output(1)]);
    }
}
