//! The original VECBEE approximation with depth limit `l = 1`.
//!
//! VECBEE's accuracy knob replaces the cut in Eq. (1) by nodes at bounded
//! depth; at `l = 1` the "cut" of node `n` is simply its direct fanouts:
//!
//! ```text
//! P[n][o] ≈ ⋁_f ( B[n][f] ∧ P[f][o] )
//! ```
//!
//! The OR over fanouts ignores reconvergent cancellation, so the result is
//! not exact in general — the paper's Table II shows the quality cost on
//! large circuits. The Boolean difference to a direct fanout needs no cone
//! simulation at all: it is evaluated locally from the fanout's other
//! fanin.

use als_aig::{Aig, NodeId};
use als_sim::{PackedBits, Simulator};

use crate::storage::{Cpm, RowData};

/// Boolean difference of a direct fanout `f` of `n`, written into `out`:
/// how `f`'s value reacts to toggling `n`, evaluated locally from the
/// fanout's fanins without allocating.
fn local_diff_into(aig: &Aig, sim: &Simulator, n: NodeId, f: NodeId, out: &mut PackedBits) {
    let node = aig.node(f);
    let (f0, f1) = (node.fanin0(), node.fanin1());
    // flip the polarity of every fanin edge fed by n
    let (m0, m1) = (
        if f0.is_complement() != (f0.node() == n) { !0u64 } else { 0 },
        if f1.is_complement() != (f1.node() == n) { !0u64 } else { 0 },
    );
    let (a, b, orig) = (sim.value(f0.node()), sim.value(f1.node()), sim.value(f));
    for (w, slot) in out.words_mut().iter_mut().enumerate() {
        *slot = ((a.words()[w] ^ m0) & (b.words()[w] ^ m1)) ^ orig.words()[w];
    }
}

/// Computes the depth-one VECBEE CPM for every live node.
///
/// Exact on fanout-tree regions, approximate under reconvergence.
pub fn compute_depth_one(aig: &Aig, sim: &Simulator) -> Cpm {
    let words = sim.num_words();
    let mut cpm = Cpm::new(aig.num_nodes(), words);
    let order = als_aig::topo::topo_order(aig);
    let mut diff = PackedBits::zeros(words);
    let mut row = RowData::new(words);
    let mut fanouts: Vec<NodeId> = Vec::new();
    for &n in order.iter().rev() {
        let mut acc: Vec<Option<PackedBits>> = vec![None; aig.num_outputs()];
        for &o in aig.output_refs(n) {
            acc[o as usize] = Some(PackedBits::ones(words));
        }
        // Deduplicate fanouts (a double edge still yields one local diff).
        fanouts.clear();
        fanouts.extend_from_slice(aig.fanouts(n));
        fanouts.sort();
        fanouts.dedup();
        for &f in &fanouts {
            local_diff_into(aig, sim, n, f, &mut diff);
            let frow = cpm.row(f).expect("fanout row precedes in reverse topo order");
            for (o, p) in frow.iter() {
                let masked = p.and(&diff);
                match &mut acc[o as usize] {
                    Some(existing) => existing.or_assign(&masked),
                    slot @ None => *slot = Some(masked),
                }
            }
        }
        for (o, v) in acc.into_iter().enumerate() {
            if let Some(v) = v {
                row.push_entry(o as u32).copy_from_slice(v.words());
            }
        }
        cpm.set_row(n, &mut row);
    }
    cpm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::compute_full;
    use crate::reference::{brute_force_row, rows_equivalent};
    use als_cuts::CutState;
    use als_sim::PatternSet;

    #[test]
    fn exact_on_trees() {
        // A fanout-free tree: depth-one must equal brute force.
        let mut aig = Aig::new("tree");
        let x = aig.add_inputs("x", 8);
        let g0 = aig.and(x[0], x[1]);
        let g1 = aig.and(x[2], !x[3]);
        let g2 = aig.and(!x[4], x[5]);
        let g3 = aig.and(x[6], x[7]);
        let h0 = aig.and(g0, g1);
        let h1 = aig.and(g2, g3);
        let r = aig.and(h0, !h1);
        aig.add_output(r, "o");
        let patterns = PatternSet::exhaustive(8);
        let sim = Simulator::new(&aig, &patterns);
        let cpm = compute_depth_one(&aig, &sim);
        for n in aig.iter_live() {
            let reference = brute_force_row(&aig, &patterns, n);
            assert!(rows_equivalent(cpm.row(n).unwrap(), &reference, 1), "node {n}");
        }
    }

    #[test]
    fn inexact_under_reconvergent_cancellation() {
        // o = (a & x) & !(a & x) collapses structurally, so build the classic
        // XOR-style cancellation: o = (a&b) xor (a&!b) reacts to a, but
        // depth-one over-propagates through both branches.
        let mut aig = Aig::new("recon");
        let x = aig.add_inputs("x", 6);
        let a = aig.and(x[0], x[1]);
        // two branches that reconverge with cancellation: e = b0 & b1 where
        // b0 = a & c, b1 = !(a & c) -> constant 0 function of a's cone.
        let c = x[2];
        let b0 = aig.and(a, c);
        let b1 = aig.and_raw(!b0, x[3]);
        let e = aig.and_raw(b0, b1); // e = b0 & !b0 & x3 = 0
        aig.add_output(e, "o");
        let patterns = PatternSet::exhaustive(6);
        let sim = Simulator::new(&aig, &patterns);
        let d1 = compute_depth_one(&aig, &sim);
        let cuts = CutState::compute(&aig);
        let exact = compute_full(&aig, &sim, &cuts).unwrap();
        // e is constantly 0; flipping b0 cannot change it... actually
        // flipping b0 CAN change e (e = b0 & !b0&x3 toggles parts). The real
        // check: the exact CPM matches brute force, depth-one does not
        // everywhere.
        let mut depth_one_all_exact = true;
        for n in aig.iter_live() {
            let reference = brute_force_row(&aig, &patterns, n);
            assert!(rows_equivalent(exact.row(n).unwrap(), &reference, 1), "exact wrong at {n}");
            if !rows_equivalent(d1.row(n).unwrap(), &reference, 1) {
                depth_one_all_exact = false;
            }
        }
        assert!(!depth_one_all_exact, "expected depth-one to be approximate here");
    }

    #[test]
    fn double_edge_fanout_handled() {
        let mut aig = Aig::new("dbl");
        let x = aig.add_inputs("x", 6);
        let g = aig.and(x[0], x[1]);
        let h = aig.and_raw(g, !g); // constant-0 gate using g twice
        let r = aig.and_raw(h, x[2]);
        aig.add_output(r, "o");
        aig.add_output(g, "o1");
        let patterns = PatternSet::exhaustive(6);
        let sim = Simulator::new(&aig, &patterns);
        let cpm = compute_depth_one(&aig, &sim);
        // must not panic and g's row must exist with both outputs possible
        assert!(cpm.row(g.node()).is_some());
    }
}
