//! Change propagation matrix (CPM) computation.
//!
//! The CPM `P[i, n, o]` answers, for every simulation pattern `i`, node `n`
//! and primary output `o`: *would toggling `n` under pattern `i` toggle
//! `o`?* With it, the error increase of every candidate LAC follows directly
//! from the LAC's node-level change vector `D` — the per-output flip vector
//! is just `D ∧ P[n][o]` (see `als-error`).
//!
//! Three computation strategies are provided:
//!
//! * [`full`] — exact CPM for all nodes via closest disjoint cuts and
//!   Eq. (1) of the paper, `P[n][o] = B[n][t] ∧ P[t][o]`, in reverse
//!   topological order (the "enhanced VECBEE" baseline and the paper's
//!   phase-one step 2),
//! * [`partial`] — exact CPM restricted to `N(S_cand)`, the transitive
//!   closure of the candidate set through disjoint cuts (phase-two step 2),
//! * [`vecbee`] — the original VECBEE approximation with depth limit
//!   `l = 1`, which substitutes direct fanouts for cuts: fast but inexact
//!   under reconvergence.
//!
//! [`flipsim`] implements the single-flip cone simulation that yields the
//! Boolean differences `B[n][t]` to *all* cut members of `n` at once — the
//! disjoint-cut advantage over per-output one-cut simulation.
//! [`mod@reference`] holds a brute-force oracle used by tests.
//!
//! [`storage`] backs the matrix with one flat word arena per [`Cpm`]: rows
//! are `(output, arena-range)` index slices with per-entry nonzero-word
//! windows, so downstream kernels stream over cache-friendly slices and
//! skip guaranteed-zero words instead of chasing boxed per-entry vectors.

// Hot-path analysis code must surface failures as values, not panics: a
// stray `unwrap()` here aborts a whole synthesis run.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod error;
pub mod exact;
pub mod flipsim;
pub mod full;
pub mod partial;
pub mod reference;
pub mod storage;
pub mod vecbee;

pub use error::CpmError;
pub use exact::{exact_row, trivial_cut};
pub use flipsim::{DiffSet, FlipSim};
pub use full::{compute_for_set, compute_for_set_with, compute_full, compute_full_with};
pub use partial::{candidate_closure, compute_partial, compute_partial_with};
pub use storage::{Cpm, CpmRow, RowData, RowView};
pub use vecbee::compute_depth_one;
