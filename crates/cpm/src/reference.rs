//! Brute-force CPM oracle for tests.
//!
//! Computes `P[·, n, o]` by literally flipping node `n` and resimulating
//! the entire circuit — quadratic and only suitable for small test
//! circuits, but definitionally correct.

use als_aig::{Aig, NodeId};
use als_sim::{PackedBits, PatternSet, Simulator};

use crate::storage::CpmRow;

/// The exact CPM row of `n`, over *all* outputs (zero vectors included).
pub fn brute_force_row(aig: &Aig, patterns: &PatternSet, n: NodeId) -> CpmRow {
    let sim = Simulator::new(aig, patterns);
    let mut vals: Vec<PackedBits> =
        (0..aig.num_nodes()).map(|i| sim.value(NodeId(i as u32)).clone()).collect();
    vals[n.index()].not_assign();
    for id in als_aig::topo::topo_order(aig) {
        if id == n || !aig.node(id).is_and() {
            continue;
        }
        let node = aig.node(id);
        let read = |lit: als_aig::Lit, vals: &[PackedBits]| {
            let v = &vals[lit.node().index()];
            if lit.is_complement() {
                v.not()
            } else {
                v.clone()
            }
        };
        let a = read(node.fanin0(), &vals);
        let b = read(node.fanin1(), &vals);
        vals[id.index()] = a.and(&b);
    }
    aig.outputs()
        .iter()
        .enumerate()
        .map(|(o, out)| {
            let d = out.lit.node();
            (o as u32, vals[d.index()].xor(sim.value(d)))
        })
        .collect()
}

/// Whether an arena CPM row equals a dense reference row: entries present
/// in one and absent in the other must be zero vectors (the arena drops
/// annihilated entries at write time).
pub fn rows_equivalent(sparse: crate::RowView<'_>, dense: &CpmRow, num_outputs: usize) -> bool {
    for o in 0..num_outputs as u32 {
        let s = sparse.entry(o);
        let d = dense.iter().find(|(oo, _)| *oo == o).map(|(_, v)| v);
        let equal = match (s, d) {
            (Some(a), Some(b)) => a == *b,
            (Some(a), None) => a.is_zero(),
            (None, Some(b)) => b.is_zero(),
            (None, None) => true,
        };
        if !equal {
            return false;
        }
    }
    true
}

/// [`rows_equivalent`] for two boxed rows (both owned `CpmRow`s).
pub fn boxed_rows_equivalent(a: &CpmRow, b: &CpmRow, num_outputs: usize) -> bool {
    for o in 0..num_outputs as u32 {
        let av = a.iter().find(|(oo, _)| *oo == o).map(|(_, v)| v);
        let bv = b.iter().find(|(oo, _)| *oo == o).map(|(_, v)| v);
        let equal = match (av, bv) {
            (Some(x), Some(y)) => x == y,
            (Some(x), None) => x.is_zero(),
            (None, Some(y)) => y.is_zero(),
            (None, None) => true,
        };
        if !equal {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_aig::Aig;

    #[test]
    fn brute_force_on_buffer() {
        let mut aig = Aig::new("buf");
        let xs = aig.add_inputs("x", 6);
        aig.add_output(xs[0], "o0");
        aig.add_output(!xs[1], "o1");
        let patterns = PatternSet::exhaustive(6);
        let row = brute_force_row(&aig, &patterns, aig.inputs()[0]);
        // flipping x0 always flips o0, never o1
        assert_eq!(row[0].1.count_ones(), 64);
        assert!(row[1].1.is_zero());
    }

    #[test]
    fn rows_equivalent_handles_sparsity() {
        let dense = vec![(0, PackedBits::zeros(1)), (1, PackedBits::ones(1))];
        let sparse = vec![(1, PackedBits::ones(1))];
        assert!(boxed_rows_equivalent(&sparse, &dense, 2));
        let wrong = vec![(1, PackedBits::zeros(1))];
        assert!(!boxed_rows_equivalent(&wrong, &dense, 2));

        // and the arena form agrees after zero-dropping
        let mut cpm = crate::Cpm::new(1, 1);
        cpm.set_row_pairs(als_aig::NodeId(0), &dense);
        assert!(rows_equivalent(cpm.row(als_aig::NodeId(0)).unwrap(), &dense, 2));
    }
}
