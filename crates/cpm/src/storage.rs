//! CPM storage: sparse per-node rows over reachable outputs.

use als_aig::NodeId;
use als_sim::PackedBits;

/// One node's CPM row: for each output reachable from the node, the packed
/// Boolean-difference vector `P[·, n, o]` over all patterns.
///
/// Entries are sorted by output index.
pub type CpmRow = Vec<(u32, PackedBits)>;

/// The change propagation matrix of a circuit, stored sparsely: only
/// computed nodes carry a row (the partial phase-two computation leaves
/// non-candidate rows empty), and each row covers only the outputs
/// reachable from its node.
#[derive(Clone, Debug, Default)]
pub struct Cpm {
    rows: Vec<Option<CpmRow>>,
}

impl Cpm {
    /// An empty CPM sized for `num_nodes` node slots.
    pub fn new(num_nodes: usize) -> Cpm {
        Cpm { rows: vec![None; num_nodes] }
    }

    /// Stores the row of node `n`.
    pub fn set_row(&mut self, n: NodeId, row: CpmRow) {
        debug_assert!(row.windows(2).all(|w| w[0].0 < w[1].0), "row must be sorted");
        self.rows[n.index()] = Some(row);
    }

    /// The row of node `n`, if computed.
    pub fn row(&self, n: NodeId) -> Option<&CpmRow> {
        self.rows.get(n.index()).and_then(|r| r.as_ref())
    }

    /// The entry `P[·, n, o]`, if the row is computed and `o` reachable.
    pub fn entry(&self, n: NodeId, o: u32) -> Option<&PackedBits> {
        self.row(n)?.iter().find(|(oo, _)| *oo == o).map(|(_, v)| v)
    }

    /// Whether a row exists for `n`.
    pub fn has_row(&self, n: NodeId) -> bool {
        self.row(n).is_some()
    }

    /// Number of computed rows.
    pub fn num_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }

    /// Total number of stored (node, output) entries.
    pub fn num_entries(&self) -> usize {
        self.rows.iter().flatten().map(|r| r.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_entries() {
        let mut cpm = Cpm::new(4);
        assert!(!cpm.has_row(NodeId(2)));
        cpm.set_row(NodeId(2), vec![(0, PackedBits::ones(1)), (3, PackedBits::zeros(1))]);
        assert!(cpm.has_row(NodeId(2)));
        assert_eq!(cpm.num_rows(), 1);
        assert_eq!(cpm.num_entries(), 2);
        assert!(cpm.entry(NodeId(2), 0).unwrap().get(5));
        assert!(cpm.entry(NodeId(2), 3).unwrap().is_zero());
        assert!(cpm.entry(NodeId(2), 1).is_none());
        assert!(cpm.entry(NodeId(1), 0).is_none());
    }
}
