//! CPM storage: sparse per-node rows over reachable outputs, backed by one
//! flat word arena.
//!
//! The hot kernels (Eq. (1) row construction, batch LAC evaluation) stream
//! over rows word-by-word; boxing every `(node, output)` entry in its own
//! heap vector made them allocator-bound and pointer-chased. Instead the
//! matrix owns a single `Vec<u64>` arena: entry `k` occupies the word range
//! `[k·W, (k+1)·W)` for pattern width `W`, rows are contiguous runs of
//! entries sorted by output, and every entry carries its first/last
//! nonzero-word window so kernels can skip guaranteed-zero words without
//! reading them. All-zero entries (annihilated difference vectors) are
//! dropped at write time — they propagate nothing through Eq. (1) and
//! contribute nothing to any error estimate.

use als_aig::NodeId;
use als_sim::{BitsRef, PackedBits};

/// One node's CPM row in boxed form: for each output reachable from the
/// node, the packed Boolean-difference vector `P[·, n, o]` over all
/// patterns. Only the brute-force oracle and the single-node exact row
/// still use this owned representation; arena rows are read via
/// [`RowView`].
pub type CpmRow = Vec<(u32, PackedBits)>;

/// Sentinel for "no row stored".
const NO_ROW: u32 = u32::MAX;

/// Metadata of one arena entry. The arena offset is implicit: entry `k`
/// owns words `[k·W, (k+1)·W)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Entry {
    /// Output index this entry belongs to.
    output: u32,
    /// First word of the entry that may be nonzero.
    nz_begin: u32,
    /// One past the last word that may be nonzero (window never empty:
    /// all-zero entries are not stored).
    nz_end: u32,
}

/// Span of one row inside the entry table.
#[derive(Copy, Clone, Debug)]
struct RowSpan {
    start: u32,
    len: u32,
}

/// A reusable row-construction buffer: outputs plus one flat word buffer,
/// entry `i` at words `[i·W, (i+1)·W)`.
///
/// Builders push entries in arbitrary output order (cut members yield
/// outputs unsorted); [`Cpm::set_row`] sorts by output while copying into
/// the arena. The buffer is cleared and reused across nodes, so steady-state
/// row construction performs no heap allocation.
#[derive(Clone, Debug)]
pub struct RowData {
    num_words: usize,
    outputs: Vec<u32>,
    words: Vec<u64>,
    /// Scratch for the sort-by-output permutation in `set_row`.
    perm: Vec<u32>,
}

impl RowData {
    /// An empty buffer for `num_words`-word entries.
    pub fn new(num_words: usize) -> RowData {
        RowData { num_words, outputs: Vec::new(), words: Vec::new(), perm: Vec::new() }
    }

    /// Removes all entries, keeping capacity.
    pub fn clear(&mut self) {
        self.outputs.clear();
        self.words.clear();
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Appends a zero-filled entry for `output` and returns its word slice
    /// for the caller to fill.
    pub fn push_entry(&mut self, output: u32) -> &mut [u64] {
        self.outputs.push(output);
        let start = self.words.len();
        self.words.resize(start + self.num_words, 0);
        &mut self.words[start..]
    }

    /// Drops the most recently pushed entry (used when a computed entry
    /// turns out to be all-zero — an annihilated difference vector).
    pub fn pop_entry(&mut self) {
        self.outputs.pop();
        self.words.truncate(self.words.len() - self.num_words);
    }

    /// Word slice of entry `i`.
    fn entry_words(&self, i: usize) -> &[u64] {
        &self.words[i * self.num_words..(i + 1) * self.num_words]
    }

    /// Iterates `(output, words)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u64])> + '_ {
        self.outputs.iter().enumerate().map(|(i, &o)| (o, self.entry_words(i)))
    }
}

/// The change propagation matrix of a circuit, stored sparsely in one word
/// arena: only computed nodes carry a row (the partial phase-two
/// computation leaves non-candidate rows empty), each row covers only the
/// outputs reachable from its node, and annihilated (all-zero) entries are
/// dropped at write time.
#[derive(Clone, Debug, Default)]
pub struct Cpm {
    num_words: usize,
    /// Flat word arena; entry `k` owns `[k·num_words, (k+1)·num_words)`.
    words: Vec<u64>,
    /// Entry metadata, one contiguous sorted-by-output run per row.
    entries: Vec<Entry>,
    /// Per node-slot: span into `entries` (`start == NO_ROW` = absent).
    rows: Vec<RowSpan>,
}

impl Cpm {
    /// An empty CPM sized for `num_nodes` node slots and `num_words`-word
    /// difference vectors.
    pub fn new(num_nodes: usize, num_words: usize) -> Cpm {
        Cpm {
            num_words,
            words: Vec::new(),
            entries: Vec::new(),
            rows: vec![RowSpan { start: NO_ROW, len: 0 }; num_nodes],
        }
    }

    /// Pattern width in 64-bit words.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// Stores the row of node `n`, sorting entries by output and dropping
    /// all-zero entries while copying into the arena. `row` is consumed
    /// logically (cleared) but keeps its capacity for reuse.
    ///
    /// # Panics
    /// Panics (in debug builds) if `n` already has a row or two entries
    /// share an output.
    pub fn set_row(&mut self, n: NodeId, row: &mut RowData) {
        debug_assert_eq!(row.num_words, self.num_words, "row width mismatch");
        debug_assert_eq!(self.rows[n.index()].start, NO_ROW, "row set twice");
        let start = self.entries.len();
        // Sort the permutation, not the word chunks.
        row.perm.clear();
        row.perm.extend(0..row.outputs.len() as u32);
        row.perm.sort_unstable_by_key(|&i| row.outputs[i as usize]);
        debug_assert!(
            row.perm.windows(2).all(|w| row.outputs[w[0] as usize] < row.outputs[w[1] as usize]),
            "cut covers each output once"
        );
        for &i in &row.perm {
            let src = row.entry_words(i as usize);
            let nz_begin = src.iter().position(|&w| w != 0);
            let Some(nz_begin) = nz_begin else { continue }; // annihilated
            let nz_end = src.iter().rposition(|&w| w != 0).map_or(0, |e| e + 1);
            self.entries.push(Entry {
                output: row.outputs[i as usize],
                nz_begin: nz_begin as u32,
                nz_end: nz_end as u32,
            });
            self.words.extend_from_slice(src);
        }
        self.rows[n.index()] =
            RowSpan { start: start as u32, len: (self.entries.len() - start) as u32 };
        row.clear();
    }

    /// Stores a row given as owned `(output, bits)` pairs — the
    /// compatibility path for the brute-force oracle and tests.
    pub fn set_row_pairs(&mut self, n: NodeId, pairs: &[(u32, PackedBits)]) {
        let mut data = RowData::new(self.num_words);
        for (o, bits) in pairs {
            data.push_entry(*o).copy_from_slice(bits.words());
        }
        self.set_row(n, &mut data);
    }

    /// The row of node `n`, if computed.
    pub fn row(&self, n: NodeId) -> Option<RowView<'_>> {
        let span = self.rows.get(n.index())?;
        if span.start == NO_ROW {
            return None;
        }
        Some(RowView { cpm: self, start: span.start as usize, len: span.len as usize })
    }

    /// The entry `P[·, n, o]`, if the row is computed and `o`'s difference
    /// vector is nonzero (annihilated entries are not stored). Found by
    /// binary search over the sorted row.
    pub fn entry(&self, n: NodeId, o: u32) -> Option<BitsRef<'_>> {
        self.row(n)?.entry(o)
    }

    /// Whether a row exists for `n`.
    pub fn has_row(&self, n: NodeId) -> bool {
        self.rows.get(n.index()).is_some_and(|s| s.start != NO_ROW)
    }

    /// Number of computed rows.
    pub fn num_rows(&self) -> usize {
        self.rows.iter().filter(|s| s.start != NO_ROW).count()
    }

    /// Total number of stored (node, output) entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Total arena footprint in bytes (words only, excluding metadata).
    pub fn arena_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    fn entry_bits(&self, k: usize) -> BitsRef<'_> {
        let e = self.entries[k];
        BitsRef::with_window(
            &self.words[k * self.num_words..(k + 1) * self.num_words],
            e.nz_begin as usize,
            e.nz_end as usize,
        )
    }
}

/// A borrowed view of one CPM row: `(output, bits)` entries sorted by
/// output, each bits view carrying its nonzero-word window.
#[derive(Copy, Clone)]
pub struct RowView<'a> {
    cpm: &'a Cpm,
    start: usize,
    len: usize,
}

impl<'a> RowView<'a> {
    /// Number of (nonzero) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the row stores no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates `(output, bits)` in ascending output order. (`RowView` is
    /// `Copy`, so iterating consumes nothing.)
    pub fn iter(self) -> impl Iterator<Item = (u32, BitsRef<'a>)> + 'a {
        let (cpm, start) = (self.cpm, self.start);
        (start..start + self.len).map(move |k| (cpm.entries[k].output, cpm.entry_bits(k)))
    }

    /// The entry of output `o`, if present, by binary search.
    pub fn entry(&self, o: u32) -> Option<BitsRef<'a>> {
        let entries = &self.cpm.entries[self.start..self.start + self.len];
        let i = entries.binary_search_by_key(&o, |e| e.output).ok()?;
        Some(self.cpm.entry_bits(self.start + i))
    }

    /// Deterministic structural fingerprint of the row: FNV-1a over every
    /// entry's output index, nonzero window and windowed words. Equal rows
    /// (per [`PartialEq`]) hash equal — windows are derived exactly from
    /// content in [`Cpm::set_row`], and words outside the window are zero —
    /// so the fingerprint is a sound dedup filter; callers must still
    /// confirm equality exactly before merging candidates.
    pub fn fingerprint(&self) -> u64 {
        let mut h = als_cuts::WordHasher::new();
        for (o, bits) in self.iter() {
            h.write_u64(u64::from(o));
            h.write_u64(bits.nz_begin() as u64);
            h.write_words(&bits.words()[bits.nz_begin()..bits.nz_end()]);
        }
        h.finish()
    }
}

impl PartialEq for RowView<'_> {
    fn eq(&self, other: &RowView<'_>) -> bool {
        self.len == other.len
            && self.iter().zip(other.iter()).all(|((oa, a), (ob, b))| oa == ob && a == b)
    }
}

impl std::fmt::Debug for RowView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_entries() {
        let mut cpm = Cpm::new(4, 1);
        assert!(!cpm.has_row(NodeId(2)));
        cpm.set_row_pairs(
            NodeId(2),
            &[(3, PackedBits::zeros(1)), (0, PackedBits::ones(1))], // unsorted on purpose
        );
        assert!(cpm.has_row(NodeId(2)));
        assert_eq!(cpm.num_rows(), 1);
        // the all-zero entry for output 3 is annihilated at write time
        assert_eq!(cpm.num_entries(), 1);
        assert!(cpm.entry(NodeId(2), 0).unwrap().get(5));
        assert!(cpm.entry(NodeId(2), 3).is_none());
        assert!(cpm.entry(NodeId(2), 1).is_none());
        assert!(cpm.entry(NodeId(1), 0).is_none());
    }

    #[test]
    fn rows_sorted_and_binary_searchable() {
        let mut cpm = Cpm::new(2, 2);
        let mut data = RowData::new(2);
        for o in [5u32, 1, 9, 3] {
            let w = data.push_entry(o);
            w[1] = u64::from(o); // nonzero in word 1 only
        }
        cpm.set_row(NodeId(0), &mut data);
        assert!(data.is_empty(), "set_row clears the buffer");
        let row = cpm.row(NodeId(0)).unwrap();
        let outputs: Vec<u32> = row.iter().map(|(o, _)| o).collect();
        assert_eq!(outputs, vec![1, 3, 5, 9]);
        for o in outputs {
            let e = row.entry(o).unwrap();
            assert_eq!(e.words(), &[0, u64::from(o)]);
            assert_eq!((e.nz_begin(), e.nz_end()), (1, 2));
        }
        assert!(row.entry(2).is_none());
        assert!(row.entry(100).is_none());
    }

    #[test]
    fn row_views_compare_across_matrices() {
        let mk = |zero_first: bool| {
            let mut cpm = Cpm::new(1, 1);
            let mut data = RowData::new(1);
            if zero_first {
                data.push_entry(0); // annihilated, dropped
            }
            data.push_entry(1)[0] = 0b101;
            cpm.set_row(NodeId(0), &mut data);
            cpm
        };
        let (a, b) = (mk(true), mk(false));
        assert_eq!(a.row(NodeId(0)).unwrap(), b.row(NodeId(0)).unwrap());
        assert_eq!(a.num_entries(), 1);
        assert!(a.arena_bytes() == 8);
    }
}
