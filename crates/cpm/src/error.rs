//! Structured failure type for CPM construction.

use std::fmt;

use als_aig::NodeId;

/// Why a CPM could not be computed.
///
/// Both variants mean the [`als_cuts::CutState`] handed in has drifted
/// from the circuit it is supposed to describe — a live node is missing
/// its disjoint cut, or the cut DAG is inconsistent with topological
/// order. The flows treat either as analysis-state corruption and fall
/// back to a comprehensive re-analysis instead of panicking mid-run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CpmError {
    /// A live node that needs a row has no stored disjoint cut.
    MissingCut {
        /// The node without a cut.
        node: NodeId,
    },
    /// Eq. (1) needed the row of a cut's node member before that row was
    /// computed.
    MissingMemberRow {
        /// The cut member whose row was absent.
        member: NodeId,
        /// The node whose row was being assembled.
        node: NodeId,
    },
    /// A worker thread panicked during a parallel CPM construction; the
    /// payload text is preserved. Unlike the other variants this does not
    /// indicate stale cut state, but the flows treat it the same way
    /// (abort the iteration with a structured error instead of crashing).
    WorkerPanic(
        /// The panic payload, rendered as text.
        String,
    ),
}

impl fmt::Display for CpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpmError::MissingCut { node } => {
                write!(f, "no disjoint cut stored for live node {node}")
            }
            CpmError::MissingMemberRow { member, node } => {
                write!(f, "row of cut member {member} not computed before {node}")
            }
            CpmError::WorkerPanic(detail) => {
                write!(f, "worker thread panicked during CPM construction: {detail}")
            }
        }
    }
}

impl std::error::Error for CpmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_nodes() {
        let e = CpmError::MissingCut { node: NodeId(7) };
        assert!(e.to_string().contains('7'));
        let e = CpmError::MissingMemberRow { member: NodeId(3), node: NodeId(9) };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('9'));
    }
}
