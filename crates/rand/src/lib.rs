//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny API surface it actually consumes: a seedable deterministic
//! 64-bit generator. [`rngs::StdRng`] here is SplitMix64 — statistically
//! solid for Monte-Carlo stimulus generation and fully deterministic in the
//! seed, which is all `als-sim`'s `PatternSet` requires. It is **not** the
//! upstream ChaCha-based `StdRng`; streams differ from the real crate, but
//! every consumer in this workspace only relies on determinism and uniform
//! bit density, never on a specific stream.

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniformly distributed random words plus convenience derivations.
///
/// Upstream splits this into `RngCore` + `Rng`; the shim keeps one trait
/// (aliased below) so `use rand::Rng` alone brings `next_u64` into scope,
/// matching how the workspace imports it.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    fn random_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    fn random_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Upstream-compatible alias: the shim's [`Rng`] already carries the core
/// word-generation methods.
pub use Rng as RngCore;

pub mod rngs {
    //! Concrete generator implementations.

    /// Deterministic SplitMix64 generator (see crate docs for the
    /// deliberate divergence from upstream `rand`'s ChaCha `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bit_density_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(42);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        let density = ones as f64 / (1024.0 * 64.0);
        assert!((0.48..0.52).contains(&density), "density {density}");
    }

    #[test]
    fn random_unit_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = rng.random_unit();
            assert!((0.0..1.0).contains(&x));
            assert!(rng.random_below(10) < 10);
        }
    }
}
