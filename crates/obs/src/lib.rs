//! Structured observability for the ALS workspace: hierarchical tracing
//! spans, a typed metrics registry, and three sinks (human-readable tree,
//! JSONL event stream, Prometheus text exposition).
//!
//! # Design
//!
//! The whole layer hangs off one cheap handle, [`Obs`]. A **disabled**
//! handle (the default everywhere) is an `Option::None` inside: every
//! span, counter, gauge and histogram operation is an `#[inline]` check
//! that immediately returns, so instrumented code costs nothing when
//! observability is off — no allocation, no atomics, no locks. An
//! **enabled** handle shares one [`metrics::Registry`] plus the configured
//! sinks via an `Arc`; cloning it is pointer-copy cheap and every clone
//! feeds the same registry.
//!
//! Spans nest per thread (`flow > iteration > phase > step`); each
//! finished span carries its wall time, a small per-process thread index
//! and any attached counts. [`Span::finish`] *returns the measured
//! duration*, which is how the engine keeps its `StepTimes` accumulators
//! (the input to DP-SA's step-domination decision) and the trace on one
//! shared measurement instead of two diverging clocks.
//!
//! Nothing here feeds wall-clock state back into synthesis decisions:
//! metrics are write-only from the algorithm's point of view, and
//! histogram buckets are fixed powers of two. Enabled runs produce
//! byte-identical circuits to disabled runs (pinned by the facade's
//! `tests/obs.rs`).
//!
//! # Example
//!
//! ```
//! use als_obs::{Obs, ObsConfig};
//!
//! let dir = std::env::temp_dir().join("als_obs_doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let obs = Obs::new(ObsConfig {
//!     trace: Some(dir.join("run.jsonl")),
//!     metrics: Some(dir.join("run.prom")),
//!     tree: false,
//! })
//! .unwrap();
//!
//! let violations = obs.counter("als_cpc_violations_total", "CPC-violating nodes recut");
//! let mut span = obs.span("cuts");
//! violations.add(3);
//! span.count("s_v", 3);
//! let elapsed = span.finish(); // the same duration the engine accumulates
//! assert!(elapsed.as_nanos() > 0);
//! obs.finish().unwrap();
//! ```

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod json;
pub mod metrics;
pub mod prom;
pub mod trace;

use std::cell::{Cell, RefCell};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use metrics::{Counter, Gauge, Histogram};

/// Where the enabled sinks write.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// JSONL span event stream (`--trace <path>`); `None` disables it.
    pub trace: Option<PathBuf>,
    /// Prometheus text exposition written at [`Obs::finish`]
    /// (`--metrics <path>`); `None` disables it.
    pub metrics: Option<PathBuf>,
    /// Print the aggregated span tree to stderr at [`Obs::finish`].
    pub tree: bool,
}

/// A live subscriber to the JSONL span event stream: called with every
/// rendered event line (exactly the bytes the JSONL sink writes, minus the
/// newline), on the thread that finished the span. Used by the job daemon
/// to stream per-iteration progress to watching clients without tailing
/// the trace file.
pub type SpanListener = Arc<dyn Fn(&str) + Send + Sync>;

struct Inner {
    registry: metrics::Registry,
    jsonl: Option<trace::JsonlSink>,
    listener: Option<SpanListener>,
    metrics_path: Option<PathBuf>,
    tree_to_stderr: bool,
    tree: trace::TreeAgg,
    epoch: Instant,
    next_span: AtomicU64,
    tree_printed: AtomicBool,
}

/// The observability handle. Cheap to clone; disabled by default
/// everywhere (see [`Obs::disabled`]).
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Obs(disabled)"),
            Some(i) => f
                .debug_struct("Obs")
                .field("trace", &i.jsonl.is_some())
                .field("metrics", &i.metrics_path)
                .field("tree", &i.tree_to_stderr)
                .finish(),
        }
    }
}

// Small per-process thread index for trace events (thread::ThreadId has no
// stable numeric form).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
thread_local! {
    static THREAD_IDX: Cell<Option<u64>> = const { Cell::new(None) };
    // (span id, full path) stack of the spans currently open on this
    // thread; spans must finish on the thread that opened them.
    static SPAN_STACK: RefCell<Vec<(u64, String)>> = const { RefCell::new(Vec::new()) };
}

fn thread_index() -> u64 {
    THREAD_IDX.with(|c| match c.get() {
        Some(i) => i,
        None => {
            let i = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(Some(i));
            i
        }
    })
}

impl Obs {
    /// The disabled handle: every operation is an inlined no-op.
    pub const fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// An enabled handle with the given sinks. Creating the trace file
    /// fails eagerly; the metrics file is only written at [`Obs::finish`].
    pub fn new(cfg: ObsConfig) -> std::io::Result<Obs> {
        Obs::with_listener(cfg, None)
    }

    /// Like [`Obs::new`], but additionally installs a live [`SpanListener`]
    /// that receives every rendered span event line as it is produced —
    /// the same bytes the JSONL trace sink records. The listener runs on
    /// the thread that finished the span, so it must be cheap and must not
    /// block (the daemon's listener pushes onto an unbounded channel).
    pub fn with_listener(cfg: ObsConfig, listener: Option<SpanListener>) -> std::io::Result<Obs> {
        let jsonl = match &cfg.trace {
            Some(path) => Some(trace::JsonlSink::create(path)?),
            None => None,
        };
        Ok(Obs {
            inner: Some(Arc::new(Inner {
                registry: metrics::Registry::new(),
                jsonl,
                listener,
                metrics_path: cfg.metrics,
                tree_to_stderr: cfg.tree,
                tree: trace::TreeAgg::default(),
                epoch: Instant::now(),
                next_span: AtomicU64::new(1),
                tree_printed: AtomicBool::new(false),
            })),
        })
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or retrieves) a counter; no-op handle when disabled.
    pub fn counter(&self, name: &str, help: &'static str) -> Counter {
        match &self.inner {
            Some(i) => i.registry.counter(name, help),
            None => Counter::noop(),
        }
    }

    /// Registers (or retrieves) a gauge; no-op handle when disabled.
    pub fn gauge(&self, name: &str, help: &'static str) -> Gauge {
        match &self.inner {
            Some(i) => i.registry.gauge(name, help),
            None => Gauge::noop(),
        }
    }

    /// Registers (or retrieves) a histogram; no-op handle when disabled.
    pub fn histogram(&self, name: &str, help: &'static str) -> Histogram {
        match &self.inner {
            Some(i) => i.registry.histogram(name, help),
            None => Histogram::noop(),
        }
    }

    /// Opens a span. The span measures wall time from this call until
    /// [`Span::finish`] (or drop); when the handle is enabled the span is
    /// also pushed on this thread's span stack, so nested spans record
    /// their full `parent/child` path.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        let rec = self.inner.as_ref().map(|inner| {
            let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
            let (parent, path) = SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let (parent, path) = match stack.last() {
                    Some((pid, ppath)) => (*pid, format!("{ppath}/{name}")),
                    None => (0, name.to_string()),
                };
                stack.push((id, path.clone()));
                (parent, path)
            });
            SpanRec {
                inner: Arc::clone(inner),
                name,
                path,
                id,
                parent,
                start_ns: inner.epoch.elapsed().as_nanos() as u64,
                counts: Vec::new(),
            }
        });
        Span { start: Instant::now(), rec }
    }

    /// Writes the Prometheus exposition, flushes the JSONL stream and (on
    /// the first call) prints the span tree to stderr. Idempotent; later
    /// calls re-export the current metric values.
    pub fn finish(&self) -> std::io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if let Some(sink) = &inner.jsonl {
            sink.flush();
        }
        if let Some(path) = &inner.metrics_path {
            std::fs::write(path, prom::render(&inner.registry.snapshot()))?;
        }
        if inner.tree_to_stderr && !inner.tree_printed.swap(true, Ordering::Relaxed) {
            eprint!("{}", inner.tree.render());
        }
        Ok(())
    }

    /// Renders the current span tree (empty when disabled).
    pub fn render_tree(&self) -> String {
        self.inner.as_ref().map(|i| i.tree.render()).unwrap_or_default()
    }

    /// Total nanoseconds recorded under an exact span path (0 when
    /// disabled) — cross-check hook for tests.
    pub fn span_total_ns(&self, path: &str) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.tree.total_ns(path))
    }

    /// Renders the current state of the metrics registry as Prometheus
    /// text exposition (empty when disabled). Unlike [`Obs::finish`] this
    /// writes no file — it is the live snapshot a `/metrics` endpoint
    /// serves while runs are still in flight.
    pub fn prometheus_text(&self) -> String {
        self.inner.as_ref().map(|i| prom::render(&i.registry.snapshot())).unwrap_or_default()
    }
}

struct SpanRec {
    inner: Arc<Inner>,
    name: &'static str,
    path: String,
    id: u64,
    parent: u64,
    start_ns: u64,
    counts: Vec<(&'static str, u64)>,
}

/// An open span. Always measures wall time (so the engine's `StepTimes`
/// can be fed from [`Span::finish`]'s return value even when tracing is
/// off); records an event only when the owning [`Obs`] is enabled.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    start: Instant,
    rec: Option<SpanRec>,
}

impl Span {
    /// Attaches a count (node set sizes, candidate counts, …) to the span
    /// event. No-op when the span is disabled.
    #[inline]
    pub fn count(&mut self, key: &'static str, value: u64) {
        if let Some(rec) = &mut self.rec {
            rec.counts.push((key, value));
        }
    }

    /// Ends the span and returns its measured duration — the single
    /// source of truth shared by the trace event and the caller's timing
    /// accumulator.
    pub fn finish(mut self) -> Duration {
        self.end()
    }

    fn end(&mut self) -> Duration {
        let elapsed = self.start.elapsed();
        if let Some(rec) = self.rec.take() {
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if stack.last().map(|(id, _)| *id) == Some(rec.id) {
                    stack.pop();
                } else {
                    // Out-of-order finish (a span outlived its parent):
                    // drop the whole mis-nested suffix rather than corrupt
                    // later paths.
                    if let Some(pos) = stack.iter().position(|(id, _)| *id == rec.id) {
                        stack.truncate(pos);
                    }
                }
            });
            let ev = trace::SpanEvent {
                name: rec.name,
                path: &rec.path,
                id: rec.id,
                parent: rec.parent,
                thread: thread_index(),
                start_ns: rec.start_ns,
                dur_ns: elapsed.as_nanos() as u64,
                counts: &rec.counts,
            };
            rec.inner.tree.record(&ev);
            if rec.inner.jsonl.is_some() || rec.inner.listener.is_some() {
                let line = ev.to_json();
                if let Some(sink) = &rec.inner.jsonl {
                    sink.write_line(&line);
                }
                if let Some(listener) = &rec.inner.listener {
                    listener(&line);
                }
            }
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.rec.is_some() {
            self.end();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("als_obs_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{name}", std::process::id()))
    }

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let c = obs.counter("c_total", "");
        c.add(5);
        assert_eq!(c.get(), 0);
        let mut sp = obs.span("x");
        sp.count("k", 1);
        let d = sp.finish();
        assert!(d.as_nanos() > 0, "disabled spans still measure time");
        assert!(obs.finish().is_ok());
        assert_eq!(obs.render_tree(), "");
    }

    #[test]
    fn spans_nest_into_paths_and_aggregate() {
        let obs = Obs::new(ObsConfig::default()).unwrap();
        let outer = obs.span("flow");
        {
            let inner = obs.span("cuts");
            std::thread::sleep(Duration::from_millis(1));
            inner.finish();
        }
        let d = outer.finish();
        assert!(obs.span_total_ns("flow") >= d.as_nanos() as u64);
        assert!(obs.span_total_ns("flow/cuts") > 0);
        assert_eq!(obs.span_total_ns("cuts"), 0, "child recorded under its parent path");
        let tree = obs.render_tree();
        assert!(tree.contains("flow"), "{tree}");
    }

    #[test]
    fn finish_duration_matches_recorded_event() {
        let obs = Obs::new(ObsConfig::default()).unwrap();
        let sp = obs.span("only");
        let d = sp.finish();
        assert_eq!(obs.span_total_ns("only"), d.as_nanos() as u64);
    }

    #[test]
    fn jsonl_and_prometheus_files_are_written() {
        let trace_path = tmp("t.jsonl");
        let prom_path = tmp("t.prom");
        let obs = Obs::new(ObsConfig {
            trace: Some(trace_path.clone()),
            metrics: Some(prom_path.clone()),
            tree: false,
        })
        .unwrap();
        obs.counter("als_demo_total", "demo").add(2);
        let mut sp = obs.span("cuts");
        sp.count("s_v", 9);
        sp.finish();
        obs.finish().unwrap();
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.lines().count() == 1, "{trace}");
        assert!(trace.contains("\"counts\":{\"s_v\":9}"), "{trace}");
        let promtext = std::fs::read_to_string(&prom_path).unwrap();
        assert!(promtext.contains("als_demo_total 2"), "{promtext}");
        prom::lint(&promtext).unwrap();
    }

    #[test]
    fn dropped_span_still_records() {
        let obs = Obs::new(ObsConfig::default()).unwrap();
        {
            let _sp = obs.span("scoped");
        }
        assert!(obs.span_total_ns("scoped") > 0);
    }

    #[test]
    fn listener_sees_exactly_the_jsonl_lines() {
        let trace_path = tmp("listener.jsonl");
        let seen = Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
        let sink = Arc::clone(&seen);
        let obs = Obs::with_listener(
            ObsConfig { trace: Some(trace_path.clone()), metrics: None, tree: false },
            Some(Arc::new(move |line: &str| sink.lock().unwrap().push(line.to_string()))),
        )
        .unwrap();
        obs.span("flow").finish();
        let mut sp = obs.span("iteration");
        sp.count("lacs", 2);
        sp.finish();
        obs.finish().unwrap();
        let file: Vec<String> =
            std::fs::read_to_string(&trace_path).unwrap().lines().map(String::from).collect();
        assert_eq!(*seen.lock().unwrap(), file, "listener and JSONL sink must agree byte-for-byte");
    }

    #[test]
    fn prometheus_text_is_a_live_snapshot() {
        let obs = Obs::new(ObsConfig::default()).unwrap();
        assert_eq!(Obs::disabled().prometheus_text(), "");
        let c = obs.counter("als_live_total", "live");
        c.add(1);
        assert!(obs.prometheus_text().contains("als_live_total 1"));
        c.add(2);
        let text = obs.prometheus_text();
        assert!(text.contains("als_live_total 3"), "{text}");
        prom::lint(&text).unwrap();
    }

    #[test]
    fn clones_share_one_registry() {
        let obs = Obs::new(ObsConfig::default()).unwrap();
        let clone = obs.clone();
        obs.counter("shared_total", "").add(1);
        clone.counter("shared_total", "").add(2);
        assert_eq!(obs.counter("shared_total", "").get(), 3);
    }
}
