//! Trace sinks: the JSONL event stream and the aggregated span tree.
//!
//! JSON is written by hand (string escaping + number formatting only) so
//! the crate stays dependency-free; the event schema is documented in
//! DESIGN.md §10 and pinned by the facade's `tests/obs.rs`.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Mutex;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One finished span, ready for the sinks.
pub struct SpanEvent<'a> {
    /// Span name (last path segment).
    pub name: &'static str,
    /// Full `/`-joined span path, e.g. `flow/iteration/phase1/cuts`.
    pub path: &'a str,
    /// Unique span id within the run.
    pub id: u64,
    /// Id of the enclosing span (0 = root).
    pub parent: u64,
    /// Small per-process thread index.
    pub thread: u64,
    /// Start offset from the observability epoch, nanoseconds.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
    /// Attached counts (`|S_v|`, node counts, …).
    pub counts: &'a [(&'static str, u64)],
}

impl SpanEvent<'_> {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"t\":\"span\",\"name\":");
        push_json_str(&mut s, self.name);
        s.push_str(",\"path\":");
        push_json_str(&mut s, self.path);
        s.push_str(&format!(
            ",\"id\":{},\"parent\":{},\"thread\":{},\"start_ns\":{},\"dur_ns\":{}",
            self.id, self.parent, self.thread, self.start_ns, self.dur_ns
        ));
        if !self.counts.is_empty() {
            s.push_str(",\"counts\":{");
            for (i, (k, v)) in self.counts.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                push_json_str(&mut s, k);
                s.push_str(&format!(":{v}"));
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

/// The JSONL event stream: line-buffered writes behind a mutex (events are
/// rare relative to the work they bracket — one per analysis step, not one
/// per candidate).
pub struct JsonlSink {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Creates (truncates) the stream at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink { out: Mutex::new(std::io::BufWriter::new(file)) })
    }

    /// Appends one pre-rendered JSON line.
    pub fn write_line(&self, line: &str) {
        if let Ok(mut w) = self.out.lock() {
            let _ = writeln!(w, "{line}");
        }
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&self) {
        if let Ok(mut w) = self.out.lock() {
            let _ = w.flush();
        }
    }
}

/// Aggregated statistics of one span path.
#[derive(Clone, Debug, Default)]
pub struct PathStat {
    /// Spans finished under this path.
    pub count: u64,
    /// Total time spent in them, nanoseconds.
    pub total_ns: u64,
    /// Summed attached counts by key.
    pub counts: BTreeMap<&'static str, u64>,
}

/// The span tree aggregated by path — the human-readable sink.
#[derive(Debug, Default)]
pub struct TreeAgg {
    stats: Mutex<BTreeMap<String, PathStat>>,
}

impl TreeAgg {
    /// Folds one finished span into the aggregate.
    pub fn record(&self, ev: &SpanEvent<'_>) {
        if let Ok(mut map) = self.stats.lock() {
            let stat = map.entry(ev.path.to_string()).or_default();
            stat.count += 1;
            stat.total_ns += ev.dur_ns;
            for (k, v) in ev.counts {
                *stat.counts.entry(k).or_insert(0) += v;
            }
        }
    }

    /// Renders the aggregate as an indented tree, one line per distinct
    /// span path, sorted so children follow their parents.
    pub fn render(&self) -> String {
        let map = match self.stats.lock() {
            Ok(m) => m.clone(),
            Err(_) => return String::new(),
        };
        let mut out = String::new();
        for (path, stat) in &map {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let ms = stat.total_ns as f64 / 1e6;
            out.push_str(&format!(
                "{:indent$}{name:<14} {:>7}x {ms:>10.3} ms",
                "",
                stat.count,
                indent = depth * 2
            ));
            for (k, v) in &stat.counts {
                out.push_str(&format!("  {k}={v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Total nanoseconds recorded under `path` (exact-match).
    pub fn total_ns(&self, path: &str) -> u64 {
        self.stats.lock().ok().and_then(|m| m.get(path).map(|s| s.total_ns)).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev<'a>(path: &'a str, dur: u64, counts: &'a [(&'static str, u64)]) -> SpanEvent<'a> {
        SpanEvent { name: "x", path, id: 1, parent: 0, thread: 0, start_ns: 5, dur_ns: dur, counts }
    }

    #[test]
    fn json_escaping_is_sound() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn span_event_renders_valid_shape() {
        let counts = [("s_v", 3u64)];
        let line = ev("flow/cuts", 42, &counts).to_json();
        assert!(line.starts_with("{\"t\":\"span\""));
        assert!(line.contains("\"path\":\"flow/cuts\""));
        assert!(line.contains("\"dur_ns\":42"));
        assert!(line.contains("\"counts\":{\"s_v\":3}"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn tree_aggregates_by_path() {
        let tree = TreeAgg::default();
        tree.record(&ev("flow", 10, &[]));
        tree.record(&ev("flow/cuts", 3, &[("s_v", 2)]));
        tree.record(&ev("flow/cuts", 4, &[("s_v", 5)]));
        assert_eq!(tree.total_ns("flow/cuts"), 7);
        let render = tree.render();
        assert!(render.contains("cuts"), "{render}");
        assert!(render.contains("s_v=7"), "{render}");
    }
}
